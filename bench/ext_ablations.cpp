/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  (1) GEMM row-occupancy factor — disabling it (gemm_half_rows = 0)
 *      makes small-batch GEMMs unrealistically fast and destroys the
 *      Llama BS=1 "similar latency" result.
 *  (2) Boundedness knee margin — the detected transition batch as the
 *      plateau-departure margin sweeps from 2x to 16x; the paper's
 *      4x LC-vs-CC gap is stable across a wide margin range.
 *  (3) Compiler fusion byte-saving factor — Table I's default-mode
 *      speedup as a function of how much intermediate traffic Triton
 *      fusion removes.
 *
 * Usage: ext_ablations [--csv]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/profile.hh"
#include "workload/builder.hh"

using namespace skipsim;

namespace
{

void
ablateRowFactor(bool csv)
{
    TextTable table("Ablation 1: GEMM row-occupancy factor "
                    "(Llama-3.2-1B BS=1 TTFT, ms)");
    table.setHeader({"Platform", "with row factor", "without"});

    for (const auto &base : hw::platforms::paperTrio()) {
        hw::Platform no_rows = base;
        no_rows.gpu.gemmHalfRows = 0.0; // factor collapses to 1

        double with_factor = skip::profilePrefill(
            workload::llama32_1b(), base, 1).ttftNs();
        double without = skip::profilePrefill(
            workload::llama32_1b(), no_rows, 1).ttftNs();
        table.addRow({base.name,
                      strprintf("%.2f", with_factor / 1e6),
                      strprintf("%.2f", without / 1e6)});
    }
    std::fputs(csv ? table.renderCsv().c_str() : table.render().c_str(),
               stdout);
    std::puts("  Without the occupancy penalty, skinny seq-512 GEMMs "
              "run near peak and every platform collapses to its CPU "
              "floor - GH200 would look ~2.5x worse at BS=1 for Llama, "
              "contradicting the paper's Fig. 11a.\n");
}

void
ablateKneeMargin(bool csv)
{
    TextTable table("Ablation 2: TKLQT knee margin vs detected "
                    "transition batch (Bert-Base-Uncased)");
    table.setHeader({"Margin", "AMD+A100", "Intel+H100", "GH200",
                     "CC/LC ratio"});

    std::vector<analysis::SweepResult> sweeps;
    for (const auto &platform : hw::platforms::paperTrio())
        sweeps.push_back(analysis::runBatchSweep(
            workload::bertBaseUncased(), platform,
            analysis::defaultBatchGrid()));

    for (double margin : {2.0, 4.0, 8.0, 16.0}) {
        std::vector<std::string> row{strprintf("%.0fx", margin)};
        int lc = 0;
        int cc = 0;
        for (std::size_t i = 0; i < sweeps.size(); ++i) {
            auto bound = analysis::classifyBoundedness(sweeps[i],
                                                       margin);
            int batch = bound.transitionBatch ? *bound.transitionBatch
                                              : -1;
            row.push_back(batch > 0 ? std::to_string(batch) : "none");
            if (i == 1)
                lc = batch;
            if (i == 2)
                cc = batch;
        }
        row.push_back(lc > 0 && cc > 0
                          ? strprintf("%.0fx",
                                      static_cast<double>(cc) / lc)
                          : "-");
        table.addRow(row);
    }
    std::fputs(csv ? table.renderCsv().c_str() : table.render().c_str(),
               stdout);
    std::puts("  The 4x CC/LC transition gap is robust across margins; "
              "very small margins fire on single long kernels rather "
              "than sustained queuing.\n");
}

void
ablateFusionSaving(bool csv)
{
    // Re-derive Table I's default-mode speedup under different
    // assumptions about fused-chain traffic, by scaling the pointwise
    // bytes of the compiled graph.
    workload::BuildOptions opts;
    opts.batch = 1;
    opts.seqLen = 1024;
    hw::Platform intel = hw::platforms::intelH100();

    double eager = skip::profilePrefill(workload::gemma2b(), intel, 1,
                                        1024).ttftNs();

    TextTable table("Ablation 3: compiled-mode speedup vs fused-chain "
                    "byte scaling (Gemma-2B BS=1 seq=1024, Intel+H100)");
    table.setHeader({"Fused bytes x", "Default-mode speedup"});

    for (double scale : {1.0, 0.7, 0.5, 0.3}) {
        opts.mode = workload::ExecMode::CompileDefault;
        workload::OperatorGraph graph =
            workload::buildPrefillGraph(workload::gemma2b(), opts);
        // Rescale the triton-fused kernels relative to the built-in
        // factor (0.30) to express the ablated assumption.
        graph.forEachLaunch([](const workload::KernelLaunch &) {});
        std::function<void(workload::OpNode &)> rescale =
            [&](workload::OpNode &node) {
                for (auto &child : node.children)
                    rescale(child);
                for (auto &launch : node.launches) {
                    if (launch.kernelName.rfind("triton_fused_", 0) == 0) {
                        for (auto &w : launch.work)
                            w.bytes *= scale / 0.30;
                    }
                }
            };
        for (auto &root : graph.roots)
            rescale(root);

        sim::Simulator simulator(intel);
        double compiled = simulator.run(graph).wallNs;
        table.addRow({strprintf("%.2f", scale),
                      strprintf("%.3fx", eager / compiled)});
    }
    std::fputs(csv ? table.renderCsv().c_str() : table.render().c_str(),
               stdout);
    std::puts("  Table I's 1.2x default-mode speedup implies fused "
              "chains keep roughly a third of their eager traffic - "
              "the calibrated value (0.30).\n");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    bool csv = args.has("csv");
    ablateRowFactor(csv);
    ablateKneeMargin(csv);
    ablateFusionSaving(csv);
    return 0;
}
