/**
 * @file
 * Extension experiment: cluster-level serving scale-out. Production
 * deployments replicate a serving instance N ways behind a router, so
 * the question is not just per-instance TTFT but how routing policy
 * and replica count shape cluster SLO attainment as load rises — and
 * how much goodput survives when a replica crashes mid-horizon.
 *
 * Sweeps replica count x router policy x arrival rate (rates chosen
 * relative to the fleet's decode capacity, so the load axis means the
 * same thing at every fleet size), then replays the mid-size fleet
 * with a crash fault under every policy to compare fault resilience.
 *
 * Usage: ext_cluster_scaling [--model GPT2] [--platform GH200]
 *                            [--prompt 256] [--tokens 16]
 *                            [--max-active 32] [--jobs N]
 *                            [--quick] [--csv]
 *                            [--obs-out obs.json]
 *                            [--obs-interval-ms MS]
 *
 * --quick shrinks the grid and horizon for CI smoke runs. --obs-out
 * attaches a probe collector to each fault-resilience scenario (see
 * docs/observability.md), adds a sample-count column to the fault
 * table, and writes the per-policy time-series JSON.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "exec/pool.hh"
#include "hw/catalog.hh"
#include "json/writer.hh"
#include "obs/collector.hh"
#include "serving/continuous.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

struct Scenario
{
    int replicas = 0;
    cluster::RouterPolicy router = cluster::RouterPolicy::RoundRobin;
    double loadFrac = 0.0;
    cluster::ClusterResult result;
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    RunFlags flags = parseRunFlags(args, /*defaultJobs=*/0);
    bool quick = flags.quick;
    workload::ModelConfig model =
        workload::modelByName(args.getString("model", "GPT2"));
    hw::Platform platform =
        hw::platforms::byName(args.getString("platform", "GH200"));
    int prompt = static_cast<int>(args.getInt("prompt", 256));
    int tokens = static_cast<int>(args.getInt("tokens", 16));
    int max_active = static_cast<int>(args.getInt("max-active", 32));
    exec::Pool pool(flags.jobs);

    std::vector<int> fleets = quick ? std::vector<int>{2, 4}
                                    : std::vector<int>{2, 4, 8};
    std::vector<double> fracs = quick
        ? std::vector<double>{0.6}
        : std::vector<double>{0.3, 0.6, 0.9};
    std::vector<cluster::RouterPolicy> policies = {
        cluster::RouterPolicy::RoundRobin,
        cluster::RouterPolicy::LeastOutstanding,
        cluster::RouterPolicy::WeightedThroughput,
        cluster::RouterPolicy::SessionAffinity,
    };
    double horizon = quick ? 4.0 : 15.0;

    cluster::ClusterSpec base;
    base.model = model;
    base.promptLen = prompt;
    base.genTokens = tokens;
    base.horizonSec = horizon;
    cluster::ReplicaSpec replica;
    replica.platform = platform;
    replica.maxActive = max_active;
    base.replicas.assign(1, replica);

    // Per-replica decode capacity in requests/s anchors the load axis:
    // offered load = frac x fleet capacity, so "0.6" saturates a
    // 2-replica fleet and an 8-replica fleet equally.
    cluster::CostCache costs;
    costs.build(base);
    double per_replica_rps = max_active /
        (costs.get(platform.name).decodeNs(max_active) / 1e9) / tokens;

    std::vector<Scenario> grid;
    for (int fleet : fleets)
        for (cluster::RouterPolicy policy : policies)
            for (double frac : fracs) {
                Scenario scenario;
                scenario.replicas = fleet;
                scenario.router = policy;
                scenario.loadFrac = frac;
                grid.push_back(scenario);
            }

    pool.run(grid.size(), [&](std::size_t i) {
        Scenario &scenario = grid[i];
        cluster::ClusterSpec spec = base;
        spec.replicas.assign(
            static_cast<std::size_t>(scenario.replicas), replica);
        spec.router = scenario.router;
        spec.arrivalRatePerSec =
            scenario.loadFrac * per_replica_rps * scenario.replicas;
        spec.seed = mixSeed(base.seed, i);
        scenario.result = cluster::simulateCluster(spec, costs);
    });

    TextTable table(strprintf(
        "Cluster scale-out: %s on %s (prompt=%d, %d tokens, "
        "~%.0f rps/replica capacity, horizon %.0fs)",
        model.name.c_str(), platform.name.c_str(), prompt, tokens,
        per_replica_rps, horizon));
    table.setHeader({"Replicas", "Router", "Load", "Rate (rps)",
                     "TTFT p50 (ms)", "TTFT p99 (ms)", "e2e p99 (ms)",
                     "SLO %", "Goodput (rps)"});
    for (const Scenario &scenario : grid)
        table.addRow(
            {std::to_string(scenario.replicas),
             cluster::routerPolicyName(scenario.router),
             strprintf("%.0f%%", 100.0 * scenario.loadFrac),
             strprintf("%.0f", scenario.result.arrivalRatePerSec),
             strprintf("%.1f", scenario.result.p50TtftNs / 1e6),
             strprintf("%.1f", scenario.result.p99TtftNs / 1e6),
             strprintf("%.1f", scenario.result.p99E2eNs / 1e6),
             strprintf("%.1f", 100.0 * scenario.result.sloAttainment),
             strprintf("%.1f", scenario.result.goodputRps)});
    std::fputs(flags.csv ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);
    std::puts("");

    // Fault resilience: crash 1 of 4 replicas mid-horizon and compare
    // what each routing policy salvages.
    cluster::FaultSpec crash;
    crash.atSec = horizon / 2.0;
    crash.replica = 0;
    crash.kind = cluster::FaultKind::Crash;

    // Probe collectors on the fault scenarios (one per policy, indexed
    // like `faulted`, so the export order is deterministic).
    const bool want_obs = flags.wantObs();
    const double obs_interval_ms = flags.obsIntervalMs;
    std::vector<std::unique_ptr<obs::Collector>> collectors(
        policies.size());
    if (want_obs) {
        for (std::size_t i = 0; i < policies.size(); ++i)
            collectors[i] =
                std::make_unique<obs::Collector>(obs_interval_ms);
    }

    std::vector<Scenario> faulted(policies.size());
    pool.run(policies.size(), [&](std::size_t i) {
        Scenario &scenario = faulted[i];
        scenario.replicas = 4;
        scenario.router = policies[i];
        scenario.loadFrac = 0.6;
        cluster::ClusterSpec spec = base;
        spec.replicas.assign(4, replica);
        spec.router = policies[i];
        spec.arrivalRatePerSec = 0.6 * per_replica_rps * 4;
        spec.faults.push_back(crash);
        spec.seed = mixSeed(base.seed, 1000 + i);
        scenario.result = cluster::simulateCluster(spec, costs,
                                                   collectors[i].get());
    });

    TextTable fault_table(strprintf(
        "Fault resilience: crash replica 0 of 4 at t=%.1fs "
        "(60%% load, detect delay %.0f ms)",
        crash.atSec, base.detectDelaySec * 1e3));
    fault_table.setHeader({"Router", "Offered", "Done", "Lost",
                           "Rerouted", "TTFT p99 (ms)", "SLO %",
                           "Goodput (rps)", "Obs samples"});
    for (std::size_t i = 0; i < faulted.size(); ++i) {
        const Scenario &scenario = faulted[i];
        fault_table.addRow(
            {cluster::routerPolicyName(scenario.router),
             std::to_string(scenario.result.offered),
             std::to_string(scenario.result.completed),
             std::to_string(scenario.result.lost),
             std::to_string(scenario.result.rerouted),
             strprintf("%.1f", scenario.result.p99TtftNs / 1e6),
             strprintf("%.1f", 100.0 * scenario.result.sloAttainment),
             strprintf("%.1f", scenario.result.goodputRps),
             want_obs
                 ? std::to_string(collectors[i]->sampleCount())
                 : std::string("-")});
    }
    std::fputs(flags.csv ? fault_table.renderCsv().c_str()
                               : fault_table.render().c_str(),
               stdout);

    if (want_obs) {
        json::Object doc;
        doc.set("interval_ms", obs_interval_ms);
        json::Value::Array scenario_docs;
        for (std::size_t i = 0; i < faulted.size(); ++i) {
            json::Object entry;
            entry.set("router",
                      cluster::routerPolicyName(faulted[i].router));
            entry.set("obs", collectors[i]->toJson());
            scenario_docs.push_back(json::Value(std::move(entry)));
        }
        doc.set("scenarios", json::Value(std::move(scenario_docs)));
        json::writeFile(flags.obsOut, json::Value(doc));
        std::printf("\nobs report -> %s\n", flags.obsOut.c_str());
    }

    std::puts("\nKey takeaway: load-aware routing (least-outstanding, "
              "weighted) holds tail TTFT flat as the fleet grows, while "
              "round-robin and affinity pay a p99 penalty whenever "
              "arrival bursts pile onto one replica. After a crash the "
              "router's view lags by the detection delay; the requests "
              "stranded in that window dominate the lost count, so "
              "goodput degrades by roughly the crashed replica's share "
              "plus the detection-window backlog.");
    return 0;
}
