/**
 * @file
 * Extension experiment: continuous (vLLM/Orca-style) batching across
 * the coupling paradigms. The paper notes serving frameworks chase
 * "BS=1-like latency at high throughput" via continuous batching; this
 * bench shows how far each platform gets — p50/p99 TTFT, per-token
 * iteration latency and sustained token throughput as offered load
 * rises.
 *
 * Usage: ext_continuous_batching [--model GPT2] [--prompt 256]
 *                                [--tokens 16] [--max-active 32] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "serving/continuous.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model =
        workload::modelByName(args.getString("model", "GPT2"));
    int prompt = static_cast<int>(args.getInt("prompt", 256));
    int tokens = static_cast<int>(args.getInt("tokens", 16));
    int max_active = static_cast<int>(args.getInt("max-active", 32));

    for (const auto &platform : hw::platforms::paperTrio()) {
        serving::IterationCostModel cost(model, platform, prompt);
        double capacity_tps = max_active /
            (cost.decodeNs(max_active) / 1e9);

        TextTable table(strprintf(
            "Continuous batching: %s on %s (prompt=%d, %d tokens, "
            "max active %d, decode capacity ~%.0f tok/s)",
            model.name.c_str(), platform.name.c_str(), prompt, tokens,
            max_active, capacity_tps));
        table.setHeader({"Load (rps)", "p50 TTFT (ms)", "p99 TTFT (ms)",
                         "TPOT (ms)", "tok/s", "active",
                         "chunked TPOT (ms)"});

        for (double frac : {0.1, 0.3, 0.6, 0.9}) {
            serving::ContinuousConfig config;
            config.arrivalRatePerSec =
                frac * capacity_tps / tokens;
            config.horizonSec = 20.0;
            config.maxActive = max_active;
            config.promptLen = prompt;
            config.genTokens = tokens;
            serving::ContinuousResult result =
                serving::simulateContinuous(cost, config);

            // Sarathi-style chunked prefill for comparison.
            serving::ContinuousConfig chunked_config = config;
            chunked_config.chunkTokens = prompt / 4;
            serving::ContinuousResult chunked =
                serving::simulateContinuous(cost, chunked_config);

            table.addRow({strprintf("%.0f", config.arrivalRatePerSec),
                          strprintf("%.1f", result.p50TtftNs / 1e6),
                          strprintf("%.1f", result.p99TtftNs / 1e6),
                          strprintf("%.2f", result.meanTpotNs / 1e6),
                          strprintf("%.0f", result.tokensPerSec),
                          strprintf("%.1f", result.meanActive),
                          strprintf("%.2f",
                                    chunked.meanTpotNs / 1e6)});
        }
        std::fputs(args.has("csv") ? table.renderCsv().c_str()
                                   : table.render().c_str(),
                   stdout);
        std::puts("");
    }

    std::puts("Key takeaway: continuous batching keeps TTFT near the "
              "single-prefill cost until utilization is high, but the "
              "per-token iteration cost is launch-dominated - the "
              "Grace CPU's TPOT penalty persists at every load, while "
              "the GH200's decode capacity ceiling sits highest.");
    return 0;
}
