/**
 * @file
 * Gate benchmark for the sharded cluster engine: one fleet-scale
 * "datacenter" scenario run (1024 replicas, a 2^20 session-id pool,
 * an explicit router-to-replica dispatch hop) executed over a grid of
 * execution topologies — shard counts 1/2/4 single-threaded, the
 * largest shard count with threaded shard execution, and both event
 * queue backends (binary heap and calendar queue). Each row reports
 * the sharded engine's synchronization counters and simulated
 * events/sec, and the report JSON is byte-compared across every row —
 * the bench fails if any topology changes a single byte, so it
 * doubles as the at-scale determinism gate for the windowed-sync
 * protocol, the threaded window execution and the queue backends.
 *
 * Usage: ext_datacenter [--replicas N] [--shards LIST]
 *                       [--shard-threads N] [--queue heap|calendar]
 *                       [--seed S] [--quick] [--csv]
 *                       [--out report.json]
 *
 * --quick shrinks the horizon and per-replica rate for CI smoke runs
 * but keeps the full 1024-replica fleet — the shard partitioning and
 * cross-shard mailbox traffic it exists to exercise do not shrink.
 * --shard-threads pins the worker count of the threaded rows (default:
 * min(4, hardware threads, shards), but at least 2 so the threaded
 * path is exercised even on a single-core CI box — oversubscription
 * is harmless to the identity gate, which is the point of the row).
 * --queue restricts the whole grid to one backend. --out writes the
 * rows as JSON (the CI artifact BENCH_datacenter.json), including the
 * events/sec delta against the PR 9 single-threaded shard loop
 * baseline recorded on the reference CI container.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "core/any_queue.hh"
#include "core/sharded_engine.hh"
#include "json/value.hh"
#include "json/writer.hh"
#include "scenario/registry.hh"

using namespace skipsim;

namespace
{

/**
 * Simulated-events/sec of the PR 9 engine (inbox-draining merge loop,
 * binary heap, single-threaded) on this benchmark's default grid,
 * measured on the reference CI container. The JSON artifact reports
 * the current fastest row against this so the hot-path rework's win
 * is tracked as a number, not a narrative.
 */
constexpr double kPr9EventsPerSecQuick = 722262.0;
constexpr double kPr9EventsPerSecFull = 390853.0;

struct Config
{
    int shards = 1;
    int threads = 1;
    const char *queue = "heap";
};

struct Row
{
    Config config;
    core::ShardStats stats;
    double wallMs = 0.0;
    double eventsPerSec = 0.0;
    cluster::ClusterResult result;
    std::string reportJson;
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    RunFlags flags = parseRunFlags(args);
    long replicas = args.getInt("replicas", 1024);
    if (replicas < 1)
        fatal("option --replicas expects a positive fleet size");
    std::vector<long> shard_axis =
        args.getIntList("shards", {1, 2, 4});
    double horizon = flags.quick ? 1.0 : 40.0;
    double rate_per_replica = flags.quick ? 8.0 : 30.0;

    json::Object params;
    params.set("replicas", static_cast<double>(replicas));
    params.set("sessions", static_cast<double>(1 << 20));
    params.set("horizon-sec", horizon);
    params.set("rate-per-replica", rate_per_replica);
    params.set("gen-tokens", 8.0);
    params.set("seed", static_cast<double>(flags.seed));
    cluster::ClusterSpec spec =
        scenario::buildScenario("datacenter", params);

    long max_shards = 1;
    for (long shards : shard_axis) {
        if (shards < 1 ||
            static_cast<std::size_t>(shards) > spec.replicas.size())
            fatal(strprintf("option --shards entry %ld out of range "
                            "for the fleet's %zu replica(s)",
                            shards, spec.replicas.size()));
        max_shards = std::max(max_shards, shards);
    }

    // Worker count for the threaded rows. The identity gate wants the
    // parallel window path exercised even on a one-core CI box, so
    // the floor is 2 workers (oversubscribed threads cost wall clock,
    // never bytes); --shard-threads overrides, already validated
    // against the machine by parseRunFlags.
    unsigned hw = std::thread::hardware_concurrency();
    int threaded = flags.shardThreads > 0
        ? flags.shardThreads
        : std::max(2, std::min({4, static_cast<int>(hw == 0 ? 1 : hw),
                                static_cast<int>(max_shards)}));

    // The grid: the single-threaded heap axis (the PR 9 shape), then
    // a threaded rider on the largest shard count, then the calendar
    // backend sequentially and threaded. --queue collapses the
    // backend axis to the requested one.
    std::vector<Config> grid;
    const char *base_queue =
        flags.queue == "calendar" ? "calendar" : "heap";
    for (long shards : shard_axis)
        grid.push_back({static_cast<int>(shards), 1, base_queue});
    if (max_shards > 1)
        grid.push_back(
            {static_cast<int>(max_shards), threaded, base_queue});
    if (flags.queue.empty()) {
        grid.push_back({1, 1, "calendar"});
        if (max_shards > 1)
            grid.push_back(
                {static_cast<int>(max_shards), threaded, "calendar"});
    }

    // One cost cache for every row: the execution topology changes
    // how the event loop runs, never what it computes.
    cluster::CostCache costs;
    costs.build(spec);

    // Rows run serially — each one is wall-clock timed.
    std::vector<Row> rows;
    for (const Config &config : grid) {
        Row row;
        row.config = config;
        cluster::ClusterSpec shard_spec = spec;
        shard_spec.shards = config.shards;
        shard_spec.shardThreads = config.threads;
        core::setDefaultQueueKind(
            core::queueKindFromName(config.queue));
        auto start = std::chrono::steady_clock::now();
        row.result = cluster::simulateCluster(shard_spec, costs,
                                              nullptr, nullptr,
                                              &row.stats);
        auto end = std::chrono::steady_clock::now();
        row.wallMs =
            std::chrono::duration<double, std::milli>(end - start)
                .count();
        row.eventsPerSec = row.wallMs > 0.0
            ? static_cast<double>(row.stats.events) /
                (row.wallMs / 1e3)
            : 0.0;
        row.reportJson = json::write(row.result.toJson());
        rows.push_back(std::move(row));
    }
    core::setDefaultQueueKind(core::QueueKind::Heap);

    // The gate: the report must be byte-identical at every grid row.
    // A single diverging byte means some execution topology changed
    // the event order somewhere in a million-session run.
    bool identical = true;
    for (const Row &row : rows)
        if (row.reportJson != rows.front().reportJson) {
            identical = false;
            std::fprintf(stderr,
                         "ext_datacenter: report at --shards %d "
                         "--shard-threads %d --queue %s diverges "
                         "from the first row (%zu vs %zu bytes)\n",
                         row.config.shards, row.config.threads,
                         row.config.queue, row.reportJson.size(),
                         rows.front().reportJson.size());
        }

    double fastest = 0.0;
    for (const Row &row : rows)
        fastest = std::max(fastest, row.eventsPerSec);
    double pr9_baseline =
        flags.quick ? kPr9EventsPerSecQuick : kPr9EventsPerSecFull;
    double delta_pct =
        100.0 * (fastest - pr9_baseline) / pr9_baseline;

    TextTable table(strprintf(
        "Sharded datacenter run: %s x%zu replicas, %.0f rps, "
        "horizon %.1fs (seed %llu)",
        spec.model.name.c_str(), spec.replicas.size(),
        spec.arrivalRatePerSec, horizon,
        static_cast<unsigned long long>(flags.seed)));
    table.setHeader({"Shards", "Threads", "Queue", "Events",
                     "Windows", "X-shard msgs", "Wall (ms)",
                     "Sim events/s", "TTFT p99 (ms)",
                     "Goodput (rps)"});
    for (const Row &row : rows)
        table.addRow({std::to_string(row.config.shards),
                      std::to_string(row.config.threads),
                      row.config.queue,
                      std::to_string(row.stats.events),
                      std::to_string(row.stats.windows),
                      std::to_string(row.stats.crossShardMessages),
                      strprintf("%.1f", row.wallMs),
                      strprintf("%.0f", row.eventsPerSec),
                      strprintf("%.1f", row.result.p99TtftNs / 1e6),
                      strprintf("%.1f", row.result.goodputRps)});
    std::fputs(flags.csv ? table.renderCsv().c_str()
                         : table.render().c_str(),
               stdout);
    std::printf("\nreports byte-identical across the grid: %s\n",
                identical ? "yes" : "NO");
    std::printf("fastest row %.0f events/s vs PR 9 baseline %.0f "
                "(%+.1f%%)\n",
                fastest, pr9_baseline, delta_pct);

    if (flags.wantOut()) {
        json::Object doc;
        doc.set("replicas", static_cast<double>(replicas));
        doc.set("sessions", static_cast<double>(1 << 20));
        doc.set("horizon-sec", horizon);
        doc.set("rate-per-replica", rate_per_replica);
        doc.set("seed", static_cast<double>(flags.seed));
        doc.set("identical", identical);
        doc.set("pr9-baseline-events-per-sec", pr9_baseline);
        doc.set("fastest-events-per-sec", fastest);
        doc.set("delta-vs-pr9-pct", delta_pct);
        json::Value::Array grid_rows;
        for (const Row &row : rows) {
            json::Object entry;
            entry.set("shards",
                      static_cast<double>(row.config.shards));
            entry.set("shard-threads",
                      static_cast<double>(row.config.threads));
            entry.set("queue", std::string(row.config.queue));
            entry.set("events", static_cast<double>(row.stats.events));
            entry.set("windows",
                      static_cast<double>(row.stats.windows));
            entry.set("parallel-windows",
                      static_cast<double>(row.stats.parallelWindows));
            entry.set("parallel-events",
                      static_cast<double>(row.stats.parallelEvents));
            entry.set("cross-shard-messages",
                      static_cast<double>(
                          row.stats.crossShardMessages));
            entry.set("lookahead-violations",
                      static_cast<double>(
                          row.stats.lookaheadViolations));
            entry.set("lookahead-ns", row.stats.lookaheadNs);
            entry.set("wall-ms", row.wallMs);
            entry.set("simulated-events-per-sec", row.eventsPerSec);
            entry.set("report-bytes",
                      static_cast<double>(row.reportJson.size()));
            entry.set("offered",
                      static_cast<double>(row.result.offered));
            entry.set("completed",
                      static_cast<double>(row.result.completed));
            entry.set("p99-ttft-ms", row.result.p99TtftNs / 1e6);
            entry.set("goodput-rps", row.result.goodputRps);
            grid_rows.push_back(json::Value(std::move(entry)));
        }
        doc.set("rows", json::Value(std::move(grid_rows)));
        json::writeFile(flags.out, json::Value(std::move(doc)));
    }

    if (!identical)
        return 1;
    std::puts("\nKey takeaway: sharding, threaded shard execution and "
              "the calendar-queue backend are pure execution-topology "
              "changes — a thousand-replica, million-session run "
              "produces the same bytes on every row of the grid, "
              "while the lock-free mailbox and merge-loop rework buy "
              "back single-thread throughput against the PR 9 "
              "baseline.");
    return 0;
}
