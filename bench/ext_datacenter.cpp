/**
 * @file
 * Gate benchmark for the sharded cluster engine: one fleet-scale
 * "datacenter" scenario run (1024 replicas, a 2^20 session-id pool,
 * an explicit router-to-replica dispatch hop) executed at shard
 * counts 1/2/4 over the same spec. Each row reports the sharded
 * engine's synchronization counters and simulated-events/sec, and the
 * report JSON is byte-compared across shard counts — the bench fails
 * if any shard count changes a single byte, so it doubles as the
 * at-scale determinism gate for the windowed-sync protocol.
 *
 * Usage: ext_datacenter [--replicas N] [--shards LIST] [--seed S]
 *                       [--quick] [--csv] [--out report.json]
 *
 * --quick shrinks the horizon and per-replica rate for CI smoke runs
 * but keeps the full 1024-replica fleet — the shard partitioning and
 * cross-shard mailbox traffic it exists to exercise do not shrink.
 * --out writes the rows as JSON (the CI artifact
 * BENCH_datacenter.json).
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "core/sharded_engine.hh"
#include "json/value.hh"
#include "json/writer.hh"
#include "scenario/registry.hh"

using namespace skipsim;

namespace
{

struct Row
{
    int shards = 1;
    core::ShardStats stats;
    double wallMs = 0.0;
    double eventsPerSec = 0.0;
    cluster::ClusterResult result;
    std::string reportJson;
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    RunFlags flags = parseRunFlags(args);
    long replicas = args.getInt("replicas", 1024);
    if (replicas < 1)
        fatal("option --replicas expects a positive fleet size");
    std::vector<long> shard_axis =
        args.getIntList("shards", {1, 2, 4});
    double horizon = flags.quick ? 1.0 : 40.0;
    double rate_per_replica = flags.quick ? 8.0 : 30.0;

    json::Object params;
    params.set("replicas", static_cast<double>(replicas));
    params.set("sessions", static_cast<double>(1 << 20));
    params.set("horizon-sec", horizon);
    params.set("rate-per-replica", rate_per_replica);
    params.set("gen-tokens", 8.0);
    params.set("seed", static_cast<double>(flags.seed));
    cluster::ClusterSpec spec =
        scenario::buildScenario("datacenter", params);

    // One cost cache for every shard count: the shard axis changes
    // how the event loop executes, never what it computes.
    cluster::CostCache costs;
    costs.build(spec);

    // Rows run serially — each one is wall-clock timed.
    std::vector<Row> rows;
    for (long shards : shard_axis) {
        if (shards < 1 ||
            static_cast<std::size_t>(shards) > spec.replicas.size())
            fatal(strprintf("option --shards entry %ld out of range "
                            "for the fleet's %zu replica(s)",
                            shards, spec.replicas.size()));
        Row row;
        row.shards = static_cast<int>(shards);
        cluster::ClusterSpec shard_spec = spec;
        shard_spec.shards = row.shards;
        auto start = std::chrono::steady_clock::now();
        row.result = cluster::simulateCluster(shard_spec, costs,
                                              nullptr, nullptr,
                                              &row.stats);
        auto end = std::chrono::steady_clock::now();
        row.wallMs =
            std::chrono::duration<double, std::milli>(end - start)
                .count();
        row.eventsPerSec = row.wallMs > 0.0
            ? static_cast<double>(row.stats.events) /
                (row.wallMs / 1e3)
            : 0.0;
        row.reportJson = json::write(row.result.toJson());
        rows.push_back(std::move(row));
    }

    // The gate: the report must be byte-identical at every shard
    // count. A single diverging byte means the windowed merge changed
    // the execution order somewhere in a million-session run.
    bool identical = true;
    for (const Row &row : rows)
        if (row.reportJson != rows.front().reportJson) {
            identical = false;
            std::fprintf(stderr,
                         "ext_datacenter: report at --shards %d "
                         "diverges from --shards %d (%zu vs %zu "
                         "bytes)\n",
                         row.shards, rows.front().shards,
                         row.reportJson.size(),
                         rows.front().reportJson.size());
        }

    TextTable table(strprintf(
        "Sharded datacenter run: %s x%zu replicas, %.0f rps, "
        "horizon %.1fs (seed %llu)",
        spec.model.name.c_str(), spec.replicas.size(),
        spec.arrivalRatePerSec, horizon,
        static_cast<unsigned long long>(flags.seed)));
    table.setHeader({"Shards", "Events", "Windows", "X-shard msgs",
                     "Lookahead viol", "Wall (ms)", "Sim events/s",
                     "TTFT p99 (ms)", "Goodput (rps)"});
    for (const Row &row : rows)
        table.addRow({std::to_string(row.shards),
                      std::to_string(row.stats.events),
                      std::to_string(row.stats.windows),
                      std::to_string(row.stats.crossShardMessages),
                      std::to_string(row.stats.lookaheadViolations),
                      strprintf("%.1f", row.wallMs),
                      strprintf("%.0f", row.eventsPerSec),
                      strprintf("%.1f", row.result.p99TtftNs / 1e6),
                      strprintf("%.1f", row.result.goodputRps)});
    std::fputs(flags.csv ? table.renderCsv().c_str()
                         : table.render().c_str(),
               stdout);
    std::printf("\nreports byte-identical across shard counts: %s\n",
                identical ? "yes" : "NO");

    if (flags.wantOut()) {
        json::Object doc;
        doc.set("replicas", static_cast<double>(replicas));
        doc.set("sessions", static_cast<double>(1 << 20));
        doc.set("horizon-sec", horizon);
        doc.set("rate-per-replica", rate_per_replica);
        doc.set("seed", static_cast<double>(flags.seed));
        doc.set("identical", identical);
        json::Value::Array grid;
        for (const Row &row : rows) {
            json::Object entry;
            entry.set("shards", static_cast<double>(row.shards));
            entry.set("events", static_cast<double>(row.stats.events));
            entry.set("windows",
                      static_cast<double>(row.stats.windows));
            entry.set("cross-shard-messages",
                      static_cast<double>(
                          row.stats.crossShardMessages));
            entry.set("lookahead-violations",
                      static_cast<double>(
                          row.stats.lookaheadViolations));
            entry.set("lookahead-ns", row.stats.lookaheadNs);
            entry.set("wall-ms", row.wallMs);
            entry.set("simulated-events-per-sec", row.eventsPerSec);
            entry.set("report-bytes",
                      static_cast<double>(row.reportJson.size()));
            entry.set("offered",
                      static_cast<double>(row.result.offered));
            entry.set("completed",
                      static_cast<double>(row.result.completed));
            entry.set("p99-ttft-ms", row.result.p99TtftNs / 1e6);
            entry.set("goodput-rps", row.result.goodputRps);
            grid.push_back(json::Value(std::move(entry)));
        }
        doc.set("rows", json::Value(std::move(grid)));
        json::writeFile(flags.out, json::Value(std::move(doc)));
    }

    if (!identical)
        return 1;
    std::puts("\nKey takeaway: the windowed-sync sharding is a pure "
              "execution-topology change — a thousand-replica, "
              "million-session run produces the same bytes at any "
              "shard count, while the dispatch-latency lookahead "
              "keeps every synchronization window violation-free.");
    return 0;
}
