/**
 * @file
 * Extension experiment: energy per request vs batch size per platform.
 * The paper motivates inference optimization through datacenter cost;
 * this bench shows the energy side of the batch-size trade-off — the
 * 900 W GH200 is the most expensive way to serve one request at BS=1
 * and the cheapest at scale, with the balanced-utilization region
 * coinciding with the energy sweet spot.
 *
 * Usage: ext_energy_efficiency [--model Bert-Base-Uncased] [--seq 512]
 *                              [--csv]
 */

#include <cstdio>

#include "analysis/energy.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model = workload::modelByName(
        args.getString("model", "Bert-Base-Uncased"));
    int seq = static_cast<int>(args.getInt("seq", 512));

    TextTable table(strprintf(
        "Energy per request (mJ) - %s prefill, seq=%d",
        model.name.c_str(), seq));
    table.setHeader({"Batch", "AMD+A100", "Intel+H100", "GH200",
                     "best"});

    std::vector<analysis::SweepResult> sweeps;
    for (const auto &platform : hw::platforms::paperTrio())
        sweeps.push_back(analysis::runBatchSweep(
            model, platform, analysis::defaultBatchGrid(), seq));

    auto trio = hw::platforms::paperTrio();
    for (int batch : analysis::defaultBatchGrid()) {
        std::vector<std::string> row{std::to_string(batch)};
        double best = 0.0;
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < sweeps.size(); ++i) {
            analysis::EnergyReport energy = analysis::estimateEnergy(
                sweeps[i].at(batch).metrics, trio[i], batch);
            double mj = energy.joulesPerRequest * 1e3;
            row.push_back(strprintf("%.2f", mj));
            if (i == 0 || mj < best) {
                best = mj;
                best_idx = i;
            }
        }
        row.push_back(trio[best_idx].name);
        table.addRow(row);
    }
    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::puts("\nKey takeaway: per-request energy falls with batch on "
              "every platform, but the winner flips - at small batch "
              "the lower-power LC systems are cheaper per request, "
              "while past the crossover the GH200's shorter runtimes "
              "amortize its 900 W envelope.");
    return 0;
}
