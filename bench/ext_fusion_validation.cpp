/**
 * @file
 * Extension experiment (paper Sec. VI future work): validate the
 * proximity-score fusion predictions by *applying* the recommended
 * chains to the operator graph and simulating the fused execution.
 * Reports, per model/platform/chain length: the Eq. 8 idealized
 * speedup, the simulated speedup with launch-interception fusion
 * (launch-only), and with compiler-style fusion (collapse-ops).
 *
 * Usage: ext_fusion_validation [--seq 512] [--batch 1] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fusion/apply.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "workload/builder.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    int batch = static_cast<int>(args.getInt("batch", 1));

    for (const auto &model :
         {workload::gpt2(), workload::xlmRobertaBase()}) {
        workload::BuildOptions opts;
        opts.batch = batch;
        opts.seqLen = seq;
        workload::OperatorGraph eager =
            workload::buildPrefillGraph(model, opts);

        for (const auto &platform : hw::platforms::paperTrio()) {
            sim::Simulator simulator(platform);
            double t_eager = simulator.run(eager).wallNs;

            TextTable table(strprintf(
                "Fusion validation: %s, BS=%d, seq=%d on %s "
                "(eager TTFT %.2f ms)",
                model.name.c_str(), batch, seq, platform.name.c_str(),
                t_eager / 1e6));
            table.setHeader({"L", "chains", "K_fused", "ideal (Eq. 8)",
                             "sim launch-only", "sim collapse-ops"});

            for (std::size_t length : {std::size_t(8), std::size_t(32),
                                       std::size_t(128),
                                       std::size_t(256)}) {
                fusion::AppliedFusion lo = fusion::applyFusion(
                    eager, length, fusion::ApplyMode::LaunchOnly);
                fusion::AppliedFusion co = fusion::applyFusion(
                    eager, length, fusion::ApplyMode::CollapseOps);
                double t_lo = simulator.run(lo.graph).wallNs;
                double t_co = simulator.run(co.graph).wallNs;
                table.addRow({std::to_string(length),
                              std::to_string(lo.chainsApplied),
                              std::to_string(lo.launchesAfter),
                              strprintf("%.2fx", lo.idealSpeedup),
                              strprintf("%.2fx", t_eager / t_lo),
                              strprintf("%.2fx", t_eager / t_co)});
            }
            std::fputs(args.has("csv") ? table.renderCsv().c_str()
                                       : table.render().c_str(),
                       stdout);
            std::puts("");
        }
    }

    std::puts("Key takeaway: the idealized Eq. 8 speedups are upper "
              "bounds - launch interception alone recovers only part "
              "of them (framework dispatch remains), compiler-style "
              "collapse recovers most on CPU-bound configurations, and "
              "the gains are largest on GH200, whose wide CPU-bound "
              "region is exactly where the paper aims this "
              "optimization.");
    return 0;
}
