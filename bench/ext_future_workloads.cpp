/**
 * @file
 * Extension experiment (paper Sec. VI future work): characterize the
 * recommendation-model (DLRM) and GNN (GCN) workloads on the three
 * platforms. DLRM forwards are a stream of tiny embedding-bag gathers
 * (CPU-bound to extreme batch sizes: launch minimization is the whole
 * game); full-graph GCN inference is a handful of edge-streaming SpMM
 * kernels (GPU/bandwidth-bound from the first sample).
 *
 * Usage: ext_future_workloads [--csv]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "workload/future_workloads.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    bool csv = args.has("csv");

    // ---- DLRM: latency vs batch, boundedness ----
    workload::DlrmConfig dlrm = workload::dlrmRm2();
    std::vector<int> rm_batches{64, 256, 1024, 4096, 16384, 65536};
    TextTable rm_table(strprintf(
        "%s inference latency (ms) vs batch ('*' = CPU->GPU-bound "
        "transition)", dlrm.name.c_str()));
    rm_table.setHeader({"Batch", "AMD+A100", "Intel+H100", "GH200"});

    std::vector<analysis::SweepResult> rm_sweeps;
    std::vector<analysis::BoundednessResult> rm_bounds;
    for (const auto &platform : hw::platforms::paperTrio()) {
        rm_sweeps.push_back(analysis::runCustomSweep(
            dlrm.name, platform,
            [&](int batch) {
                return workload::buildDlrmGraph(dlrm, batch);
            },
            rm_batches));
        rm_bounds.push_back(
            analysis::classifyBoundedness(rm_sweeps.back()));
    }
    for (int batch : rm_batches) {
        std::vector<std::string> row{std::to_string(batch)};
        for (std::size_t i = 0; i < rm_sweeps.size(); ++i) {
            bool star = rm_bounds[i].transitionBatch &&
                *rm_bounds[i].transitionBatch == batch;
            row.push_back(strprintf(
                "%.3f%s", rm_sweeps[i].at(batch).metrics.ilNs / 1e6,
                star ? " *" : ""));
        }
        rm_table.addRow(row);
    }
    std::fputs(csv ? rm_table.renderCsv().c_str()
                   : rm_table.render().c_str(),
               stdout);
    std::puts("");

    // ---- GCN: full-graph inference across platforms ----
    workload::GcnConfig gcn = workload::gcnProducts();
    TextTable gcn_table(strprintf(
        "%s full-graph inference (%ld nodes, %ld edges)",
        gcn.name.c_str(), gcn.numNodes, gcn.numEdges));
    gcn_table.setHeader({"Platform", "Latency (ms)", "GPU idle %",
                         "Kernels"});
    for (const auto &platform : hw::platforms::paperTrio()) {
        analysis::SweepResult sweep = analysis::runCustomSweep(
            gcn.name, platform,
            [&](int batch) {
                return workload::buildGcnGraph(gcn, batch);
            },
            {1});
        const auto &m = sweep.at(1).metrics;
        gcn_table.addRow({platform.name,
                          strprintf("%.2f", m.ilNs / 1e6),
                          strprintf("%.0f",
                                    100.0 * m.gpuIdleNs / m.ilNs),
                          std::to_string(m.numKernels)});
    }
    std::fputs(csv ? gcn_table.renderCsv().c_str()
                   : gcn_table.render().c_str(),
               stdout);

    std::puts("\nKey takeaway: the two future-work workloads bracket "
              "the LLM quartet - DLRM needs tens of thousands of "
              "samples per batch before any GPU saturates (kernel "
              "launch minimization dominates; LC CPUs win small "
              "batches by an even wider margin), while GCN inference "
              "is bandwidth-bound immediately, making the CC system "
              "the unconditional winner.");
    return 0;
}
