/**
 * @file
 * Extension experiment: decode-phase characterization. The paper
 * evaluates prefill (TTFT) only; this bench extends the comparison to
 * autoregressive decoding — TTFT, mean time-per-output-token (TPOT)
 * and aggregate decode throughput per platform and batch size. Decode
 * steps launch a full kernel count for ~1/seq of the work, so the
 * launch tax dominates and the CPU gap between coupling paradigms is
 * at its widest.
 *
 * Usage: ext_generation_tpot [--model Llama-3.2-1B] [--prompt 512]
 *                            [--tokens 16] [--csv]
 */

#include <cstdio>

#include "analysis/generation.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model =
        workload::modelByName(args.getString("model", "Llama-3.2-1B"));
    int prompt = static_cast<int>(args.getInt("prompt", 512));
    int tokens = static_cast<int>(args.getInt("tokens", 16));

    TextTable table(strprintf(
        "Decode-phase extension: %s, prompt=%d, %d generated tokens",
        model.name.c_str(), prompt, tokens));
    table.setHeader({"Platform", "Batch", "TTFT (ms)", "TPOT (ms)",
                     "tok/s", "E2E (ms)"});

    for (const auto &platform : hw::platforms::paperTrio()) {
        for (int batch : {1, 8, 32}) {
            analysis::GenerationConfig config;
            config.batch = batch;
            config.promptLen = prompt;
            config.genTokens = tokens;
            analysis::GenerationResult result =
                analysis::simulateGeneration(model, platform, config);
            table.addRow({platform.name, std::to_string(batch),
                          strprintf("%.2f", result.ttftNs / 1e6),
                          strprintf("%.3f", result.tpotNs() / 1e6),
                          strprintf("%.0f",
                                    result.tokensPerSecond(batch)),
                          strprintf("%.2f", result.totalNs / 1e6)});
        }
    }
    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::puts("\nKey takeaway: TPOT is launch-dominated, so the Grace "
              "CPU's single-thread deficit shows up almost undiluted in "
              "per-token latency, while batchable decode throughput "
              "still favours the high-bandwidth CC system - the "
              "paper's prefill conclusions sharpen further in the "
              "decode phase.");
    return 0;
}
