/**
 * @file
 * Extension experiment: KV-cache tiering over the coupled
 * interconnect. The paper's coupled-vs-PCIe comparison prices the
 * CPU-GPU link for weights and activations; this bench asks what the
 * link generation buys when the *KV cache* spills to host memory under
 * HBM pressure, and what a disaggregated prefill/decode split pays in
 * KV handoffs across the same link.
 *
 * Grid 1 (kv_offload scenario): offload policy x interconnect. Every
 * cell is the same squeezed fleet (0.6 GiB HBM per replica, returning
 * chat sessions with 80% prefix reuse); only the policy and the link
 * change:
 *
 *  - policies: never (tiering off — every page-out is an eviction and
 *    every returning session re-prefills), static-watermark (async
 *    pre-page at 90% occupancy), lru-by-session, prefix-aware.
 *  - links: NVLink-C2C 450 GB/s / 300 ns (GH200's coupled link),
 *    PCIe Gen5 64 GB/s / 700 ns, PCIe Gen4 32 GB/s / 800 ns.
 *
 * Grid 2 (disagg scenario): pool ratio. A fixed 4-replica fleet split
 * prefill:decode 0:4 (co-located baseline), 1:3, 2:2, 3:1 — every
 * admitted request pays one prefix handoff over the link, so the ratio
 * trades prefill parallelism against decode capacity.
 *
 * Every cell is built through scenario::buildScenario — the same code
 * path as `skipctl run --scenario kv_offload` — so the bench doubles
 * as an end-to-end exercise of the tiering subsystem.
 *
 * Usage: ext_kv_offload [--jobs N] [--seed S] [--quick] [--csv]
 *                       [--out report.json]
 *
 * --quick shrinks the horizon for CI smoke runs; --out writes the
 * full grid as JSON (the CI artifact BENCH_kv_offload.json). Reports
 * are a pure function of the seed: byte-identical at any --jobs count.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "exec/pool.hh"
#include "json/value.hh"
#include "json/writer.hh"
#include "scenario/registry.hh"

using namespace skipsim;

namespace
{

struct Link
{
    const char *name;
    double bwGBs;
    double latencyNs;
};

struct OffloadCell
{
    std::string policy;
    Link link;
    cluster::ClusterSpec spec;
    cluster::ClusterResult result;
};

struct DisaggCell
{
    int prefill;
    int decode;
    cluster::ClusterSpec spec;
    cluster::ClusterResult result;
};

json::Value
resultToJson(const cluster::ClusterResult &r)
{
    json::Object doc;
    doc.set("offered", static_cast<double>(r.offered));
    doc.set("completed", static_cast<double>(r.completed));
    doc.set("goodput-rps", r.goodputRps);
    doc.set("p50-ttft-ms", r.p50TtftNs / 1e6);
    doc.set("p99-ttft-ms", r.p99TtftNs / 1e6);
    doc.set("p99-e2e-ms", r.p99E2eNs / 1e6);
    doc.set("slo-attainment", r.sloAttainment);
    doc.set("kv-offloads", static_cast<double>(r.kv.offloads));
    doc.set("kv-fetches", static_cast<double>(r.kv.fetches));
    doc.set("kv-evictions", static_cast<double>(r.kv.evictions));
    doc.set("kv-handoffs", static_cast<double>(r.kv.handoffs));
    doc.set("kv-link-busy-ms", r.kv.linkBusyNs / 1e6);
    return json::Value(std::move(doc));
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    RunFlags flags = parseRunFlags(args, /*defaultJobs=*/0);
    double horizon = flags.quick ? 2.5 : 10.0;

    const std::vector<std::string> policies = {
        "never", "static-watermark", "lru-by-session", "prefix-aware"};
    const std::vector<Link> links = {
        {"NVLink-C2C", 450.0, 300.0},
        {"PCIe-Gen5", 64.0, 700.0},
        {"PCIe-Gen4", 32.0, 800.0},
    };

    // Grid 1: policy x interconnect on the squeezed kv_offload fleet.
    std::vector<OffloadCell> offload;
    for (const std::string &policy : policies)
        for (const Link &link : links) {
            OffloadCell cell;
            cell.policy = policy;
            cell.link = link;
            json::Object params;
            params.set("horizon-sec", horizon);
            params.set("seed",
                       static_cast<double>(flags.seed));
            // The quick horizon retains too few sessions to pressure
            // the default 0.6 GiB budget; squeeze HBM so the policies
            // still diverge inside the CI smoke run.
            if (flags.quick)
                params.set("hbm-gib", 0.42);
            params.set("policy", policy);
            params.set("link-bw-gbs", link.bwGBs);
            params.set("link-latency-ns", link.latencyNs);
            cell.spec = scenario::buildScenario("kv_offload", params);
            offload.push_back(std::move(cell));
        }

    // Grid 2: pool ratio on a fixed 4-replica disagg fleet. The link
    // stays at the platform default (GH200 C2C): the axis is how the
    // fleet is split, not how it is wired.
    std::vector<DisaggCell> disagg;
    for (int prefill : {0, 1, 2, 3}) {
        DisaggCell cell;
        cell.prefill = prefill;
        cell.decode = 4 - prefill;
        json::Object params;
        params.set("horizon-sec", horizon);
        params.set("seed", static_cast<double>(flags.seed));
        params.set("prefill-replicas", cell.prefill);
        params.set("decode-replicas", cell.decode);
        cell.spec = scenario::buildScenario("disagg", params);
        disagg.push_back(std::move(cell));
    }

    // Every cell runs GPT2 on (renamed) GH200 hardware, so one cost
    // cache serves both grids: link and HBM overrides change the
    // tiering physics, not the per-iteration compute costs.
    cluster::CostCache costs;
    costs.build(offload.front().spec);

    exec::Pool pool(flags.jobs);
    pool.run(offload.size() + disagg.size(), [&](std::size_t i) {
        if (i < offload.size())
            offload[i].result = cluster::simulateCluster(
                offload[i].spec.scenarioAt(0), costs);
        else
            disagg[i - offload.size()].result =
                cluster::simulateCluster(
                    disagg[i - offload.size()].spec.scenarioAt(0),
                    costs);
    });

    const cluster::ClusterSpec &ref = offload.front().spec;
    TextTable table(strprintf(
        "KV offload policy x interconnect: %s x%zu, %.1f GiB HBM "
        "(horizon %.1fs, seed %llu)",
        ref.model.name.c_str(), ref.replicas.size(),
        ref.replicas.front().platform.gpu.hbmCapacityGiB, horizon,
        static_cast<unsigned long long>(flags.seed)));
    table.setHeader({"Policy", "Link", "BW (GB/s)", "Offloads",
                     "Fetches", "Evict", "Link busy (ms)",
                     "TTFT p99 (ms)", "e2e p99 (ms)",
                     "Goodput (rps)"});
    for (const OffloadCell &cell : offload)
        table.addRow(
            {cell.policy, cell.link.name,
             strprintf("%.0f", cell.link.bwGBs),
             std::to_string(cell.result.kv.offloads),
             std::to_string(cell.result.kv.fetches),
             std::to_string(cell.result.kv.evictions),
             strprintf("%.2f", cell.result.kv.linkBusyNs / 1e6),
             strprintf("%.1f", cell.result.p99TtftNs / 1e6),
             strprintf("%.1f", cell.result.p99E2eNs / 1e6),
             strprintf("%.1f", cell.result.goodputRps)});
    std::fputs(flags.csv ? table.renderCsv().c_str()
                         : table.render().c_str(),
               stdout);
    std::puts("");

    TextTable ratio_table(strprintf(
        "Disaggregated pool ratio: 4 replicas, prefill:decode split "
        "(rate %.0f rps, horizon %.1fs)",
        disagg.front().spec.arrivalRatePerSec, horizon));
    ratio_table.setHeader({"Prefill", "Decode", "Handoffs",
                           "Handoff (MiB)", "TTFT p99 (ms)",
                           "e2e p99 (ms)", "SLO %", "Goodput (rps)"});
    for (const DisaggCell &cell : disagg)
        ratio_table.addRow(
            {std::to_string(cell.prefill),
             std::to_string(cell.decode),
             std::to_string(cell.result.kv.handoffs),
             strprintf("%.1f",
                       cell.result.kv.handoffBytes / (1024.0 * 1024.0)),
             strprintf("%.1f", cell.result.p99TtftNs / 1e6),
             strprintf("%.1f", cell.result.p99E2eNs / 1e6),
             strprintf("%.1f", 100.0 * cell.result.sloAttainment),
             strprintf("%.1f", cell.result.goodputRps)});
    std::fputs(flags.csv ? ratio_table.renderCsv().c_str()
                         : ratio_table.render().c_str(),
               stdout);

    if (flags.wantOut()) {
        json::Object doc;
        doc.set("horizon-sec", horizon);
        doc.set("seed", static_cast<double>(flags.seed));
        json::Value::Array grid;
        for (const OffloadCell &cell : offload) {
            json::Object row;
            row.set("policy", cell.policy);
            row.set("link", cell.link.name);
            row.set("link-bw-gbs", cell.link.bwGBs);
            row.set("link-latency-ns", cell.link.latencyNs);
            row.set("result", resultToJson(cell.result));
            grid.push_back(json::Value(std::move(row)));
        }
        doc.set("offload", json::Value(std::move(grid)));
        json::Value::Array ratios;
        for (const DisaggCell &cell : disagg) {
            json::Object row;
            row.set("prefill-replicas",
                    static_cast<double>(cell.prefill));
            row.set("decode-replicas",
                    static_cast<double>(cell.decode));
            row.set("result", resultToJson(cell.result));
            ratios.push_back(json::Value(std::move(row)));
        }
        doc.set("disagg", json::Value(std::move(ratios)));
        json::writeFile(flags.out, json::Value(std::move(doc)));
    }

    std::puts("\nKey takeaway: under HBM pressure the interconnect "
              "generation is a tail-latency knob, not a bandwidth "
              "spec. With tiering off every page-out is an eviction "
              "and returning sessions re-prefill from scratch on any "
              "link; turn tiering on and the coupled C2C link absorbs "
              "the offload/fetch traffic that PCIe turns into "
              "synchronous prefill stalls. The policies differ in who "
              "pays: prefix-aware pages zero-reuse prefixes out first, "
              "moving more bytes overall but keeping proven reusers "
              "HBM-resident. In the disaggregated split, every "
              "admitted request ships its prefix over the link once; "
              "the pool ratio decides whether prefill or decode is "
              "the bottleneck at a fixed fleet size.");
    return 0;
}
