/**
 * @file
 * Extension experiment: sequence-length sensitivity. The paper fixes
 * the prompt at 512 tokens; this bench sweeps 128..4096 at BS=1 and
 * shows how the CPU-bound region collapses as the prompt grows — long
 * prompts are "free batch" for the GPU while the launch count stays
 * constant, so GH200's crossover moves toward BS=1 and, past a prompt
 * length, even a single request is GPU-bound everywhere.
 *
 * The 18 (seqLen, platform) profiles fan out on the skipsim::exec
 * engine; --jobs N prints serial vs parallel wall-clock.
 *
 * Usage: ext_seqlen_sensitivity [--model Bert-Base-Uncased] [--jobs N]
 *                               [--csv]
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "exec/grid.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

/** The two numbers each grid point contributes to the table. */
struct CellResult
{
    double ttftMs = 0.0;
    double gpuIdlePct = 0.0;
    bool closelyCoupled = false;
};

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model = workload::modelByName(
        args.getString("model", "Bert-Base-Uncased"));
    RunFlags flags = parseRunFlags(args);
    int jobs = flags.jobs;

    std::vector<int> seqs{128, 256, 512, 1024, 2048, 4096};
    std::vector<hw::Platform> platforms = hw::platforms::paperTrio();

    exec::SweepSpec grid;
    grid.models = {model};
    grid.platforms = platforms;
    grid.seqLens = seqs;

    auto cell = [](const exec::RunSpec &spec) {
        skip::ProfileResult run = skip::profile(spec.profileConfig());
        CellResult result;
        result.ttftMs = run.ttftNs() / 1e6;
        result.gpuIdlePct =
            100.0 * run.metrics.gpuIdleNs / run.metrics.ilNs;
        result.closelyCoupled =
            spec.platform().coupling == hw::Coupling::CloselyCoupled;
        return result;
    };

    double serial_start = nowMs();
    std::vector<CellResult> cells = exec::runGrid(grid, cell, 1);
    double serial_ms = nowMs() - serial_start;

    if (jobs != 1) {
        double parallel_start = nowMs();
        cells = exec::runGrid(grid, cell, jobs);
        double parallel_ms = nowMs() - parallel_start;
        std::printf("grid: %zu profiles, serial %.0f ms, parallel "
                    "(--jobs %d) %.0f ms, speedup %.2fx\n\n",
                    grid.size(), serial_ms, jobs,
                    parallel_ms > 0.0 ? parallel_ms : 1.0,
                    parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    }

    TextTable table(strprintf(
        "%s prefill TTFT (ms) at BS=1 vs prompt length "
        "[GPU idle %% on GH200]", model.name.c_str()));
    table.setHeader({"Seq", "AMD+A100", "Intel+H100", "GH200",
                     "GH200 GPU idle %"});

    // Grid order: platform varies slower than seqLen (mode fastest).
    for (std::size_t si = 0; si < seqs.size(); ++si) {
        std::vector<std::string> row{std::to_string(seqs[si])};
        double gh_idle = 0.0;
        for (std::size_t pi = 0; pi < platforms.size(); ++pi) {
            const CellResult &c = cells[pi * seqs.size() + si];
            row.push_back(strprintf("%.2f", c.ttftMs));
            if (c.closelyCoupled)
                gh_idle = c.gpuIdlePct;
        }
        row.push_back(strprintf("%.0f", gh_idle));
        table.addRow(row);
    }
    std::fputs(flags.csv ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::puts("\nKey takeaway: sequence length plays the same role as "
              "batch size for GPU saturation but leaves the kernel "
              "count (and so the launch tax) untouched - long-prompt "
              "workloads (RAG contexts) are GPU-bound even at BS=1, "
              "erasing the LC systems' low-batch advantage.");
    return 0;
}
