/**
 * @file
 * Extension experiment: sequence-length sensitivity. The paper fixes
 * the prompt at 512 tokens; this bench sweeps 128..4096 at BS=1 and
 * shows how the CPU-bound region collapses as the prompt grows — long
 * prompts are "free batch" for the GPU while the launch count stays
 * constant, so GH200's crossover moves toward BS=1 and, past a prompt
 * length, even a single request is GPU-bound everywhere.
 *
 * Usage: ext_seqlen_sensitivity [--model Bert-Base-Uncased] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model = workload::modelByName(
        args.getString("model", "Bert-Base-Uncased"));

    TextTable table(strprintf(
        "%s prefill TTFT (ms) at BS=1 vs prompt length "
        "[GPU idle %% on GH200]", model.name.c_str()));
    table.setHeader({"Seq", "AMD+A100", "Intel+H100", "GH200",
                     "GH200 GPU idle %"});

    for (int seq : {128, 256, 512, 1024, 2048, 4096}) {
        std::vector<std::string> row{std::to_string(seq)};
        double gh_idle = 0.0;
        for (const auto &platform : hw::platforms::paperTrio()) {
            skip::ProfileResult run =
                skip::profilePrefill(model, platform, 1, seq);
            row.push_back(strprintf("%.2f", run.ttftNs() / 1e6));
            if (platform.coupling == hw::Coupling::CloselyCoupled) {
                gh_idle = 100.0 * run.metrics.gpuIdleNs /
                    run.metrics.ilNs;
            }
        }
        row.push_back(strprintf("%.0f", gh_idle));
        table.addRow(row);
    }
    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::puts("\nKey takeaway: sequence length plays the same role as "
              "batch size for GPU saturation but leaves the kernel "
              "count (and so the launch tax) untouched - long-prompt "
              "workloads (RAG contexts) are GPU-bound even at BS=1, "
              "erasing the LC systems' low-batch advantage.");
    return 0;
}
