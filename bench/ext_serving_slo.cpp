/**
 * @file
 * Extension experiment: request-level serving comparison. The paper's
 * per-batch characterization says LC systems win small batches and
 * GH200 wins large ones; this bench closes the loop at the serving
 * level — Poisson arrivals into a dynamic-batching server — and shows
 * where each platform's p99 TTFT stays inside a 200 ms SLO (the
 * interactive budget the paper cites) as offered load rises.
 *
 * Usage: ext_serving_slo [--model Llama-3.2-1B] [--seq 512]
 *                        [--slo-ms 200] [--max-batch 32] [--csv]
 */

#include <cstdio>

#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "serving/server_sim.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model =
        workload::modelByName(args.getString("model", "Llama-3.2-1B"));
    int seq = static_cast<int>(args.getInt("seq", 512));
    double slo_ms = args.getDouble("slo-ms", 200.0);
    int max_batch = static_cast<int>(args.getInt("max-batch", 32));

    // Per-platform latency models from full batch sweeps.
    std::vector<serving::LatencyModel> models;
    for (const auto &platform : hw::platforms::paperTrio()) {
        models.emplace_back(analysis::runBatchSweep(
            model, platform, analysis::defaultBatchGrid(), seq));
    }

    TextTable table(strprintf(
        "Serving %s (seq=%d, dynamic batching, max batch %d, "
        "5 ms max wait): p99 TTFT (ms) vs offered load",
        model.name.c_str(), seq, max_batch));
    table.setHeader({"Load (rps)", "AMD+A100", "Intel+H100", "GH200",
                     strprintf("within %.0fms SLO", slo_ms)});

    for (double rate : {5.0, 20.0, 50.0, 100.0, 200.0, 400.0, 800.0}) {
        std::vector<std::string> row{strprintf("%.0f", rate)};
        std::string within;
        for (std::size_t i = 0; i < models.size(); ++i) {
            serving::ServingConfig config;
            config.arrivalRatePerSec = rate;
            config.horizonSec = 30.0;
            config.maxBatch = max_batch;
            config.maxWaitNs = 5e6;
            serving::ServingResult result =
                serving::simulateServing(models[i], config);
            bool overloaded = result.leftInQueue >
                result.completed / 10;
            row.push_back(overloaded
                              ? "overload"
                              : strprintf("%.1f",
                                          result.p99LatencyNs / 1e6));
            if (!overloaded && result.p99LatencyNs / 1e6 <= slo_ms) {
                if (!within.empty())
                    within += ", ";
                within += models[i].platformName();
            }
        }
        row.push_back(within.empty() ? "-" : within);
        table.addRow(row);
    }
    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::puts("\nKey takeaway: at light interactive load the LC "
              "systems' lower small-batch latency carries the SLO; as "
              "load pushes batches toward the GPU-bound region, GH200 "
              "is the platform that keeps p99 inside budget the "
              "longest - the serving-level mirror of the paper's "
              "crossover points.");
    return 0;
}
