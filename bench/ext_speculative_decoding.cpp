/**
 * @file
 * Extension experiment: speculative decoding vs coupling paradigm.
 * Draft steps are launch-dominated micro-forwards, so the speedup a
 * draft model can deliver is gated by CPU dispatch speed — the same
 * bottleneck the paper identifies for GH200 at low batch. Reports
 * effective TPOT speedup per platform across draft lengths k.
 *
 * Usage: ext_speculative_decoding [--draft TinyLlama-1.1B]
 *        [--target Llama-2-7B] [--accept 0.7] [--context 512] [--csv]
 */

#include <cstdio>

#include "analysis/speculative.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig draft = workload::modelByName(
        args.getString("draft", "TinyLlama-1.1B"));
    workload::ModelConfig target = workload::modelByName(
        args.getString("target", "Llama-2-7B"));
    double accept = args.getDouble("accept", 0.7);
    int context = static_cast<int>(args.getInt("context", 512));

    for (auto mode : {workload::ExecMode::Eager,
                      workload::ExecMode::CompileReduceOverhead}) {
        TextTable table(strprintf(
            "Speculative decoding (%s): %s drafting for %s "
            "(accept %.2f, context %d) - TPOT speedup vs plain "
            "decoding",
            workload::execModeName(mode), draft.name.c_str(),
            target.name.c_str(), accept, context));
        table.setHeader({"Platform", "baseline TPOT (ms)", "k=2",
                         "k=4", "k=8"});

        for (const auto &platform : hw::platforms::paperTrio()) {
            std::vector<std::string> row{platform.name};
            double baseline = 0.0;
            for (int k : {2, 4, 8}) {
                analysis::SpeculativeConfig config;
                config.draft = draft;
                config.target = target;
                config.k = k;
                config.acceptRate = accept;
                config.contextLen = context;
                config.mode = mode;
                analysis::SpeculativeResult result =
                    analysis::evaluateSpeculative(platform, config);
                baseline = result.baselineTpotNs;
                if (row.size() == 1)
                    row.push_back(strprintf("%.2f", baseline / 1e6));
                row.push_back(strprintf("%.2fx", result.speedup));
            }
            table.addRow(row);
        }
        std::fputs(args.has("csv") ? table.renderCsv().c_str()
                                   : table.render().c_str(),
                   stdout);
        std::puts("");
    }

    std::puts("Key takeaway: speculation multiplies small launches - "
              "k draft forwards per verified batch - so its payoff is "
              "largest where CPU dispatch is fast and shrinks on the "
              "Grace CPU; on CC systems, kernel-launch optimization "
              "(the paper's fusion recommendation) is a prerequisite "
              "for speculative decoding to pay off.");
    return 0;
}
