/**
 * @file
 * Extension experiment: tensor parallelism vs the coupling paradigms.
 * Sharding GEMMs across TP ranks shrinks per-rank GPU time but every
 * rank still dispatches the full operator stream plus collectives —
 * so TP pushes workloads back toward CPU-boundedness, amplifying the
 * paper's Grace-CPU bottleneck exactly where multi-GPU serving wants
 * to operate. Reports per-rank TTFT and the GPU-idle share for TP
 * degrees 1..8.
 *
 * Usage: ext_tensor_parallel [--model Llama-3.2-1B] [--seq 512] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "workload/builder.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model =
        workload::modelByName(args.getString("model", "Llama-3.2-1B"));
    int seq = static_cast<int>(args.getInt("seq", 512));

    for (int batch : {1, 16}) {
        TextTable table(strprintf(
            "%s prefill TTFT (ms) [GPU idle %%] vs tensor-parallel "
            "degree, BS=%d, seq=%d",
            model.name.c_str(), batch, seq));
        table.setHeader({"TP", "AMD+A100", "Intel+H100 (PCIe P2P)",
                         "GH200 (NVLink)"});

        for (int tp : {1, 2, 4, 8}) {
            workload::BuildOptions opts;
            opts.batch = batch;
            opts.seqLen = seq;
            opts.tensorParallel = tp;
            workload::OperatorGraph graph =
                workload::buildPrefillGraph(model, opts);

            std::vector<std::string> row{std::to_string(tp)};
            for (const auto &platform : hw::platforms::paperTrio()) {
                sim::Simulator simulator(platform);
                sim::SimResult result = simulator.run(graph);
                skip::MetricsReport metrics = skip::computeMetrics(
                    skip::DependencyGraph::build(
                        std::move(result.trace)));
                row.push_back(strprintf(
                    "%.2f [%.0f%%]", metrics.ilNs / 1e6,
                    100.0 * metrics.gpuIdleNs / metrics.ilNs));
            }
            table.addRow(row);
        }
        std::fputs(args.has("csv") ? table.renderCsv().c_str()
                                   : table.render().c_str(),
                   stdout);
        std::puts("");
    }

    std::puts("Key takeaway: TP shrinks GPU time per rank but not the "
              "dispatch stream, so every added rank pushes the workload "
              "deeper into the CPU-bound region - TP=8 at BS=1 is "
              "launch-bound everywhere, and the PCIe-peer LC system "
              "additionally pays 9x more for each all-reduce than the "
              "NVLink-fabric CC system.");
    return 0;
}
