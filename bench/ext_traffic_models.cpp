/**
 * @file
 * Extension experiment: production-shaped traffic models. The paper's
 * serving experiments (and the original skipsim cluster bench) drive
 * the fleet with constant-rate Poisson arrivals, but production load is
 * diurnal, bursty, conversational, and multi-tenant. This bench runs
 * the scenario registry's traffic models against one shared deployment
 * so the table isolates what the *arrival process* — not the cluster —
 * does to tail latency and SLO attainment:
 *
 *  - steady-poisson: the legacy baseline (mean rate 60/s).
 *  - mmpp-diurnal:   trough/shoulder/peak cycle, same 60/s mean.
 *  - chat-sessions:  multi-turn conversations with prefix-cache reuse
 *                    and session-affinity routing (60/s mean).
 *  - multi-tenant:   premium/standard/batch tiers, per-tenant SLOs
 *                    (60/s aggregate), with a per-tier breakdown table.
 *
 * Every row is built through scenario::buildScenario — the same code
 * path as `skipctl run --scenario NAME` — so the bench doubles as an
 * end-to-end exercise of the registry.
 *
 * Usage: ext_traffic_models [--jobs N] [--seed S] [--quick] [--csv]
 *
 * --quick shrinks the horizon for CI smoke runs. Reports are a pure
 * function of the seed: byte-identical at any --jobs count.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "exec/pool.hh"
#include "json/value.hh"
#include "scenario/registry.hh"

using namespace skipsim;

namespace
{

struct Row
{
    std::string name;
    cluster::ClusterSpec spec;
    cluster::ClusterResult result;
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    RunFlags flags = parseRunFlags(args, /*defaultJobs=*/0);
    double horizon = flags.quick ? 3.0 : 12.0;

    // One parameter document shared by every scenario: same fleet, same
    // workload, same seed — only the arrival process differs.
    json::Object params;
    params.set("horizon-sec", horizon);
    params.set("seed", static_cast<unsigned long long>(flags.seed));

    std::vector<Row> rows;
    for (const char *name : {"steady-poisson", "mmpp-diurnal",
                             "chat-sessions", "multi-tenant"}) {
        Row row;
        row.name = name;
        row.spec = scenario::buildScenario(name, params);
        rows.push_back(std::move(row));
    }

    // All scenarios share GPT2 on GH200, so one cost cache serves the
    // whole grid.
    cluster::CostCache costs;
    costs.build(rows.front().spec);

    exec::Pool pool(flags.jobs);
    pool.run(rows.size(), [&](std::size_t i) {
        rows[i].result =
            cluster::simulateCluster(rows[i].spec.scenarioAt(0), costs);
    });

    TextTable table(strprintf(
        "Traffic models on one deployment: %s x%zu on %s "
        "(horizon %.0fs, seed %llu)",
        rows.front().spec.model.name.c_str(),
        rows.front().spec.replicas.size(),
        rows.front().spec.replicas.front().platform.name.c_str(),
        horizon,
        static_cast<unsigned long long>(flags.seed)));
    table.setHeader({"Scenario", "Traffic", "Rate (rps)", "Offered",
                     "Done", "TTFT p50 (ms)", "TTFT p99 (ms)",
                     "e2e p99 (ms)", "SLO %", "Goodput (rps)"});
    for (const Row &row : rows)
        table.addRow(
            {row.name, row.spec.traffic->kind(),
             strprintf("%.0f", row.result.arrivalRatePerSec),
             std::to_string(row.result.offered),
             std::to_string(row.result.completed),
             strprintf("%.1f", row.result.p50TtftNs / 1e6),
             strprintf("%.1f", row.result.p99TtftNs / 1e6),
             strprintf("%.1f", row.result.p99E2eNs / 1e6),
             strprintf("%.1f", 100.0 * row.result.sloAttainment),
             strprintf("%.1f", row.result.goodputRps)});
    std::fputs(flags.csv ? table.renderCsv().c_str()
                         : table.render().c_str(),
               stdout);
    std::puts("");

    // Per-tier breakdown of the multi-tenant run: same fleet, three SLO
    // contracts, one attainment number per contract.
    const Row &tenants = rows.back();
    TextTable tier_table("Multi-tenant breakdown (per-tier SLOs)");
    tier_table.setHeader({"Tenant", "Offered", "Done", "SLO %",
                          "Goodput (rps)", "TTFT p99 (ms)",
                          "e2e p99 (ms)"});
    for (const cluster::TenantStats &tier : tenants.result.tenants)
        tier_table.addRow(
            {tier.name, std::to_string(tier.offered),
             std::to_string(tier.completed),
             strprintf("%.1f", 100.0 * tier.sloAttainment),
             strprintf("%.1f", tier.goodputRps),
             strprintf("%.1f", tier.p99TtftNs / 1e6),
             strprintf("%.1f", tier.p99E2eNs / 1e6)});
    std::fputs(flags.csv ? tier_table.renderCsv().c_str()
                         : tier_table.render().c_str(),
               stdout);

    std::puts("\nKey takeaway: at the same mean rate, the arrival "
              "process is the tail. The MMPP peak state queues the "
              "fleet that steady Poisson never stresses, so p99 TTFT "
              "degrades at identical offered load; chat sessions claw "
              "the tail back because prefix-cache hits skip most "
              "prefill compute on follow-up turns; and multi-tenant "
              "accounting shows one shared fleet meeting three "
              "different SLO contracts at three different attainment "
              "levels.");
    return 0;
}
