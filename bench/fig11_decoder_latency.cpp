/**
 * @file
 * Regenerates paper Fig. 11 (a-c): prefill inference latency, GPU idle
 * time and CPU idle time vs batch size for the decoder models (GPT2,
 * Llama-3.2-1B) on the three platforms, with crossover points and the
 * headline Llama speedups of Sec. V-D.
 *
 * Usage: fig11_decoder_latency [--seq 512] [--batches ...] [--csv]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/compare.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

void
reportModel(const workload::ModelConfig &model, int seq,
            const std::vector<int> &batches, bool csv)
{
    std::vector<analysis::SweepResult> sweeps;
    for (const auto &platform : hw::platforms::paperTrio())
        sweeps.push_back(
            analysis::runBatchSweep(model, platform, batches, seq));

    struct Panel
    {
        const char *title;
        double skip::MetricsReport::*field;
    };
    const Panel panels[] = {
        {"(a) inference time (ms)", &skip::MetricsReport::ilNs},
        {"(b) GPU idle time (ms)", &skip::MetricsReport::gpuIdleNs},
        {"(c) CPU idle time (ms)", &skip::MetricsReport::cpuIdleNs},
    };

    for (const auto &panel : panels) {
        TextTable table(strprintf("%s - %s, seq=%d", model.name.c_str(),
                                  panel.title, seq));
        table.setHeader({"Batch", "AMD+A100", "Intel+H100", "GH200"});
        for (int batch : batches) {
            std::vector<std::string> row{std::to_string(batch)};
            for (const auto &sweep : sweeps) {
                row.push_back(strprintf(
                    "%.2f",
                    sweep.at(batch).metrics.*(panel.field) / 1e6));
            }
            table.addRow(row);
        }
        std::fputs(csv ? table.renderCsv().c_str()
                       : table.render().c_str(),
                   stdout);
        std::puts("");
    }

    auto cp_intel = analysis::findCrossover(sweeps[2], sweeps[1]);
    std::printf("  crossover point (GH200 vs Intel+H100): %s\n",
                cp_intel.crossoverPoint
                    ? ("BS=" +
                       std::to_string(*cp_intel.crossoverPoint)).c_str()
                    : (cp_intel.firstWinBatch ? "<= smallest batch"
                                              : "none"));
    for (const auto &sweep : sweeps) {
        auto spot = analysis::findSweetSpot(sweep);
        std::printf("  %-11s balanced utilization region: BS=[%d, %d]\n",
                    sweep.platformName.c_str(), spot.minBatch,
                    spot.maxBatch);
    }
    if (sweeps[0].at(16).metrics.ilNs > 0.0) {
        std::printf("  GH200 speedup at BS=16: %.2fx vs Intel+H100, "
                    "%.2fx vs AMD+A100\n",
                    analysis::speedupAt(sweeps[2], sweeps[1], 16),
                    analysis::speedupAt(sweeps[2], sweeps[0], 16));
    }
    std::puts("");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    std::vector<int> batches;
    for (long b : args.getIntList("batches",
                                  {1, 2, 4, 8, 16, 32, 64, 128}))
        batches.push_back(static_cast<int>(b));

    reportModel(workload::gpt2(), seq, batches, args.has("csv"));
    reportModel(workload::llama32_1b(), seq, batches, args.has("csv"));

    std::puts("Key takeaway: GPT2 crosses over around BS=4; "
              "Llama-3.2-1B is GPU-heavy enough that GH200 is "
              "competitive from BS~1 and reaches ~1.9x/2.7x over "
              "Intel+H100/AMD+A100 by BS=16, matching the paper.");
    return 0;
}
