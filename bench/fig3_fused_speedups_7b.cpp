/**
 * @file
 * Regenerates paper Fig. 3: TTFT speedups of FlashAttention-2 and
 * torch.compile max-autotune over eager execution for popular 7B
 * decoder models (BS=1, seq=1024) on Intel+H100.
 *
 * Usage: fig3_fused_speedups_7b [--seq 1024] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 1024));
    hw::Platform intel = hw::platforms::intelH100();

    TextTable table(strprintf(
        "Fig. 3: TTFT speedups vs eager (7B decoders, BS=1, seq=%d, "
        "Intel+H100)", seq));
    table.setHeader({"Model", "Eager TTFT (ms)", "FlashAttention-2",
                     "Max-autotune"});

    for (const auto &model : workload::sevenBSet()) {
        double eager =
            skip::profilePrefill(model, intel, 1, seq).ttftNs();
        double fa2 = skip::profilePrefill(
            model, intel, 1, seq,
            workload::ExecMode::FlashAttention2).ttftNs();
        double ma = skip::profilePrefill(
            model, intel, 1, seq,
            workload::ExecMode::CompileMaxAutotune).ttftNs();
        table.addRow({model.name,
                      strprintf("%.2f", eager / 1e6),
                      strprintf("%.2fx", eager / fa2),
                      strprintf("%.2fx", eager / ma)});
    }

    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);
    std::puts("\nKey takeaway: at 7B scale both domain-specific fusion "
              "(FlashAttention-2) and whole-graph synthesis "
              "(max-autotune) deliver ~1.2-1.6x TTFT over eager; the "
              "paper's Fig. 3 reports the same band.");
    return 0;
}
