/**
 * @file
 * Regenerates paper Fig. 6: TKLQT vs batch size for the encoder models
 * (Bert-Base-Uncased, XLM-Roberta-Base) on the three platforms, with
 * the star-marker inflection batch where each workload transitions
 * from CPU-bound (launch-dominated) to GPU-bound (queue-dominated).
 *
 * The six (model, platform) sweeps are independent, so they fan out
 * on the skipsim::exec engine; with --jobs > 1 the grid runs serially
 * and in parallel and reports both wall-clock times (the results are
 * byte-identical by construction).
 *
 * Usage: fig6_tklqt_boundedness [--seq 512] [--batches 1,2,...]
 *                               [--jobs N] [--csv]
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "exec/grid.hh"
#include "hw/catalog.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

/** One (model, platform) grid point's outcome. */
struct CellResult
{
    analysis::SweepResult sweep;
    analysis::BoundednessResult bound;
};

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    RunFlags flags = parseRunFlags(args);
    int jobs = flags.jobs;
    std::vector<int> batches;
    for (long b : args.getIntList("batches",
                                  {1, 2, 4, 8, 16, 32, 64, 128}))
        batches.push_back(static_cast<int>(b));

    std::vector<workload::ModelConfig> models{
        workload::bertBaseUncased(), workload::xlmRobertaBase()};
    std::vector<hw::Platform> platforms = hw::platforms::paperTrio();

    exec::SweepSpec grid;
    grid.models = models;
    grid.platforms = platforms;
    grid.seqLens = {seq};

    auto cell = [&batches](const exec::RunSpec &spec) {
        CellResult result;
        result.sweep = analysis::runBatchSweep(
            spec.model(), spec.platform(), batches, spec.seqLen(),
            spec.mode(), spec.simOptions());
        result.bound = analysis::classifyBoundedness(result.sweep);
        return result;
    };

    double serial_start = nowMs();
    std::vector<CellResult> cells = exec::runGrid(grid, cell, 1);
    double serial_ms = nowMs() - serial_start;

    if (jobs != 1) {
        double parallel_start = nowMs();
        cells = exec::runGrid(grid, cell, jobs);
        double parallel_ms = nowMs() - parallel_start;
        std::printf("grid: %zu sweeps, serial %.0f ms, parallel "
                    "(--jobs %d) %.0f ms, speedup %.2fx\n\n",
                    grid.size(), serial_ms, jobs,
                    parallel_ms > 0.0 ? parallel_ms : 1.0,
                    parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    }

    for (std::size_t mi = 0; mi < models.size(); ++mi) {
        const auto &model = models[mi];
        TextTable table(strprintf(
            "Fig. 6: TKLQT (ms) vs batch size, %s forward pass, seq=%d "
            "('*' marks the CPU->GPU-bound transition)",
            model.name.c_str(), seq));
        table.setHeader({"Batch", "AMD+A100", "Intel+H100", "GH200"});

        // Grid order: model varies slowest, platform fastest.
        const CellResult *row_cells = &cells[mi * platforms.size()];

        for (int batch : batches) {
            std::vector<std::string> row{std::to_string(batch)};
            for (std::size_t pi = 0; pi < platforms.size(); ++pi) {
                const CellResult &c = row_cells[pi];
                bool star = c.bound.transitionBatch &&
                    *c.bound.transitionBatch == batch;
                row.push_back(strprintf(
                    "%.3f%s", c.sweep.at(batch).metrics.tklqtNs / 1e6,
                    star ? " *" : ""));
            }
            table.addRow(row);
        }
        std::fputs(flags.csv ? table.renderCsv().c_str()
                                   : table.render().c_str(),
                   stdout);

        for (std::size_t pi = 0; pi < platforms.size(); ++pi) {
            const CellResult &c = row_cells[pi];
            std::printf("  %-11s transition at BS=%s (plateau %.3f ms)\n",
                        c.sweep.platformName.c_str(),
                        c.bound.transitionBatch
                            ? std::to_string(
                                  *c.bound.transitionBatch).c_str()
                            : "none",
                        c.bound.plateauTklqtNs / 1e6);
        }
        std::puts("");
    }

    std::puts("Key takeaway: encoder workloads transition at ~BS=8 on "
              "the LC systems but only at ~BS=32 on GH200 - a 4x wider "
              "CPU-bound region, created by the GH200's higher-bandwidth "
              "HBM finishing each batch inside the shadow of CPU "
              "dispatch.");
    return 0;
}
