/**
 * @file
 * Regenerates paper Fig. 6: TKLQT vs batch size for the encoder models
 * (Bert-Base-Uncased, XLM-Roberta-Base) on the three platforms, with
 * the star-marker inflection batch where each workload transitions
 * from CPU-bound (launch-dominated) to GPU-bound (queue-dominated).
 *
 * Usage: fig6_tklqt_boundedness [--seq 512] [--batches 1,2,...] [--csv]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    std::vector<int> batches;
    for (long b : args.getIntList("batches",
                                  {1, 2, 4, 8, 16, 32, 64, 128}))
        batches.push_back(static_cast<int>(b));

    for (const auto &model :
         {workload::bertBaseUncased(), workload::xlmRobertaBase()}) {
        TextTable table(strprintf(
            "Fig. 6: TKLQT (ms) vs batch size, %s forward pass, seq=%d "
            "('*' marks the CPU->GPU-bound transition)",
            model.name.c_str(), seq));
        table.setHeader({"Batch", "AMD+A100", "Intel+H100", "GH200"});

        std::vector<analysis::SweepResult> sweeps;
        std::vector<analysis::BoundednessResult> bounds;
        for (const auto &platform : hw::platforms::paperTrio()) {
            sweeps.push_back(analysis::runBatchSweep(model, platform,
                                                     batches, seq));
            bounds.push_back(analysis::classifyBoundedness(sweeps.back()));
        }

        for (int batch : batches) {
            std::vector<std::string> row{std::to_string(batch)};
            for (std::size_t i = 0; i < sweeps.size(); ++i) {
                bool star = bounds[i].transitionBatch &&
                    *bounds[i].transitionBatch == batch;
                row.push_back(strprintf(
                    "%.3f%s",
                    sweeps[i].at(batch).metrics.tklqtNs / 1e6,
                    star ? " *" : ""));
            }
            table.addRow(row);
        }
        std::fputs(args.has("csv") ? table.renderCsv().c_str()
                                   : table.render().c_str(),
                   stdout);

        for (std::size_t i = 0; i < sweeps.size(); ++i) {
            std::printf("  %-11s transition at BS=%s (plateau %.3f ms)\n",
                        sweeps[i].platformName.c_str(),
                        bounds[i].transitionBatch
                            ? std::to_string(
                                  *bounds[i].transitionBatch).c_str()
                            : "none",
                        bounds[i].plateauTklqtNs / 1e6);
        }
        std::puts("");
    }

    std::puts("Key takeaway: encoder workloads transition at ~BS=8 on "
              "the LC systems but only at ~BS=32 on GH200 - a 4x wider "
              "CPU-bound region, created by the GH200's higher-bandwidth "
              "HBM finishing each batch inside the shadow of CPU "
              "dispatch.");
    return 0;
}
