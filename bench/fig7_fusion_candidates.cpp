/**
 * @file
 * Regenerates paper Fig. 7 (a-d): the scalable kernel-fusion
 * recommendation metrics from SKIP during prefill on Intel+H100 —
 * unique fusion chains, total instances, kernels fused with PS=1, and
 * eager-mode kernel launches (K_eager) across batch sizes and chain
 * lengths, for GPT2 and XLM-Roberta-Base.
 *
 * Usage: fig7_fusion_candidates [--seq 512] [--batches 1,2,4,8,16,32]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fusion/proximity.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

void
reportModel(const workload::ModelConfig &model, int seq,
            const std::vector<int> &batches, bool csv)
{
    hw::Platform intel = hw::platforms::intelH100();
    auto lengths = fusion::defaultChainLengths();

    // Mine every (batch, length) cell once.
    std::vector<std::vector<fusion::ChainStats>> cells;
    std::vector<std::size_t> k_eager;
    for (int batch : batches) {
        skip::ProfileResult run =
            skip::profilePrefill(model, intel, batch, seq);
        fusion::ProximityAnalyzer analyzer(
            fusion::kernelSequenceFromTrace(run.trace));
        k_eager.push_back(analyzer.sequenceLength());
        std::vector<fusion::ChainStats> row;
        for (std::size_t length : lengths)
            row.push_back(analyzer.analyze(length));
        cells.push_back(std::move(row));
    }

    auto heatmap = [&](const char *title,
                       std::size_t (fusion::ChainStats::*field)) {
        TextTable table(strprintf("Fig. 7: %s - %s (rows: batch, "
                                  "cols: chain length)",
                                  model.name.c_str(), title));
        std::vector<std::string> header{"Batch"};
        for (std::size_t length : lengths)
            header.push_back("L=" + std::to_string(length));
        table.setHeader(header);
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            std::vector<std::string> row{std::to_string(batches[bi])};
            for (std::size_t li = 0; li < lengths.size(); ++li)
                row.push_back(
                    std::to_string(cells[bi][li].*field));
            table.addRow(row);
        }
        std::fputs(csv ? table.renderCsv().c_str()
                       : table.render().c_str(),
                   stdout);
        std::puts("");
    };

    heatmap("(a) unique fusion chains detected",
            &fusion::ChainStats::uniqueChains);
    heatmap("(b) total instances of detected chains",
            &fusion::ChainStats::totalInstances);
    heatmap("(c) kernels fused with proximity score = 1",
            &fusion::ChainStats::kernelsFused);

    TextTable keager(strprintf(
        "Fig. 7: %s - (d) eager-mode kernel launches K_eager",
        model.name.c_str()));
    keager.setHeader({"Batch", "K_eager"});
    for (std::size_t bi = 0; bi < batches.size(); ++bi)
        keager.addRow({std::to_string(batches[bi]),
                       std::to_string(k_eager[bi])});
    std::fputs(csv ? keager.renderCsv().c_str()
                   : keager.render().c_str(),
               stdout);
    std::puts("");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    std::vector<int> batches;
    for (long b : args.getIntList("batches", {1, 2, 4, 8, 16, 32}))
        batches.push_back(static_cast<int>(b));

    reportModel(workload::gpt2(), seq, batches, args.has("csv"));
    reportModel(workload::xlmRobertaBase(), seq, batches,
                args.has("csv"));

    std::puts("Key takeaway: short chains are plentiful but mostly "
              "non-deterministic; as L grows the unique-chain count "
              "stabilizes while instances shrink, and only a few "
              "non-overlapping deterministic (PS=1) chains survive - "
              "yet those few long chains fuse the most kernels.");
    return 0;
}
