/**
 * @file
 * Regenerates paper Fig. 8: idealized prefill speedup from pure
 * kernel-launch savings (Eqs. 7-8) vs fusion chain length for GPT2
 * and XLM-Roberta-Base on Intel+H100.
 *
 * Usage: fig8_ideal_speedup [--seq 512] [--batch 1] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    int batch = static_cast<int>(args.getInt("batch", 1));
    hw::Platform intel = hw::platforms::intelH100();

    workload::ModelConfig models[] = {workload::gpt2(),
                                      workload::xlmRobertaBase()};
    fusion::FusionReport reports[2];
    for (int i = 0; i < 2; ++i) {
        skip::ProfileResult run =
            skip::profilePrefill(models[i], intel, batch, seq);
        reports[i] = fusion::recommendFromTrace(run.trace);
    }

    TextTable table(strprintf(
        "Fig. 8: idealized fusion speedup vs chain length (prefill, "
        "BS=%d, seq=%d, Intel+H100)", batch, seq));
    table.setHeader({"Chain length", "GPT2", "XLM-Roberta-Base"});
    for (std::size_t li = 0; li < reports[0].byLength.size(); ++li) {
        table.addRow({std::to_string(reports[0].byLength[li].length),
                      strprintf("%.2fx",
                                reports[0].byLength[li].idealSpeedup),
                      strprintf("%.2fx",
                                reports[1].byLength[li].idealSpeedup)});
    }
    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::printf("\nK_eager: GPT2 = %zu, XLM-Roberta-Base = %zu\n",
                reports[0].kEager, reports[1].kEager);
    std::puts("Key takeaway: short chains give 1.0-1.2x; the long "
              "prologue-anchored deterministic chain at L=256 yields "
              "up to ~2.7x (GPT2) and ~6.8x (XLM-R) purely from "
              "launch-count savings, matching the paper's maxima.");
    return 0;
}
