/**
 * @file
 * Regenerates paper Fig. 8: idealized prefill speedup from pure
 * kernel-launch savings (Eqs. 7-8) vs fusion chain length for GPT2
 * and XLM-Roberta-Base on Intel+H100. The two profiling runs fan out
 * on the skipsim::exec engine (--jobs N prints serial vs parallel
 * wall-clock; the reports are byte-identical either way).
 *
 * Usage: fig8_ideal_speedup [--seq 512] [--batch 1] [--jobs N] [--csv]
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "exec/grid.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    int batch = static_cast<int>(args.getInt("batch", 1));
    RunFlags flags = parseRunFlags(args);
    int jobs = flags.jobs;

    exec::SweepSpec grid;
    grid.models = {workload::gpt2(), workload::xlmRobertaBase()};
    grid.platforms = {hw::platforms::intelH100()};
    grid.batches = {batch};
    grid.seqLens = {seq};

    auto mine = [](const exec::RunSpec &spec) {
        skip::ProfileResult run = skip::profile(spec.profileConfig());
        return fusion::recommendFromTrace(run.trace);
    };

    double serial_start = nowMs();
    std::vector<fusion::FusionReport> reports =
        exec::runGrid(grid, mine, 1);
    double serial_ms = nowMs() - serial_start;

    if (jobs != 1) {
        double parallel_start = nowMs();
        reports = exec::runGrid(grid, mine, jobs);
        double parallel_ms = nowMs() - parallel_start;
        std::printf("grid: %zu profiles, serial %.0f ms, parallel "
                    "(--jobs %d) %.0f ms, speedup %.2fx\n\n",
                    grid.size(), serial_ms, jobs,
                    parallel_ms > 0.0 ? parallel_ms : 1.0,
                    parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    }

    TextTable table(strprintf(
        "Fig. 8: idealized fusion speedup vs chain length (prefill, "
        "BS=%d, seq=%d, Intel+H100)", batch, seq));
    table.setHeader({"Chain length", "GPT2", "XLM-Roberta-Base"});
    for (std::size_t li = 0; li < reports[0].byLength.size(); ++li) {
        table.addRow({std::to_string(reports[0].byLength[li].length),
                      strprintf("%.2fx",
                                reports[0].byLength[li].idealSpeedup),
                      strprintf("%.2fx",
                                reports[1].byLength[li].idealSpeedup)});
    }
    std::fputs(flags.csv ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::printf("\nK_eager: GPT2 = %zu, XLM-Roberta-Base = %zu\n",
                reports[0].kEager, reports[1].kEager);
    std::puts("Key takeaway: short chains give 1.0-1.2x; the long "
              "prologue-anchored deterministic chain at L=256 yields "
              "up to ~2.7x (GPT2) and ~6.8x (XLM-R) purely from "
              "launch-count savings, matching the paper's maxima.");
    return 0;
}
