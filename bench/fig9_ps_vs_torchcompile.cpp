/**
 * @file
 * Regenerates paper Fig. 9: idealized proximity-score fusion speedups
 * per chain length (blue bars) against the measured torch.compile
 * reduce-overhead speedup (orange bar) for GPT-2 prefill, BS=1, on
 * Intel+H100, all relative to eager execution.
 *
 * Usage: fig9_ps_vs_torchcompile [--seq 512] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));
    hw::Platform intel = hw::platforms::intelH100();
    workload::ModelConfig model = workload::gpt2();

    skip::ProfileResult eager =
        skip::profilePrefill(model, intel, 1, seq);
    skip::ProfileResult ro = skip::profilePrefill(
        model, intel, 1, seq,
        workload::ExecMode::CompileReduceOverhead);
    double tc_speedup = eager.ttftNs() / ro.ttftNs();

    fusion::FusionReport report =
        fusion::recommendFromTrace(eager.trace);

    TextTable table(strprintf(
        "Fig. 9: GPT-2 prefill BS=1 seq=%d on Intel+H100, speedups vs "
        "eager", seq));
    table.setHeader({"Strategy", "Speedup"});
    for (const auto &stats : report.byLength) {
        table.addRow({strprintf("PS fusion, L=%zu", stats.length),
                      strprintf("%.2fx", stats.idealSpeedup)});
    }
    table.addRow({"torch.compile (reduce-overhead)",
                  strprintf("%.2fx", tc_speedup)});
    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    double best = report.best().idealSpeedup;
    std::printf("\nBest PS fusion (L=%zu): %.2fx = %.2fx over "
                "torch.compile reduce-overhead (paper: ~1.3x)\n",
                report.best().length, best, best / tc_speedup);
    std::puts("Key takeaway: in the CPU-bound region, deterministic "
              "long-chain fusion can beat CUDA-graph capture on pure "
              "launch savings, without graph-capture rigidity.");
    return 0;
}
