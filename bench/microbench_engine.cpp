/**
 * @file
 * google-benchmark microbenchmarks of the library itself: graph
 * building, simulation, dependency-graph construction, metric
 * computation and chain mining — plus ablations of the design choices
 * called out in DESIGN.md (jitter on/off, greedy chain selection cost
 * vs chain length).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "check/invariants.hh"
#include "cluster/cluster.hh"
#include "common/random.hh"
#include "core/any_queue.hh"
#include "core/engine.hh"
#include "core/event_queue.hh"
#include "core/mpsc_queue.hh"
#include "core/sharded_engine.hh"
#include "fusion/proximity.hh"
#include "hw/catalog.hh"
#include "obs/span.hh"
#include "sim/simulator.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "workload/builder.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

workload::OperatorGraph
gpt2Graph(int batch)
{
    workload::BuildOptions opts;
    opts.batch = batch;
    return workload::buildPrefillGraph(workload::gpt2(), opts);
}

void
BM_BuildPrefillGraph(benchmark::State &state)
{
    workload::BuildOptions opts;
    opts.batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto graph =
            workload::buildPrefillGraph(workload::llama32_1b(), opts);
        benchmark::DoNotOptimize(graph.numKernelLaunches());
    }
}
BENCHMARK(BM_BuildPrefillGraph)->Arg(1)->Arg(16);

void
BM_SimulateForward(benchmark::State &state)
{
    auto graph = gpt2Graph(static_cast<int>(state.range(0)));
    sim::Simulator simulator(hw::platforms::gh200());
    for (auto _ : state) {
        auto result = simulator.run(graph);
        benchmark::DoNotOptimize(result.wallNs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(graph.numKernelLaunches()));
}
BENCHMARK(BM_SimulateForward)->Arg(1)->Arg(32);

void
BM_SimulateNoJitterAblation(benchmark::State &state)
{
    // Ablation: deterministic mode (jitter off, the default) vs jittered.
    auto graph = gpt2Graph(1);
    sim::SimOptions opts;
    opts.jitter = state.range(0) != 0;
    sim::Simulator simulator(hw::platforms::intelH100(), opts);
    for (auto _ : state) {
        auto result = simulator.run(graph);
        benchmark::DoNotOptimize(result.wallNs);
    }
}
BENCHMARK(BM_SimulateNoJitterAblation)->Arg(0)->Arg(1);

void
BM_DependencyGraphBuild(benchmark::State &state)
{
    auto graph = gpt2Graph(1);
    sim::Simulator simulator(hw::platforms::intelH100());
    auto result = simulator.run(graph);
    for (auto _ : state) {
        auto dep = skip::DependencyGraph::build(result.trace);
        benchmark::DoNotOptimize(dep.kernels().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(result.trace.size()));
}
BENCHMARK(BM_DependencyGraphBuild);

void
BM_ComputeMetrics(benchmark::State &state)
{
    auto graph = gpt2Graph(1);
    sim::Simulator simulator(hw::platforms::intelH100());
    auto result = simulator.run(graph);
    auto dep = skip::DependencyGraph::build(result.trace);
    for (auto _ : state) {
        auto metrics = skip::computeMetrics(dep);
        benchmark::DoNotOptimize(metrics.tklqtNs);
    }
}
BENCHMARK(BM_ComputeMetrics);

void
BM_ChainMining(benchmark::State &state)
{
    auto graph = gpt2Graph(1);
    fusion::ProximityAnalyzer analyzer(graph.kernelSequence());
    std::size_t length = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto stats = analyzer.analyze(length);
        benchmark::DoNotOptimize(stats.idealSpeedup);
    }
}
BENCHMARK(BM_ChainMining)->Arg(2)->Arg(16)->Arg(256);

void
BM_EndToEndProfile(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = gpt2Graph(4);
        sim::Simulator simulator(hw::platforms::gh200());
        auto result = simulator.run(graph);
        auto dep = skip::DependencyGraph::build(std::move(result.trace));
        auto metrics = skip::computeMetrics(dep);
        benchmark::DoNotOptimize(metrics.ilNs);
    }
}
BENCHMARK(BM_EndToEndProfile);

void
BM_ValidateTrace(benchmark::State &state)
{
    // Cost of the full semantic invariant sweep (causality, stream
    // FIFO, correlation bijection, queue depth) over a real prefill
    // trace — the price every golden test and fuzz case now pays.
    auto graph = gpt2Graph(static_cast<int>(state.range(0)));
    sim::Simulator simulator(hw::platforms::gh200());
    auto result = simulator.run(graph);
    for (auto _ : state) {
        auto report = check::validateTrace(result.trace);
        benchmark::DoNotOptimize(report.violations.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(result.trace.size()));
}
BENCHMARK(BM_ValidateTrace)->Arg(1)->Arg(32);

void
BM_EventQueueThroughput(benchmark::State &state)
{
    // Throughput of the core event queue every simulation path now
    // runs on: push N events with random timestamps and mixed
    // priorities, then drain. Timestamps are pre-generated so the
    // measurement is the heap, not the PRNG.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Rng rng(42);
    std::vector<double> times(n);
    std::vector<int> prios(n);
    for (std::size_t i = 0; i < n; ++i) {
        times[i] = rng.uniform(0.0, 1e9);
        prios[i] = static_cast<int>(rng.below(4));
    }
    for (auto _ : state) {
        core::EventQueue queue;
        for (std::size_t i = 0; i < n; ++i)
            queue.schedule(times[i], prios[i], nullptr);
        while (!queue.empty()) {
            core::Event ev = queue.pop();
            benchmark::DoNotOptimize(ev.timeNs);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueThroughput)
    ->Arg(1 << 14)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMillisecond);

void
BM_CalendarVsHeap(benchmark::State &state)
{
    // The same push/drain workload as BM_EventQueueThroughput run
    // through AnyQueue so both backends pay the identical dispatch:
    // Arg(0) = binary heap, Arg(1) = calendar queue. The comparison
    // is the point — the calendar's O(1) amortized ops only win once
    // the pending set is large and time-ordered-ish, which is exactly
    // the shape of a serving/cluster run.
    const bool calendar = state.range(0) != 0;
    const std::size_t n = 1 << 17;
    Rng rng(42);
    std::vector<double> times(n);
    std::vector<int> prios(n);
    for (std::size_t i = 0; i < n; ++i) {
        times[i] = rng.uniform(0.0, 1e9);
        prios[i] = static_cast<int>(rng.below(4));
    }
    for (auto _ : state) {
        core::AnyQueue queue(calendar ? core::QueueKind::Calendar
                                      : core::QueueKind::Heap);
        for (std::size_t i = 0; i < n; ++i)
            queue.schedule(times[i], prios[i], nullptr);
        while (!queue.empty()) {
            core::Event ev = queue.pop();
            benchmark::DoNotOptimize(ev.timeNs);
        }
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_CalendarVsHeap)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_MailboxThroughput(benchmark::State &state)
{
    // Cross-shard mailbox hot path: Arg producers blast sequenced
    // messages through one bounded MPSC ring while the consumer
    // drains, the exact traffic shape of a parallel window's
    // cross-shard posts. Throughput here bounds how fast threaded
    // shard execution can communicate.
    const std::size_t producers =
        static_cast<std::size_t>(state.range(0));
    const std::size_t per_producer = 1 << 14;
    for (auto _ : state) {
        core::MpscQueue<std::uint64_t> queue(1024);
        std::atomic<bool> go{false};
        std::vector<std::thread> threads;
        threads.reserve(producers);
        for (std::size_t p = 0; p < producers; ++p)
            threads.emplace_back([&queue, &go, p] {
                while (!go.load(std::memory_order_acquire))
                    std::this_thread::yield();
                for (std::size_t i = 0; i < per_producer; ++i) {
                    std::uint64_t v = (p << 32) | i;
                    while (!queue.tryPush(std::move(v)))
                        std::this_thread::yield();
                }
            });
        go.store(true, std::memory_order_release);
        std::size_t drained = 0;
        const std::size_t total = producers * per_producer;
        std::uint64_t out = 0;
        while (drained < total) {
            if (queue.tryPop(out)) {
                benchmark::DoNotOptimize(out);
                ++drained;
            }
        }
        for (std::thread &t : threads)
            t.join();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(producers * per_producer));
}
BENCHMARK(BM_MailboxThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_ShardedMerge(benchmark::State &state)
{
    // Deterministic K-way merge throughput of the sharded engine on
    // the same 1M-event workload as BM_EventQueueThroughput: events
    // land round-robin on the shard queues and the run loop pays the
    // argmin scan plus window bookkeeping per event. Arg = shard
    // count; the Arg(1) row is the single-queue baseline the merge
    // overhead is judged against.
    const std::size_t shards = static_cast<std::size_t>(state.range(0));
    const std::size_t n = 1 << 20;
    Rng rng(42);
    std::vector<double> times(n);
    std::vector<int> prios(n);
    for (std::size_t i = 0; i < n; ++i) {
        times[i] = rng.uniform(0.0, 1e9);
        prios[i] = static_cast<int>(rng.below(4));
    }
    for (auto _ : state) {
        core::ShardedEngine engine(shards);
        for (std::size_t i = 0; i < n; ++i)
            engine.shard(i % shards).at(times[i], prios[i], nullptr);
        benchmark::DoNotOptimize(engine.run());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ShardedMerge)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_EngineEventChurn(benchmark::State &state)
{
    // Engine run-loop overhead under self-rescheduling handlers — the
    // access pattern of the ported serving/cluster engines (each
    // iteration-end event schedules the next).
    const int n = static_cast<int>(state.range(0));
    for (auto _ : state) {
        core::Engine engine;
        int remaining = n;
        std::function<void(double)> step = [&](double) {
            if (--remaining > 0)
                engine.after(1.0, 0, step);
        };
        engine.at(0.0, 0, step);
        engine.run();
        benchmark::DoNotOptimize(engine.processed());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_EngineEventChurn)->Arg(1 << 16);

void
BM_ClusterSpanOverhead(benchmark::State &state)
{
    // Cost of per-request lifecycle span recording (obs::SpanLog) on
    // a full cluster simulation: Arg(0) = spans disabled (the price
    // every plain run pays, which must stay ~free), Arg(1) = spans
    // recorded and sealed. CI compares the two rows to bound the
    // disabled-path overhead.
    cluster::ClusterSpec spec;
    spec.model = workload::modelByName("GPT2");
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::gh200();
    replica.maxActive = 16;
    spec.replicas.assign(2, replica);
    spec.arrivalRatePerSec = 80.0;
    spec.horizonSec = 2.0;
    spec.promptLen = 128;
    spec.genTokens = 8;
    spec.sessions = 16;
    cluster::CostCache costs;
    costs.build(spec);
    const bool with_spans = state.range(0) != 0;
    std::size_t sealed = 0;
    for (auto _ : state) {
        obs::SpanLog spans;
        auto result = cluster::simulateCluster(
            spec, costs, nullptr, with_spans ? &spans : nullptr);
        benchmark::DoNotOptimize(result.completed);
        sealed = spans.spans().size();
        benchmark::DoNotOptimize(sealed);
    }
    state.counters["spans"] = static_cast<double>(sealed);
}
BENCHMARK(BM_ClusterSpanOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

// google-benchmark rejects flags it does not recognize, so a custom
// main translates the repo-wide --quick convention (see the ext_*
// drivers) into a filter + short measurement budget for CI: just the
// event-queue and span-overhead rows, enough to catch gross
// regressions.
int
main(int argc, char **argv)
{
    std::vector<char *> args;
    bool quick = false;
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0)
            quick = true;
        else
            args.push_back(argv[i]);
    }
    static std::string filter =
        "--benchmark_filter=BM_EventQueueThroughput|"
        "BM_CalendarVsHeap|BM_MailboxThroughput|"
        "BM_ShardedMerge|BM_ClusterSpanOverhead";
    static std::string min_time = "--benchmark_min_time=0.05";
    if (quick) {
        args.push_back(filter.data());
        args.push_back(min_time.data());
    }
    int count = static_cast<int>(args.size());
    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
