/**
 * @file
 * google-benchmark microbenchmarks of the library itself: graph
 * building, simulation, dependency-graph construction, metric
 * computation and chain mining — plus ablations of the design choices
 * called out in DESIGN.md (jitter on/off, greedy chain selection cost
 * vs chain length).
 */

#include <benchmark/benchmark.h>

#include "fusion/proximity.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "workload/builder.hh"

using namespace skipsim;

namespace
{

workload::OperatorGraph
gpt2Graph(int batch)
{
    workload::BuildOptions opts;
    opts.batch = batch;
    return workload::buildPrefillGraph(workload::gpt2(), opts);
}

void
BM_BuildPrefillGraph(benchmark::State &state)
{
    workload::BuildOptions opts;
    opts.batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        auto graph =
            workload::buildPrefillGraph(workload::llama32_1b(), opts);
        benchmark::DoNotOptimize(graph.numKernelLaunches());
    }
}
BENCHMARK(BM_BuildPrefillGraph)->Arg(1)->Arg(16);

void
BM_SimulateForward(benchmark::State &state)
{
    auto graph = gpt2Graph(static_cast<int>(state.range(0)));
    sim::Simulator simulator(hw::platforms::gh200());
    for (auto _ : state) {
        auto result = simulator.run(graph);
        benchmark::DoNotOptimize(result.wallNs);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(graph.numKernelLaunches()));
}
BENCHMARK(BM_SimulateForward)->Arg(1)->Arg(32);

void
BM_SimulateNoJitterAblation(benchmark::State &state)
{
    // Ablation: deterministic mode (jitter off, the default) vs jittered.
    auto graph = gpt2Graph(1);
    sim::SimOptions opts;
    opts.jitter = state.range(0) != 0;
    sim::Simulator simulator(hw::platforms::intelH100(), opts);
    for (auto _ : state) {
        auto result = simulator.run(graph);
        benchmark::DoNotOptimize(result.wallNs);
    }
}
BENCHMARK(BM_SimulateNoJitterAblation)->Arg(0)->Arg(1);

void
BM_DependencyGraphBuild(benchmark::State &state)
{
    auto graph = gpt2Graph(1);
    sim::Simulator simulator(hw::platforms::intelH100());
    auto result = simulator.run(graph);
    for (auto _ : state) {
        auto dep = skip::DependencyGraph::build(result.trace);
        benchmark::DoNotOptimize(dep.kernels().size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(result.trace.size()));
}
BENCHMARK(BM_DependencyGraphBuild);

void
BM_ComputeMetrics(benchmark::State &state)
{
    auto graph = gpt2Graph(1);
    sim::Simulator simulator(hw::platforms::intelH100());
    auto result = simulator.run(graph);
    auto dep = skip::DependencyGraph::build(result.trace);
    for (auto _ : state) {
        auto metrics = skip::computeMetrics(dep);
        benchmark::DoNotOptimize(metrics.tklqtNs);
    }
}
BENCHMARK(BM_ComputeMetrics);

void
BM_ChainMining(benchmark::State &state)
{
    auto graph = gpt2Graph(1);
    fusion::ProximityAnalyzer analyzer(graph.kernelSequence());
    std::size_t length = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto stats = analyzer.analyze(length);
        benchmark::DoNotOptimize(stats.idealSpeedup);
    }
}
BENCHMARK(BM_ChainMining)->Arg(2)->Arg(16)->Arg(256);

void
BM_EndToEndProfile(benchmark::State &state)
{
    for (auto _ : state) {
        auto graph = gpt2Graph(4);
        sim::Simulator simulator(hw::platforms::gh200());
        auto result = simulator.run(graph);
        auto dep = skip::DependencyGraph::build(std::move(result.trace));
        auto metrics = skip::computeMetrics(dep);
        benchmark::DoNotOptimize(metrics.ilNs);
    }
}
BENCHMARK(BM_EndToEndProfile);

} // namespace

BENCHMARK_MAIN();
