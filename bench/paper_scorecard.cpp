/**
 * @file
 * Paper scorecard: runs a compact version of every reproduced claim
 * and prints paper-vs-measured with a verdict per row — the one-screen
 * summary of the whole reproduction. Exit code is nonzero if any row
 * falls outside its tolerance band, so CI can gate on it.
 *
 * Usage: paper_scorecard [--csv]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/compare.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "skip/profile.hh"
#include "stats/summary.hh"
#include "workload/builder.hh"
#include "workload/compile_model.hh"

using namespace skipsim;

namespace
{

struct Row
{
    std::string claim;
    std::string paper;
    std::string measured;
    bool pass;
};

std::vector<Row> rows;

void
check(const std::string &claim, const std::string &paper,
      const std::string &measured, bool pass)
{
    rows.push_back({claim, paper, measured, pass});
}

void
checkRatio(const std::string &claim, double paper_value,
           double measured, double lo, double hi)
{
    check(claim, strprintf("%.2f", paper_value),
          strprintf("%.2f", measured), measured >= lo && measured <= hi);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);

    // ---- Table V ----
    for (const auto &[name, launch, dur] :
         {std::tuple<const char *, double, double>{"AMD+A100", 2260.5,
                                                   1440.0},
          {"Intel+H100", 2374.6, 1235.2},
          {"GH200", 2771.6, 1171.2}}) {
        hw::Platform platform = hw::platforms::byName(name);
        sim::Simulator simulator(platform);
        skip::DependencyGraph dep = skip::DependencyGraph::build(
            simulator.run(workload::buildNullKernelGraph(1000)).trace);
        stats::Summary s;
        for (const auto &link : dep.computeKernelsOnly())
            s.add(static_cast<double>(link.launchToStartNs));
        check(strprintf("Table V %s launch overhead (ns)", name),
              strprintf("%.1f", launch), strprintf("%.1f", s.mean()),
              std::abs(s.mean() - launch) < 0.03 * launch);
        (void)dur;
    }

    // ---- Fig 6: encoder transitions ----
    auto grid = analysis::defaultBatchGrid();
    analysis::SweepResult intel_bert = analysis::runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::intelH100(), grid);
    analysis::SweepResult amd_bert = analysis::runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::amdA100(), grid);
    analysis::SweepResult gh_bert = analysis::runBatchSweep(
        workload::bertBaseUncased(), hw::platforms::gh200(), grid);
    auto intel_tr = analysis::classifyBoundedness(intel_bert);
    auto gh_tr = analysis::classifyBoundedness(gh_bert);
    int lc = intel_tr.transitionBatch.value_or(-1);
    int cc = gh_tr.transitionBatch.value_or(-1);
    check("Fig 6 encoder transition LC (batch)", "~8",
          std::to_string(lc), lc == 8);
    check("Fig 6 encoder transition GH200 (batch)", "~32",
          std::to_string(cc), cc == 32);
    check("Fig 6 GH200 4x more CPU-bound", "4x",
          strprintf("%dx", lc > 0 ? cc / lc : -1),
          lc > 0 && cc / lc == 4);

    // ---- Fig 10: encoder ratios ----
    checkRatio("Fig 10 BERT BS=64 speedup vs Intel", 1.6,
               analysis::speedupAt(gh_bert, intel_bert, 64), 1.4, 2.4);
    checkRatio("Fig 10 BERT BS=64 speedup vs AMD", 2.4,
               analysis::speedupAt(gh_bert, amd_bert, 64), 2.0, 3.0);
    checkRatio("Fig 10 BERT BS=1 slowdown vs Intel", 2.8,
               1.0 / analysis::speedupAt(gh_bert, intel_bert, 1), 2.2,
               3.2);
    checkRatio("Fig 10 BERT BS=1 slowdown vs AMD", 1.9,
               1.0 / analysis::speedupAt(gh_bert, amd_bert, 1), 1.5,
               2.2);

    // ---- Fig 11: Llama ratios ----
    analysis::SweepResult intel_llama = analysis::runBatchSweep(
        workload::llama32_1b(), hw::platforms::intelH100(), grid);
    analysis::SweepResult amd_llama = analysis::runBatchSweep(
        workload::llama32_1b(), hw::platforms::amdA100(), grid);
    analysis::SweepResult gh_llama = analysis::runBatchSweep(
        workload::llama32_1b(), hw::platforms::gh200(), grid);
    checkRatio("Fig 11 Llama BS=16 speedup vs Intel", 1.9,
               analysis::speedupAt(gh_llama, intel_llama, 16), 1.5,
               2.3);
    checkRatio("Fig 11 Llama BS=16 speedup vs AMD", 2.7,
               analysis::speedupAt(gh_llama, amd_llama, 16), 2.2, 3.2);
    checkRatio("Fig 11 Llama BS=1 'similar latency'", 1.0,
               gh_llama.at(1).metrics.ilNs /
                   intel_llama.at(1).metrics.ilNs,
               0.8, 1.6);

    // ---- Fig 8: fusion maxima ----
    skip::ProfileResult gpt2_run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::intelH100(), 1);
    fusion::FusionReport gpt2_fusion =
        fusion::recommendFromTrace(gpt2_run.trace);
    checkRatio("Fig 8 GPT2 ideal speedup @ L=256", 2.7,
               gpt2_fusion.byLength.back().idealSpeedup, 2.65, 2.75);

    skip::ProfileResult xlmr_run = skip::profilePrefill(
        workload::xlmRobertaBase(), hw::platforms::intelH100(), 1);
    fusion::FusionReport xlmr_fusion =
        fusion::recommendFromTrace(xlmr_run.trace);
    checkRatio("Fig 8 XLM-R ideal speedup @ L=256", 6.8,
               xlmr_fusion.byLength.back().idealSpeedup, 6.7, 6.9);

    // ---- Fig 9: PS vs torch.compile ----
    skip::ProfileResult ro_run = skip::profilePrefill(
        workload::gpt2(), hw::platforms::intelH100(), 1, 512,
        workload::ExecMode::CompileReduceOverhead);
    double tc = gpt2_run.ttftNs() / ro_run.ttftNs();
    checkRatio("Fig 9 PS@256 over torch.compile RO", 1.3,
               gpt2_fusion.byLength.back().idealSpeedup / tc, 1.05,
               1.75);

    // ---- Table I: compile times ----
    workload::BuildOptions gemma_opts;
    gemma_opts.batch = 1;
    gemma_opts.seqLen = 1024;
    workload::OperatorGraph gemma_eager =
        workload::buildPrefillGraph(workload::gemma2b(), gemma_opts);
    double ma_s = workload::compileTimeNs(
        workload::ExecMode::CompileMaxAutotune, gemma_eager, 1.0) / 1e9;
    checkRatio("Table I max-autotune compile time (s)", 387.3, ma_s,
               330.0, 450.0);

    // ---- render ----
    TextTable table("Paper reproduction scorecard");
    table.setHeader({"Claim", "Paper", "Measured", "Verdict"});
    bool all_pass = true;
    for (const auto &row : rows) {
        table.addRow({row.claim, row.paper, row.measured,
                      row.pass ? "PASS" : "DEVIATION"});
        all_pass = all_pass && row.pass;
    }
    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);
    std::printf("\n%zu/%zu claims within band\n",
                static_cast<std::size_t>(
                    std::count_if(rows.begin(), rows.end(),
                                  [](const Row &r) { return r.pass; })),
                rows.size());
    return all_pass ? 0 : 1;
}
