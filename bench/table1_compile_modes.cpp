/**
 * @file
 * Regenerates paper Table I: compilation time and TTFT speedup of
 * torch.compile modes vs eager for Gemma-2B (BS=1, seq=1024) on the
 * Intel+H100 platform.
 *
 * Usage: table1_compile_modes [--seq 1024] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/builder.hh"
#include "workload/compile_model.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 1024));

    workload::ModelConfig gemma = workload::gemma2b();
    hw::Platform intel = hw::platforms::intelH100();

    workload::BuildOptions build;
    build.batch = 1;
    build.seqLen = seq;
    workload::OperatorGraph eager_graph =
        workload::buildPrefillGraph(gemma, build);

    struct ModeRow
    {
        workload::ExecMode mode;
        const char *label;
        double paper_compile_s;
        double paper_speedup;
    };
    const ModeRow rows[] = {
        {workload::ExecMode::Eager, "Eager", 0.40644, 1.0},
        {workload::ExecMode::CompileDefault, "Default", 6.2844, 1.203},
        {workload::ExecMode::CompileReduceOverhead, "Reduce-overhead",
         12.7469, 1.2394},
        {workload::ExecMode::CompileMaxAutotune, "Max-autotune", 387.3,
         1.317},
    };

    TextTable table(strprintf(
        "Table I: torch.compile modes for Gemma-2B, BS=1, seq=%d, "
        "Intel+H100", seq));
    table.setHeader({"Compile mode", "Compile time (s)", "(paper)",
                     "TTFT (ms)", "Speedup", "(paper)"});

    double eager_ttft = 0.0;
    for (const auto &row : rows) {
        double compile_s =
            workload::compileTimeNs(row.mode, eager_graph,
                                    intel.cpu.singleThreadScore) / 1e9;
        skip::ProfileResult run =
            skip::profilePrefill(gemma, intel, 1, seq, row.mode);
        if (row.mode == workload::ExecMode::Eager)
            eager_ttft = run.ttftNs();
        table.addRow({row.label,
                      strprintf("%.4f", compile_s),
                      strprintf("%.4f", row.paper_compile_s),
                      strprintf("%.3f", run.ttftNs() / 1e6),
                      strprintf("%.4f", eager_ttft / run.ttftNs()),
                      strprintf("%.4f", row.paper_speedup)});
    }

    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);
    std::puts("\nKey takeaway: compile-time overhead climbs from ~15x "
              "(default) to ~950x (max-autotune) of the eager warmup "
              "for a modest 1.2-1.3x TTFT gain, and CUDA-graph modes "
              "cannot resize the KV cache or change batch size without "
              "recompiling.");
    return 0;
}
