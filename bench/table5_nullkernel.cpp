/**
 * @file
 * Regenerates paper Table V: cudaLaunchKernel + nullKernel launch
 * overhead and nullKernel duration across the three evaluation
 * platforms, measured through SKIP on simulated traces.
 *
 * Usage: table5_nullkernel [--launches 5000] [--csv]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "sim/simulator.hh"
#include "skip/dep_graph.hh"
#include "stats/summary.hh"
#include "workload/builder.hh"

using namespace skipsim;

namespace
{

struct PaperRow
{
    const char *platform;
    double launch;
    double duration;
};

constexpr PaperRow kPaper[] = {
    {"AMD+A100", 2260.5, 1440.0},
    {"Intel+H100", 2374.6, 1235.2},
    {"GH200", 2771.6, 1171.2},
};

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int launches = static_cast<int>(args.getInt("launches", 5000));

    TextTable table(
        "Table V: nullKernel launch overhead and duration (ns)");
    table.setHeader({"Platform", "Launch overhead", "(paper)",
                     "Duration", "(paper)"});

    for (const auto &row : kPaper) {
        hw::Platform platform = hw::platforms::byName(row.platform);
        sim::Simulator simulator(platform);
        sim::SimResult result =
            simulator.run(workload::buildNullKernelGraph(launches));
        skip::DependencyGraph dep =
            skip::DependencyGraph::build(result.trace);

        stats::Summary launch;
        stats::Summary duration;
        for (const auto &link : dep.computeKernelsOnly()) {
            launch.add(static_cast<double>(link.launchToStartNs));
            duration.add(static_cast<double>(
                dep.trace().byId(link.kernelId).durNs));
        }
        table.addRow({row.platform,
                      strprintf("%.1f", launch.mean()),
                      strprintf("%.1f", row.launch),
                      strprintf("%.1f", duration.mean()),
                      strprintf("%.1f", row.duration)});
    }

    std::fputs(args.has("csv") ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);
    std::puts("\nKey takeaway: GH200 pays the highest launch overhead "
              "(slower single-thread Grace CPU + unified virtual memory "
              "management) but executes null kernels fastest; both LC "
              "systems launch cheaper, favouring latency-sensitive "
              "low-batch work.");
    return 0;
}
