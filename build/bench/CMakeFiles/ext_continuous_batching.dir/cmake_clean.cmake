file(REMOVE_RECURSE
  "CMakeFiles/ext_continuous_batching.dir/ext_continuous_batching.cpp.o"
  "CMakeFiles/ext_continuous_batching.dir/ext_continuous_batching.cpp.o.d"
  "ext_continuous_batching"
  "ext_continuous_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_continuous_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
