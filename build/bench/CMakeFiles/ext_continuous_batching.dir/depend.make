# Empty dependencies file for ext_continuous_batching.
# This may be replaced when dependencies are built.
