file(REMOVE_RECURSE
  "CMakeFiles/ext_fusion_validation.dir/ext_fusion_validation.cpp.o"
  "CMakeFiles/ext_fusion_validation.dir/ext_fusion_validation.cpp.o.d"
  "ext_fusion_validation"
  "ext_fusion_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_fusion_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
