# Empty compiler generated dependencies file for ext_fusion_validation.
# This may be replaced when dependencies are built.
