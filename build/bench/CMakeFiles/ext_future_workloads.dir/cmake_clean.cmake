file(REMOVE_RECURSE
  "CMakeFiles/ext_future_workloads.dir/ext_future_workloads.cpp.o"
  "CMakeFiles/ext_future_workloads.dir/ext_future_workloads.cpp.o.d"
  "ext_future_workloads"
  "ext_future_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_future_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
