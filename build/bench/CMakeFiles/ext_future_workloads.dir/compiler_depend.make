# Empty compiler generated dependencies file for ext_future_workloads.
# This may be replaced when dependencies are built.
