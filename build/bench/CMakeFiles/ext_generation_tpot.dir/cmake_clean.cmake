file(REMOVE_RECURSE
  "CMakeFiles/ext_generation_tpot.dir/ext_generation_tpot.cpp.o"
  "CMakeFiles/ext_generation_tpot.dir/ext_generation_tpot.cpp.o.d"
  "ext_generation_tpot"
  "ext_generation_tpot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_generation_tpot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
