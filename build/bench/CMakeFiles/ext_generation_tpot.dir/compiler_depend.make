# Empty compiler generated dependencies file for ext_generation_tpot.
# This may be replaced when dependencies are built.
