file(REMOVE_RECURSE
  "CMakeFiles/ext_seqlen_sensitivity.dir/ext_seqlen_sensitivity.cpp.o"
  "CMakeFiles/ext_seqlen_sensitivity.dir/ext_seqlen_sensitivity.cpp.o.d"
  "ext_seqlen_sensitivity"
  "ext_seqlen_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_seqlen_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
