# Empty compiler generated dependencies file for ext_seqlen_sensitivity.
# This may be replaced when dependencies are built.
