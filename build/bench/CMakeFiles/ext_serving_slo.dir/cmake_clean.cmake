file(REMOVE_RECURSE
  "CMakeFiles/ext_serving_slo.dir/ext_serving_slo.cpp.o"
  "CMakeFiles/ext_serving_slo.dir/ext_serving_slo.cpp.o.d"
  "ext_serving_slo"
  "ext_serving_slo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_serving_slo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
