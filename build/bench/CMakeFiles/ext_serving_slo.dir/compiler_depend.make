# Empty compiler generated dependencies file for ext_serving_slo.
# This may be replaced when dependencies are built.
