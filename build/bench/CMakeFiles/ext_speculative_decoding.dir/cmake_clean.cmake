file(REMOVE_RECURSE
  "CMakeFiles/ext_speculative_decoding.dir/ext_speculative_decoding.cpp.o"
  "CMakeFiles/ext_speculative_decoding.dir/ext_speculative_decoding.cpp.o.d"
  "ext_speculative_decoding"
  "ext_speculative_decoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_speculative_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
