# Empty compiler generated dependencies file for ext_speculative_decoding.
# This may be replaced when dependencies are built.
