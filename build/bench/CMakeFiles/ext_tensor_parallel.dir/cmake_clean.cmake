file(REMOVE_RECURSE
  "CMakeFiles/ext_tensor_parallel.dir/ext_tensor_parallel.cpp.o"
  "CMakeFiles/ext_tensor_parallel.dir/ext_tensor_parallel.cpp.o.d"
  "ext_tensor_parallel"
  "ext_tensor_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_tensor_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
