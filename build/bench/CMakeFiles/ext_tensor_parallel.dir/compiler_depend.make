# Empty compiler generated dependencies file for ext_tensor_parallel.
# This may be replaced when dependencies are built.
