# Empty compiler generated dependencies file for fig10_encoder_latency.
# This may be replaced when dependencies are built.
