file(REMOVE_RECURSE
  "CMakeFiles/fig11_decoder_latency.dir/fig11_decoder_latency.cpp.o"
  "CMakeFiles/fig11_decoder_latency.dir/fig11_decoder_latency.cpp.o.d"
  "fig11_decoder_latency"
  "fig11_decoder_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_decoder_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
