# Empty compiler generated dependencies file for fig11_decoder_latency.
# This may be replaced when dependencies are built.
