file(REMOVE_RECURSE
  "CMakeFiles/fig3_fused_speedups_7b.dir/fig3_fused_speedups_7b.cpp.o"
  "CMakeFiles/fig3_fused_speedups_7b.dir/fig3_fused_speedups_7b.cpp.o.d"
  "fig3_fused_speedups_7b"
  "fig3_fused_speedups_7b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_fused_speedups_7b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
