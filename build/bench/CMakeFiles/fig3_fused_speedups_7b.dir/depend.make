# Empty dependencies file for fig3_fused_speedups_7b.
# This may be replaced when dependencies are built.
