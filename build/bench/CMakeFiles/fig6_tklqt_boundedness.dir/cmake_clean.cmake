file(REMOVE_RECURSE
  "CMakeFiles/fig6_tklqt_boundedness.dir/fig6_tklqt_boundedness.cpp.o"
  "CMakeFiles/fig6_tklqt_boundedness.dir/fig6_tklqt_boundedness.cpp.o.d"
  "fig6_tklqt_boundedness"
  "fig6_tklqt_boundedness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tklqt_boundedness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
