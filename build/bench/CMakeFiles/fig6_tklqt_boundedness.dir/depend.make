# Empty dependencies file for fig6_tklqt_boundedness.
# This may be replaced when dependencies are built.
