file(REMOVE_RECURSE
  "CMakeFiles/fig7_fusion_candidates.dir/fig7_fusion_candidates.cpp.o"
  "CMakeFiles/fig7_fusion_candidates.dir/fig7_fusion_candidates.cpp.o.d"
  "fig7_fusion_candidates"
  "fig7_fusion_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_fusion_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
