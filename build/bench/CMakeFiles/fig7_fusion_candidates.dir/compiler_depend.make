# Empty compiler generated dependencies file for fig7_fusion_candidates.
# This may be replaced when dependencies are built.
