file(REMOVE_RECURSE
  "CMakeFiles/fig9_ps_vs_torchcompile.dir/fig9_ps_vs_torchcompile.cpp.o"
  "CMakeFiles/fig9_ps_vs_torchcompile.dir/fig9_ps_vs_torchcompile.cpp.o.d"
  "fig9_ps_vs_torchcompile"
  "fig9_ps_vs_torchcompile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ps_vs_torchcompile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
