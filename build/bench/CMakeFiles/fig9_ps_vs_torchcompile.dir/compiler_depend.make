# Empty compiler generated dependencies file for fig9_ps_vs_torchcompile.
# This may be replaced when dependencies are built.
