
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/microbench_engine.cpp" "bench/CMakeFiles/microbench_engine.dir/microbench_engine.cpp.o" "gcc" "bench/CMakeFiles/microbench_engine.dir/microbench_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skipsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/skipsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/skipsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/skipsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skipsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skipsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/skipsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/skip/CMakeFiles/skipsim_skip.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/skipsim_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/skipsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/skipsim_serving.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
