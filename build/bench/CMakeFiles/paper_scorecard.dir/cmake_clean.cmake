file(REMOVE_RECURSE
  "CMakeFiles/paper_scorecard.dir/paper_scorecard.cpp.o"
  "CMakeFiles/paper_scorecard.dir/paper_scorecard.cpp.o.d"
  "paper_scorecard"
  "paper_scorecard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_scorecard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
