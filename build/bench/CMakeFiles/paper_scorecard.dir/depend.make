# Empty dependencies file for paper_scorecard.
# This may be replaced when dependencies are built.
