file(REMOVE_RECURSE
  "CMakeFiles/table1_compile_modes.dir/table1_compile_modes.cpp.o"
  "CMakeFiles/table1_compile_modes.dir/table1_compile_modes.cpp.o.d"
  "table1_compile_modes"
  "table1_compile_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_compile_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
