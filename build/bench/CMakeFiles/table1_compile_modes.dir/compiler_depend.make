# Empty compiler generated dependencies file for table1_compile_modes.
# This may be replaced when dependencies are built.
