file(REMOVE_RECURSE
  "CMakeFiles/table5_nullkernel.dir/table5_nullkernel.cpp.o"
  "CMakeFiles/table5_nullkernel.dir/table5_nullkernel.cpp.o.d"
  "table5_nullkernel"
  "table5_nullkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_nullkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
