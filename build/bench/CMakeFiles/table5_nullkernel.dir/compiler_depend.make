# Empty compiler generated dependencies file for table5_nullkernel.
# This may be replaced when dependencies are built.
