file(REMOVE_RECURSE
  "CMakeFiles/full_characterization.dir/full_characterization.cpp.o"
  "CMakeFiles/full_characterization.dir/full_characterization.cpp.o.d"
  "full_characterization"
  "full_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
