file(REMOVE_RECURSE
  "CMakeFiles/fusion_advisor.dir/fusion_advisor.cpp.o"
  "CMakeFiles/fusion_advisor.dir/fusion_advisor.cpp.o.d"
  "fusion_advisor"
  "fusion_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
