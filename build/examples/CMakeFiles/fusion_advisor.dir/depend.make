# Empty dependencies file for fusion_advisor.
# This may be replaced when dependencies are built.
