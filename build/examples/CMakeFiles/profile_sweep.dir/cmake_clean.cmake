file(REMOVE_RECURSE
  "CMakeFiles/profile_sweep.dir/profile_sweep.cpp.o"
  "CMakeFiles/profile_sweep.dir/profile_sweep.cpp.o.d"
  "profile_sweep"
  "profile_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
