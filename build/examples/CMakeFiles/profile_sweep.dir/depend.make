# Empty dependencies file for profile_sweep.
# This may be replaced when dependencies are built.
