file(REMOVE_RECURSE
  "CMakeFiles/skipctl.dir/skipctl.cpp.o"
  "CMakeFiles/skipctl.dir/skipctl.cpp.o.d"
  "skipctl"
  "skipctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
