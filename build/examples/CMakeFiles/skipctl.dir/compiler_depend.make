# Empty compiler generated dependencies file for skipctl.
# This may be replaced when dependencies are built.
