
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/boundedness.cc" "src/analysis/CMakeFiles/skipsim_analysis.dir/boundedness.cc.o" "gcc" "src/analysis/CMakeFiles/skipsim_analysis.dir/boundedness.cc.o.d"
  "/root/repo/src/analysis/compare.cc" "src/analysis/CMakeFiles/skipsim_analysis.dir/compare.cc.o" "gcc" "src/analysis/CMakeFiles/skipsim_analysis.dir/compare.cc.o.d"
  "/root/repo/src/analysis/energy.cc" "src/analysis/CMakeFiles/skipsim_analysis.dir/energy.cc.o" "gcc" "src/analysis/CMakeFiles/skipsim_analysis.dir/energy.cc.o.d"
  "/root/repo/src/analysis/generation.cc" "src/analysis/CMakeFiles/skipsim_analysis.dir/generation.cc.o" "gcc" "src/analysis/CMakeFiles/skipsim_analysis.dir/generation.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/analysis/CMakeFiles/skipsim_analysis.dir/report.cc.o" "gcc" "src/analysis/CMakeFiles/skipsim_analysis.dir/report.cc.o.d"
  "/root/repo/src/analysis/speculative.cc" "src/analysis/CMakeFiles/skipsim_analysis.dir/speculative.cc.o" "gcc" "src/analysis/CMakeFiles/skipsim_analysis.dir/speculative.cc.o.d"
  "/root/repo/src/analysis/sweep.cc" "src/analysis/CMakeFiles/skipsim_analysis.dir/sweep.cc.o" "gcc" "src/analysis/CMakeFiles/skipsim_analysis.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skipsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/skipsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/skip/CMakeFiles/skipsim_skip.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/skipsim_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skipsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/skipsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/skipsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skipsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/skipsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
