file(REMOVE_RECURSE
  "CMakeFiles/skipsim_analysis.dir/boundedness.cc.o"
  "CMakeFiles/skipsim_analysis.dir/boundedness.cc.o.d"
  "CMakeFiles/skipsim_analysis.dir/compare.cc.o"
  "CMakeFiles/skipsim_analysis.dir/compare.cc.o.d"
  "CMakeFiles/skipsim_analysis.dir/energy.cc.o"
  "CMakeFiles/skipsim_analysis.dir/energy.cc.o.d"
  "CMakeFiles/skipsim_analysis.dir/generation.cc.o"
  "CMakeFiles/skipsim_analysis.dir/generation.cc.o.d"
  "CMakeFiles/skipsim_analysis.dir/report.cc.o"
  "CMakeFiles/skipsim_analysis.dir/report.cc.o.d"
  "CMakeFiles/skipsim_analysis.dir/speculative.cc.o"
  "CMakeFiles/skipsim_analysis.dir/speculative.cc.o.d"
  "CMakeFiles/skipsim_analysis.dir/sweep.cc.o"
  "CMakeFiles/skipsim_analysis.dir/sweep.cc.o.d"
  "libskipsim_analysis.a"
  "libskipsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
