file(REMOVE_RECURSE
  "libskipsim_analysis.a"
)
