# Empty dependencies file for skipsim_analysis.
# This may be replaced when dependencies are built.
