file(REMOVE_RECURSE
  "CMakeFiles/skipsim_common.dir/cli.cc.o"
  "CMakeFiles/skipsim_common.dir/cli.cc.o.d"
  "CMakeFiles/skipsim_common.dir/logging.cc.o"
  "CMakeFiles/skipsim_common.dir/logging.cc.o.d"
  "CMakeFiles/skipsim_common.dir/random.cc.o"
  "CMakeFiles/skipsim_common.dir/random.cc.o.d"
  "CMakeFiles/skipsim_common.dir/strutil.cc.o"
  "CMakeFiles/skipsim_common.dir/strutil.cc.o.d"
  "CMakeFiles/skipsim_common.dir/table.cc.o"
  "CMakeFiles/skipsim_common.dir/table.cc.o.d"
  "libskipsim_common.a"
  "libskipsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
