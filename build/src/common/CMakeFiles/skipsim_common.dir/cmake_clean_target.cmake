file(REMOVE_RECURSE
  "libskipsim_common.a"
)
