# Empty dependencies file for skipsim_common.
# This may be replaced when dependencies are built.
