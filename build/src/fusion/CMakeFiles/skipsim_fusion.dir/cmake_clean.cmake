file(REMOVE_RECURSE
  "CMakeFiles/skipsim_fusion.dir/apply.cc.o"
  "CMakeFiles/skipsim_fusion.dir/apply.cc.o.d"
  "CMakeFiles/skipsim_fusion.dir/proximity.cc.o"
  "CMakeFiles/skipsim_fusion.dir/proximity.cc.o.d"
  "CMakeFiles/skipsim_fusion.dir/recommend.cc.o"
  "CMakeFiles/skipsim_fusion.dir/recommend.cc.o.d"
  "libskipsim_fusion.a"
  "libskipsim_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
