file(REMOVE_RECURSE
  "libskipsim_fusion.a"
)
