# Empty dependencies file for skipsim_fusion.
# This may be replaced when dependencies are built.
