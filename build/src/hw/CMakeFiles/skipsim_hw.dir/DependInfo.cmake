
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/catalog.cc" "src/hw/CMakeFiles/skipsim_hw.dir/catalog.cc.o" "gcc" "src/hw/CMakeFiles/skipsim_hw.dir/catalog.cc.o.d"
  "/root/repo/src/hw/kernel_cost.cc" "src/hw/CMakeFiles/skipsim_hw.dir/kernel_cost.cc.o" "gcc" "src/hw/CMakeFiles/skipsim_hw.dir/kernel_cost.cc.o.d"
  "/root/repo/src/hw/platform.cc" "src/hw/CMakeFiles/skipsim_hw.dir/platform.cc.o" "gcc" "src/hw/CMakeFiles/skipsim_hw.dir/platform.cc.o.d"
  "/root/repo/src/hw/serde.cc" "src/hw/CMakeFiles/skipsim_hw.dir/serde.cc.o" "gcc" "src/hw/CMakeFiles/skipsim_hw.dir/serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skipsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/skipsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
