file(REMOVE_RECURSE
  "CMakeFiles/skipsim_hw.dir/catalog.cc.o"
  "CMakeFiles/skipsim_hw.dir/catalog.cc.o.d"
  "CMakeFiles/skipsim_hw.dir/kernel_cost.cc.o"
  "CMakeFiles/skipsim_hw.dir/kernel_cost.cc.o.d"
  "CMakeFiles/skipsim_hw.dir/platform.cc.o"
  "CMakeFiles/skipsim_hw.dir/platform.cc.o.d"
  "CMakeFiles/skipsim_hw.dir/serde.cc.o"
  "CMakeFiles/skipsim_hw.dir/serde.cc.o.d"
  "libskipsim_hw.a"
  "libskipsim_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
