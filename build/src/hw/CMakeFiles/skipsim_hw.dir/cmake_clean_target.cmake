file(REMOVE_RECURSE
  "libskipsim_hw.a"
)
