# Empty dependencies file for skipsim_hw.
# This may be replaced when dependencies are built.
