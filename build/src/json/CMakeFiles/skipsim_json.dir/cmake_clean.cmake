file(REMOVE_RECURSE
  "CMakeFiles/skipsim_json.dir/parser.cc.o"
  "CMakeFiles/skipsim_json.dir/parser.cc.o.d"
  "CMakeFiles/skipsim_json.dir/value.cc.o"
  "CMakeFiles/skipsim_json.dir/value.cc.o.d"
  "CMakeFiles/skipsim_json.dir/writer.cc.o"
  "CMakeFiles/skipsim_json.dir/writer.cc.o.d"
  "libskipsim_json.a"
  "libskipsim_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
