file(REMOVE_RECURSE
  "libskipsim_json.a"
)
