# Empty dependencies file for skipsim_json.
# This may be replaced when dependencies are built.
