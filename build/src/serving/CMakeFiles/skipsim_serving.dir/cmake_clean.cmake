file(REMOVE_RECURSE
  "CMakeFiles/skipsim_serving.dir/continuous.cc.o"
  "CMakeFiles/skipsim_serving.dir/continuous.cc.o.d"
  "CMakeFiles/skipsim_serving.dir/latency_model.cc.o"
  "CMakeFiles/skipsim_serving.dir/latency_model.cc.o.d"
  "CMakeFiles/skipsim_serving.dir/server_sim.cc.o"
  "CMakeFiles/skipsim_serving.dir/server_sim.cc.o.d"
  "libskipsim_serving.a"
  "libskipsim_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
