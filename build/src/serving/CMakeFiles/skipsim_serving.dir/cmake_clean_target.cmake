file(REMOVE_RECURSE
  "libskipsim_serving.a"
)
