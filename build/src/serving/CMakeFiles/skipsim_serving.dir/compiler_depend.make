# Empty compiler generated dependencies file for skipsim_serving.
# This may be replaced when dependencies are built.
