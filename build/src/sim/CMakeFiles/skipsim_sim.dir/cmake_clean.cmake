file(REMOVE_RECURSE
  "CMakeFiles/skipsim_sim.dir/simulator.cc.o"
  "CMakeFiles/skipsim_sim.dir/simulator.cc.o.d"
  "libskipsim_sim.a"
  "libskipsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
