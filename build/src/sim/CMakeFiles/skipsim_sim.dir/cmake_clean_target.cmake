file(REMOVE_RECURSE
  "libskipsim_sim.a"
)
