# Empty compiler generated dependencies file for skipsim_sim.
# This may be replaced when dependencies are built.
