
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/skip/dep_graph.cc" "src/skip/CMakeFiles/skipsim_skip.dir/dep_graph.cc.o" "gcc" "src/skip/CMakeFiles/skipsim_skip.dir/dep_graph.cc.o.d"
  "/root/repo/src/skip/diff.cc" "src/skip/CMakeFiles/skipsim_skip.dir/diff.cc.o" "gcc" "src/skip/CMakeFiles/skipsim_skip.dir/diff.cc.o.d"
  "/root/repo/src/skip/gaps.cc" "src/skip/CMakeFiles/skipsim_skip.dir/gaps.cc.o" "gcc" "src/skip/CMakeFiles/skipsim_skip.dir/gaps.cc.o.d"
  "/root/repo/src/skip/metrics.cc" "src/skip/CMakeFiles/skipsim_skip.dir/metrics.cc.o" "gcc" "src/skip/CMakeFiles/skipsim_skip.dir/metrics.cc.o.d"
  "/root/repo/src/skip/op_breakdown.cc" "src/skip/CMakeFiles/skipsim_skip.dir/op_breakdown.cc.o" "gcc" "src/skip/CMakeFiles/skipsim_skip.dir/op_breakdown.cc.o.d"
  "/root/repo/src/skip/profile.cc" "src/skip/CMakeFiles/skipsim_skip.dir/profile.cc.o" "gcc" "src/skip/CMakeFiles/skipsim_skip.dir/profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skipsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/skipsim_json.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/skipsim_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/skipsim_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skipsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/skipsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/skipsim_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
