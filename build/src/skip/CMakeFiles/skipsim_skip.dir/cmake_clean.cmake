file(REMOVE_RECURSE
  "CMakeFiles/skipsim_skip.dir/dep_graph.cc.o"
  "CMakeFiles/skipsim_skip.dir/dep_graph.cc.o.d"
  "CMakeFiles/skipsim_skip.dir/diff.cc.o"
  "CMakeFiles/skipsim_skip.dir/diff.cc.o.d"
  "CMakeFiles/skipsim_skip.dir/gaps.cc.o"
  "CMakeFiles/skipsim_skip.dir/gaps.cc.o.d"
  "CMakeFiles/skipsim_skip.dir/metrics.cc.o"
  "CMakeFiles/skipsim_skip.dir/metrics.cc.o.d"
  "CMakeFiles/skipsim_skip.dir/op_breakdown.cc.o"
  "CMakeFiles/skipsim_skip.dir/op_breakdown.cc.o.d"
  "CMakeFiles/skipsim_skip.dir/profile.cc.o"
  "CMakeFiles/skipsim_skip.dir/profile.cc.o.d"
  "libskipsim_skip.a"
  "libskipsim_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
