file(REMOVE_RECURSE
  "libskipsim_skip.a"
)
