# Empty compiler generated dependencies file for skipsim_skip.
# This may be replaced when dependencies are built.
