file(REMOVE_RECURSE
  "CMakeFiles/skipsim_stats.dir/knee.cc.o"
  "CMakeFiles/skipsim_stats.dir/knee.cc.o.d"
  "CMakeFiles/skipsim_stats.dir/series.cc.o"
  "CMakeFiles/skipsim_stats.dir/series.cc.o.d"
  "CMakeFiles/skipsim_stats.dir/summary.cc.o"
  "CMakeFiles/skipsim_stats.dir/summary.cc.o.d"
  "libskipsim_stats.a"
  "libskipsim_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
