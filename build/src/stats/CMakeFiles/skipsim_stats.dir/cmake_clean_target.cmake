file(REMOVE_RECURSE
  "libskipsim_stats.a"
)
