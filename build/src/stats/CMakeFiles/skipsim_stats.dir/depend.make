# Empty dependencies file for skipsim_stats.
# This may be replaced when dependencies are built.
