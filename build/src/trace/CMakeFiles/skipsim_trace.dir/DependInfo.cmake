
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/chrome.cc" "src/trace/CMakeFiles/skipsim_trace.dir/chrome.cc.o" "gcc" "src/trace/CMakeFiles/skipsim_trace.dir/chrome.cc.o.d"
  "/root/repo/src/trace/event.cc" "src/trace/CMakeFiles/skipsim_trace.dir/event.cc.o" "gcc" "src/trace/CMakeFiles/skipsim_trace.dir/event.cc.o.d"
  "/root/repo/src/trace/timeline.cc" "src/trace/CMakeFiles/skipsim_trace.dir/timeline.cc.o" "gcc" "src/trace/CMakeFiles/skipsim_trace.dir/timeline.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/skipsim_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/skipsim_trace.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skipsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/skipsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
