file(REMOVE_RECURSE
  "CMakeFiles/skipsim_trace.dir/chrome.cc.o"
  "CMakeFiles/skipsim_trace.dir/chrome.cc.o.d"
  "CMakeFiles/skipsim_trace.dir/event.cc.o"
  "CMakeFiles/skipsim_trace.dir/event.cc.o.d"
  "CMakeFiles/skipsim_trace.dir/timeline.cc.o"
  "CMakeFiles/skipsim_trace.dir/timeline.cc.o.d"
  "CMakeFiles/skipsim_trace.dir/trace.cc.o"
  "CMakeFiles/skipsim_trace.dir/trace.cc.o.d"
  "libskipsim_trace.a"
  "libskipsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
