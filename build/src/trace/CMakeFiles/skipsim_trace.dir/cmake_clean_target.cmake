file(REMOVE_RECURSE
  "libskipsim_trace.a"
)
