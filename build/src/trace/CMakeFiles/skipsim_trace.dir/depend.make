# Empty dependencies file for skipsim_trace.
# This may be replaced when dependencies are built.
