
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/builder.cc" "src/workload/CMakeFiles/skipsim_workload.dir/builder.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/builder.cc.o.d"
  "/root/repo/src/workload/compile_model.cc" "src/workload/CMakeFiles/skipsim_workload.dir/compile_model.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/compile_model.cc.o.d"
  "/root/repo/src/workload/exec_mode.cc" "src/workload/CMakeFiles/skipsim_workload.dir/exec_mode.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/exec_mode.cc.o.d"
  "/root/repo/src/workload/flatten.cc" "src/workload/CMakeFiles/skipsim_workload.dir/flatten.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/flatten.cc.o.d"
  "/root/repo/src/workload/future_workloads.cc" "src/workload/CMakeFiles/skipsim_workload.dir/future_workloads.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/future_workloads.cc.o.d"
  "/root/repo/src/workload/memory.cc" "src/workload/CMakeFiles/skipsim_workload.dir/memory.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/memory.cc.o.d"
  "/root/repo/src/workload/model_config.cc" "src/workload/CMakeFiles/skipsim_workload.dir/model_config.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/model_config.cc.o.d"
  "/root/repo/src/workload/op_graph.cc" "src/workload/CMakeFiles/skipsim_workload.dir/op_graph.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/op_graph.cc.o.d"
  "/root/repo/src/workload/roofline.cc" "src/workload/CMakeFiles/skipsim_workload.dir/roofline.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/roofline.cc.o.d"
  "/root/repo/src/workload/serde.cc" "src/workload/CMakeFiles/skipsim_workload.dir/serde.cc.o" "gcc" "src/workload/CMakeFiles/skipsim_workload.dir/serde.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/skipsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/skipsim_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/skipsim_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
