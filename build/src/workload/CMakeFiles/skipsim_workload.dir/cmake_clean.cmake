file(REMOVE_RECURSE
  "CMakeFiles/skipsim_workload.dir/builder.cc.o"
  "CMakeFiles/skipsim_workload.dir/builder.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/compile_model.cc.o"
  "CMakeFiles/skipsim_workload.dir/compile_model.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/exec_mode.cc.o"
  "CMakeFiles/skipsim_workload.dir/exec_mode.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/flatten.cc.o"
  "CMakeFiles/skipsim_workload.dir/flatten.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/future_workloads.cc.o"
  "CMakeFiles/skipsim_workload.dir/future_workloads.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/memory.cc.o"
  "CMakeFiles/skipsim_workload.dir/memory.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/model_config.cc.o"
  "CMakeFiles/skipsim_workload.dir/model_config.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/op_graph.cc.o"
  "CMakeFiles/skipsim_workload.dir/op_graph.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/roofline.cc.o"
  "CMakeFiles/skipsim_workload.dir/roofline.cc.o.d"
  "CMakeFiles/skipsim_workload.dir/serde.cc.o"
  "CMakeFiles/skipsim_workload.dir/serde.cc.o.d"
  "libskipsim_workload.a"
  "libskipsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skipsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
