file(REMOVE_RECURSE
  "libskipsim_workload.a"
)
