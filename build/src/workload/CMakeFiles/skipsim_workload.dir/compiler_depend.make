# Empty compiler generated dependencies file for skipsim_workload.
# This may be replaced when dependencies are built.
