file(REMOVE_RECURSE
  "CMakeFiles/test_insight.dir/test_insight.cpp.o"
  "CMakeFiles/test_insight.dir/test_insight.cpp.o.d"
  "test_insight"
  "test_insight.pdb"
  "test_insight[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_insight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
