/**
 * @file
 * Calibration report: prints every paper anchor next to the model's
 * current prediction. Used to tune the platform catalog; kept as an
 * example because it doubles as a one-stop reproduction summary.
 *
 * Usage: calibration_report [--seq 512]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/compare.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "stats/summary.hh"
#include "workload/builder.hh"
#include "workload/compile_model.hh"

using namespace skipsim;

namespace
{

void
reportNullKernel()
{
    TextTable table("== Table V: nullKernel (paper anchors: 2260.5/2374.6/"
                    "2771.6 ns launch; 1440.0/1235.2/1171.2 ns duration)");
    table.setHeader({"platform", "launch overhead (ns)", "duration (ns)"});
    for (const auto &platform : hw::platforms::paperTrio()) {
        workload::OperatorGraph graph =
            workload::buildNullKernelGraph(2000);
        sim::Simulator simulator(platform);
        sim::SimResult result = simulator.run(graph);
        skip::DependencyGraph dep =
            skip::DependencyGraph::build(result.trace);
        stats::Summary launch;
        stats::Summary duration;
        for (const auto &link : dep.computeKernelsOnly()) {
            launch.add(static_cast<double>(link.launchToStartNs));
            duration.add(static_cast<double>(
                dep.trace().byId(link.kernelId).durNs));
        }
        table.addRow({platform.name, strprintf("%.1f", launch.mean()),
                      strprintf("%.1f", duration.mean())});
    }
    std::puts(table.render().c_str());
}

void
reportModelSweep(const workload::ModelConfig &model, int seq)
{
    auto batches = analysis::defaultBatchGrid();
    std::vector<analysis::SweepResult> sweeps;
    for (const auto &platform : hw::platforms::paperTrio())
        sweeps.push_back(
            analysis::runBatchSweep(model, platform, batches, seq));

    TextTable table("== " + model.name + " prefill IL (ms) / TKLQT (ms)");
    table.setHeader({"batch", "AMD+A100", "Intel+H100", "GH200",
                     "gpuIdle% GH", "cpuIdle% GH"});
    for (int batch : batches) {
        std::vector<std::string> row{std::to_string(batch)};
        for (const auto &sweep : sweeps) {
            const auto &m = sweep.at(batch).metrics;
            row.push_back(strprintf("%.2f/%.2f", m.ilNs / 1e6,
                                    m.tklqtNs / 1e6));
        }
        const auto &gh = sweeps[2].at(batch).metrics;
        row.push_back(strprintf("%.0f%%",
                                100.0 * gh.gpuIdleNs / gh.ilNs));
        row.push_back(strprintf("%.0f%%",
                                100.0 * gh.cpuIdleNs / gh.ilNs));
        table.addRow(row);
    }
    std::puts(table.render().c_str());

    for (const auto &sweep : sweeps) {
        auto bound = analysis::classifyBoundedness(sweep);
        std::printf("  %-11s knee=%s plateauTKLQT=%.3fms sweet=[%d,%d]\n",
                    sweep.platformName.c_str(),
                    bound.transitionBatch
                        ? std::to_string(*bound.transitionBatch).c_str()
                        : "none",
                    bound.plateauTklqtNs / 1e6,
                    analysis::findSweetSpot(sweep).minBatch,
                    analysis::findSweetSpot(sweep).maxBatch);
    }
    auto cp_intel = analysis::findCrossover(sweeps[2], sweeps[1]);
    auto cp_amd = analysis::findCrossover(sweeps[2], sweeps[0]);
    std::printf("  CP vs Intel+H100: %s | vs AMD+A100: %s\n",
                cp_intel.crossoverPoint
                    ? std::to_string(*cp_intel.crossoverPoint).c_str()
                    : (cp_intel.firstWinBatch ? "<1" : "none"),
                cp_amd.crossoverPoint
                    ? std::to_string(*cp_amd.crossoverPoint).c_str()
                    : (cp_amd.firstWinBatch ? "<1" : "none"));
    std::printf("  GH200 speedup @64: vs Intel %.2fx, vs AMD %.2fx | "
                "@16: %.2fx / %.2fx | slowdown @1: %.2fx / %.2fx\n\n",
                analysis::speedupAt(sweeps[2], sweeps[1], 64),
                analysis::speedupAt(sweeps[2], sweeps[0], 64),
                analysis::speedupAt(sweeps[2], sweeps[1], 16),
                analysis::speedupAt(sweeps[2], sweeps[0], 16),
                1.0 / analysis::speedupAt(sweeps[2], sweeps[1], 1),
                1.0 / analysis::speedupAt(sweeps[2], sweeps[0], 1));
}

void
reportFusion(const workload::ModelConfig &model, int seq)
{
    skip::ProfileResult run = skip::profilePrefill(
        model, hw::platforms::intelH100(), 1, seq);
    fusion::FusionReport report =
        fusion::recommendFromTrace(run.trace);
    std::printf("== Fusion %s (anchors: GPT2 K=405 2.7x@256; XLM-R "
                "K=299 6.8x@256)\n%s\n",
                model.name.c_str(), report.render().c_str());
}

void
reportCompile(int seq)
{
    workload::ModelConfig gemma = workload::gemma2b();
    hw::Platform intel = hw::platforms::intelH100();

    workload::BuildOptions opts;
    opts.batch = 1;
    opts.seqLen = seq;
    workload::OperatorGraph eager = workload::buildPrefillGraph(gemma, opts);

    std::printf("== Table I: Gemma-2B BS=1 seq=%d on Intel+H100 "
                "(anchors: 0.406/6.284/12.747/387.3 s; speedups "
                "1/1.203/1.239/1.317)\n", seq);
    std::printf("  ops=%zu uniqueGemmShapes=%zu\n", eager.numOps(),
                workload::uniqueGemmShapes(eager));

    double eager_ttft = 0.0;
    for (auto mode :
         {workload::ExecMode::Eager, workload::ExecMode::CompileDefault,
          workload::ExecMode::CompileReduceOverhead,
          workload::ExecMode::CompileMaxAutotune}) {
        double compile_s = workload::compileTimeNs(
            mode, eager, intel.cpu.singleThreadScore) / 1e9;
        skip::ProfileResult run =
            skip::profilePrefill(gemma, intel, 1, seq, mode);
        if (mode == workload::ExecMode::Eager)
            eager_ttft = run.ttftNs();
        std::printf("  %-26s compile=%9.3fs TTFT=%8.3fms speedup=%.3f\n",
                    workload::execModeName(mode), compile_s,
                    run.ttftNs() / 1e6, eager_ttft / run.ttftNs());
    }
    std::puts("");
}

void
reportSevenB(int seq)
{
    std::printf("== Fig 3: 7B TTFT speedups vs eager (BS=1 seq=%d, "
                "Intel+H100)\n", seq);
    for (const auto &model : workload::sevenBSet()) {
        hw::Platform intel = hw::platforms::intelH100();
        double eager =
            skip::profilePrefill(model, intel, 1, seq).ttftNs();
        double fa2 = skip::profilePrefill(
            model, intel, 1, seq,
            workload::ExecMode::FlashAttention2).ttftNs();
        double ma = skip::profilePrefill(
            model, intel, 1, seq,
            workload::ExecMode::CompileMaxAutotune).ttftNs();
        std::printf("  %-12s eager=%7.2fms FA2=%.2fx max-autotune=%.2fx\n",
                    model.name.c_str(), eager / 1e6, eager / fa2,
                    eager / ma);
    }
    std::puts("");
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    int seq = static_cast<int>(args.getInt("seq", 512));

    reportNullKernel();
    for (const auto &model : workload::paperQuartet())
        reportModelSweep(model, seq);
    reportFusion(workload::gpt2(), seq);
    reportFusion(workload::xlmRobertaBase(), seq);
    reportCompile(1024);
    reportSevenB(1024);
    return 0;
}
