/**
 * @file
 * Full characterization artifact: run the complete analysis pipeline
 * for a model across every catalog platform and write a markdown
 * report plus a machine-readable JSON bundle — the deliverable a
 * platform-selection study would produce.
 *
 * Usage: full_characterization [--model Llama-3.2-1B] [--seq 512]
 *                              [--out characterization]
 */

#include <cstdio>

#include "analysis/report.hh"
#include "common/cli.hh"
#include "hw/catalog.hh"
#include "json/writer.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model = workload::modelByName(
        args.getString("model", "Llama-3.2-1B"));
    int seq = static_cast<int>(args.getInt("seq", 512));
    std::string out = args.getString("out", "characterization");

    analysis::CharacterizationReport report = analysis::characterize(
        model, hw::platforms::all(), seq);

    std::string markdown = report.renderMarkdown();
    std::fputs(markdown.c_str(), stdout);

    std::string md_path = out + ".md";
    std::string json_path = out + ".json";
    {
        FILE *f = std::fopen(md_path.c_str(), "w");
        if (f) {
            std::fputs(markdown.c_str(), f);
            std::fclose(f);
        }
    }
    json::writeFile(json_path, report.toJson());
    std::printf("\nwritten: %s, %s\n", md_path.c_str(),
                json_path.c_str());
    return 0;
}
