/**
 * @file
 * Kernel-fusion advisor: run SKIP on a CPU-bound workload, mine
 * proximity-score chains, and print fusion recommendations with their
 * idealized launch-saving speedups — the workflow of paper Sec. V-C.
 * Warns when the workload is already GPU-bound (fusion won't help).
 *
 * Usage: fusion_advisor [--model GPT2] [--platform Intel+H100]
 *                       [--batch 1] [--seq 512] [--threshold 1.0]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model =
        workload::modelByName(args.getString("model", "GPT2"));
    hw::Platform platform =
        hw::platforms::byName(args.getString("platform", "Intel+H100"));
    int batch = static_cast<int>(args.getInt("batch", 1));
    int seq = static_cast<int>(args.getInt("seq", 512));
    double threshold = args.getDouble("threshold", 1.0);

    skip::ProfileResult run =
        skip::profilePrefill(model, platform, batch, seq);

    // Fusion pays off only in the CPU-bound region (Sec. V-C): check
    // where this batch sits before recommending anything.
    analysis::SweepResult sweep = analysis::runBatchSweep(
        model, platform, analysis::defaultBatchGrid(), seq);
    analysis::BoundednessResult bound =
        analysis::classifyBoundedness(sweep);

    std::printf("%s on %s, batch=%d, seq=%d: TTFT %.2f ms, %zu kernel "
                "launches, %s\n\n",
                model.name.c_str(), platform.name.c_str(), batch, seq,
                run.ttftNs() / 1e6, run.metrics.numKernels,
                analysis::boundednessName(bound.classify(batch)));

    if (bound.classify(batch) == analysis::Boundedness::GpuBound) {
        std::puts("warning: this configuration is GPU-bound - kernel "
                  "queuing dominates, so launch-saving fusion yields "
                  "little benefit here. Consider smaller batches or "
                  "kernel-time optimizations instead.\n");
    }

    fusion::FusionReport report = fusion::recommendFromTrace(
        run.trace, fusion::defaultChainLengths(), threshold);
    std::fputs(report.render().c_str(), stdout);

    const auto &best = report.best();
    double launch_tax_ms = run.metrics.tklqtNs / 1e6;
    std::printf("\nLaunch+queue tax (TKLQT) today: %.3f ms of %.2f ms "
                "TTFT\n", launch_tax_ms, run.ttftNs() / 1e6);
    std::printf("Best recommendation: fuse %zu chain(s) of length %zu "
                "-> %zu launches (%.2fx ideal launch-saving speedup)\n",
                best.fusedChains, best.length, best.kFused,
                best.idealSpeedup);
    return 0;
}
