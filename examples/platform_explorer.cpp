/**
 * @file
 * Coupling-paradigm explorer: compare a workload across the LC / CC
 * platforms of the paper plus the hypothetical tightly-coupled
 * MI300A-style system (the paper's future work), answering question 1
 * of the paper — "are CC/TC systems universally more effective for
 * inference?" — for your model and batch range.
 *
 * Usage: platform_explorer [--model Bert-Base-Uncased] [--seq 512]
 */

#include <cstdio>

#include "analysis/boundedness.hh"
#include "analysis/compare.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model = workload::modelByName(
        args.getString("model", "Bert-Base-Uncased"));
    int seq = static_cast<int>(args.getInt("seq", 512));

    std::vector<hw::Platform> platforms = hw::platforms::all();
    std::vector<analysis::SweepResult> sweeps;
    for (const auto &platform : platforms) {
        sweeps.push_back(analysis::runBatchSweep(
            model, platform, analysis::defaultBatchGrid(), seq));
    }

    TextTable table(strprintf(
        "%s prefill TTFT (ms) across coupling paradigms, seq=%d",
        model.name.c_str(), seq));
    std::vector<std::string> header{"Batch"};
    for (const auto &platform : platforms) {
        header.push_back(platform.name + " (" +
                         hw::couplingName(platform.coupling) + ")");
    }
    table.setHeader(header);
    for (const auto &row : analysis::comparePlatforms(sweeps)) {
        std::vector<std::string> cells{std::to_string(row.batch)};
        for (double latency : row.latencyNs)
            cells.push_back(strprintf("%.2f", latency / 1e6));
        table.addRow(cells);
    }
    std::fputs(table.render().c_str(), stdout);

    std::puts("\nPer-platform summary:");
    for (const auto &sweep : sweeps) {
        auto bound = analysis::classifyBoundedness(sweep);
        auto spot = analysis::findSweetSpot(sweep);
        std::printf("  %-11s CPU-bound until %s, balanced BS=[%d,%d], "
                    "BS=1 TTFT %.2f ms, BS=128 TTFT %.2f ms\n",
                    sweep.platformName.c_str(),
                    bound.transitionBatch
                        ? ("BS=" + std::to_string(
                               *bound.transitionBatch)).c_str()
                        : "never",
                    spot.minBatch, spot.maxBatch,
                    sweep.at(1).metrics.ilNs / 1e6,
                    sweep.at(128).metrics.ilNs / 1e6);
    }

    // Who wins where?
    std::puts("\nBest platform per batch size:");
    for (const auto &row : analysis::comparePlatforms(sweeps)) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < row.latencyNs.size(); ++i) {
            if (row.latencyNs[i] < row.latencyNs[best])
                best = i;
        }
        std::printf("  BS=%-4d %s\n", row.batch,
                    platforms[best].name.c_str());
    }

    std::puts("\nKey takeaway: no coupling paradigm wins everywhere - "
              "powerful-CPU LC systems take the latency-critical "
              "low-batch region, CC/TC systems take the "
              "throughput-oriented large-batch region, and a TC part "
              "with a strong x86 core (MI300A-style) narrows the "
              "low-batch gap.");
    return 0;
}
