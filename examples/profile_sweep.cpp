/**
 * @file
 * Serving-operator scenario: sweep batch sizes for a model on a
 * platform, classify the CPU/GPU-bound regions with TKLQT, and report
 * the balanced "sweet spot" batch range plus the largest batch that
 * meets a latency SLO — the decision an interactive-serving operator
 * (chatbot / agentic pipeline stage) actually has to make.
 *
 * The per-batch profiles fan out on the skipsim::exec engine. Per-point
 * seeds derive as mixSeed(baseSeed, pointIndex) — the same convention
 * analysis::runBatchSweep uses — so this grid reproduces the library
 * sweep byte-for-byte at any --jobs count.
 *
 * Usage: profile_sweep [--model Llama-3.2-1B] [--platform GH200]
 *                      [--seq 512] [--slo-ms 200] [--jobs N] [--csv]
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "exec/grid.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

namespace
{

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig model =
        workload::modelByName(args.getString("model", "Llama-3.2-1B"));
    hw::Platform platform =
        hw::platforms::byName(args.getString("platform", "GH200"));
    int seq = static_cast<int>(args.getInt("seq", 512));
    double slo_ms = args.getDouble("slo-ms", 200.0);
    RunFlags flags = parseRunFlags(args);
    int jobs = flags.jobs;

    exec::SweepSpec grid;
    grid.models = {model};
    grid.platforms = {platform};
    grid.batches = analysis::defaultBatchGrid();
    grid.seqLens = {seq};

    auto point = [](const exec::RunSpec &spec) {
        skip::ProfileResult run = skip::profile(spec.profileConfig());
        analysis::SweepPoint out;
        out.batch = spec.batch();
        out.metrics = std::move(run.metrics);
        out.wallNs = run.wallNs;
        return out;
    };

    double serial_start = nowMs();
    std::vector<analysis::SweepPoint> points =
        exec::runGrid(grid, point, 1);
    double serial_ms = nowMs() - serial_start;

    if (jobs != 1) {
        double parallel_start = nowMs();
        points = exec::runGrid(grid, point, jobs);
        double parallel_ms = nowMs() - parallel_start;
        std::printf("grid: %zu profiles, serial %.0f ms, parallel "
                    "(--jobs %d) %.0f ms, speedup %.2fx\n\n",
                    grid.size(), serial_ms, jobs,
                    parallel_ms > 0.0 ? parallel_ms : 1.0,
                    parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    }

    analysis::SweepResult sweep;
    sweep.modelName = model.name;
    sweep.platformName = platform.name;
    sweep.seqLen = seq;
    sweep.points = std::move(points);

    analysis::BoundednessResult bound =
        analysis::classifyBoundedness(sweep);
    analysis::SweetSpot spot = analysis::findSweetSpot(sweep);

    TextTable table(strprintf("%s on %s, seq=%d", model.name.c_str(),
                              platform.name.c_str(), seq));
    table.setHeader({"Batch", "TTFT (ms)", "ms/req", "TKLQT (ms)",
                     "GPU idle %", "CPU idle %", "Region"});
    for (const auto &point : sweep.points) {
        const auto &m = point.metrics;
        table.addRow({std::to_string(point.batch),
                      strprintf("%.2f", m.ilNs / 1e6),
                      strprintf("%.2f", m.ilNs / 1e6 / point.batch),
                      strprintf("%.3f", m.tklqtNs / 1e6),
                      strprintf("%.0f", 100.0 * m.gpuIdleNs / m.ilNs),
                      strprintf("%.0f", 100.0 * m.cpuIdleNs / m.ilNs),
                      analysis::boundednessName(
                          bound.classify(point.batch))});
    }
    std::fputs(flags.csv ? table.renderCsv().c_str()
                               : table.render().c_str(),
               stdout);

    std::printf("\nCPU->GPU-bound transition: %s\n",
                bound.transitionBatch
                    ? ("BS=" +
                       std::to_string(*bound.transitionBatch)).c_str()
                    : "not reached on this grid");
    std::printf("Balanced utilization sweet spot: BS=[%d, %d]\n",
                spot.minBatch, spot.maxBatch);

    int best_batch = 0;
    for (const auto &point : sweep.points) {
        if (point.metrics.ilNs / 1e6 <= slo_ms)
            best_batch = point.batch;
    }
    if (best_batch > 0) {
        std::printf("Largest batch meeting the %.0f ms TTFT SLO: %d "
                    "(%.2f ms)\n",
                    slo_ms, best_batch,
                    sweep.at(best_batch).metrics.ilNs / 1e6);
    } else {
        std::printf("No batch on the grid meets the %.0f ms TTFT SLO.\n",
                    slo_ms);
    }
    return 0;
}
