/**
 * @file
 * Quickstart: profile one LLM prefill on one platform with SKIP and
 * print the paper's metrics (TKLQT, AKD, IL, idle times, top-k
 * kernels), then export the trace for chrome://tracing / Perfetto.
 *
 * Usage: quickstart [--model GPT2] [--platform GH200] [--batch 1]
 *                   [--seq 512] [--mode eager] [--trace out.json]
 *                   [--model-file m.json] [--platform-file p.json]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "hw/catalog.hh"
#include "hw/serde.hh"
#include "skip/dep_graph.hh"
#include "skip/op_breakdown.hh"
#include "skip/profile.hh"
#include "trace/chrome.hh"
#include "trace/timeline.hh"
#include "workload/model_config.hh"
#include "workload/serde.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);

    skip::ProfileConfig config;
    config.model = args.has("model-file")
        ? workload::loadModel(args.getString("model-file"))
        : workload::modelByName(args.getString("model", "GPT2"));
    config.platform = args.has("platform-file")
        ? hw::loadPlatform(args.getString("platform-file"))
        : hw::platforms::byName(args.getString("platform", "GH200"));
    config.batch = static_cast<int>(args.getInt("batch", 1));
    config.seqLen = static_cast<int>(args.getInt("seq", 512));
    config.mode =
        workload::execModeByName(args.getString("mode", "eager"));

    std::printf("SKIP profile: %s on %s (%s), batch=%d, seq=%d, %s\n\n",
                config.model.name.c_str(), config.platform.name.c_str(),
                hw::couplingName(config.platform.coupling), config.batch,
                config.seqLen, workload::execModeName(config.mode));

    skip::ProfileResult result = skip::profile(config);
    std::fputs(result.metrics.render().c_str(), stdout);

    std::puts("\nTop-5 kernels by launch count:");
    for (const auto &stat :
         result.metrics.topK(5, skip::TopKBy::Count)) {
        std::printf("  %-40s x%-4zu mean dur %-10s mean launch %s\n",
                    stat.name.c_str(), stat.count,
                    formatNs(stat.meanDurNs()).c_str(),
                    formatNs(stat.meanLaunchNs()).c_str());
    }

    std::puts("");
    skip::DependencyGraph dep = skip::DependencyGraph::build(result.trace);
    std::fputs(skip::computeOpBreakdown(dep).render(8).c_str(), stdout);

    std::puts("");
    trace::TimelineOptions timeline_opts;
    timeline_opts.width = 92;
    std::fputs(trace::renderTimeline(result.trace, timeline_opts).c_str(),
               stdout);

    if (args.has("trace")) {
        std::string path = args.getString("trace");
        trace::writeChromeFile(path, result.trace);
        std::printf("\ntrace written to %s (open in chrome://tracing)\n",
                    path.c_str());
    }
    return 0;
}
