/**
 * @file
 * RAG / agentic-pipeline scenario (paper Sec. I and II-A): a chained
 * pipeline where an encoder reranker feeds a decoder generator. Each
 * stage's prefill latency is simulated per platform and summed;
 * because stage outputs feed stage inputs, per-stage latency (not
 * throughput) governs the user-visible response time. The example
 * shows how batch-size pressure compounds across the chain and which
 * coupling paradigm keeps the end-to-end TTFT inside an SLO.
 *
 * Usage: rag_pipeline [--reranker Bert-Base-Uncased]
 *                     [--generator Llama-3.2-1B] [--seq 512]
 *                     [--candidates 8] [--slo-ms 200]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "hw/catalog.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    workload::ModelConfig reranker = workload::modelByName(
        args.getString("reranker", "Bert-Base-Uncased"));
    workload::ModelConfig generator = workload::modelByName(
        args.getString("generator", "Llama-3.2-1B"));
    int seq = static_cast<int>(args.getInt("seq", 512));
    int candidates = static_cast<int>(args.getInt("candidates", 8));
    double slo_ms = args.getDouble("slo-ms", 200.0);

    std::printf("RAG pipeline: rerank %d candidates with %s, then "
                "generate with %s (seq=%d)\n\n",
                candidates, reranker.name.c_str(),
                generator.name.c_str(), seq);

    TextTable table("End-to-end time-to-first-token per platform (ms)");
    table.setHeader({"Platform", "Rerank", "Generate", "Total",
                     strprintf("SLO %.0fms", slo_ms)});

    for (const auto &platform : hw::platforms::all()) {
        // Stage 1: the reranker scores all retrieved candidates in one
        // batch (batch = candidate count).
        skip::ProfileResult rerank = skip::profilePrefill(
            reranker, platform, candidates, seq);
        // Stage 2: the generator prefills the winning context at
        // batch 1 (a single user turn).
        skip::ProfileResult generate =
            skip::profilePrefill(generator, platform, 1, seq);

        double rerank_ms = rerank.ttftNs() / 1e6;
        double gen_ms = generate.ttftNs() / 1e6;
        double total_ms = rerank_ms + gen_ms;
        table.addRow({platform.name,
                      strprintf("%.2f", rerank_ms),
                      strprintf("%.2f", gen_ms),
                      strprintf("%.2f", total_ms),
                      total_ms <= slo_ms ? "ok" : "MISS"});
    }
    std::fputs(table.render().c_str(), stdout);

    // Sensitivity: how does widening retrieval (more candidates)
    // stress each coupling paradigm?
    std::puts("\nRerank-stage latency vs candidate count:");
    TextTable sens("");
    std::vector<std::string> header{"Candidates"};
    for (const auto &platform : hw::platforms::all())
        header.push_back(platform.name);
    sens.setHeader(header);
    for (int n : {4, 8, 16, 32, 64}) {
        std::vector<std::string> row{std::to_string(n)};
        for (const auto &platform : hw::platforms::all()) {
            skip::ProfileResult run =
                skip::profilePrefill(reranker, platform, n, seq);
            row.push_back(strprintf("%.2f", run.ttftNs() / 1e6));
        }
        sens.addRow(row);
    }
    std::fputs(sens.render().c_str(), stdout);

    std::puts("\nKey takeaway: chained stages accumulate latency, so "
              "every stage must stay in its platform's low-latency "
              "region; wide reranking favours the CC/TC systems while "
              "the single-stream generation stage favours strong CPUs "
              "- a mixed fleet (or a TC part) covers both.");
    return 0;
}
