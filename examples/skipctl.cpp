/**
 * @file
 * skipctl — unified command-line front end over the library:
 *
 *   skipctl profile  [--model M] [--platform P] [--batch N] [--seq S]
 *                    [--mode MODE] [--trace out.json]
 *                    [--obs-out obs.json] [--obs-interval-ms MS]
 *   skipctl sweep    [--model M] [--platform P] [--seq S] [--csv]
 *   skipctl sweep    --spec grid.json [--jobs N] [--analysis NAME]
 *                    [--out report.json] [--full]
 *                    [--harness-trace harness.json]
 *   skipctl fusion   [--model M] [--platform P] [--batch N] [--seq S]
 *   skipctl serve    [--model M] [--platform P] [--rate RPS]
 *                    [--max-batch N] [--slo-ms MS]
 *                    [--obs-out obs.json] [--obs-trace obs_trace.json]
 *                    [--obs-interval-ms MS]
 *   skipctl cluster  --spec cluster.json [--jobs N] [--shards N]
 *                    [--shard-threads N] [--queue heap|calendar]
 *                    [--out report.json]
 *                    [--obs-out obs.json] [--obs-trace obs_trace.json]
 *                    [--obs-interval-ms MS]
 *                    [--harness-trace harness.json]
 *   skipctl run      --scenario NAME [--spec params.json] [--quick]
 *                    [--jobs N] [--shards N] [--shard-threads N]
 *                    [--queue heap|calendar] [--out report.json]
 *                    [--obs-out obs.json] [--obs-trace obs_trace.json]
 *                    [--obs-format json|openmetrics]
 *                    [--obs-interval-ms MS] [--span-out spans.json]
 *                    [--harness-trace harness.json]
 *   skipctl scenarios [--json]
 *   skipctl attribute <spans.json> [--json] [--ttft-slo-ms MS]
 *                    [--e2e-slo-ms MS]
 *   skipctl validate <trace.json>
 *   skipctl check    [--trace t.json | --props [--filter F]
 *                    | --fuzz N [--seed S] [--jobs J] [--quick]
 *                      [--repro-dir DIR]
 *                    | --replay repro.json]
 *   skipctl analyze  <trace.json> [--fusion]
 *   skipctl diff     <before.json> <after.json>
 *   skipctl roofline [--model M] [--platform P] [--batch N] [--seq S]
 *   skipctl memory   [--model M] [--seq S]
 *   skipctl platforms | models | analyses
 *
 * All subcommands accept --model-file / --platform-file JSON configs.
 * `sweep --spec` fans a JSON SweepSpec grid (models x platforms x
 * batches x seqLens x modes) across worker threads on the exec engine
 * and emits a JSON result report; --analysis picks any registered
 * analysis (see `skipctl analyses`). `cluster --spec` runs a
 * multi-replica cluster scenario (optionally a rate sweep, fanned
 * across --jobs workers) and reports SLO attainment and goodput —
 * the report is byte-identical at any --jobs count. --shards N
 * partitions each run's replicas across N engine shards
 * (deterministic time-windowed synchronization, docs/core.md); the
 * report stays byte-identical at any shard count.
 *
 * Scenarios (docs/scenarios.md): `run --scenario NAME` builds a full
 * cluster run from the scenario registry — production-shaped traffic
 * models (mmpp-diurnal, chat-sessions, multi-tenant, steady-poisson),
 * the KV-tiering and disaggregation scenarios (kv_offload, disagg)
 * plus the raw `cluster` pass-through — parameterized by an optional
 * --spec JSON file; `scenarios` lists what is registered and
 * `scenarios --json` emits the same registry with accepted parameters
 * as machine-readable JSON. --quick
 * caps the horizon for CI smoke runs without changing the code path,
 * so quick reports stay byte-identical at any --jobs count too.
 *
 * Observability (docs/observability.md): --obs-out writes a
 * metrics/time-series JSON sampled at deterministic simulated-time
 * boundaries (--obs-interval-ms, byte-identical at any --jobs);
 * --obs-format openmetrics writes the final metrics registry as an
 * OpenMetrics/Prometheus text exposition instead. --obs-trace renders
 * the same probes as a Chrome trace with duration, counter and
 * instant events; --span-out records per-request lifecycle spans
 * (queue, routing, KV fetch, prefill, handoff, decode) as a Chrome
 * trace, and `attribute` aggregates such a span file into a
 * per-stage TTFT/e2e latency breakdown with SLO-violation
 * attribution. --harness-trace profiles the harness itself
 * (wall-clock, one track per worker). `validate` re-reads any
 * emitted Chrome trace through our own reader.
 *
 * Correctness (docs/testing.md): `check --trace` asserts the semantic
 * trace invariants (causality, stream FIFO, correlation bijection) on
 * any Chrome trace; `check --props` runs the metamorphic property
 * suite against the real engines; `check --fuzz N` runs the
 * deterministic fuzz campaign and, on failure, writes a shrunken
 * minimal repro that `check --replay` re-runs. Bare `check` runs the
 * property suite.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>

#include "analysis/boundedness.hh"
#include "analysis/sweep.hh"
#include "check/analysis.hh"
#include "check/fuzzer.hh"
#include "check/invariants.hh"
#include "check/properties.hh"
#include "check/span_check.hh"
#include "cluster/cluster.hh"
#include "common/cli.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "core/any_queue.hh"
#include "exec/pool.hh"
#include "exec/registry.hh"
#include "exec/runner.hh"
#include "exec/run_spec.hh"
#include "exec/sweep_spec.hh"
#include "fusion/recommend.hh"
#include "json/parser.hh"
#include "json/writer.hh"
#include "hw/catalog.hh"
#include "hw/serde.hh"
#include "obs/attribution.hh"
#include "obs/collector.hh"
#include "obs/harness.hh"
#include "obs/openmetrics.hh"
#include "obs/span.hh"
#include "obs/trace_probe.hh"
#include "scenario/analysis.hh"
#include "scenario/registry.hh"
#include "serving/server_sim.hh"
#include "skip/diff.hh"
#include "skip/gaps.hh"
#include "skip/op_breakdown.hh"
#include "skip/profile.hh"
#include "trace/chrome.hh"
#include "trace/timeline.hh"
#include "workload/builder.hh"
#include "workload/memory.hh"
#include "workload/model_config.hh"
#include "workload/roofline.hh"
#include "workload/serde.hh"

using namespace skipsim;

namespace
{

workload::ModelConfig
pickModel(const CliArgs &args)
{
    if (args.has("model-file"))
        return workload::loadModel(args.getString("model-file"));
    return workload::modelByName(args.getString("model", "GPT2"));
}

hw::Platform
pickPlatform(const CliArgs &args)
{
    if (args.has("platform-file"))
        return hw::loadPlatform(args.getString("platform-file"));
    return hw::platforms::byName(args.getString("platform", "GH200"));
}

/**
 * Write one collector's final metrics registry as OpenMetrics text
 * (--obs-format openmetrics). The time-series samples have no
 * OpenMetrics shape; use the JSON format for those.
 */
void
writeOpenMetrics(const std::string &path, const obs::Collector &c)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("skipctl: cannot open '" + path + "' for writing");
    out << obs::toOpenMetrics(c.metrics());
    if (!out)
        fatal("skipctl: write to '" + path + "' failed");
}

/** The unified run description each subcommand dispatches on. */
exec::RunSpec
pickSpec(const CliArgs &args)
{
    return exec::RunSpec::of(pickModel(args))
        .on(pickPlatform(args))
        .batch(static_cast<int>(args.getInt("batch", 1)))
        .seqLen(static_cast<int>(args.getInt("seq", 512)))
        .mode(args.getString("mode", "eager"))
        .seed(static_cast<std::uint64_t>(args.getInt("seed", 42)));
}

int
cmdProfile(const CliArgs &args)
{
    exec::RunSpec spec = pickSpec(args);
    skip::ProfileResult result = skip::profile(spec.profileConfig());
    std::printf("%s on %s, batch=%d, seq=%d, %s\n\n",
                spec.model().name.c_str(), spec.platform().name.c_str(),
                spec.batch(), spec.seqLen(),
                workload::execModeName(spec.mode()));
    std::fputs(result.metrics.render().c_str(), stdout);

    skip::DependencyGraph dep =
        skip::DependencyGraph::build(result.trace);
    std::puts("");
    std::fputs(skip::computeOpBreakdown(dep).render(8).c_str(), stdout);
    std::puts("");
    std::fputs(skip::analyzeGaps(dep).render(5).c_str(), stdout);

    // Trace probes (trace.launch_queue_depth / gpu_busy / cpu_busy)
    // ride the op/kernel timescale, so the sampling interval defaults
    // much finer here than for the second-scale serving horizons.
    RunFlags flags =
        parseRunFlags(args, /*defaultJobs=*/1,
                      /*defaultObsIntervalMs=*/0.1);
    std::unique_ptr<obs::Collector> collector;
    if (!flags.obsOut.empty()) {
        collector =
            std::make_unique<obs::Collector>(flags.obsIntervalMs);
        obs::probeTrace(result.trace, *collector);
        if (flags.obsFormat == "openmetrics") {
            writeOpenMetrics(flags.obsOut, *collector);
            std::printf("\nobs metrics (openmetrics) written to %s\n",
                        flags.obsOut.c_str());
        } else {
            json::writeFile(flags.obsOut, collector->toJson());
            std::printf("\nobs report (%zu samples) written to %s\n",
                        collector->sampleCount(),
                        flags.obsOut.c_str());
        }
    }

    if (args.has("trace")) {
        // With probes enabled the exported trace carries the sampled
        // counter series too, so Perfetto shows them on the same
        // timeline as the op/kernel spans.
        if (collector != nullptr)
            collector->appendTo(result.trace);
        trace::writeChromeFile(args.getString("trace"), result.trace);
        std::printf("\ntrace written to %s\n",
                    args.getString("trace").c_str());
    }
    return 0;
}

/**
 * Grid mode: fan a JSON SweepSpec across worker threads and emit a
 * JSON report (skipctl sweep --spec grid.json --jobs N).
 */
int
cmdSweepGrid(const CliArgs &args)
{
    exec::SweepSpec grid = exec::SweepSpec::load(args.getString("spec"));
    RunFlags flags = parseRunFlags(args);
    exec::Runner runner(flags.jobs);
    std::string analysis = args.getString("analysis", "profile");

    std::unique_ptr<obs::HarnessTracer> tracer;
    if (!flags.harnessTrace.empty()) {
        tracer = std::make_unique<obs::HarnessTracer>();
        runner.setHarnessTracer(tracer.get());
    }

    exec::GridReport report = runner.runGrid(grid, analysis);

    if (tracer != nullptr) {
        tracer->write(flags.harnessTrace);
        std::printf("harness trace (%zu spans) -> %s\n",
                    tracer->spanCount(), flags.harnessTrace.c_str());
    }
    // --full includes host wall-clock timings; the default report is
    // deterministic (byte-identical at any --jobs count).
    json::Value doc = args.has("full") ? report.toJson()
                                       : report.resultsJson();
    if (flags.wantOut()) {
        json::writeFile(flags.out, doc);
        std::printf("%zu/%zu points ok (%s, %d jobs, %.0f ms) -> %s\n",
                    report.points.size() - report.failed(),
                    report.points.size(), analysis.c_str(),
                    report.jobs, report.wallMs, flags.out.c_str());
    } else {
        std::puts(json::writePretty(doc).c_str());
    }
    return report.failed() == 0 ? 0 : 1;
}

int
cmdSweep(const CliArgs &args)
{
    if (args.has("spec"))
        return cmdSweepGrid(args);

    workload::ModelConfig model = pickModel(args);
    hw::Platform platform = pickPlatform(args);
    int seq = static_cast<int>(args.getInt("seq", 512));

    analysis::SweepResult sweep = analysis::runBatchSweep(
        model, platform, analysis::defaultBatchGrid(), seq);
    analysis::BoundednessResult bound =
        analysis::classifyBoundedness(sweep);

    TextTable table(model.name + " on " + platform.name);
    table.setHeader({"Batch", "TTFT (ms)", "TKLQT (ms)", "queue (ms)",
                     "Region"});
    for (const auto &point : sweep.points) {
        table.addRow({std::to_string(point.batch),
                      strprintf("%.2f", point.metrics.ilNs / 1e6),
                      strprintf("%.3f", point.metrics.tklqtNs / 1e6),
                      strprintf("%.3f",
                                point.metrics.tklqtQueueNs / 1e6),
                      analysis::boundednessName(
                          bound.classify(point.batch))});
    }
    std::fputs(parseRunFlags(args).csv ? table.renderCsv().c_str()
                                       : table.render().c_str(),
               stdout);
    return 0;
}

int
cmdFusion(const CliArgs &args)
{
    exec::RunSpec spec = pickSpec(args);
    skip::ProfileResult run = skip::profile(spec.profileConfig());
    std::fputs(fusion::recommendFromTrace(run.trace).render().c_str(),
               stdout);
    return 0;
}

int
cmdServe(const CliArgs &args)
{
    exec::RunSpec spec =
        pickSpec(args)
            .opt("rate", args.getDouble("rate", 50.0))
            .opt("max-batch",
                 static_cast<double>(args.getInt("max-batch", 32)))
            .opt("max-wait-ms", args.getDouble("max-wait-ms", 5.0));

    serving::LatencyModel latency(analysis::runBatchSweep(
        spec.model(), spec.platform(), analysis::defaultBatchGrid(),
        spec.seqLen(), spec.mode(), spec.simOptions()));
    serving::ServingConfig config = spec.servingConfig();
    RunFlags flags = parseRunFlags(args);
    std::unique_ptr<obs::Collector> collector;
    if (flags.wantObs())
        collector =
            std::make_unique<obs::Collector>(flags.obsIntervalMs);
    serving::ServingResult result =
        serving::simulateServing(latency, config, collector.get());

    double slo_ms = args.getDouble("slo-ms", 200.0);
    std::printf("serving %s on %s at %.0f rps (max batch %d):\n",
                spec.model().name.c_str(), spec.platform().name.c_str(),
                config.arrivalRatePerSec, config.maxBatch);
    std::printf("  completed %zu (%.1f rps), mean batch %.1f, "
                "utilization %.0f%%\n",
                result.completed, result.throughputRps,
                result.meanBatch, 100.0 * result.utilization);
    std::printf("  latency p50/p95/p99: %.1f / %.1f / %.1f ms -> "
                "SLO %.0f ms %s\n",
                result.p50LatencyNs / 1e6, result.p95LatencyNs / 1e6,
                result.p99LatencyNs / 1e6, slo_ms,
                result.p99LatencyNs / 1e6 <= slo_ms ? "met" : "MISSED");
    if (result.leftInQueue > 0)
        std::printf("  warning: %zu requests still queued (overload)\n",
                    result.leftInQueue);
    if (!flags.obsOut.empty() && flags.obsFormat == "openmetrics") {
        writeOpenMetrics(flags.obsOut, *collector);
        std::printf("  obs metrics (openmetrics) -> %s\n",
                    flags.obsOut.c_str());
    } else if (!flags.obsOut.empty()) {
        json::writeFile(flags.obsOut, collector->toJson());
        std::printf("  obs report (%zu samples) -> %s\n",
                    collector->sampleCount(), flags.obsOut.c_str());
    }
    if (!flags.obsTrace.empty()) {
        trace::writeChromeFile(flags.obsTrace, collector->toTrace());
        std::printf("  obs trace -> %s\n", flags.obsTrace.c_str());
    }
    return 0;
}

/**
 * Shared cluster-run pipeline: expand the spec's scenarios across
 * --jobs workers over one shared cost cache, render the tables and
 * write the requested report/obs/trace outputs. Every cluster-shaped
 * entry point — `skipctl cluster`, `skipctl run --scenario NAME` —
 * ends here, so their outputs share one determinism contract
 * (byte-identical at any jobs count and any --shards count: shards
 * partition one run's event loop, the pool fans across runs).
 */
int
runClusterSpec(cluster::ClusterSpec spec, const RunFlags &flags)
{
    // --shards overrides the spec's execution topology; the report is
    // byte-identical at any shard count (the spec echo never carries
    // it), so the flag only changes how the run executes.
    if (flags.shards > 0) {
        if (static_cast<std::size_t>(flags.shards) >
            spec.replicas.size())
            fatal(strprintf("option --shards %d exceeds the fleet's "
                            "%zu replica(s)",
                            flags.shards, spec.replicas.size()));
        spec.shards = flags.shards;
    }
    // --shard-threads likewise: pure execution topology (a worker
    // team advancing one run's shards), byte-identical output.
    if (flags.shardThreads > 0)
        spec.shardThreads = flags.shardThreads;
    // --queue swaps the engines' pending-set implementation process-
    // wide; both kinds share the (time, priority, seq) order, so this
    // too never changes output.
    if (!flags.queue.empty())
        core::setDefaultQueueKind(core::queueKindFromName(flags.queue));

    // The cost models simulate a batch grid per distinct platform —
    // the expensive part — so build them once, serially, and share
    // them read-only across scenario workers.
    cluster::CostCache costs;
    costs.build(spec);

    std::size_t scenarios = spec.scenarioCount();
    std::vector<cluster::ClusterResult> results(scenarios);

    // One collector per scenario; assembled in scenario-index order,
    // so the obs export inherits the report's determinism contract.
    std::vector<std::unique_ptr<obs::Collector>> collectors(scenarios);
    if (flags.wantObs()) {
        for (std::size_t i = 0; i < scenarios; ++i)
            collectors[i] =
                std::make_unique<obs::Collector>(flags.obsIntervalMs);
    }

    // One span log per scenario, like the collectors: each scenario
    // is simulated single-threaded, so its spans seal in event order
    // and the export stays byte-identical at any --jobs count.
    std::vector<std::unique_ptr<obs::SpanLog>> span_logs(scenarios);
    if (!flags.spanOut.empty()) {
        for (std::size_t i = 0; i < scenarios; ++i)
            span_logs[i] = std::make_unique<obs::SpanLog>();
    }

    std::unique_ptr<obs::HarnessTracer> tracer;
    if (!flags.harnessTrace.empty())
        tracer = std::make_unique<obs::HarnessTracer>();

    exec::Pool pool(flags.jobs);
    pool.run(scenarios, [&](std::size_t i) {
        std::unique_ptr<obs::HarnessTracer::Scope> span;
        if (tracer != nullptr)
            span = std::make_unique<obs::HarnessTracer::Scope>(
                *tracer, strprintf("scenario %zu", i));
        results[i] = cluster::simulateCluster(spec.scenarioAt(i), costs,
                                              collectors[i].get(),
                                              span_logs[i].get());
    });

    TextTable table(strprintf("%s x %zu replicas (%s router)",
                              spec.model.name.c_str(),
                              spec.replicas.size(),
                              cluster::routerPolicyName(spec.router)));
    table.setHeader({"Rate", "Offered", "Done", "Tput", "TTFT p50",
                     "TTFT p99", "e2e p99", "SLO %", "Goodput"});
    for (const cluster::ClusterResult &result : results)
        table.addRow({strprintf("%.0f", result.arrivalRatePerSec),
                      std::to_string(result.offered),
                      std::to_string(result.completed),
                      strprintf("%.1f", result.throughputRps),
                      strprintf("%.1f ms", result.p50TtftNs / 1e6),
                      strprintf("%.1f ms", result.p99TtftNs / 1e6),
                      strprintf("%.1f ms", result.p99E2eNs / 1e6),
                      strprintf("%.1f", 100.0 * result.sloAttainment),
                      strprintf("%.1f", result.goodputRps)});
    std::fputs(flags.csv ? table.renderCsv().c_str()
                         : table.render().c_str(),
               stdout);

    if (scenarios == 1) {
        std::puts("");
        TextTable fleet("per-replica");
        fleet.setHeader({"#", "Platform", "Routed", "Done", "Rejected",
                         "Rerouted", "Util %", "Mean act", "Peak KV"});
        const cluster::ClusterResult &result = results.front();
        for (std::size_t i = 0; i < result.replicas.size(); ++i) {
            const cluster::ReplicaStats &rep = result.replicas[i];
            fleet.addRow(
                {std::to_string(i) + (rep.crashed ? "!" : ""),
                 rep.platformName, std::to_string(rep.routed),
                 std::to_string(rep.completed),
                 std::to_string(rep.rejected),
                 std::to_string(rep.rerouted),
                 strprintf("%.0f", 100.0 * rep.utilization),
                 strprintf("%.1f", rep.meanActive),
                 formatBytes(
                     static_cast<std::size_t>(rep.peakKvBytes))});
        }
        std::fputs(fleet.render().c_str(), stdout);

        if (!result.tenants.empty()) {
            std::puts("");
            TextTable tiers("per-tenant");
            tiers.setHeader({"Tenant", "Offered", "Done", "SLO %",
                             "Goodput", "TTFT p99", "e2e p99"});
            for (const cluster::TenantStats &tier : result.tenants)
                tiers.addRow(
                    {tier.name, std::to_string(tier.offered),
                     std::to_string(tier.completed),
                     strprintf("%.1f", 100.0 * tier.sloAttainment),
                     strprintf("%.1f", tier.goodputRps),
                     strprintf("%.1f ms", tier.p99TtftNs / 1e6),
                     strprintf("%.1f ms", tier.p99E2eNs / 1e6)});
            std::fputs(tiers.render().c_str(), stdout);
        }
    }

    if (flags.wantOut()) {
        json::Object doc;
        doc.set("spec", spec.toJson());
        json::Value::Array scenario_docs;
        for (const cluster::ClusterResult &result : results)
            scenario_docs.push_back(result.toJson());
        doc.set("scenarios", json::Value(std::move(scenario_docs)));
        json::writeFile(flags.out, json::Value(doc));
        std::printf("%zu scenario(s) -> %s\n", scenarios,
                    flags.out.c_str());
    }

    if (!flags.obsOut.empty() && flags.obsFormat == "openmetrics") {
        // OpenMetrics is a flat text exposition of the final registry
        // state; the per-scenario time series has no shape there.
        if (scenarios > 1)
            warnOnce("cluster-obs-openmetrics-multi",
                     "--obs-format openmetrics exposes scenario 0 "
                     "only; use --obs-format json for the full sweep");
        writeOpenMetrics(flags.obsOut, *collectors.front());
        std::printf("obs metrics (openmetrics) -> %s\n",
                    flags.obsOut.c_str());
    } else if (!flags.obsOut.empty()) {
        json::Object doc;
        doc.set("interval_ms", flags.obsIntervalMs);
        json::Value::Array scenario_docs;
        for (std::size_t i = 0; i < scenarios; ++i) {
            json::Object entry;
            entry.set("rate", results[i].arrivalRatePerSec);
            entry.set("obs", collectors[i]->toJson());
            scenario_docs.push_back(json::Value(std::move(entry)));
        }
        doc.set("scenarios", json::Value(std::move(scenario_docs)));
        json::writeFile(flags.obsOut, json::Value(doc));
        std::printf("obs report -> %s\n", flags.obsOut.c_str());
    }
    if (!flags.obsTrace.empty()) {
        if (scenarios > 1)
            warnOnce("cluster-obs-trace-multi",
                     "--obs-trace renders scenario 0 only; use "
                     "--obs-out for the full sweep");
        trace::writeChromeFile(flags.obsTrace,
                               collectors.front()->toTrace());
        std::printf("obs trace -> %s\n", flags.obsTrace.c_str());
    }
    if (!flags.spanOut.empty()) {
        if (scenarios > 1)
            warnOnce("cluster-span-out-multi",
                     "--span-out writes scenario 0 only; run one "
                     "scenario per span trace");
        span_logs.front()->writeChromeFile(flags.spanOut);
        std::printf("span trace (%zu requests, %zu spans) -> %s\n",
                    span_logs.front()->requestCount(),
                    span_logs.front()->spans().size(),
                    flags.spanOut.c_str());
    }
    if (tracer != nullptr) {
        tracer->write(flags.harnessTrace);
        std::printf("harness trace (%zu spans) -> %s\n",
                    tracer->spanCount(), flags.harnessTrace.c_str());
    }
    return 0;
}

/**
 * Multi-replica cluster scenario (skipctl cluster --spec cluster.json
 * [--jobs N] [--out report.json]). The spec file routes through the
 * scenario registry's raw "cluster" pass-through, so this subcommand
 * is sugar for `skipctl run --scenario cluster --spec cluster.json`.
 * A spec with a "rates" axis expands to one scenario per rate, fanned
 * across --jobs workers; results are assembled in scenario order, so
 * the report is byte-identical at any jobs count.
 */
int
cmdCluster(const CliArgs &args)
{
    if (!args.has("spec")) {
        std::fprintf(stderr,
                     "usage: skipctl cluster --spec cluster.json "
                     "[--jobs N] [--shards N] [--shard-threads N] "
                     "[--queue heap|calendar] [--out report.json] "
                     "[--obs-out obs.json] [--obs-trace trace.json] "
                     "[--obs-interval-ms MS] "
                     "[--harness-trace harness.json]\n");
        return 2;
    }
    cluster::ClusterSpec spec = scenario::buildScenario(
        "cluster",
        json::parseFile(args.getString("spec")).asObject());
    return runClusterSpec(spec, parseRunFlags(args));
}

/**
 * Registry-driven run (skipctl run --scenario NAME [--spec s.json]).
 * The scenario builder constructs the whole cluster run — workload,
 * arrival process, platform config — from the parameter file; the
 * shared pipeline above executes it. --quick caps the horizon (CI
 * smoke), applied before seeding workers so quick reports keep the
 * byte-identical-at-any-jobs contract.
 */
int
cmdRun(const CliArgs &args)
{
    if (!args.has("scenario")) {
        std::fprintf(stderr,
                     "usage: skipctl run --scenario NAME "
                     "[--spec params.json] [--quick] [--jobs N] "
                     "[--shards N] "
                     "[--out report.json] [--obs-out obs.json] "
                     "[--obs-trace trace.json] [--obs-interval-ms MS] "
                     "[--obs-format json|openmetrics] "
                     "[--span-out spans.json] "
                     "[--harness-trace harness.json]\n"
                     "scenarios: %s\n",
                     join(scenario::scenarioNames(), ", ").c_str());
        return 2;
    }
    json::Object params;
    if (args.has("spec"))
        params = json::parseFile(args.getString("spec")).asObject();
    RunFlags flags = parseRunFlags(args);
    cluster::ClusterSpec spec = scenario::buildScenario(
        args.getString("scenario"), params);
    if (flags.quick)
        spec.horizonSec = std::min(spec.horizonSec, 2.0);
    std::printf("scenario %s: %s\n",
                args.getString("scenario").c_str(),
                scenario::scenarioByName(args.getString("scenario"))
                    .description.c_str());
    return runClusterSpec(spec, flags);
}

/**
 * List registered scenarios (skipctl scenarios [--json]). --json emits
 * the machine-readable registry — name, description and accepted
 * parameters per scenario — for tooling.
 */
int
cmdScenarios(const CliArgs &args)
{
    if (args.has("json")) {
        std::puts(json::writePretty(scenario::scenarioListToJson())
                      .c_str());
        return 0;
    }
    for (const scenario::Scenario &entry : scenario::scenarioList())
        std::printf("%-16s %s\n", entry.name.c_str(),
                    entry.description.c_str());
    return 0;
}

/**
 * Latency attribution over an exported span trace (skipctl attribute
 * <spans.json> [--json] [--ttft-slo-ms MS] [--e2e-slo-ms MS]).
 * Re-checks the stage-partition invariant before attributing — a
 * broken partition would silently misattribute time — and judges the
 * SLO-violation table against the thresholds the run embedded in
 * skipsimMeta unless overridden on the command line.
 */
int
cmdAttribute(const CliArgs &args)
{
    if (args.positional().size() < 2) {
        std::fprintf(stderr,
                     "usage: skipctl attribute <spans.json> [--json] "
                     "[--ttft-slo-ms MS] [--e2e-slo-ms MS]\n");
        return 2;
    }
    const std::string &path = args.positional()[1];
    obs::SpanFile file = obs::readSpanFile(path);

    check::SpanCheckReport report = check::checkSpans(file.spans);
    if (!report.ok()) {
        std::fprintf(stderr, "skipctl attribute: %s violates the "
                             "span invariants:\n",
                     path.c_str());
        std::fputs(report.render().c_str(), stderr);
        return 1;
    }

    auto meta_ms = [&file](const char *key) {
        auto it = file.meta.find(key);
        return it == file.meta.end()
            ? std::numeric_limits<double>::infinity()
            : std::atof(it->second.c_str());
    };
    obs::AttributionReport attribution = obs::attributeSpans(
        file.spans,
        args.getDouble("ttft-slo-ms", meta_ms("ttft_slo_ms")),
        args.getDouble("e2e-slo-ms", meta_ms("e2e_slo_ms")));

    if (args.has("json")) {
        std::puts(json::writePretty(attribution.toJson()).c_str());
        return 0;
    }
    std::printf("%s: %zu spans across %zu completed requests\n\n",
                path.c_str(), file.spans.size(), attribution.requests);
    std::fputs(attribution.render().c_str(), stdout);
    return 0;
}

/**
 * Round-trip check: re-read an emitted Chrome trace through our own
 * reader and report what survived (skipctl validate <trace.json>).
 * Exits non-zero when the file cannot be parsed or contains nothing.
 */
int
cmdValidate(const CliArgs &args)
{
    if (args.positional().size() < 2) {
        std::fprintf(stderr, "usage: skipctl validate <trace.json>\n");
        return 2;
    }
    const std::string &path = args.positional()[1];
    trace::Trace loaded = trace::readChromeFile(path);
    std::printf("%s: %zu events, %zu counters, %zu instants\n",
                path.c_str(), loaded.events().size(),
                loaded.counters().size(), loaded.instants().size());
    if (loaded.events().empty() && loaded.counters().empty() &&
        loaded.instants().empty()) {
        std::fprintf(stderr,
                     "skipctl validate: %s parsed but holds no "
                     "events\n",
                     path.c_str());
        return 1;
    }
    return 0;
}

/**
 * Correctness front end (skipctl check). Four modes:
 *  --trace t.json   semantic invariant check of one Chrome trace;
 *  --props          metamorphic property suite (the default mode);
 *  --fuzz N         deterministic fuzz campaign, shrunken repro on
 *                   failure (--seed, --jobs, --quick, --repro-dir);
 *  --replay r.json  re-run a written repro case.
 * Exit code 0 only when every requested check passed.
 */
int
cmdCheck(const CliArgs &args)
{
    if (args.has("trace")) {
        const std::string path = args.getString("trace");
        check::TraceCheckReport report =
            check::validateTrace(trace::readChromeFile(path));
        std::printf("%s\n", path.c_str());
        std::fputs(report.render().c_str(), stdout);
        return report.ok() ? 0 : 1;
    }

    if (args.has("replay")) {
        const std::string path = args.getString("replay");
        check::FuzzCase repro =
            check::FuzzCase::fromJson(json::parseFile(path));
        check::Fuzzer fuzzer;
        std::vector<std::string> problems = fuzzer.runCase(repro);
        std::printf("replay %s (%s case, seed %llu): %s\n",
                    path.c_str(), check::fuzzKindName(repro.kind),
                    static_cast<unsigned long long>(repro.seed),
                    problems.empty() ? "OK" : "FAIL");
        for (const std::string &problem : problems)
            std::printf("  %s\n", problem.c_str());
        return problems.empty() ? 0 : 1;
    }

    if (args.has("fuzz")) {
        // The fuzzer's historical default seed is 1, not RunFlags' 42;
        // campaigns recorded in CI scripts depend on it.
        check::FuzzOptions opts;
        opts.cases =
            static_cast<std::size_t>(args.getInt("fuzz", 100));
        opts.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
        RunFlags flags = parseRunFlags(args);
        opts.jobs = flags.jobs;
        opts.quick = flags.quick;
        opts.reproDir = args.getString("repro-dir", ".");
        check::FuzzReport report = check::Fuzzer(opts).run();
        std::fputs(report.render().c_str(), stdout);
        return report.ok() ? 0 : 1;
    }

    std::vector<check::PropertyResult> results =
        check::runProperties(args.getString("filter", ""));
    std::fputs(check::renderProperties(results).c_str(), stdout);
    for (const check::PropertyResult &result : results) {
        if (!result.passed)
            return 1;
    }
    return results.empty() ? 1 : 0;
}

int
cmdAnalyze(const CliArgs &args)
{
    if (args.positional().size() < 2) {
        std::fprintf(stderr, "usage: skipctl analyze <trace.json>\n");
        return 2;
    }
    trace::Trace loaded =
        trace::readChromeFile(args.positional()[1]);
    skip::DependencyGraph dep =
        skip::DependencyGraph::build(std::move(loaded));
    std::fputs(skip::computeMetrics(dep).render().c_str(), stdout);
    std::puts("");
    trace::TimelineOptions opts;
    opts.width = 92;
    std::fputs(trace::renderTimeline(dep.trace(), opts).c_str(),
               stdout);
    if (args.has("fusion")) {
        std::puts("");
        std::fputs(
            fusion::recommendFromTrace(dep.trace()).render().c_str(),
            stdout);
    }
    return 0;
}

int
cmdDiff(const CliArgs &args)
{
    if (args.positional().size() < 3) {
        std::fprintf(stderr,
                     "usage: skipctl diff <before.json> <after.json>\n");
        return 2;
    }
    auto metrics_of = [](const std::string &path) {
        return skip::computeMetrics(skip::DependencyGraph::build(
            trace::readChromeFile(path)));
    };
    skip::RunDiff diff = skip::diffRuns(
        metrics_of(args.positional()[1]),
        metrics_of(args.positional()[2]));
    std::fputs(diff.render().c_str(), stdout);
    return 0;
}

int
cmdRoofline(const CliArgs &args)
{
    workload::ModelConfig model = pickModel(args);
    hw::Platform platform = pickPlatform(args);
    workload::BuildOptions opts;
    opts.batch = static_cast<int>(args.getInt("batch", 1));
    opts.seqLen = static_cast<int>(args.getInt("seq", 512));
    workload::OperatorGraph graph =
        workload::buildPrefillGraph(model, opts);
    workload::RooflineReport report =
        workload::rooflineReport(graph, platform.gpu);
    std::printf("%s on %s, batch=%d, seq=%d\n", model.name.c_str(),
                platform.gpu.name.c_str(), opts.batch, opts.seqLen);
    std::fputs(report.render().c_str(), stdout);
    return 0;
}

int
cmdMemory(const CliArgs &args)
{
    workload::ModelConfig model = pickModel(args);
    int seq = static_cast<int>(args.getInt("seq", 512));
    TextTable table(model.name + " device-memory footprint");
    table.setHeader({"Batch", "Weights", "KV cache", "Activations",
                     "Total"});
    for (int batch : {1, 8, 32, 128}) {
        workload::MemoryFootprint fp =
            workload::estimateMemory(model, batch, seq);
        table.addRow({std::to_string(batch),
                      formatBytes(fp.weightsBytes),
                      formatBytes(fp.kvCacheBytes),
                      formatBytes(fp.activationBytes),
                      formatBytes(fp.totalBytes())});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\nKV-resident sequences per platform:");
    for (const auto &platform : hw::platforms::all()) {
        std::printf("  %-12s %d\n", platform.name.c_str(),
                    workload::maxResidentSequences(
                        model, seq, platform.gpu.hbmBytes()));
    }
    return 0;
}

int
cmdList(bool platforms)
{
    if (platforms) {
        for (const auto &p : hw::platforms::all())
            std::printf("%-12s %s  CPU: %s  GPU: %s\n", p.name.c_str(),
                        hw::couplingName(p.coupling), p.cpu.name.c_str(),
                        p.gpu.name.c_str());
    } else {
        for (const auto &m : workload::allModels())
            std::printf("%-18s %-13s %4d layers  %5.0fM params\n",
                        m.name.c_str(), workload::familyName(m.family),
                        m.layers, m.paramsM());
    }
    return 0;
}

int
cmdAnalyses()
{
    for (const auto &name : exec::analysisNames())
        std::printf("%s\n", name.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    if (args.positional().empty()) {
        std::fprintf(stderr,
                     "usage: skipctl "
                     "<profile|sweep|fusion|serve|cluster|run|"
                     "scenarios|attribute|validate|check|analyze|diff|"
                     "roofline|memory|platforms|models|analyses> "
                     "[options]\n");
        return 2;
    }
    const std::string &cmd = args.positional().front();
    // check and scenario depend on the engines, so their analyses
    // register here rather than as exec built-ins (see
    // check/analysis.hh, scenario/analysis.hh).
    check::registerCheckAnalysis();
    scenario::registerScenarioAnalysis();
    try {
        if (cmd == "profile")
            return cmdProfile(args);
        if (cmd == "sweep")
            return cmdSweep(args);
        if (cmd == "fusion")
            return cmdFusion(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "cluster")
            return cmdCluster(args);
        if (cmd == "run")
            return cmdRun(args);
        if (cmd == "scenarios")
            return cmdScenarios(args);
        if (cmd == "attribute")
            return cmdAttribute(args);
        if (cmd == "validate")
            return cmdValidate(args);
        if (cmd == "check")
            return cmdCheck(args);
        if (cmd == "analyze")
            return cmdAnalyze(args);
        if (cmd == "diff")
            return cmdDiff(args);
        if (cmd == "roofline")
            return cmdRoofline(args);
        if (cmd == "memory")
            return cmdMemory(args);
        if (cmd == "platforms")
            return cmdList(true);
        if (cmd == "models")
            return cmdList(false);
        if (cmd == "analyses")
            return cmdAnalyses();
        std::fprintf(stderr, "skipctl: unknown command '%s'\n",
                     cmd.c_str());
        return 2;
    } catch (const FatalError &err) {
        std::fprintf(stderr, "skipctl: %s\n", err.what());
        return 1;
    }
}
