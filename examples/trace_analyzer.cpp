/**
 * @file
 * Offline trace analyzer: run SKIP on an existing Chrome-trace JSON
 * file (e.g. a PyTorch Profiler / Kineto export, or a trace produced
 * by this library) — no simulation involved. Demonstrates that the
 * analysis layer is decoupled from the execution substrate.
 *
 * Usage: trace_analyzer <trace.json> [--topk 10] [--fusion]
 *        trace_analyzer --demo        (writes + analyzes a demo trace)
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/strutil.hh"
#include "fusion/recommend.hh"
#include "hw/catalog.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "skip/op_breakdown.hh"
#include "skip/profile.hh"
#include "trace/chrome.hh"
#include "trace/timeline.hh"
#include "workload/model_config.hh"

using namespace skipsim;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);

    std::string path;
    if (args.has("demo")) {
        // Produce a demo trace so the example is runnable standalone.
        path = "/tmp/skipsim_demo_trace.json";
        skip::ProfileResult run = skip::profilePrefill(
            workload::gpt2(), hw::platforms::gh200(), 2);
        trace::writeChromeFile(path, run.trace);
        std::printf("demo trace written to %s\n\n", path.c_str());
    } else if (!args.positional().empty()) {
        path = args.positional().front();
    } else {
        std::fprintf(stderr,
                     "usage: trace_analyzer <trace.json> [--topk N] "
                     "[--fusion] | trace_analyzer --demo\n");
        return 2;
    }

    trace::Trace loaded = trace::readChromeFile(path);
    std::printf("loaded %zu events", loaded.size());
    if (!loaded.meta("model").empty())
        std::printf(" (model %s, platform %s, batch %s)",
                    loaded.meta("model").c_str(),
                    loaded.meta("platform").c_str(),
                    loaded.meta("batch").c_str());
    std::puts("\n");

    auto problems = loaded.validate();
    for (const auto &problem : problems)
        std::printf("trace warning: %s\n", problem.c_str());

    skip::DependencyGraph dep =
        skip::DependencyGraph::build(std::move(loaded));
    skip::MetricsReport metrics = skip::computeMetrics(dep);
    std::fputs(metrics.render().c_str(), stdout);

    std::puts("");
    std::fputs(skip::computeOpBreakdown(dep).render(8).c_str(), stdout);
    std::puts("");
    trace::TimelineOptions timeline_opts;
    timeline_opts.width = 92;
    std::fputs(trace::renderTimeline(dep.trace(), timeline_opts).c_str(),
               stdout);

    long topk = args.getInt("topk", 10);
    std::puts("\nTop kernels by accumulated launch+queue time:");
    for (const auto &stat : metrics.topK(
             static_cast<std::size_t>(topk),
             skip::TopKBy::LaunchOverhead)) {
        std::printf("  %-44s x%-5zu total launch %s\n",
                    stat.name.c_str(), stat.count,
                    formatNs(stat.totalLaunchNs).c_str());
    }

    if (args.has("fusion")) {
        std::puts("");
        fusion::FusionReport report =
            fusion::recommendFromTrace(dep.trace());
        std::fputs(report.render().c_str(), stdout);
    }
    return 0;
}
