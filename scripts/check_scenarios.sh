#!/bin/sh
# Byte-level determinism gate for the scenario registry: run every
# registered scenario through `skipctl run --scenario NAME` at --jobs 1
# and --jobs 8 and diff the report JSON — and the lifecycle span trace
# (--span-out) — byte for byte. A (scenario, params) pair must fully
# determine both regardless of worker count — this is the contract
# that makes parallel sweeps (and span-based attribution) trustworthy.
# A second pass byte-diffs --shards 1 vs --shards 4 on a 4-replica
# fleet per scenario: partitioning one run's event loop across engine
# shards must be equally invisible in every output.
#
# Usage: check_scenarios.sh [path/to/skipctl] [workdir]
#
# Defaults assume the standard build tree (build/examples/skipctl).
# Also smoke-checks `skipctl scenarios` (the listing must include every
# name we are about to run) and the typo suggestion on unknown names.
set -e

cd "$(dirname "$0")/.."
SKIPCTL="${1:-build/examples/skipctl}"
WORKDIR="${2:-build/scenario_diff}"

if [ ! -x "$SKIPCTL" ]; then
    echo "check_scenarios.sh: skipctl not found at $SKIPCTL" >&2
    exit 1
fi
mkdir -p "$WORKDIR"

# The listing is the source of truth for what to run: first column of
# every non-empty line.
"$SKIPCTL" scenarios > "$WORKDIR/listing.txt"
NAMES=$(awk 'NF > 0 { print $1 }' "$WORKDIR/listing.txt")
if [ -z "$NAMES" ]; then
    echo "check_scenarios.sh: 'skipctl scenarios' listed nothing" >&2
    exit 1
fi

# Unknown names must fail with the nearest-match suggestion.
if "$SKIPCTL" run --scenario mmpp-diurnel --quick \
        > "$WORKDIR/typo.txt" 2>&1; then
    echo "check_scenarios.sh: typo'd scenario unexpectedly ran" >&2
    exit 1
fi
grep -q "did you mean" "$WORKDIR/typo.txt" || {
    echo "check_scenarios.sh: unknown-scenario error lacks suggestion" >&2
    cat "$WORKDIR/typo.txt" >&2
    exit 1
}

STATUS=0
for NAME in $NAMES; do
    # The raw "cluster" scenario needs a spec file; reuse the smoke spec
    # the ctest suite already drives through `skipctl cluster`.
    SPEC_ARGS=""
    if [ "$NAME" = "cluster" ]; then
        SPEC_ARGS="--spec tests/data/cluster_smoke.json"
    fi
    for JOBS in 1 8; do
        # The table echoes the --out/--span-out paths, which
        # necessarily differ between the two runs; drop those lines
        # before comparing.
        "$SKIPCTL" run --scenario "$NAME" $SPEC_ARGS --quick \
            --jobs "$JOBS" --out "$WORKDIR/$NAME.jobs$JOBS.json" \
            --span-out "$WORKDIR/$NAME.spans$JOBS.json" |
            grep -v -e "scenario(s) ->" -e "span trace" \
            > "$WORKDIR/$NAME.jobs$JOBS.txt"
    done
    if cmp -s "$WORKDIR/$NAME.jobs1.json" "$WORKDIR/$NAME.jobs8.json" &&
       cmp -s "$WORKDIR/$NAME.spans1.json" "$WORKDIR/$NAME.spans8.json" &&
       cmp -s "$WORKDIR/$NAME.jobs1.txt" "$WORKDIR/$NAME.jobs8.txt"; then
        echo "scenario $NAME: --jobs 1 == --jobs 8 (report + spans + table)"
    else
        echo "scenario $NAME: --jobs 1 and --jobs 8 outputs DIFFER" >&2
        STATUS=1
    fi
done

# Shard-identity pass: same gate, but the axis is the engine shard
# count. The default fleets are smaller than 4 replicas (and --shards
# must not exceed the fleet), so every scenario gets a params file
# raising the fleet to 4; the raw "cluster" scenario drives the
# 4-replica fault+dispatch spec, and disagg splits its pools 2:2.
printf '{"replicas": 4}\n' > "$WORKDIR/shard_params.json"
printf '{"prefill-replicas": 2, "decode-replicas": 2}\n' \
    > "$WORKDIR/shard_params_disagg.json"
for NAME in $NAMES; do
    SPEC_ARGS="--spec $WORKDIR/shard_params.json"
    if [ "$NAME" = "cluster" ]; then
        SPEC_ARGS="--spec tests/data/cluster_shard.json"
    elif [ "$NAME" = "disagg" ]; then
        SPEC_ARGS="--spec $WORKDIR/shard_params_disagg.json"
    fi
    for SHARDS in 1 4; do
        "$SKIPCTL" run --scenario "$NAME" $SPEC_ARGS --quick \
            --shards "$SHARDS" \
            --out "$WORKDIR/$NAME.shards$SHARDS.json" \
            --span-out "$WORKDIR/$NAME.shardspans$SHARDS.json" |
            grep -v -e "scenario(s) ->" -e "span trace" \
            > "$WORKDIR/$NAME.shards$SHARDS.txt"
    done
    if cmp -s "$WORKDIR/$NAME.shards1.json" \
              "$WORKDIR/$NAME.shards4.json" &&
       cmp -s "$WORKDIR/$NAME.shardspans1.json" \
              "$WORKDIR/$NAME.shardspans4.json" &&
       cmp -s "$WORKDIR/$NAME.shards1.txt" \
              "$WORKDIR/$NAME.shards4.txt"; then
        echo "scenario $NAME: --shards 1 == --shards 4 (report + spans + table)"
    else
        echo "scenario $NAME: --shards 1 and --shards 4 outputs DIFFER" >&2
        STATUS=1
    fi
done
exit $STATUS
