#!/bin/sh
# Build the exec engine, discrete-event core, and correctness-subsystem
# tests under ThreadSanitizer and run them.
# Equivalent to `cmake --preset tsan && cmake --build --preset tsan &&
# ctest --preset tsan` on CMake >= 3.21; spelled out here so it also
# works with the project's minimum CMake.
set -e

cd "$(dirname "$0")/.."
cmake -B build-tsan -S . -DSKIPSIM_TSAN=ON
cmake --build build-tsan -j --target test_exec --target test_cluster \
    --target test_obs --target test_core --target test_check \
    --target test_scenario --target test_span --target test_shard \
    --target test_concurrent --target skipctl
ctest --test-dir build-tsan -L "exec|core|check" --output-on-failure "$@"
# A fuzz campaign fanned over 8 workers: every case re-runs its engine
# on exec::Pool workers and byte-compares, so TSan sees the full
# parallel read/write surface of all three engines.
./build-tsan/examples/skipctl check --fuzz 200 --seed 1 --quick --jobs 8
