#!/bin/sh
# Build the exec engine and discrete-event core tests under
# ThreadSanitizer and run them.
# Equivalent to `cmake --preset tsan && cmake --build --preset tsan &&
# ctest --preset tsan` on CMake >= 3.21; spelled out here so it also
# works with the project's minimum CMake.
set -e

cd "$(dirname "$0")/.."
cmake -B build-tsan -S . -DSKIPSIM_TSAN=ON
cmake --build build-tsan -j --target test_exec --target test_cluster \
    --target test_obs --target test_core
ctest --test-dir build-tsan -L "exec|core" --output-on-failure "$@"
