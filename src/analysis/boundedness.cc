#include "analysis/boundedness.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/knee.hh"

namespace skipsim::analysis
{

const char *
boundednessName(Boundedness b)
{
    switch (b) {
      case Boundedness::CpuBound: return "CPU-bound";
      case Boundedness::GpuBound: return "GPU-bound";
    }
    panic("boundednessName: invalid Boundedness");
}

Boundedness
BoundednessResult::classify(int batch) const
{
    if (transitionBatch && batch >= *transitionBatch)
        return Boundedness::GpuBound;
    return Boundedness::CpuBound;
}

BoundednessResult
classifyBoundedness(const SweepResult &sweep, double margin,
                    double queue_dominated_avg_launch_ns)
{
    if (sweep.points.empty())
        fatal("classifyBoundedness: empty sweep");

    BoundednessResult result;

    // GPU-bound from the start: the smallest batch already queues.
    const auto &first = sweep.points.front();
    if (first.metrics.avgLaunchNs > queue_dominated_avg_launch_ns) {
        result.plateauTklqtNs = first.metrics.tklqtNs;
        result.lastCpuBoundBatch = 0;
        result.transitionBatch = first.batch;
        return result;
    }

    stats::KneeResult knee =
        stats::detectKnee(sweep.tklqtSeries(), margin);

    result.plateauTklqtNs = knee.plateauLevel;
    result.lastCpuBoundBatch =
        static_cast<int>(std::llround(knee.lastPlateauX));
    if (knee.kneeX)
        result.transitionBatch =
            static_cast<int>(std::llround(*knee.kneeX));
    return result;
}

SweetSpot
findSweetSpot(const SweepResult &sweep, double max_idle_frac)
{
    if (sweep.points.empty())
        fatal("findSweetSpot: empty sweep");
    if (max_idle_frac <= 0.0 || max_idle_frac >= 1.0)
        fatal("findSweetSpot: max_idle_frac must be in (0, 1)");

    auto worse_idle = [](const SweepPoint &p) {
        double il = std::max(1.0, p.metrics.ilNs);
        return std::max(p.metrics.gpuIdleNs / il,
                        p.metrics.cpuIdleNs / il);
    };

    // Longest contiguous balanced run.
    int best_start = -1;
    int best_len = 0;
    int cur_start = -1;
    int cur_len = 0;
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        if (worse_idle(sweep.points[i]) <= max_idle_frac) {
            if (cur_len == 0)
                cur_start = static_cast<int>(i);
            ++cur_len;
            if (cur_len > best_len) {
                best_len = cur_len;
                best_start = cur_start;
            }
        } else {
            cur_len = 0;
        }
    }

    SweetSpot spot;
    if (best_len > 0) {
        spot.minBatch =
            sweep.points[static_cast<std::size_t>(best_start)].batch;
        spot.maxBatch =
            sweep.points[static_cast<std::size_t>(best_start + best_len -
                                                  1)].batch;
        return spot;
    }

    // No balanced batch: the least-bad single point.
    std::size_t best_idx = 0;
    for (std::size_t i = 1; i < sweep.points.size(); ++i) {
        if (worse_idle(sweep.points[i]) <
            worse_idle(sweep.points[best_idx])) {
            best_idx = i;
        }
    }
    spot.minBatch = sweep.points[best_idx].batch;
    spot.maxBatch = spot.minBatch;
    return spot;
}

} // namespace skipsim::analysis
