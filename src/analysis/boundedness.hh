/**
 * @file
 * PU-boundedness classification from TKLQT curves (paper Sec. V-B).
 * In the CPU-bound region TKLQT is a flat plateau of pure launch
 * overheads; once kernel queuing dominates, TKLQT grows with batch
 * size — the inflection (star marker in Fig. 6) is the transition.
 */

#ifndef SKIPSIM_ANALYSIS_BOUNDEDNESS_HH
#define SKIPSIM_ANALYSIS_BOUNDEDNESS_HH

#include <optional>
#include <string>

#include "analysis/sweep.hh"

namespace skipsim::analysis
{

/** Which processing unit bounds a workload at a given batch size. */
enum class Boundedness { CpuBound, GpuBound };

/** @return "CPU-bound" / "GPU-bound". */
const char *boundednessName(Boundedness b);

/** Outcome of classifying one sweep. */
struct BoundednessResult
{
    /** TKLQT level of the CPU-bound plateau, ns. */
    double plateauTklqtNs = 0.0;

    /** Largest batch size still on the plateau. */
    int lastCpuBoundBatch = 1;

    /**
     * First batch size in the GPU-bound region (the star marker);
     * unset when the sweep never leaves the CPU-bound region.
     */
    std::optional<int> transitionBatch;

    /** Classify one batch size against the detected transition. */
    Boundedness classify(int batch) const;
};

/**
 * Classify a sweep's PU-boundedness from its TKLQT series.
 *
 * The CPU-bound plateau is pure launch overhead; queuing raises TKLQT
 * by an order of magnitude once the GPU saturates, so the default
 * departure margin is 8x. A sweep whose smallest batch already shows a
 * mean launch-to-start latency far above any launch overhead (>
 * queue_dominated_avg_launch_ns) never had a CPU-bound region: it is
 * classified GPU-bound from the first batch.
 *
 * @param sweep batch sweep (ascending batches).
 * @param margin multiplicative plateau-departure threshold (see
 *        stats::detectKnee).
 * @param queue_dominated_avg_launch_ns mean launch-to-start latency at
 *        the smallest batch above which the workload is queue-bound
 *        from the start (launch overheads are 2-3 us on every
 *        platform; 50 us means ~20x queuing).
 */
BoundednessResult classifyBoundedness(
    const SweepResult &sweep, double margin = 8.0,
    double queue_dominated_avg_launch_ns = 50e3);

/**
 * Balanced-utilization "sweet spot" (paper contribution 5): the batch
 * range where neither PU sits mostly idle.
 */
struct SweetSpot
{
    int minBatch = 1;
    int maxBatch = 1;
};

/**
 * Find the contiguous batch range where both GPU idle and CPU idle
 * fractions of IL stay at or below @p max_idle_frac. When no batch
 * qualifies, returns the single batch minimizing the worse idle
 * fraction.
 */
SweetSpot findSweetSpot(const SweepResult &sweep,
                        double max_idle_frac = 0.5);

} // namespace skipsim::analysis

#endif // SKIPSIM_ANALYSIS_BOUNDEDNESS_HH
