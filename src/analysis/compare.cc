#include "analysis/compare.hh"

#include <algorithm>

#include "common/logging.hh"

namespace skipsim::analysis
{

Crossover
findCrossover(const SweepResult &challenger, const SweepResult &baseline)
{
    std::vector<int> shared;
    for (const auto &point : challenger.points) {
        for (const auto &base_point : baseline.points) {
            if (base_point.batch == point.batch) {
                shared.push_back(point.batch);
                break;
            }
        }
    }
    if (shared.empty())
        fatal("findCrossover: sweeps share no batch sizes");
    std::sort(shared.begin(), shared.end());

    // The crossover is defined by the *trailing* run of challenger
    // wins: transient early wins do not count as having crossed over.
    Crossover result;
    for (auto it = shared.rbegin(); it != shared.rend(); ++it) {
        double chal = challenger.at(*it).metrics.ilNs;
        double base = baseline.at(*it).metrics.ilNs;
        if (chal < base)
            result.firstWinBatch = *it;
        else
            break;
    }
    if (result.firstWinBatch) {
        for (int batch : shared) {
            if (batch < *result.firstWinBatch)
                result.crossoverPoint = batch;
        }
    }
    return result;
}

double
speedupAt(const SweepResult &challenger, const SweepResult &baseline,
          int batch)
{
    double chal = challenger.at(batch).metrics.ilNs;
    double base = baseline.at(batch).metrics.ilNs;
    if (chal <= 0.0)
        fatal("speedupAt: challenger latency is non-positive");
    return base / chal;
}

std::vector<ComparisonRow>
comparePlatforms(const std::vector<SweepResult> &sweeps)
{
    if (sweeps.empty())
        fatal("comparePlatforms: no sweeps");

    std::vector<ComparisonRow> rows;
    for (const auto &point : sweeps.front().points) {
        bool shared = true;
        for (const auto &sweep : sweeps) {
            bool found = false;
            for (const auto &p : sweep.points) {
                if (p.batch == point.batch)
                    found = true;
            }
            if (!found)
                shared = false;
        }
        if (!shared)
            continue;
        ComparisonRow row;
        row.batch = point.batch;
        for (const auto &sweep : sweeps)
            row.latencyNs.push_back(sweep.at(point.batch).metrics.ilNs);
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace skipsim::analysis
