/**
 * @file
 * Cross-platform comparisons: latency crossover points (CPs, paper
 * Sec. V-D) and speedup tables between a closely-coupled platform and
 * loosely-coupled baselines.
 */

#ifndef SKIPSIM_ANALYSIS_COMPARE_HH
#define SKIPSIM_ANALYSIS_COMPARE_HH

#include <optional>
#include <string>
#include <vector>

#include "analysis/sweep.hh"

namespace skipsim::analysis
{

/** Crossover outcome between two platforms on the same workload. */
struct Crossover
{
    /**
     * First measured batch where the challenger's latency drops below
     * the baseline's; unset when it never does.
     */
    std::optional<int> firstWinBatch;

    /**
     * Last measured batch where the baseline still wins (the paper's
     * "CP": "beyond the CP of BS=16, GH200 reduces TTFT"); unset when
     * the challenger wins from the smallest batch.
     */
    std::optional<int> crossoverPoint;
};

/**
 * Find the latency crossover of @p challenger (e.g. GH200) against
 * @p baseline (e.g. Intel+H100) on their shared batch grid.
 * @throws skipsim::FatalError when the sweeps share no batch sizes.
 */
Crossover findCrossover(const SweepResult &challenger,
                        const SweepResult &baseline);

/** Latency ratio baseline/challenger at one batch (speedup > 1 means
 *  the challenger is faster). */
double speedupAt(const SweepResult &challenger,
                 const SweepResult &baseline, int batch);

/** One row of a platform comparison table. */
struct ComparisonRow
{
    int batch = 1;
    std::vector<double> latencyNs; ///< one per platform, sweep order
};

/**
 * Tabulate latency across several sweeps of the same workload on the
 * shared batch grid.
 */
std::vector<ComparisonRow>
comparePlatforms(const std::vector<SweepResult> &sweeps);

} // namespace skipsim::analysis

#endif // SKIPSIM_ANALYSIS_COMPARE_HH
