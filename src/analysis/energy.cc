#include "analysis/energy.hh"

#include "common/logging.hh"

namespace skipsim::analysis
{

EnergyReport
estimateEnergy(const skip::MetricsReport &metrics,
               const hw::Platform &platform, int batch)
{
    if (batch <= 0)
        fatal("estimateEnergy: batch must be positive");

    // W * ns -> J via 1e-9.
    constexpr double ns_to_s = 1e-9;

    EnergyReport report;
    report.cpuJoules =
        (metrics.cpuBusyNs * platform.cpu.busyPowerW +
         metrics.cpuIdleNs * platform.cpu.idlePowerW) * ns_to_s;
    report.gpuJoules =
        (metrics.gpuBusyNs * platform.gpu.busyPowerW +
         metrics.gpuIdleNs * platform.gpu.idlePowerW) * ns_to_s;
    report.joulesPerRequest =
        report.totalJoules() / static_cast<double>(batch);
    report.meanPowerW = metrics.ilNs > 0.0
        ? report.totalJoules() / (metrics.ilNs * ns_to_s)
        : 0.0;
    return report;
}

} // namespace skipsim::analysis
