/**
 * @file
 * Energy model (extension): combine a SKIP metric report's busy/idle
 * breakdown with the platform's power parameters to estimate energy
 * per inference, per request and per token. The paper motivates this
 * through datacenter inference cost ([12] in its references); this
 * module answers which coupling paradigm is most energy-efficient at
 * each operating point.
 */

#ifndef SKIPSIM_ANALYSIS_ENERGY_HH
#define SKIPSIM_ANALYSIS_ENERGY_HH

#include "hw/platform.hh"
#include "skip/metrics.hh"

namespace skipsim::analysis
{

/** Energy breakdown of one inference. */
struct EnergyReport
{
    /** CPU energy over the inference window, J. */
    double cpuJoules = 0.0;

    /** GPU energy over the inference window, J. */
    double gpuJoules = 0.0;

    /** Total energy, J. */
    double totalJoules() const { return cpuJoules + gpuJoules; }

    /** Energy per request (totalJoules / batch), J. */
    double joulesPerRequest = 0.0;

    /** Mean power draw over the inference window, W. */
    double meanPowerW = 0.0;
};

/**
 * Estimate the energy of one profiled inference: busy portions draw
 * busyPowerW, idle portions idlePowerW, over the IL window.
 * @param metrics SKIP metric report of the run.
 * @param platform the platform it ran on.
 * @param batch requests served by the run (>= 1).
 * @throws skipsim::FatalError for non-positive batch.
 */
EnergyReport estimateEnergy(const skip::MetricsReport &metrics,
                            const hw::Platform &platform, int batch);

} // namespace skipsim::analysis

#endif // SKIPSIM_ANALYSIS_ENERGY_HH
