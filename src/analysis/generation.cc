#include "analysis/generation.hh"

#include <algorithm>

#include "common/logging.hh"

namespace skipsim::analysis
{

double
GenerationResult::tpotNs() const
{
    if (stepNs.empty())
        return 0.0;
    double total = 0.0;
    for (double step : stepNs)
        total += step;
    return total / static_cast<double>(stepNs.size());
}

double
GenerationResult::worstStepNs() const
{
    if (stepNs.empty())
        return 0.0;
    return *std::max_element(stepNs.begin(), stepNs.end());
}

double
GenerationResult::tokensPerSecond(int batch) const
{
    double decode_ns = 0.0;
    for (double step : stepNs)
        decode_ns += step;
    if (decode_ns <= 0.0)
        return 0.0;
    return static_cast<double>(batch) *
        static_cast<double>(stepNs.size()) / (decode_ns / 1e9);
}

GenerationResult
simulateGeneration(const workload::ModelConfig &model,
                   const hw::Platform &platform,
                   const GenerationConfig &config)
{
    if (config.genTokens <= 0)
        fatal("simulateGeneration: genTokens must be positive");

    GenerationResult result;
    sim::Simulator simulator(platform, config.sim);

    workload::BuildOptions prefill_opts;
    prefill_opts.batch = config.batch;
    prefill_opts.seqLen = config.promptLen;
    prefill_opts.mode = config.mode;
    workload::OperatorGraph prefill =
        workload::buildPrefillGraph(model, prefill_opts);
    result.ttftNs = simulator.run(prefill).wallNs;

    workload::BuildOptions step_opts = prefill_opts;
    for (int t = 0; t < config.genTokens; ++t) {
        // KV cache covers the prompt plus the tokens emitted so far.
        int context = config.promptLen + t;
        sim::SimOptions step_sim = config.sim;
        step_sim.seed =
            config.sim.seed + 1000u + static_cast<std::uint64_t>(t);
        sim::Simulator step_simulator(platform, step_sim);
        workload::OperatorGraph step =
            workload::buildDecodeStepGraph(model, step_opts, context);
        result.stepNs.push_back(step_simulator.run(step).wallNs);
    }

    result.totalNs = result.ttftNs;
    for (double step : result.stepNs)
        result.totalNs += step;
    return result;
}

} // namespace skipsim::analysis
