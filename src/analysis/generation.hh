/**
 * @file
 * Autoregressive generation modeling (extension beyond the paper's
 * prefill/TTFT-only evaluation): simulate a prefill followed by N
 * decode steps over a growing KV cache and report TTFT, mean/percentile
 * time-per-output-token (TPOT) and aggregate token throughput. Decode
 * steps launch the same number of kernels as prefill but with tiny
 * work, making the decode phase even more launch-overhead dominated —
 * the regime where the coupling-paradigm CPU differences matter most.
 */

#ifndef SKIPSIM_ANALYSIS_GENERATION_HH
#define SKIPSIM_ANALYSIS_GENERATION_HH

#include <vector>

#include "hw/platform.hh"
#include "sim/simulator.hh"
#include "workload/builder.hh"
#include "workload/model_config.hh"

namespace skipsim::analysis
{

/** One generation request shape. */
struct GenerationConfig
{
    int batch = 1;
    int promptLen = 512;
    int genTokens = 32;
    workload::ExecMode mode = workload::ExecMode::Eager;
    sim::SimOptions sim;
};

/** Result of simulating a full generation. */
struct GenerationResult
{
    /** Prefill latency (time to first token), ns. */
    double ttftNs = 0.0;

    /** Per-decode-step latencies in order, ns. */
    std::vector<double> stepNs;

    /** End-to-end latency (prefill + all decode steps), ns. */
    double totalNs = 0.0;

    /** Mean time per output token, ns. */
    double tpotNs() const;

    /** p99-style worst decode step, ns. */
    double worstStepNs() const;

    /** Aggregate decode throughput: batch * tokens / decode time. */
    double tokensPerSecond(int batch) const;
};

/**
 * Simulate prefill + decode for one request shape.
 * @throws skipsim::FatalError for non-positive token counts.
 */
GenerationResult simulateGeneration(const workload::ModelConfig &model,
                                    const hw::Platform &platform,
                                    const GenerationConfig &config);

} // namespace skipsim::analysis

#endif // SKIPSIM_ANALYSIS_GENERATION_HH
