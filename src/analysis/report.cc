#include "analysis/report.hh"

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"
#include "fusion/recommend.hh"
#include "skip/profile.hh"
#include "workload/memory.hh"

namespace skipsim::analysis
{

CharacterizationReport
characterize(const workload::ModelConfig &model,
             const std::vector<hw::Platform> &platforms, int seq_len)
{
    if (platforms.empty())
        fatal("characterize: no platforms given");

    CharacterizationReport report;
    report.modelName = model.name;
    report.seqLen = seq_len;

    for (const auto &platform : platforms) {
        PlatformCharacterization pc;
        pc.platformName = platform.name;
        pc.coupling = hw::couplingName(platform.coupling);

        pc.sweep = runBatchSweep(model, platform, defaultBatchGrid(),
                                 seq_len);
        pc.boundedness = classifyBoundedness(pc.sweep);
        pc.sweetSpot = findSweetSpot(pc.sweep);

        const auto &first = pc.sweep.points.front();
        const auto &last = pc.sweep.points.back();
        pc.latencyBs1Ns = first.metrics.ilNs;
        pc.latencyMaxNs = last.metrics.ilNs;
        pc.energyBs1J =
            estimateEnergy(first.metrics, platform, first.batch)
                .joulesPerRequest;
        pc.energyMaxJ =
            estimateEnergy(last.metrics, platform, last.batch)
                .joulesPerRequest;

        skip::ProfileResult run =
            skip::profilePrefill(model, platform, 1, seq_len);
        fusion::FusionReport fusion_report =
            fusion::recommendFromTrace(run.trace);
        pc.fusionPotential = fusion_report.best().idealSpeedup;

        pc.maxResidentSeqs = workload::maxResidentSequences(
            model, seq_len, platform.gpu.hbmBytes());

        report.platforms.push_back(std::move(pc));
    }

    for (std::size_t i = 1; i < report.platforms.size(); ++i) {
        report.crossoversVsFirst.push_back(
            findCrossover(report.platforms[i].sweep,
                          report.platforms.front().sweep));
    }
    return report;
}

std::string
CharacterizationReport::renderMarkdown() const
{
    std::string out = strprintf(
        "# Characterization: %s (seq=%d)\n\n", modelName.c_str(),
        seqLen);

    TextTable summary;
    summary.setHeader({"Platform", "Coupling", "TTFT@1 (ms)",
                       "TTFT@128 (ms)", "CPU-bound until",
                       "Balanced BS", "Fusion potential",
                       "mJ/req @1/@128", "KV-resident seqs"});
    for (const auto &pc : platforms) {
        summary.addRow(
            {pc.platformName, pc.coupling,
             strprintf("%.2f", pc.latencyBs1Ns / 1e6),
             strprintf("%.2f", pc.latencyMaxNs / 1e6),
             pc.boundedness.transitionBatch
                 ? "BS=" + std::to_string(
                       *pc.boundedness.transitionBatch)
                 : "never",
             strprintf("[%d, %d]", pc.sweetSpot.minBatch,
                       pc.sweetSpot.maxBatch),
             strprintf("%.2fx", pc.fusionPotential),
             strprintf("%.0f / %.0f", pc.energyBs1J * 1e3,
                       pc.energyMaxJ * 1e3),
             std::to_string(pc.maxResidentSeqs)});
    }
    out += summary.render();
    out += "\n## Latency vs batch (ms)\n\n";

    TextTable latency;
    std::vector<std::string> header{"Batch"};
    for (const auto &pc : platforms)
        header.push_back(pc.platformName);
    latency.setHeader(header);
    for (const auto &point : platforms.front().sweep.points) {
        std::vector<std::string> row{std::to_string(point.batch)};
        for (const auto &pc : platforms) {
            row.push_back(strprintf(
                "%.2f", pc.sweep.at(point.batch).metrics.ilNs / 1e6));
        }
        latency.addRow(row);
    }
    out += latency.render();

    if (!crossoversVsFirst.empty()) {
        out += "\n## Crossovers vs " +
            platforms.front().platformName + "\n\n";
        for (std::size_t i = 0; i < crossoversVsFirst.size(); ++i) {
            const auto &cross = crossoversVsFirst[i];
            out += "* " + platforms[i + 1].platformName + ": ";
            if (cross.firstWinBatch) {
                out += strprintf("wins from BS=%d",
                                 *cross.firstWinBatch);
                if (cross.crossoverPoint)
                    out += strprintf(" (CP at BS=%d)",
                                     *cross.crossoverPoint);
            } else {
                out += "never faster on this grid";
            }
            out += "\n";
        }
    }
    return out;
}

json::Value
CharacterizationReport::toJson() const
{
    json::Object root;
    root.set("model", modelName);
    root.set("seq_len", seqLen);

    json::Value::Array entries;
    for (const auto &pc : platforms) {
        json::Object obj;
        obj.set("platform", pc.platformName);
        obj.set("coupling", pc.coupling);
        obj.set("ttft_bs1_ns", pc.latencyBs1Ns);
        obj.set("ttft_max_ns", pc.latencyMaxNs);
        if (pc.boundedness.transitionBatch)
            obj.set("transition_batch", *pc.boundedness.transitionBatch);
        obj.set("sweet_spot_min", pc.sweetSpot.minBatch);
        obj.set("sweet_spot_max", pc.sweetSpot.maxBatch);
        obj.set("fusion_potential", pc.fusionPotential);
        obj.set("energy_bs1_j", pc.energyBs1J);
        obj.set("energy_max_j", pc.energyMaxJ);
        obj.set("max_resident_seqs", pc.maxResidentSeqs);

        json::Value::Array points;
        for (const auto &point : pc.sweep.points) {
            json::Object p;
            p.set("batch", point.batch);
            p.set("il_ns", point.metrics.ilNs);
            p.set("tklqt_ns", point.metrics.tklqtNs);
            p.set("gpu_idle_ns", point.metrics.gpuIdleNs);
            p.set("cpu_idle_ns", point.metrics.cpuIdleNs);
            points.push_back(json::Value(std::move(p)));
        }
        obj.set("sweep", json::Value(std::move(points)));
        entries.push_back(json::Value(std::move(obj)));
    }
    root.set("platforms", json::Value(std::move(entries)));
    return json::Value(std::move(root));
}

} // namespace skipsim::analysis
