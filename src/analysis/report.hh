/**
 * @file
 * Full characterization report: one call that runs the paper's entire
 * analysis pipeline for a model across platforms — batch sweeps,
 * PU-boundedness, crossovers, balanced regions, fusion potential,
 * energy and memory residency — and renders it as markdown and JSON.
 * This is the artifact a systems team would attach to a platform
 * selection decision.
 */

#ifndef SKIPSIM_ANALYSIS_REPORT_HH
#define SKIPSIM_ANALYSIS_REPORT_HH

#include <optional>
#include <string>
#include <vector>

#include "analysis/boundedness.hh"
#include "analysis/compare.hh"
#include "analysis/energy.hh"
#include "analysis/sweep.hh"
#include "json/value.hh"

namespace skipsim::analysis
{

/** One platform's characterization of the model. */
struct PlatformCharacterization
{
    std::string platformName;
    std::string coupling;

    SweepResult sweep;
    BoundednessResult boundedness;
    SweetSpot sweetSpot;

    /** BS=1 and largest-batch latency, ns. */
    double latencyBs1Ns = 0.0;
    double latencyMaxNs = 0.0;

    /** Energy per request at BS=1 and at the largest batch, J. */
    double energyBs1J = 0.0;
    double energyMaxJ = 0.0;

    /** Idealized fusion speedup potential (best chain length). */
    double fusionPotential = 1.0;

    /** KV-resident sequences within the platform's HBM. */
    int maxResidentSeqs = 0;
};

/** Characterization of one model across platforms. */
struct CharacterizationReport
{
    std::string modelName;
    int seqLen = 512;
    std::vector<PlatformCharacterization> platforms;

    /** Crossover of each non-first platform vs the first (baseline). */
    std::vector<Crossover> crossoversVsFirst;

    /** Markdown rendering. */
    std::string renderMarkdown() const;

    /** JSON serialization. */
    json::Value toJson() const;
};

/**
 * Characterize @p model on @p platforms (paper trio by default).
 * @throws skipsim::FatalError on an empty platform list.
 */
CharacterizationReport characterize(
    const workload::ModelConfig &model,
    const std::vector<hw::Platform> &platforms, int seq_len = 512);

} // namespace skipsim::analysis

#endif // SKIPSIM_ANALYSIS_REPORT_HH
