#include "analysis/speculative.hh"

#include <cmath>

#include "common/logging.hh"
#include "workload/builder.hh"

namespace skipsim::analysis
{

SpeculativeResult
evaluateSpeculative(const hw::Platform &platform,
                    const SpeculativeConfig &config)
{
    if (config.k < 1)
        fatal("evaluateSpeculative: k must be >= 1");
    if (config.acceptRate < 0.0 || config.acceptRate >= 1.0)
        fatal("evaluateSpeculative: acceptRate must be in [0, 1)");

    sim::Simulator simulator(platform, config.sim);

    workload::BuildOptions opts;
    opts.batch = config.batch;
    opts.seqLen = config.contextLen;
    opts.mode = config.mode;

    // One draft decode step at the running context.
    SpeculativeResult result;
    result.draftStepNs =
        simulator
            .run(workload::buildDecodeStepGraph(config.draft, opts,
                                                config.contextLen))
            .wallNs;

    // Target verification: one decode-shaped step whose GEMM rows span
    // the k+1 verified positions (batch widened accordingly).
    workload::BuildOptions verify_opts = opts;
    verify_opts.batch = config.batch * (config.k + 1);
    result.verifyNs =
        simulator
            .run(workload::buildDecodeStepGraph(config.target,
                                                verify_opts,
                                                config.contextLen))
            .wallNs;

    // Plain autoregressive baseline: one target decode step per token.
    result.baselineTpotNs =
        simulator
            .run(workload::buildDecodeStepGraph(config.target, opts,
                                                config.contextLen))
            .wallNs;

    result.cycleNs =
        config.k * result.draftStepNs + result.verifyNs;

    double a = config.acceptRate;
    result.expectedTokensPerCycle =
        (1.0 - std::pow(a, config.k + 1)) / (1.0 - a);

    result.tpotNs = result.cycleNs / result.expectedTokensPerCycle;
    result.speedup = result.tpotNs > 0.0
        ? result.baselineTpotNs / result.tpotNs
        : 1.0;
    return result;
}

} // namespace skipsim::analysis
