/**
 * @file
 * Speculative decoding model (extension): a small draft model proposes
 * k tokens per cycle and the target model verifies them in one
 * parallel step. The draft steps are tiny, launch-dominated forwards —
 * exactly the regime where the paper shows CPU dispatch speed rules —
 * so the achievable speculative speedup is a direct function of the
 * platform's coupling/CPU balance.
 */

#ifndef SKIPSIM_ANALYSIS_SPECULATIVE_HH
#define SKIPSIM_ANALYSIS_SPECULATIVE_HH

#include "hw/platform.hh"
#include "sim/simulator.hh"
#include "workload/exec_mode.hh"
#include "workload/model_config.hh"

namespace skipsim::analysis
{

/** Speculative decoding setup. */
struct SpeculativeConfig
{
    /** Small proposer model (e.g. TinyLlama-1.1B). */
    workload::ModelConfig draft;

    /** Large verifier model (e.g. Llama-2-7B). */
    workload::ModelConfig target;

    /** Draft tokens proposed per cycle. */
    int k = 4;

    /**
     * Probability the target accepts one draft token (i.i.d. model);
     * expected tokens per cycle = (1 - a^(k+1)) / (1 - a).
     */
    double acceptRate = 0.7;

    int batch = 1;
    int contextLen = 512;

    /**
     * Execution mode of every step. Eager decode is launch-bound, so
     * speculation loses there; CUDA-graph decode (reduce-overhead,
     * what vLLM uses) removes the launch tax and lets the draft/target
     * compute ratio pay off.
     */
    workload::ExecMode mode = workload::ExecMode::Eager;

    sim::SimOptions sim;
};

/** Outcome of evaluating one speculative configuration. */
struct SpeculativeResult
{
    /** One draft decode step, ns. */
    double draftStepNs = 0.0;

    /** One target verification step over k+1 positions, ns. */
    double verifyNs = 0.0;

    /** Full cycle: k draft steps + verification, ns. */
    double cycleNs = 0.0;

    /** Expected accepted tokens (plus the free verifier token). */
    double expectedTokensPerCycle = 1.0;

    /** Effective time per output token under speculation, ns. */
    double tpotNs = 0.0;

    /** Plain autoregressive target TPOT, ns. */
    double baselineTpotNs = 0.0;

    /** baseline / speculative TPOT. */
    double speedup = 1.0;
};

/**
 * Evaluate speculative decoding on a platform: draft steps and the
 * baseline use single-token decode graphs, the verification step a
 * decode graph widened to k+1 positions.
 * @throws skipsim::FatalError on k < 1 or acceptRate outside [0, 1).
 */
SpeculativeResult evaluateSpeculative(const hw::Platform &platform,
                                      const SpeculativeConfig &config);

} // namespace skipsim::analysis

#endif // SKIPSIM_ANALYSIS_SPECULATIVE_HH
