#include "analysis/sweep.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"

namespace skipsim::analysis
{

namespace
{

stats::Series
makeSeries(const SweepResult &sweep, const std::string &name,
           double (*extract)(const SweepPoint &))
{
    stats::Series series(name);
    for (const auto &point : sweep.points)
        series.add(point.batch, extract(point));
    return series;
}

} // namespace

stats::Series
SweepResult::tklqtSeries() const
{
    return makeSeries(*this, modelName + "/tklqt",
                      [](const SweepPoint &p) { return p.metrics.tklqtNs; });
}

stats::Series
SweepResult::latencySeries() const
{
    return makeSeries(*this, modelName + "/latency",
                      [](const SweepPoint &p) { return p.metrics.ilNs; });
}

stats::Series
SweepResult::gpuIdleSeries() const
{
    return makeSeries(*this, modelName + "/gpu_idle",
                      [](const SweepPoint &p) {
                          return p.metrics.gpuIdleNs;
                      });
}

stats::Series
SweepResult::cpuIdleSeries() const
{
    return makeSeries(*this, modelName + "/cpu_idle",
                      [](const SweepPoint &p) {
                          return p.metrics.cpuIdleNs;
                      });
}

const SweepPoint &
SweepResult::at(int batch) const
{
    for (const auto &point : points) {
        if (point.batch == batch)
            return point;
    }
    fatal(strprintf("SweepResult: no point at batch %d", batch));
}

std::vector<int>
defaultBatchGrid()
{
    return {1, 2, 4, 8, 16, 32, 64, 128};
}

SweepResult
runCustomSweep(const std::string &workload_name,
               const hw::Platform &platform, const GraphBuilder &builder,
               const std::vector<int> &batches,
               const sim::SimOptions &sim_opts)
{
    if (batches.empty())
        fatal("runCustomSweep: empty batch list");

    SweepResult result;
    result.modelName = workload_name;
    result.platformName = platform.name;
    result.seqLen = 0;

    for (std::size_t i = 0; i < batches.size(); ++i) {
        int batch = batches[i];
        sim::SimOptions opts = sim_opts;
        opts.seed = mixSeed(sim_opts.seed, i);
        sim::Simulator simulator(platform, opts);
        sim::SimResult sim_result = simulator.run(builder(batch));

        skip::DependencyGraph dep =
            skip::DependencyGraph::build(std::move(sim_result.trace));

        SweepPoint point;
        point.batch = batch;
        point.metrics = skip::computeMetrics(dep);
        point.wallNs = sim_result.wallNs;
        result.points.push_back(std::move(point));
    }
    return result;
}

SweepResult
runBatchSweep(const workload::ModelConfig &model,
              const hw::Platform &platform,
              const std::vector<int> &batches, int seq_len,
              workload::ExecMode mode, const sim::SimOptions &sim_opts)
{
    if (batches.empty())
        fatal("runBatchSweep: empty batch list");

    SweepResult result;
    result.modelName = model.name;
    result.platformName = platform.name;
    result.seqLen = seq_len;
    result.mode = mode;

    for (std::size_t i = 0; i < batches.size(); ++i) {
        int batch = batches[i];
        skip::ProfileConfig config;
        config.model = model;
        config.platform = platform;
        config.batch = batch;
        config.seqLen = seq_len;
        config.mode = mode;
        config.sim = sim_opts;
        // Decorrelate jitter across sweep points deterministically,
        // with the project-wide mixSeed(base, index) convention.
        config.sim.seed = mixSeed(sim_opts.seed, i);

        skip::ProfileResult profiled = skip::profile(config);

        SweepPoint point;
        point.batch = batch;
        point.metrics = std::move(profiled.metrics);
        point.wallNs = profiled.wallNs;
        result.points.push_back(std::move(point));
    }
    return result;
}

} // namespace skipsim::analysis
