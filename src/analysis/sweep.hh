/**
 * @file
 * Batch-size sweeps: run a model/platform pair across batch sizes and
 * collect SKIP metric reports, the raw material for the paper's
 * Figs. 6, 10 and 11.
 */

#ifndef SKIPSIM_ANALYSIS_SWEEP_HH
#define SKIPSIM_ANALYSIS_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "hw/platform.hh"
#include "skip/profile.hh"
#include "stats/series.hh"
#include "workload/model_config.hh"

namespace skipsim::analysis
{

/** One batch size's profiling outcome. */
struct SweepPoint
{
    int batch = 1;
    skip::MetricsReport metrics;
    double wallNs = 0.0;
};

/** A full batch sweep for one (model, platform, mode) triple. */
struct SweepResult
{
    std::string modelName;
    std::string platformName;
    int seqLen = 512;
    workload::ExecMode mode = workload::ExecMode::Eager;
    std::vector<SweepPoint> points;

    /** TKLQT(batch) series (paper Fig. 6). */
    stats::Series tklqtSeries() const;

    /** Inference-latency(batch) series (Figs. 10a/11a). */
    stats::Series latencySeries() const;

    /** GPU-idle(batch) series (Figs. 10b/11b). */
    stats::Series gpuIdleSeries() const;

    /** CPU-idle(batch) series (Figs. 10c/11c). */
    stats::Series cpuIdleSeries() const;

    /** Point lookup. @throws skipsim::FatalError when batch absent. */
    const SweepPoint &at(int batch) const;
};

/** The paper's standard batch grid (powers of two, 1..128). */
std::vector<int> defaultBatchGrid();

/**
 * Run a batch sweep.
 * @throws skipsim::FatalError on an empty batch list.
 */
SweepResult runBatchSweep(const workload::ModelConfig &model,
                          const hw::Platform &platform,
                          const std::vector<int> &batches,
                          int seq_len = 512,
                          workload::ExecMode mode =
                              workload::ExecMode::Eager,
                          const sim::SimOptions &sim_opts = {});

/** Builds the operator graph for one batch size of a custom workload. */
using GraphBuilder = std::function<workload::OperatorGraph(int batch)>;

/**
 * Batch sweep over an arbitrary workload builder (e.g. the future-work
 * DLRM/GCN graphs), so boundedness/crossover analysis applies beyond
 * the LLM catalog.
 * @throws skipsim::FatalError on an empty batch list.
 */
SweepResult runCustomSweep(const std::string &workload_name,
                           const hw::Platform &platform,
                           const GraphBuilder &builder,
                           const std::vector<int> &batches,
                           const sim::SimOptions &sim_opts = {});

} // namespace skipsim::analysis

#endif // SKIPSIM_ANALYSIS_SWEEP_HH
