#include "check/analysis.hh"

#include "check/invariants.hh"
#include "exec/registry.hh"
#include "skip/profile.hh"
#include "workload/exec_mode.hh"

namespace skipsim::check
{

namespace
{

json::Value
checkAnalysis(const exec::RunSpec &spec)
{
    skip::ProfileResult run = skip::profile(spec.profileConfig());
    TraceCheckReport report = validateTrace(run.trace);

    json::Object doc;
    doc.set("model", spec.model().name);
    doc.set("platform", spec.platform().name);
    doc.set("batch", spec.batch());
    doc.set("seq", spec.seqLen());
    doc.set("mode", workload::execModeName(spec.mode()));
    doc.set("check", report.toJson());
    return json::Value(std::move(doc));
}

} // namespace

void
registerCheckAnalysis()
{
    exec::registerAnalysis("check", checkAnalysis);
}

} // namespace skipsim::check
