/**
 * @file
 * The "check" exec analysis: profiles a RunSpec and validates the
 * resulting trace against every invariant in check::validateTrace, so
 * sweeps can self-validate each grid point — a grid over models,
 * platforms and batch sizes becomes a semantic test matrix for free.
 *
 * check depends on the engines it validates, so the analysis cannot be
 * an exec built-in (that would invert the layering); front ends that
 * want it call registerCheckAnalysis() once at startup and then use
 * the name through the ordinary registry.
 */

#ifndef SKIPSIM_CHECK_ANALYSIS_HH
#define SKIPSIM_CHECK_ANALYSIS_HH

namespace skipsim::check
{

/**
 * Register the "check" analysis with exec::registerAnalysis.
 * Idempotent; safe to call from multiple front ends.
 */
void registerCheckAnalysis();

} // namespace skipsim::check

#endif // SKIPSIM_CHECK_ANALYSIS_HH
