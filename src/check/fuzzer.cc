#include "check/fuzzer.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <mutex>

#include "analysis/sweep.hh"
#include "check/invariants.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "exec/pool.hh"
#include "hw/catalog.hh"
#include "json/writer.hh"
#include "serving/latency_model.hh"
#include "sim/simulator.hh"
#include "skip/dep_graph.hh"
#include "skip/metrics.hh"
#include "trace/chrome.hh"
#include "workload/model_config.hh"

namespace skipsim::check
{

namespace
{

constexpr double kEps = 1e-9;

/** Platforms fuzz cases draw from (the paper trio). */
const char *const kPlatforms[] = {"GH200", "Intel+H100", "AMD+A100"};

const hw::KernelClass kClasses[] = {
    hw::KernelClass::Gemm,      hw::KernelClass::Attention,
    hw::KernelClass::Softmax,   hw::KernelClass::Norm,
    hw::KernelClass::Elementwise, hw::KernelClass::Reduction,
    hw::KernelClass::Copy,      hw::KernelClass::Embedding,
};

hw::KernelClass
kernelClassFromName(const std::string &name)
{
    for (hw::KernelClass cls : kClasses) {
        if (name == hw::kernelClassName(cls))
            return cls;
    }
    if (name == hw::kernelClassName(hw::KernelClass::Memcpy))
        return hw::KernelClass::Memcpy;
    fatal(strprintf("fuzz case: unknown kernel class '%s'",
                    name.c_str()));
}

/** Same synthetic linear latency curve the property suite uses. */
analysis::SweepResult
linearSweep(double base_ns, double slope_ns)
{
    analysis::SweepResult sweep;
    sweep.modelName = "synthetic";
    sweep.platformName = "synthetic";
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        analysis::SweepPoint point;
        point.batch = batch;
        point.metrics.ilNs =
            base_ns + slope_ns * static_cast<double>(batch);
        sweep.points.push_back(point);
    }
    return sweep;
}

/**
 * Cluster fuzz cases pin model (GPT2), prompt length and platform
 * (GH200) so every case shares one calibrated cost model; the fuzzed
 * degrees of freedom are the queueing/fault knobs, which is where the
 * cluster engine's logic lives.
 */
const cluster::CostCache &
clusterCosts()
{
    static cluster::CostCache cache;
    static std::once_flag once;
    std::call_once(once, [] {
        cluster::ClusterSpec spec;
        spec.model = workload::gpt2();
        spec.promptLen = 64;
        cluster::ReplicaSpec replica;
        replica.platform = hw::platforms::gh200();
        spec.replicas = {replica};
        cache.build(spec);
    });
    return cache;
}

json::Value
launchToJson(const workload::KernelLaunch &launch)
{
    json::Object doc;
    doc.set("kernel", launch.kernelName);
    if (launch.isMemcpy)
        doc.set("memcpy", json::Value(true));
    json::Value::Array work;
    for (const hw::KernelWork &w : launch.work) {
        json::Object item;
        item.set("class", hw::kernelClassName(w.cls));
        item.set("flops", w.flops);
        item.set("bytes", w.bytes);
        item.set("rows", w.rows);
        work.push_back(json::Value(std::move(item)));
    }
    doc.set("work", json::Value(std::move(work)));
    return json::Value(std::move(doc));
}

workload::KernelLaunch
launchFromJson(const json::Value &doc)
{
    const json::Object &obj = doc.asObject();
    workload::KernelLaunch launch;
    launch.kernelName = obj.at("kernel").asString();
    launch.isMemcpy = obj.get("memcpy", json::Value(false)).asBool();
    for (const json::Value &item : obj.at("work").asArray()) {
        const json::Object &w = item.asObject();
        hw::KernelWork work;
        work.cls = kernelClassFromName(w.at("class").asString());
        work.flops = w.get("flops", json::Value(0.0)).asDouble();
        work.bytes = w.get("bytes", json::Value(0.0)).asDouble();
        work.rows = w.get("rows", json::Value(0.0)).asDouble();
        launch.work.push_back(work);
    }
    return launch;
}

json::Value
nodeToJson(const workload::OpNode &node)
{
    json::Object doc;
    doc.set("name", node.name);
    doc.set("cpu_ns", node.cpuNs);
    doc.set("pre_fraction", node.preFraction);
    if (!node.children.empty()) {
        json::Value::Array children;
        for (const workload::OpNode &child : node.children)
            children.push_back(nodeToJson(child));
        doc.set("children", json::Value(std::move(children)));
    }
    if (!node.launches.empty()) {
        json::Value::Array launches;
        for (const workload::KernelLaunch &launch : node.launches)
            launches.push_back(launchToJson(launch));
        doc.set("launches", json::Value(std::move(launches)));
    }
    return json::Value(std::move(doc));
}

workload::OpNode
nodeFromJson(const json::Value &doc)
{
    const json::Object &obj = doc.asObject();
    workload::OpNode node;
    node.name = obj.at("name").asString();
    node.cpuNs = obj.at("cpu_ns").asDouble();
    node.preFraction =
        obj.get("pre_fraction", json::Value(0.6)).asDouble();
    if (obj.has("children")) {
        for (const json::Value &child : obj.at("children").asArray())
            node.children.push_back(nodeFromJson(child));
    }
    if (obj.has("launches")) {
        for (const json::Value &launch : obj.at("launches").asArray())
            node.launches.push_back(launchFromJson(launch));
    }
    return node;
}

/** Lowercase hex encoding for repro files: mutated Chrome-trace bytes
 *  are arbitrary (bit flips produce control and non-UTF-8 bytes), so
 *  they cannot ride in a JSON string literal verbatim. */
std::string
hexEncode(const std::string &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (unsigned char b : bytes) {
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::string
hexDecode(const std::string &hex)
{
    auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fatal(strprintf("fuzz case: invalid hex digit '%c'", c));
    };
    if (hex.size() % 2 != 0)
        fatal("fuzz case: odd-length hex string");
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2)
        out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                        nibble(hex[i + 1])));
    return out;
}

/** printf-exact fingerprint of a serving result for byte comparison. */
std::string
servingFingerprint(const serving::ServingResult &r)
{
    return strprintf("%zu %.17g %.17g %.17g %.17g %.17g %.17g %.17g "
                     "%.17g %.17g %.17g %zu",
                     r.completed, r.throughputRps, r.p50LatencyNs,
                     r.p95LatencyNs, r.p99LatencyNs, r.meanLatencyNs,
                     r.p50TtftNs, r.p95TtftNs, r.p99TtftNs, r.meanBatch,
                     r.utilization, r.leftInQueue);
}

} // namespace

const char *
fuzzKindName(FuzzKind kind)
{
    switch (kind) {
    case FuzzKind::Sim:
        return "sim";
    case FuzzKind::Serving:
        return "serving";
    case FuzzKind::Cluster:
        return "cluster";
    case FuzzKind::Trace:
        return "trace";
    }
    panic(strprintf("unhandled FuzzKind %d", static_cast<int>(kind)));
}

FuzzKind
fuzzKindByName(const std::string &name)
{
    if (name == "sim")
        return FuzzKind::Sim;
    if (name == "serving")
        return FuzzKind::Serving;
    if (name == "cluster")
        return FuzzKind::Cluster;
    if (name == "trace")
        return FuzzKind::Trace;
    fatal(strprintf("fuzz case: unknown kind '%s'", name.c_str()));
}

json::Value
graphToJson(const workload::OperatorGraph &graph)
{
    json::Value::Array roots;
    for (const workload::OpNode &root : graph.roots)
        roots.push_back(nodeToJson(root));
    json::Object doc;
    doc.set("roots", json::Value(std::move(roots)));
    return json::Value(std::move(doc));
}

workload::OperatorGraph
graphFromJson(const json::Value &doc)
{
    workload::OperatorGraph graph;
    for (const json::Value &root :
         doc.asObject().at("roots").asArray())
        graph.roots.push_back(nodeFromJson(root));
    return graph;
}

std::size_t
FuzzCase::sizeScore() const
{
    switch (kind) {
    case FuzzKind::Sim:
        return graph.numOps() + graph.numKernelLaunches();
    case FuzzKind::Serving:
        return static_cast<std::size_t>(serving.arrivalRatePerSec *
                                        serving.horizonSec);
    case FuzzKind::Cluster:
        return cluster.replicas.size() + cluster.faults.size() +
            static_cast<std::size_t>(cluster.arrivalRatePerSec *
                                     cluster.horizonSec);
    case FuzzKind::Trace:
        return chromeText.size();
    }
    return 0;
}

json::Value
FuzzCase::toJson() const
{
    json::Object doc;
    doc.set("kind", fuzzKindName(kind));
    doc.set("seed", static_cast<unsigned long long>(seed));
    switch (kind) {
    case FuzzKind::Sim: {
        json::Object sim;
        sim.set("platform", platformName);
        sim.set("jitter", json::Value(jitter));
        sim.set("graph", graphToJson(graph));
        doc.set("sim", json::Value(std::move(sim)));
        break;
    }
    case FuzzKind::Serving: {
        json::Object s;
        s.set("rate", serving.arrivalRatePerSec);
        s.set("horizon_sec", serving.horizonSec);
        s.set("max_batch", serving.maxBatch);
        s.set("max_wait_ns", serving.maxWaitNs);
        s.set("seed", static_cast<unsigned long long>(serving.seed));
        s.set("latency_base_ns", latencyBaseNs);
        s.set("latency_slope_ns", latencySlopeNs);
        doc.set("serving", json::Value(std::move(s)));
        break;
    }
    case FuzzKind::Cluster:
        doc.set("cluster", cluster.toJson());
        break;
    case FuzzKind::Trace: {
        json::Object t;
        t.set("hex", hexEncode(chromeText));
        doc.set("trace", json::Value(std::move(t)));
        break;
    }
    }
    return json::Value(std::move(doc));
}

FuzzCase
FuzzCase::fromJson(const json::Value &doc)
{
    const json::Object &obj = doc.asObject();
    FuzzCase c;
    c.kind = fuzzKindByName(obj.at("kind").asString());
    c.seed = static_cast<std::uint64_t>(
        obj.get("seed", json::Value(0)).asDouble());
    switch (c.kind) {
    case FuzzKind::Sim: {
        const json::Object &sim = obj.at("sim").asObject();
        c.platformName = sim.at("platform").asString();
        c.jitter = sim.get("jitter", json::Value(false)).asBool();
        c.graph = graphFromJson(sim.at("graph"));
        break;
    }
    case FuzzKind::Serving: {
        const json::Object &s = obj.at("serving").asObject();
        c.serving.arrivalRatePerSec = s.at("rate").asDouble();
        c.serving.horizonSec = s.at("horizon_sec").asDouble();
        c.serving.maxBatch =
            static_cast<int>(s.at("max_batch").asInt());
        c.serving.maxWaitNs = s.at("max_wait_ns").asDouble();
        c.serving.seed =
            static_cast<std::uint64_t>(s.at("seed").asDouble());
        c.latencyBaseNs = s.at("latency_base_ns").asDouble();
        c.latencySlopeNs = s.at("latency_slope_ns").asDouble();
        break;
    }
    case FuzzKind::Cluster:
        c.cluster = cluster::ClusterSpec::fromJson(obj.at("cluster"));
        break;
    case FuzzKind::Trace:
        c.chromeText = hexDecode(
            obj.at("trace").asObject().at("hex").asString());
        break;
    }
    return c;
}

Fuzzer::Fuzzer(FuzzOptions options) : _options(std::move(options))
{
    if (_options.jobs < 1)
        fatal(strprintf("fuzzer: jobs must be >= 1 (got %d)",
                        _options.jobs));
}

FuzzCase
Fuzzer::generate(std::uint64_t index) const
{
    FuzzCase c;
    c.seed = mixSeed(_options.seed, index);
    Rng rng(c.seed);

    std::uint64_t pick = rng.below(10);
    if (pick < 6)
        c.kind = FuzzKind::Sim;
    else if (pick < 8)
        c.kind = FuzzKind::Serving;
    else if (pick < 9)
        c.kind = FuzzKind::Cluster;
    else
        c.kind = FuzzKind::Trace;

    switch (c.kind) {
    case FuzzKind::Sim: {
        c.platformName = kPlatforms[rng.below(3)];
        c.jitter = rng.below(4) == 0;
        std::size_t roots =
            1 + rng.below(_options.quick ? 10 : 32);
        int kernel_names = 3 + static_cast<int>(rng.below(6));
        for (std::size_t i = 0; i < roots; ++i) {
            workload::OpNode node;
            node.name = "op_" + std::to_string(rng.below(8));
            node.cpuNs =
                200.0 + static_cast<double>(rng.below(20000));
            node.preFraction = 0.2 + 0.6 * rng.uniform();
            std::size_t children = rng.below(3);
            for (std::size_t j = 0; j < children; ++j) {
                workload::OpNode child;
                child.name = "child_" + std::to_string(rng.below(4));
                child.cpuNs =
                    100.0 + static_cast<double>(rng.below(8000));
                if (rng.below(2) == 0) {
                    workload::KernelLaunch launch;
                    launch.kernelName =
                        "k" + std::to_string(rng.below(
                                  static_cast<std::uint64_t>(
                                      kernel_names)));
                    hw::KernelWork w;
                    w.cls = kClasses[rng.below(8)];
                    w.flops = static_cast<double>(
                        rng.below(5'000'000'000ULL));
                    w.bytes = static_cast<double>(
                        rng.below(50'000'000ULL));
                    w.rows =
                        static_cast<double>(64 + rng.below(8192));
                    launch.work.push_back(w);
                    child.launches.push_back(std::move(launch));
                }
                node.children.push_back(std::move(child));
            }
            if (rng.below(3) != 0) {
                workload::KernelLaunch launch;
                launch.kernelName =
                    "k" + std::to_string(rng.below(
                              static_cast<std::uint64_t>(
                                  kernel_names)));
                hw::KernelWork w;
                w.cls = hw::KernelClass::Elementwise;
                w.bytes =
                    static_cast<double>(rng.below(20'000'000ULL));
                launch.work.push_back(w);
                node.launches.push_back(std::move(launch));
            }
            c.graph.roots.push_back(std::move(node));
        }
        break;
    }
    case FuzzKind::Serving: {
        c.serving.arrivalRatePerSec =
            20.0 + rng.uniform() * (_options.quick ? 300.0 : 1000.0);
        c.serving.horizonSec = _options.quick
            ? 1.0 + 2.0 * rng.uniform()
            : 2.0 + 8.0 * rng.uniform();
        c.serving.maxBatch = 1 + static_cast<int>(rng.below(32));
        c.serving.maxWaitNs = 1e5 + rng.uniform() * 1e7;
        c.serving.seed = c.seed;
        c.latencyBaseNs = 5e5 + rng.uniform() * 5e6;
        c.latencySlopeNs = 1e5 + rng.uniform() * 2e6;
        break;
    }
    case FuzzKind::Cluster: {
        c.cluster.model = workload::gpt2();
        c.cluster.promptLen = 64;
        c.cluster.genTokens = 2 + static_cast<int>(rng.below(10));
        std::size_t replicas = 1 + rng.below(3);
        for (std::size_t i = 0; i < replicas; ++i) {
            cluster::ReplicaSpec replica;
            replica.platform = hw::platforms::gh200();
            replica.maxActive = 2 + static_cast<int>(rng.below(14));
            if (rng.below(3) == 0)
                replica.maxQueue = 4 + static_cast<int>(rng.below(12));
            c.cluster.replicas.push_back(replica);
        }
        c.cluster.arrivalRatePerSec =
            5.0 + rng.uniform() * (_options.quick ? 25.0 : 50.0);
        c.cluster.horizonSec = _options.quick
            ? 2.0 + 2.0 * rng.uniform()
            : 3.0 + 5.0 * rng.uniform();
        c.cluster.detectDelaySec = 0.1 + 0.4 * rng.uniform();
        c.cluster.ttftSloMs = 100.0 + 400.0 * rng.uniform();
        c.cluster.e2eSloMs = 500.0 + 1500.0 * rng.uniform();
        if (rng.below(4) == 0)
            c.cluster.jitterFrac = 0.05;
        c.cluster.seed = c.seed;
        if (rng.below(3) == 0) {
            cluster::FaultSpec fault;
            fault.atSec =
                rng.uniform() * 0.5 * c.cluster.horizonSec;
            fault.replica = rng.below(replicas);
            fault.kind = rng.below(2) == 0
                ? cluster::FaultKind::Crash
                : cluster::FaultKind::Slowdown;
            fault.factor = 1.5 + rng.uniform();
            c.cluster.faults.push_back(fault);
        }
        if (rng.below(3) == 0) {
            // A third of the fleets mount the KV tier under real HBM
            // pressure (0.4-0.8 GiB keeps the budget positive for
            // GPT2 weights + activations but forces paging); the
            // host pool is either starved or roomy.
            const kv::OffloadPolicy policies[] = {
                kv::OffloadPolicy::StaticWatermark,
                kv::OffloadPolicy::LruBySession,
                kv::OffloadPolicy::PrefixAware};
            c.cluster.kvTier.policy = policies[rng.below(3)];
            c.cluster.kvTier.hostCapacityGiB =
                rng.below(2) == 0 ? 0.05 : 4.0;
            c.cluster.kvTier.watermarkFrac =
                0.5 + 0.4 * rng.uniform();
            for (cluster::ReplicaSpec &rep : c.cluster.replicas)
                rep.platform.gpu.hbmCapacityGiB =
                    0.4 + 0.4 * rng.uniform();
        }
        if (replicas >= 2 && rng.below(4) == 0) {
            // A quarter of multi-replica fleets disaggregate: one
            // prefill replica, the rest decode (faults may still hit
            // either pool).
            c.cluster.replicas.front().role =
                cluster::ReplicaRole::Prefill;
            for (std::size_t i = 1; i < c.cluster.replicas.size();
                 ++i)
                c.cluster.replicas[i].role =
                    cluster::ReplicaRole::Decode;
        }
        break;
    }
    case FuzzKind::Trace: {
        // Start from a valid export: op -> launch -> kernel triplets
        // linked by correlation ids, the shape validateTrace expects.
        trace::Trace t;
        std::size_t ops = 1 + rng.below(_options.quick ? 4 : 8);
        std::int64_t now = 0;
        for (std::size_t i = 0; i < ops; ++i) {
            std::uint64_t corr = i + 1;
            trace::TraceEvent op;
            op.kind = trace::EventKind::Operator;
            op.name = "aten::op_" + std::to_string(rng.below(5));
            op.tsBeginNs = now;
            op.durNs =
                1000 + static_cast<std::int64_t>(rng.below(5000));
            trace::TraceEvent launch;
            launch.kind = trace::EventKind::Runtime;
            launch.name = "cudaLaunchKernel";
            launch.tsBeginNs = now + 100;
            launch.durNs = 800;
            launch.correlationId = corr;
            trace::TraceEvent kernel;
            kernel.kind = trace::EventKind::Kernel;
            kernel.name = "k" + std::to_string(rng.below(3));
            kernel.tsBeginNs = now + 2000;
            kernel.durNs =
                1500 + static_cast<std::int64_t>(rng.below(4000));
            kernel.streamId = 0;
            kernel.correlationId = corr;
            now += op.durNs + 500;
            t.add(op);
            t.add(launch);
            t.add(kernel);
        }
        c.chromeText = trace::toChromeText(t);

        // Seeded byte-level corruption: bit flips, inserts, deletes
        // and truncation, anywhere in the document.
        std::size_t mutations =
            1 + rng.below(_options.quick ? 6 : 16);
        for (std::size_t m = 0; m < mutations; ++m) {
            if (c.chromeText.empty())
                break;
            std::string &text = c.chromeText;
            std::size_t pos = rng.below(text.size());
            switch (rng.below(4)) {
            case 0:
                text[pos] ^= static_cast<char>(1u << rng.below(8));
                break;
            case 1:
                text.insert(text.begin() + static_cast<long>(pos),
                            static_cast<char>(rng.below(256)));
                break;
            case 2:
                text.erase(text.begin() + static_cast<long>(pos));
                break;
            case 3:
                text.resize(pos);
                break;
            }
        }
        break;
    }
    }
    return c;
}

std::vector<std::string>
Fuzzer::runCase(const FuzzCase &c) const
{
    std::vector<std::string> problems;
    try {
        switch (c.kind) {
        case FuzzKind::Sim: {
            hw::Platform platform =
                hw::platforms::byName(c.platformName);
            sim::SimOptions opts;
            opts.seed = c.seed;
            opts.jitter = c.jitter;
            auto run_once = [&] {
                sim::Simulator simulator(platform, opts);
                sim::SimResult result = simulator.run(c.graph);
                if (_options.traceMutator)
                    _options.traceMutator(result.trace);
                return result;
            };
            sim::SimResult result = run_once();

            TraceCheckReport report = validateTrace(result.trace);
            for (const Violation &v : report.violations)
                problems.push_back("invariant: [" + v.code + "] " +
                                   v.message);

            std::size_t kernels =
                result.trace.countOf(trace::EventKind::Kernel);
            if (kernels != c.graph.numKernelLaunches())
                problems.push_back(strprintf(
                    "oracle: trace has %zu kernels, graph launches "
                    "%zu",
                    kernels, c.graph.numKernelLaunches()));

            skip::MetricsReport metrics = skip::computeMetrics(
                skip::DependencyGraph::build(result.trace));
            if (metrics.numKernels > 0) {
                if (std::abs(metrics.gpuBusyNs + metrics.gpuIdleNs -
                             metrics.ilNs) > 1.0)
                    problems.push_back(strprintf(
                        "oracle: gpuBusy %.1f + gpuIdle %.1f != IL "
                        "%.1f",
                        metrics.gpuBusyNs, metrics.gpuIdleNs,
                        metrics.ilNs));
                if (metrics.tklqtNs < metrics.tklqtQueueNs - 1e-6)
                    problems.push_back(strprintf(
                        "oracle: TKLQT %.1f < queue part %.1f",
                        metrics.tklqtNs, metrics.tklqtQueueNs));
            }

            // Determinism differential: serial re-run and two pool
            // workers must reproduce the exact same trace bytes.
            std::string serial =
                trace::toChromeText(result.trace);
            if (trace::toChromeText(run_once().trace) != serial)
                problems.push_back(
                    "oracle: serial re-run produced a different "
                    "trace (non-deterministic simulation)");
            std::vector<std::string> parallel(2);
            exec::Pool pool(2);
            pool.run(2, [&](std::size_t i) {
                parallel[i] = trace::toChromeText(run_once().trace);
            });
            for (std::size_t i = 0; i < parallel.size(); ++i) {
                if (parallel[i] != serial)
                    problems.push_back(strprintf(
                        "oracle: pool worker %zu produced a "
                        "different trace (jobs differential)",
                        i));
            }
            break;
        }
        case FuzzKind::Serving: {
            serving::LatencyModel latency(
                linearSweep(c.latencyBaseNs, c.latencySlopeNs));
            serving::ServingResult r =
                serving::simulateServing(latency, c.serving);
            if (r.p50LatencyNs > r.p95LatencyNs + kEps ||
                r.p95LatencyNs > r.p99LatencyNs + kEps)
                problems.push_back(strprintf(
                    "oracle: latency percentiles unordered "
                    "(p50 %.1f, p95 %.1f, p99 %.1f)",
                    r.p50LatencyNs, r.p95LatencyNs, r.p99LatencyNs));
            if (r.p50TtftNs > r.p95TtftNs + kEps ||
                r.p95TtftNs > r.p99TtftNs + kEps)
                problems.push_back(strprintf(
                    "oracle: TTFT percentiles unordered "
                    "(p50 %.1f, p95 %.1f, p99 %.1f)",
                    r.p50TtftNs, r.p95TtftNs, r.p99TtftNs));
            if (r.utilization < -kEps || r.utilization > 1.0 + kEps)
                problems.push_back(strprintf(
                    "oracle: utilization %.6f outside [0, 1]",
                    r.utilization));
            if (r.meanBatch >
                static_cast<double>(c.serving.maxBatch) + kEps)
                problems.push_back(strprintf(
                    "oracle: mean batch %.2f exceeds maxBatch %d",
                    r.meanBatch, c.serving.maxBatch));

            std::string serial = servingFingerprint(r);
            std::vector<std::string> parallel(2);
            exec::Pool pool(2);
            pool.run(2, [&](std::size_t i) {
                parallel[i] = servingFingerprint(
                    serving::simulateServing(latency, c.serving));
            });
            for (const std::string &p : parallel) {
                if (p != serial) {
                    problems.push_back(
                        "oracle: parallel serving re-run diverged "
                        "(jobs differential)");
                    break;
                }
            }
            break;
        }
        case FuzzKind::Cluster: {
            const cluster::CostCache &costs = clusterCosts();
            cluster::ClusterResult r =
                cluster::simulateCluster(c.cluster, costs);
            if (r.offered != r.completed + r.lost)
                problems.push_back(strprintf(
                    "oracle: offered %zu != completed %zu + lost "
                    "%zu",
                    r.offered, r.completed, r.lost));
            if (r.completed > 0) {
                if (r.p50TtftNs > r.p95TtftNs + kEps ||
                    r.p95TtftNs > r.p99TtftNs + kEps)
                    problems.push_back(
                        "oracle: cluster TTFT percentiles "
                        "unordered");
                if (r.p50E2eNs > r.p95E2eNs + kEps ||
                    r.p95E2eNs > r.p99E2eNs + kEps)
                    problems.push_back(
                        "oracle: cluster E2E percentiles unordered");
            }
            if (r.sloAttainment < -kEps ||
                r.sloAttainment > 1.0 + kEps)
                problems.push_back(strprintf(
                    "oracle: SLO attainment %.6f outside [0, 1]",
                    r.sloAttainment));
            if (r.goodputRps > r.throughputRps + kEps)
                problems.push_back(strprintf(
                    "oracle: goodput %.3f rps exceeds throughput "
                    "%.3f rps",
                    r.goodputRps, r.throughputRps));

            std::string serial = json::write(r.toJson());
            std::vector<std::string> parallel(2);
            exec::Pool pool(2);
            pool.run(2, [&](std::size_t i) {
                parallel[i] = json::write(
                    cluster::simulateCluster(c.cluster, costs)
                        .toJson());
            });
            for (const std::string &p : parallel) {
                if (p != serial) {
                    problems.push_back(
                        "oracle: parallel cluster re-run diverged "
                        "(jobs differential)");
                    break;
                }
            }
            break;
        }
        case FuzzKind::Trace: {
            // Ingestion oracle: corrupted bytes may parse or may be
            // rejected, but rejection must be a clean FatalError, and
            // a diagnostic that blames an event must carry its index.
            // Any other exception escapes to the outer handler and
            // fails the case.
            auto ingest = [&]() -> std::pair<bool, std::string> {
                try {
                    trace::Trace t =
                        trace::fromChromeText(c.chromeText);
                    return {true, trace::toChromeText(t)};
                } catch (const FatalError &err) {
                    return {false, std::string(err.what())};
                }
            };
            std::pair<bool, std::string> first = ingest();
            if (!first.first) {
                const std::string &msg = first.second;
                std::size_t at = msg.find("event ");
                if (at != std::string::npos &&
                    (at + 6 >= msg.size() ||
                     !std::isdigit(static_cast<unsigned char>(
                         msg[at + 6]))))
                    problems.push_back(strprintf(
                        "oracle: ingestion error blames an event "
                        "without naming its index: %s",
                        msg.c_str()));
            }
            if (ingest() != first)
                problems.push_back(
                    "oracle: trace ingestion is non-deterministic "
                    "on identical bytes");
            break;
        }
        }
    } catch (const std::exception &e) {
        problems.push_back(
            strprintf("engine: unexpected exception: %s", e.what()));
    }
    return problems;
}

namespace
{

/** One size-reducing candidate edit; returns false when inapplicable. */
using Edit = std::function<bool(FuzzCase &)>;

std::vector<Edit>
proposeEdits(const FuzzCase &c)
{
    std::vector<Edit> edits;
    switch (c.kind) {
    case FuzzKind::Sim: {
        std::size_t roots = c.graph.roots.size();
        if (roots > 1) {
            edits.push_back([](FuzzCase &t) {
                auto &r = t.graph.roots;
                r.erase(r.begin() + static_cast<long>(r.size() / 2),
                        r.end());
                return true;
            });
            edits.push_back([](FuzzCase &t) {
                auto &r = t.graph.roots;
                r.erase(r.begin(),
                        r.begin() + static_cast<long>(r.size() / 2));
                return true;
            });
            for (std::size_t i = 0; i < roots; ++i) {
                edits.push_back([i](FuzzCase &t) {
                    auto &r = t.graph.roots;
                    if (i >= r.size() || r.size() <= 1)
                        return false;
                    r.erase(r.begin() + static_cast<long>(i));
                    return true;
                });
            }
        }
        for (std::size_t i = 0; i < roots; ++i) {
            edits.push_back([i](FuzzCase &t) {
                auto &r = t.graph.roots;
                if (i >= r.size() || r[i].children.empty())
                    return false;
                r[i].children.clear();
                return true;
            });
            edits.push_back([i](FuzzCase &t) {
                auto &r = t.graph.roots;
                if (i >= r.size() || r[i].launches.empty())
                    return false;
                r[i].launches.clear();
                return true;
            });
        }
        if (c.jitter) {
            edits.push_back([](FuzzCase &t) {
                if (!t.jitter)
                    return false;
                t.jitter = false;
                return true;
            });
        }
        break;
    }
    case FuzzKind::Serving: {
        edits.push_back([](FuzzCase &t) {
            if (t.serving.horizonSec <= 0.5)
                return false;
            t.serving.horizonSec /= 2.0;
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.serving.arrivalRatePerSec <= 2.0)
                return false;
            t.serving.arrivalRatePerSec /= 2.0;
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.serving.maxBatch <= 1)
                return false;
            t.serving.maxBatch = 1;
            return true;
        });
        break;
    }
    case FuzzKind::Cluster: {
        edits.push_back([](FuzzCase &t) {
            if (t.cluster.faults.empty())
                return false;
            t.cluster.faults.clear();
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.cluster.replicas.size() <= 1)
                return false;
            t.cluster.replicas.resize(1);
            // A lone prefill replica is an invalid fleet; collapsing
            // the pool collapses the split too.
            t.cluster.replicas[0].role = cluster::ReplicaRole::Mixed;
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            bool tiered = t.cluster.kvTier.enabled();
            for (cluster::ReplicaSpec &rep : t.cluster.replicas)
                tiered = tiered ||
                         rep.role != cluster::ReplicaRole::Mixed;
            if (!tiered)
                return false;
            t.cluster.kvTier = kv::TierSpec();
            for (cluster::ReplicaSpec &rep : t.cluster.replicas)
                rep.role = cluster::ReplicaRole::Mixed;
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.cluster.horizonSec <= 1.0)
                return false;
            t.cluster.horizonSec /= 2.0;
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.cluster.arrivalRatePerSec <= 2.0)
                return false;
            t.cluster.arrivalRatePerSec /= 2.0;
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.cluster.genTokens <= 1)
                return false;
            t.cluster.genTokens = 1;
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.cluster.jitterFrac == 0.0)
                return false;
            t.cluster.jitterFrac = 0.0;
            return true;
        });
        break;
    }
    case FuzzKind::Trace: {
        edits.push_back([](FuzzCase &t) {
            if (t.chromeText.size() <= 1)
                return false;
            t.chromeText.resize(t.chromeText.size() / 2);
            return true;
        });
        edits.push_back([](FuzzCase &t) {
            if (t.chromeText.size() <= 1)
                return false;
            t.chromeText.erase(0, t.chromeText.size() / 2);
            return true;
        });
        break;
    }
    }
    return edits;
}

} // namespace

FuzzCase
Fuzzer::shrink(const FuzzCase &failing) const
{
    FuzzCase best = failing;
    int budget = 400;
    bool progressed = true;
    while (progressed && budget > 0) {
        progressed = false;
        for (const Edit &edit : proposeEdits(best)) {
            if (budget <= 0)
                break;
            FuzzCase trial = best;
            if (!edit(trial))
                continue;
            --budget;
            if (!runCase(trial).empty()) {
                best = std::move(trial);
                progressed = true;
                break; // re-propose against the smaller case
            }
        }
    }
    return best;
}

FuzzReport
Fuzzer::run() const
{
    FuzzReport report;
    report.casesRun = _options.cases;

    std::vector<std::vector<std::string>> problems(_options.cases);
    if (_options.cases > 0) {
        // Cluster cost models calibrate inside a lock on first use;
        // build them up front so workers never contend on it.
        clusterCosts();
        exec::Pool pool(_options.jobs);
        pool.run(_options.cases, [&](std::size_t i) {
            problems[i] =
                runCase(generate(static_cast<std::uint64_t>(i)));
        });
    }

    bool first = true;
    for (std::size_t i = 0; i < problems.size(); ++i) {
        if (problems[i].empty())
            continue;
        ++report.failures;
        if (first) {
            first = false;
            report.firstFailureIndex = i;
            report.firstProblems = problems[i];
        }
    }

    if (report.failures > 0) {
        report.minimal =
            shrink(generate(report.firstFailureIndex));
        report.shrunk = true;
        report.reproPath = strprintf(
            "%s/skipsim_repro_seed%llu_case%llu.json",
            _options.reproDir.c_str(),
            static_cast<unsigned long long>(_options.seed),
            static_cast<unsigned long long>(report.firstFailureIndex));
        json::writeFile(report.reproPath, report.minimal.toJson());
    }
    return report;
}

std::string
FuzzReport::render() const
{
    std::string out = strprintf("fuzz: %zu case%s run, %zu failure%s\n",
                                casesRun, casesRun == 1 ? "" : "s",
                                failures, failures == 1 ? "" : "s");
    if (failures == 0)
        return out;
    out += strprintf("first failure: case %llu (%s)\n",
                     static_cast<unsigned long long>(firstFailureIndex),
                     fuzzKindName(minimal.kind));
    for (const std::string &p : firstProblems)
        out += "  " + p + "\n";
    if (shrunk)
        out += strprintf("shrunken repro (size %zu) written to %s\n",
                         minimal.sizeScore(), reproPath.c_str());
    return out;
}

} // namespace skipsim::check
