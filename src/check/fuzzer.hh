/**
 * @file
 * Deterministic fuzz harness with shrinking. Generates random but
 * seed-reproducible specs across the three engines (operator graphs
 * for the execution simulator, dynamic-batching serving configs,
 * cluster scenarios) plus corrupted Chrome-trace bytes for the
 * ingestion path, runs each through the real code, and holds the
 * output to the oracles a correct simulator cannot violate:
 *
 *  - every invariant validateTrace() asserts (sim cases);
 *  - metric identities (gpu busy + idle == IL, TKLQT >= queue part);
 *  - determinism: the same case run twice, and run on pool workers,
 *    must produce byte-identical serialized output (the jobs-1 vs
 *    jobs-N differential oracle);
 *  - result sanity: percentile ordering, utilization in [0,1],
 *    offered == completed + lost, goodput <= throughput.
 *
 * Case i derives its seed as mixSeed(baseSeed, i) — the same
 * discipline exec::SweepSpec uses — so any failure reproduces from
 * (baseSeed, index) alone. On failure the harness greedily shrinks the
 * case (drop roots, clear children/launches, zero jitter, halve
 * horizons and rates) to a minimal spec that still fails and writes it
 * to disk as JSON; `skipctl check --replay <file>` re-runs it.
 *
 * FuzzOptions::traceMutator exists for testing the harness itself: it
 * corrupts the simulated trace before validation, standing in for an
 * intentionally-broken engine build, and lets tests assert the
 * fail -> shrink -> repro-on-disk path end to end.
 */

#ifndef SKIPSIM_CHECK_FUZZER_HH
#define SKIPSIM_CHECK_FUZZER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "json/value.hh"
#include "serving/server_sim.hh"
#include "trace/trace.hh"
#include "workload/op_graph.hh"

namespace skipsim::check
{

/** Engine a fuzz case exercises. */
enum class FuzzKind
{
    Sim,     ///< operator graph -> sim::Simulator -> trace oracles
    Serving, ///< ServingConfig -> serving::simulateServing
    Cluster, ///< ClusterSpec -> cluster::simulateCluster
    Trace,   ///< mutated Chrome JSON bytes -> trace::fromChromeText
};

/** @return canonical kind name ("sim", "serving", "cluster", "trace"). */
const char *fuzzKindName(FuzzKind kind);

/** @throws skipsim::FatalError for unknown kind names. */
FuzzKind fuzzKindByName(const std::string &name);

/** Operator-graph JSON round trip (repro files, replay). */
json::Value graphToJson(const workload::OperatorGraph &graph);
/** @throws skipsim::FatalError on malformed documents. */
workload::OperatorGraph graphFromJson(const json::Value &doc);

/**
 * One generated (or replayed) fuzz case. Only the section named by
 * `kind` is meaningful; the others stay at their defaults.
 */
struct FuzzCase
{
    FuzzKind kind = FuzzKind::Sim;

    /** Case seed (mixSeed(baseSeed, index) when generated). */
    std::uint64_t seed = 0;

    /** @name Sim section
     *  @{ */
    std::string platformName = "GH200";
    workload::OperatorGraph graph;
    bool jitter = false;
    /** @} */

    /** @name Serving section (latency model is linear in batch)
     *  @{ */
    serving::ServingConfig serving;
    double latencyBaseNs = 2e6;
    double latencySlopeNs = 1e6;
    /** @} */

    /** @name Cluster section
     *  @{ */
    cluster::ClusterSpec cluster;
    /** @} */

    /** @name Trace section
     *  @{ */
    /**
     * Chrome-JSON bytes fed to trace::fromChromeText — a valid export
     * corrupted by seeded byte-level mutations (bit flips, inserts,
     * deletes, truncation). The ingestion oracle accepts success or a
     * clean FatalError; anything else (crash, non-FatalError
     * exception, an "event" diagnostic without the event index) fails
     * the case.
     */
    std::string chromeText;
    /** @} */

    /** Shrink-progress size: operator count (sim) or scenario knobs. */
    std::size_t sizeScore() const;

    json::Value toJson() const;
    /** @throws skipsim::FatalError on malformed documents. */
    static FuzzCase fromJson(const json::Value &doc);
};

/** Campaign configuration. */
struct FuzzOptions
{
    std::uint64_t seed = 1;

    /** Cases to generate and run. */
    std::size_t cases = 100;

    /** Smaller graphs and shorter horizons (CI budget). */
    bool quick = false;

    /** Worker threads the campaign fans cases across (1 = serial). */
    int jobs = 1;

    /** Directory the shrunken repro JSON is written into. */
    std::string reproDir = ".";

    /**
     * Test fixture: corrupt the simulated trace between engine and
     * validation (sim cases only). Models an intentionally-broken
     * build so the fail/shrink/repro path itself is testable. Must be
     * callable concurrently when jobs > 1.
     */
    std::function<void(trace::Trace &)> traceMutator;
};

/** Campaign outcome. */
struct FuzzReport
{
    std::size_t casesRun = 0;
    std::size_t failures = 0;

    /** Index and problems of the first failing case (campaign order). */
    std::uint64_t firstFailureIndex = 0;
    std::vector<std::string> firstProblems;

    /** Shrunken minimal repro of the first failure. */
    bool shrunk = false;
    FuzzCase minimal;

    /** Repro file path ("" when every case passed). */
    std::string reproPath;

    bool ok() const { return failures == 0; }

    /** Human-readable campaign summary. */
    std::string render() const;
};

/** Seed-driven generator + oracle runner + greedy shrinker. */
class Fuzzer
{
  public:
    explicit Fuzzer(FuzzOptions options = {});

    /** Deterministically generate case @p index. */
    FuzzCase generate(std::uint64_t index) const;

    /**
     * Run one case through its engine and every applicable oracle.
     * @return one message per violated oracle; empty means the case
     *         passed. Never throws on oracle failures; engine-level
     *         FatalError/PanicError are captured as oracle messages.
     */
    std::vector<std::string> runCase(const FuzzCase &c) const;

    /**
     * Greedily shrink a failing case: repeatedly try size-reducing
     * edits (drop roots, clear children/launches, zero jitter, halve
     * horizon/rate/replicas/faults) and keep any edit that still
     * fails, until no edit helps or the attempt budget is spent.
     */
    FuzzCase shrink(const FuzzCase &failing) const;

    /**
     * Run the whole campaign: generate options.cases cases, evaluate
     * them (fanned over options.jobs workers), and on the first
     * failure shrink it and write the repro JSON to options.reproDir.
     */
    FuzzReport run() const;

    const FuzzOptions &options() const { return _options; }

  private:
    FuzzOptions _options;
};

} // namespace skipsim::check

#endif // SKIPSIM_CHECK_FUZZER_HH
