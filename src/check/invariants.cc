#include "check/invariants.hh"

#include <algorithm>
#include <limits>
#include <map>

#include "common/strutil.hh"

namespace skipsim::check
{

namespace
{

using trace::EventKind;
using trace::TraceEvent;

void
report(TraceCheckReport &out, const char *code, std::uint64_t eventId,
       std::string message)
{
    Violation v;
    v.code = code;
    v.eventId = eventId;
    v.message = std::move(message);
    out.violations.push_back(std::move(v));
}

/** Per-event structural checks: durations, stream ids. */
void
checkStructure(const trace::Trace &trace, TraceCheckReport &out)
{
    for (const TraceEvent &ev : trace.events()) {
        if (ev.durNs < 0) {
            report(out, "negative-duration", ev.id,
                   strprintf("event %llu '%s' has negative duration "
                             "%lld ns",
                             static_cast<unsigned long long>(ev.id),
                             ev.name.c_str(),
                             static_cast<long long>(ev.durNs)));
        }
        if (ev.onGpu() && ev.streamId < 0) {
            report(out, "missing-stream", ev.id,
                   strprintf("GPU event %llu '%s' carries no stream id",
                             static_cast<unsigned long long>(ev.id),
                             ev.name.c_str()));
        }
    }
}

/**
 * Correlation-id bijection plus per-pair causality (launch begin <=
 * kernel begin). Populates @p pairs with (launch, kernel) for the
 * stream-order checks.
 */
void
checkCorrelations(const trace::Trace &trace, TraceCheckReport &out,
                  std::map<std::uint64_t,
                           std::pair<const TraceEvent *,
                                     const TraceEvent *>> &pairs)
{
    for (const TraceEvent &ev : trace.events()) {
        if (ev.kind == EventKind::Runtime && ev.correlationId != 0) {
            auto &slot = pairs[ev.correlationId];
            if (slot.first != nullptr) {
                report(out, "duplicate-launch-correlation", ev.id,
                       strprintf("correlation id %llu used by runtime "
                                 "calls %llu and %llu",
                                 static_cast<unsigned long long>(
                                     ev.correlationId),
                                 static_cast<unsigned long long>(
                                     slot.first->id),
                                 static_cast<unsigned long long>(
                                     ev.id)));
            } else {
                slot.first = &ev;
            }
        }
        if (ev.onGpu()) {
            if (ev.correlationId == 0) {
                report(out, "kernel-without-correlation", ev.id,
                       strprintf("GPU event %llu '%s' carries no "
                                 "correlation id",
                                 static_cast<unsigned long long>(ev.id),
                                 ev.name.c_str()));
                continue;
            }
            auto &slot = pairs[ev.correlationId];
            if (slot.second != nullptr) {
                report(out, "duplicate-kernel-correlation", ev.id,
                       strprintf("correlation id %llu matches GPU "
                                 "events %llu and %llu",
                                 static_cast<unsigned long long>(
                                     ev.correlationId),
                                 static_cast<unsigned long long>(
                                     slot.second->id),
                                 static_cast<unsigned long long>(
                                     ev.id)));
            } else {
                slot.second = &ev;
            }
        }
    }

    for (const auto &[corr, pair] : pairs) {
        const TraceEvent *launch = pair.first;
        const TraceEvent *kernel = pair.second;
        if (launch == nullptr) {
            report(out, "orphan-kernel", kernel->id,
                   strprintf("GPU event %llu '%s' (correlation %llu) "
                             "has no runtime launch",
                             static_cast<unsigned long long>(kernel->id),
                             kernel->name.c_str(),
                             static_cast<unsigned long long>(corr)));
            continue;
        }
        if (kernel == nullptr) {
            report(out, "launch-without-kernel", launch->id,
                   strprintf("runtime call %llu '%s' (correlation "
                             "%llu) launched no GPU event",
                             static_cast<unsigned long long>(launch->id),
                             launch->name.c_str(),
                             static_cast<unsigned long long>(corr)));
            continue;
        }
        ++out.pairsChecked;
        if (kernel->tsBeginNs < launch->tsBeginNs) {
            report(out, "kernel-before-launch", kernel->id,
                   strprintf("GPU event %llu '%s' begins at %lld ns, "
                             "before its launch %llu at %lld ns",
                             static_cast<unsigned long long>(kernel->id),
                             kernel->name.c_str(),
                             static_cast<long long>(kernel->tsBeginNs),
                             static_cast<unsigned long long>(launch->id),
                             static_cast<long long>(
                                 launch->tsBeginNs)));
        }
    }
}

/**
 * Every runtime launch must begin inside some operator interval on its
 * thread (op begin <= launch begin <= op end): the CPU dispatch loop
 * only issues launches from within an operator. Skipped entirely when
 * the trace carries no Operator events (see header).
 */
void
checkOperatorEnclosure(const trace::Trace &trace, TraceCheckReport &out)
{
    if (trace.countOf(EventKind::Operator) == 0)
        return;

    // Per thread: operator intervals sorted by begin, with a running
    // prefix-max of ends, so "is instant t inside any operator?"
    // becomes one binary search.
    struct OpIndex
    {
        std::vector<std::int64_t> begins;
        std::vector<std::int64_t> maxEnds; ///< prefix max of tsEndNs
    };
    std::map<int, std::vector<const TraceEvent *>> per_tid;
    for (const TraceEvent &ev : trace.events()) {
        if (ev.kind == EventKind::Operator)
            per_tid[ev.tid].push_back(&ev);
    }
    std::map<int, OpIndex> index;
    for (auto &[tid, ops] : per_tid) {
        std::sort(ops.begin(), ops.end(),
                  [](const TraceEvent *a, const TraceEvent *b) {
                      if (a->tsBeginNs != b->tsBeginNs)
                          return a->tsBeginNs < b->tsBeginNs;
                      return a->id < b->id;
                  });
        OpIndex &idx = index[tid];
        std::int64_t running = std::numeric_limits<std::int64_t>::min();
        for (const TraceEvent *op : ops) {
            running = std::max(running, op->tsEndNs());
            idx.begins.push_back(op->tsBeginNs);
            idx.maxEnds.push_back(running);
        }
    }

    for (const TraceEvent &ev : trace.events()) {
        if (ev.kind != EventKind::Runtime || ev.correlationId == 0)
            continue;
        auto it = index.find(ev.tid);
        bool enclosed = false;
        if (it != index.end()) {
            const OpIndex &idx = it->second;
            // Last operator beginning at or before the launch begin.
            auto pos = std::upper_bound(idx.begins.begin(),
                                        idx.begins.end(), ev.tsBeginNs);
            if (pos != idx.begins.begin()) {
                std::size_t i = static_cast<std::size_t>(
                    pos - idx.begins.begin() - 1);
                enclosed = idx.maxEnds[i] >= ev.tsBeginNs;
            }
        }
        if (!enclosed) {
            report(out, "launch-outside-operator", ev.id,
                   strprintf("runtime call %llu '%s' begins at %lld ns "
                             "outside every operator on thread %d",
                             static_cast<unsigned long long>(ev.id),
                             ev.name.c_str(),
                             static_cast<long long>(ev.tsBeginNs),
                             ev.tid));
        }
    }
}

/**
 * Per-stream order: GPU events sorted by begin must not overlap, and
 * their begin order must match their launches' begin order (an
 * in-order stream is FIFO with respect to launch submission).
 */
void
checkStreamOrder(const trace::Trace &trace, TraceCheckReport &out,
                 const std::map<std::uint64_t,
                                std::pair<const TraceEvent *,
                                          const TraceEvent *>> &pairs)
{
    std::map<int, std::vector<const TraceEvent *>> per_stream;
    for (const TraceEvent &ev : trace.events()) {
        if (ev.onGpu() && ev.streamId >= 0)
            per_stream[ev.streamId].push_back(&ev);
    }

    // kernel -> its launch, for the FIFO comparison.
    std::map<std::uint64_t, const TraceEvent *> launch_of;
    for (const auto &[corr, pair] : pairs) {
        (void)corr;
        if (pair.first != nullptr && pair.second != nullptr)
            launch_of[pair.second->id] = pair.first;
    }

    for (auto &[stream, events] : per_stream) {
        std::sort(events.begin(), events.end(),
                  [](const TraceEvent *a, const TraceEvent *b) {
                      if (a->tsBeginNs != b->tsBeginNs)
                          return a->tsBeginNs < b->tsBeginNs;
                      return a->id < b->id;
                  });
        const TraceEvent *prev = nullptr;
        const TraceEvent *prev_launch = nullptr;
        for (const TraceEvent *ev : events) {
            if (prev != nullptr && ev->tsBeginNs < prev->tsEndNs()) {
                report(out, "stream-overlap", ev->id,
                       strprintf("stream %d: GPU event %llu '%s' "
                                 "begins at %lld ns before event %llu "
                                 "'%s' ends at %lld ns",
                                 stream,
                                 static_cast<unsigned long long>(ev->id),
                                 ev->name.c_str(),
                                 static_cast<long long>(ev->tsBeginNs),
                                 static_cast<unsigned long long>(
                                     prev->id),
                                 prev->name.c_str(),
                                 static_cast<long long>(
                                     prev->tsEndNs())));
            }
            prev = ev;

            auto it = launch_of.find(ev->id);
            if (it == launch_of.end())
                continue; // bijection findings already reported
            const TraceEvent *launch = it->second;
            if (prev_launch != nullptr &&
                launch->tsBeginNs < prev_launch->tsBeginNs) {
                report(out, "fifo-order", ev->id,
                       strprintf("stream %d: GPU event %llu '%s' runs "
                                 "before its launch order allows "
                                 "(launch %llu at %lld ns vs previous "
                                 "launch %llu at %lld ns)",
                                 stream,
                                 static_cast<unsigned long long>(ev->id),
                                 ev->name.c_str(),
                                 static_cast<unsigned long long>(
                                     launch->id),
                                 static_cast<long long>(
                                     launch->tsBeginNs),
                                 static_cast<unsigned long long>(
                                     prev_launch->id),
                                 static_cast<long long>(
                                     prev_launch->tsBeginNs)));
            }
            prev_launch = launch;
        }
    }
}

/**
 * Launch-queue depth derived from the trace: +1 at every correlated
 * launch begin, -1 at the matching GPU-event begin; ties process the
 * +1 first (a kernel may start the instant its launch begins). The
 * depth going negative means a kernel ran that was never launched
 * before it — causality corruption the per-pair check can miss when
 * correlation ids themselves are corrupted.
 */
void
checkQueueDepth(const trace::Trace &trace, TraceCheckReport &out,
                const std::map<std::uint64_t,
                               std::pair<const TraceEvent *,
                                         const TraceEvent *>> &pairs)
{
    struct Edge
    {
        std::int64_t tsNs;
        int delta; ///< +1 launch begin, -1 kernel begin
        std::uint64_t eventId;
    };
    std::vector<Edge> edges;
    for (const auto &[corr, pair] : pairs) {
        (void)corr;
        if (pair.first == nullptr || pair.second == nullptr)
            continue;
        edges.push_back({pair.first->tsBeginNs, +1, pair.first->id});
        edges.push_back({pair.second->tsBeginNs, -1, pair.second->id});
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.tsNs != b.tsNs)
                      return a.tsNs < b.tsNs;
                  if (a.delta != b.delta)
                      return a.delta > b.delta; // +1 before -1
                  return a.eventId < b.eventId;
              });
    long depth = 0;
    for (const Edge &edge : edges) {
        depth += edge.delta;
        if (depth < 0) {
            report(out, "negative-queue-depth", edge.eventId,
                   strprintf("launch-queue depth is %ld at %lld ns "
                             "(GPU event %llu began before its launch)",
                             depth, static_cast<long long>(edge.tsNs),
                             static_cast<unsigned long long>(
                                 edge.eventId)));
            return; // once negative, every later depth is suspect
        }
    }
}

} // namespace

bool
TraceCheckReport::has(const std::string &code) const
{
    for (const Violation &v : violations) {
        if (v.code == code)
            return true;
    }
    return false;
}

std::string
TraceCheckReport::render() const
{
    std::string out = strprintf(
        "trace check: %zu events, %zu GPU events, %zu launch/kernel "
        "pairs -> %s (%zu violation%s)\n",
        eventsChecked, gpuChecked, pairsChecked, ok() ? "OK" : "FAIL",
        violations.size(), violations.size() == 1 ? "" : "s");
    for (const Violation &v : violations)
        out += strprintf("  [%s] %s\n", v.code.c_str(),
                         v.message.c_str());
    return out;
}

json::Value
TraceCheckReport::toJson() const
{
    json::Object doc;
    doc.set("ok", json::Value(ok()));
    doc.set("events", static_cast<unsigned long long>(eventsChecked));
    doc.set("gpu_events", static_cast<unsigned long long>(gpuChecked));
    doc.set("pairs", static_cast<unsigned long long>(pairsChecked));
    json::Value::Array items;
    for (const Violation &v : violations) {
        json::Object item;
        item.set("code", v.code);
        item.set("message", v.message);
        item.set("event", static_cast<unsigned long long>(v.eventId));
        items.push_back(json::Value(std::move(item)));
    }
    doc.set("violations", json::Value(std::move(items)));
    return json::Value(std::move(doc));
}

TraceCheckReport
validateTrace(const trace::Trace &trace)
{
    TraceCheckReport out;
    out.eventsChecked = trace.size();
    out.gpuChecked = trace.countOf(EventKind::Kernel) +
        trace.countOf(EventKind::Memcpy);

    checkStructure(trace, out);
    std::map<std::uint64_t,
             std::pair<const TraceEvent *, const TraceEvent *>>
        pairs;
    checkCorrelations(trace, out, pairs);
    checkOperatorEnclosure(trace, out);
    checkStreamOrder(trace, out, pairs);
    checkQueueDepth(trace, out, pairs);
    return out;
}

} // namespace skipsim::check
