/**
 * @file
 * Trace invariant checker: semantic validation of Kineto-style traces.
 *
 * SKIP's paper metrics (TKLQT, AKD, proximity score) are pure
 * functions of trace timestamps, so a refactor of the generative
 * process can corrupt them silently while byte-identical goldens
 * either scream uselessly or get regolded. validateTrace() instead
 * asserts the *laws* every causally-consistent CPU-GPU trace obeys,
 * independent of the exact numbers:
 *
 *  - durations are non-negative (code "negative-duration");
 *  - GPU events carry a stream id ("missing-stream");
 *  - correlation ids form a bijection between runtime launches and
 *    GPU events ("duplicate-launch-correlation",
 *    "duplicate-kernel-correlation", "launch-without-kernel",
 *    "orphan-kernel", "kernel-without-correlation");
 *  - causality: operator begin <= launch begin <= kernel begin for
 *    every correlated pair ("launch-outside-operator",
 *    "kernel-before-launch");
 *  - kernels (and memcpys) on one stream never overlap
 *    ("stream-overlap") and start in FIFO launch order
 *    ("fifo-order");
 *  - the launch-queue depth derived from the trace (+1 at each launch
 *    begin, -1 at the matching kernel begin) never goes negative
 *    ("negative-queue-depth").
 *
 * The operator-enclosure check is skipped for traces that carry no
 * Operator events at all (obs counter traces, harness self-traces),
 * which have no CPU dispatch layer to check against.
 */

#ifndef SKIPSIM_CHECK_INVARIANTS_HH
#define SKIPSIM_CHECK_INVARIANTS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "json/value.hh"
#include "trace/trace.hh"

namespace skipsim::check
{

/** One violated invariant. */
struct Violation
{
    /** Stable machine-readable code (see file comment). */
    std::string code;

    /** Precise human-readable diagnostic naming the events involved. */
    std::string message;

    /** Dense id of the primary offending event. */
    std::uint64_t eventId = 0;
};

/** Outcome of one validateTrace() run. */
struct TraceCheckReport
{
    std::vector<Violation> violations;

    /** Events inspected (operators + runtime + GPU). */
    std::size_t eventsChecked = 0;

    /** GPU events (kernels + memcpys) inspected. */
    std::size_t gpuChecked = 0;

    /** Correlated launch/kernel pairs inspected. */
    std::size_t pairsChecked = 0;

    bool ok() const { return violations.empty(); }

    /** True when any violation carries @p code. */
    bool has(const std::string &code) const;

    /** Aligned text rendering (summary line + one line per violation). */
    std::string render() const;

    /** Deterministic JSON document (ok flag, counts, violations). */
    json::Value toJson() const;
};

/**
 * Check every invariant against @p trace. Never throws on bad traces —
 * all findings are reported, so one corrupted event cannot mask
 * another.
 */
TraceCheckReport validateTrace(const trace::Trace &trace);

} // namespace skipsim::check

#endif // SKIPSIM_CHECK_INVARIANTS_HH
