#include "check/mdc.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::check
{

double
erlangB(int servers, double offeredLoad)
{
    if (servers < 1)
        panic(strprintf("check::erlangB: servers must be positive, "
                        "got %d",
                        servers));
    if (offeredLoad < 0.0 || !std::isfinite(offeredLoad))
        panic(strprintf("check::erlangB: offered load must be finite "
                        "and non-negative, got %g",
                        offeredLoad));
    // B(0, a) = 1; B(k, a) = a B(k-1, a) / (k + a B(k-1, a)). Each
    // step stays in (0, 1], so no factorials overflow.
    double b = 1.0;
    for (int k = 1; k <= servers; ++k)
        b = offeredLoad * b / (static_cast<double>(k) + offeredLoad * b);
    return b;
}

double
erlangC(int servers, double offeredLoad)
{
    double c = static_cast<double>(servers);
    if (offeredLoad >= c)
        panic(strprintf("check::erlangC: unstable queue, offered load "
                        "%g >= %d servers",
                        offeredLoad, servers));
    double b = erlangB(servers, offeredLoad);
    return c * b / (c - offeredLoad * (1.0 - b));
}

MdcSolution
solveMdc(double arrivalRatePerSec, double serviceNs, int servers)
{
    if (!(arrivalRatePerSec > 0.0) || !std::isfinite(arrivalRatePerSec))
        panic(strprintf("check::solveMdc: arrival rate must be a "
                        "positive finite rate, got %g",
                        arrivalRatePerSec));
    if (!(serviceNs > 0.0) || !std::isfinite(serviceNs))
        panic(strprintf("check::solveMdc: service time must be a "
                        "positive finite ns count, got %g",
                        serviceNs));
    if (servers < 1)
        panic(strprintf("check::solveMdc: servers must be positive, "
                        "got %d",
                        servers));

    double lambda_per_ns = arrivalRatePerSec / 1e9;
    double c = static_cast<double>(servers);

    MdcSolution out;
    out.offeredLoadErlangs = lambda_per_ns * serviceNs;
    out.utilization = out.offeredLoadErlangs / c;
    if (out.utilization >= 1.0)
        panic(strprintf("check::solveMdc: unstable queue, utilization "
                        "%g >= 1 (rate %g /s, service %g ns, %d "
                        "servers)",
                        out.utilization, arrivalRatePerSec, serviceNs,
                        servers));

    out.delayProbability = erlangC(servers, out.offeredLoadErlangs);

    // M/M/c mean wait, then the deterministic-service correction.
    // Cosmetatos: Wq(M/D/c) ~= Wq(M/M/c)/2 * (1 + f), with
    // f = (1 - rho)(c - 1)(sqrt(4 + 5c) - 2) / (16 rho c). At c = 1
    // the correction vanishes and the halved M/M/1 wait is the exact
    // Pollaczek-Khinchine M/D/1 value rho S / (2 (1 - rho)).
    double rho = out.utilization;
    double wq_mmc = out.delayProbability * serviceNs / (c * (1.0 - rho));
    double correction = (1.0 - rho) * (c - 1.0) *
        (std::sqrt(4.0 + 5.0 * c) - 2.0) / (16.0 * rho * c);
    out.meanWaitNs = 0.5 * wq_mmc * (1.0 + correction);
    out.meanResponseNs = out.meanWaitNs + serviceNs;
    out.meanQueueLength = lambda_per_ns * out.meanWaitNs;

    // Exponential-tail approximation of the delay distribution:
    // P(W > t) ~= Pw exp(-t Pw / Wq), which has the right mass at
    // zero and the right mean. The median is 0 whenever fewer than
    // half the arrivals wait at all.
    if (out.delayProbability > 0.5 && out.meanWaitNs > 0.0)
        out.medianWaitNs = out.meanWaitNs / out.delayProbability *
            std::log(2.0 * out.delayProbability);
    out.medianResponseNs = out.medianWaitNs + serviceNs;
    return out;
}

} // namespace skipsim::check
