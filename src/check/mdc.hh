/**
 * @file
 * Closed-form steady-state solver for the M/D/c queue: Poisson
 * arrivals, deterministic service, c identical servers. The serving
 * and cluster engines are discrete-event simulators of exactly this
 * system when batching is disabled (maxBatch = 1 / maxActive = 1 with
 * a single generated token), so the solver is a cross-engine oracle:
 * the simulated steady state must land on the closed form, not merely
 * move in the right direction.
 *
 * Exact pieces: Erlang-B/Erlang-C (recurrence, no factorials) and the
 * c = 1 mean wait, which is the Pollaczek-Khinchine formula
 * Wq = rho * S / (2 (1 - rho)) — exact for M/D/1. For c > 1 the mean
 * wait uses the Cosmetatos approximation (M/M/c wait halved with a
 * small multi-server correction), which reduces to the exact value at
 * c = 1 and stays within a few percent elsewhere. Median waits come
 * from the standard exponential-tail approximation of the delay
 * distribution and are therefore looser; compare them with generous
 * tolerance.
 */

#ifndef SKIPSIM_CHECK_MDC_HH
#define SKIPSIM_CHECK_MDC_HH

namespace skipsim::check
{

/** Steady-state quantities of an M/D/c queue. Times are ns. */
struct MdcSolution
{
    double offeredLoadErlangs = 0.0; ///< a = lambda * S
    double utilization = 0.0;        ///< rho = a / c, must be < 1
    double delayProbability = 0.0;   ///< Erlang-C P(wait > 0)
    double meanWaitNs = 0.0;         ///< E[Wq] (exact at c = 1)
    double meanResponseNs = 0.0;     ///< E[Wq] + S
    double medianWaitNs = 0.0;       ///< 0 when delayProbability <= 1/2
    double medianResponseNs = 0.0;   ///< medianWaitNs + S
    double meanQueueLength = 0.0;    ///< Lq = lambda * E[Wq] (Little)
};

/**
 * Erlang-B blocking probability of an M/M/c/c loss system carrying
 * @p offeredLoad erlangs, via the numerically stable recurrence.
 * @throws PanicError when servers < 1 or offeredLoad < 0.
 */
double erlangB(int servers, double offeredLoad);

/**
 * Erlang-C delay probability P(wait > 0) of an M/M/c queue. Requires
 * offeredLoad < servers (stability). @throws PanicError otherwise.
 */
double erlangC(int servers, double offeredLoad);

/**
 * Solve the M/D/c queue with @p arrivalRatePerSec Poisson arrivals,
 * deterministic @p serviceNs service, and @p servers servers.
 * @throws PanicError unless all inputs are positive and the queue is
 * stable (rho < 1).
 */
MdcSolution solveMdc(double arrivalRatePerSec, double serviceNs,
                     int servers);

} // namespace skipsim::check

#endif // SKIPSIM_CHECK_MDC_HH
