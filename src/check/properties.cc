#include "check/properties.hh"

#include <cmath>
#include <memory>
#include <mutex>

#include "analysis/sweep.hh"
#include "check/mdc.hh"
#include "check/span_check.hh"
#include "cluster/cluster.hh"
#include "common/strutil.hh"
#include "core/sharded_engine.hh"
#include "hw/catalog.hh"
#include "json/writer.hh"
#include "kv/tier.hh"
#include "obs/attribution.hh"
#include "obs/span.hh"
#include "serving/arrival.hh"
#include "serving/latency_model.hh"
#include "serving/server_sim.hh"
#include "skip/profile.hh"
#include "workload/model_config.hh"

namespace skipsim::check
{

namespace
{

/**
 * Directional comparison with a hair of relative slack: the engines
 * are deterministic, but a property may legitimately hold with
 * equality (e.g. a perturbation outside the binding constraint), and
 * double arithmetic along two different code paths can differ in the
 * last ulp.
 */
bool
nonDecreasing(double base, double perturbed)
{
    return perturbed >= base - 1e-9 * (std::abs(base) + 1.0);
}

bool
nonIncreasing(double base, double perturbed)
{
    return perturbed <= base + 1e-9 * (std::abs(base) + 1.0);
}

PropertyResult
judge(const std::string &name, const std::string &engine, double base,
      double perturbed, bool passed, std::string detail)
{
    PropertyResult r;
    r.name = name;
    r.engine = engine;
    r.passed = passed;
    r.baseValue = base;
    r.perturbedValue = perturbed;
    r.detail = std::move(detail);
    return r;
}

/** One prefill profile of GPT2 on @p platform (deterministic). */
skip::ProfileResult
runSim(const hw::Platform &platform, int batch, int seq_len,
       workload::ExecMode mode = workload::ExecMode::Eager)
{
    skip::ProfileConfig config;
    config.model = workload::gpt2();
    config.platform = platform;
    config.batch = batch;
    config.seqLen = seq_len;
    config.mode = mode;
    return skip::profile(config);
}

/**
 * Synthetic linear batch-latency sweep, latency(b) = base + slope * b.
 * Keeps the serving properties independent of the calibrated platform
 * numbers: the laws under test are queueing laws, not cost-model laws.
 */
analysis::SweepResult
linearSweep(double base_ns, double slope_ns)
{
    analysis::SweepResult sweep;
    sweep.modelName = "synthetic";
    sweep.platformName = "synthetic";
    for (int batch : {1, 2, 4, 8, 16, 32}) {
        analysis::SweepPoint point;
        point.batch = batch;
        point.metrics.ilNs =
            base_ns + slope_ns * static_cast<double>(batch);
        sweep.points.push_back(point);
    }
    return sweep;
}

serving::ServingConfig
servingBase()
{
    serving::ServingConfig config;
    config.arrivalRatePerSec = 400.0;
    config.horizonSec = 10.0;
    config.maxBatch = 16;
    config.maxWaitNs = 2e6;
    config.seed = 7;
    return config;
}

/**
 * Small two-replica GH200 cluster near saturation: short horizon and
 * prompt keep the shared cost-model calibration cheap while leaving
 * the fault and capacity laws something to bite on.
 */
cluster::ClusterSpec
clusterBase()
{
    cluster::ClusterSpec spec;
    spec.model = workload::gpt2();
    cluster::ReplicaSpec replica;
    replica.platform = hw::platforms::gh200();
    replica.maxActive = 8;
    spec.replicas = {replica, replica};
    spec.arrivalRatePerSec = 40.0;
    spec.horizonSec = 8.0;
    spec.promptLen = 64;
    spec.genTokens = 8;
    spec.ttftSloMs = 250.0;
    spec.e2eSloMs = 1000.0;
    spec.seed = 7;
    return spec;
}

/**
 * KV-pressured variant of clusterBase(): the HBM is shrunk until
 * retained sessions cannot all stay resident and chatty multi-turn
 * traffic keeps asking for its prefixes back, so the tiering policy
 * and the offload link are both on the critical path. The platform
 * *name* stays GH200, so the shared cost cache still applies (compute
 * costs do not depend on HBM capacity or link speed).
 */
cluster::ClusterSpec
kvClusterBase(kv::OffloadPolicy policy)
{
    cluster::ClusterSpec spec = clusterBase();
    for (cluster::ReplicaSpec &replica : spec.replicas)
        replica.platform.gpu.hbmCapacityGiB = 0.33;
    spec.kvTier.policy = policy;
    spec.kvTier.hostCapacityGiB = 0.05;
    spec.kvTier.watermarkFrac = 0.9;
    serving::SessionProcess::Params chat;
    chat.sessionRatePerSec = 10.0;
    chat.meanTurns = 4.0;
    chat.thinkSec = 1.0;
    chat.cachedFrac = 0.8;
    chat.sessions = spec.sessions;
    spec.traffic = std::make_shared<serving::SessionProcess>(chat);
    return spec;
}

/**
 * Cost models shared by every cluster property (same model/prompt, one
 * platform), built once on first use.
 */
const cluster::CostCache &
sharedCosts()
{
    static cluster::CostCache cache;
    static std::once_flag once;
    std::call_once(once, [] { cache.build(clusterBase()); });
    return cache;
}

std::vector<Property>
buildCatalog()
{
    std::vector<Property> props;
    auto add = [&props](const char *name, const char *engine,
                        const char *law,
                        std::function<PropertyResult()> run) {
        Property p;
        p.name = name;
        p.engine = engine;
        p.law = law;
        p.run = std::move(run);
        props.push_back(std::move(p));
    };

    add("sim.launch-overhead-tklqt", "sim",
        "a larger kernel-launch overhead never decreases TKLQT", [] {
            hw::Platform base = hw::platforms::gh200();
            hw::Platform slow = base;
            slow.cpu.launchOverheadNs *= 2.0;
            double a = runSim(base, 1, 128).metrics.tklqtNs;
            double b = runSim(slow, 1, 128).metrics.tklqtNs;
            return judge("sim.launch-overhead-tklqt", "sim", a, b,
                         nonDecreasing(a, b),
                         strprintf("TKLQT %.0f ns -> %.0f ns after "
                                   "doubling launchOverheadNs",
                                   a, b));
        });

    add("sim.launch-overhead-bound-region", "sim",
        "a larger launch overhead never decreases the launch-bound "
        "share of the run (GPU idle while the CPU dispatches)",
        [] {
            hw::Platform base = hw::platforms::gh200();
            hw::Platform slow = base;
            slow.cpu.launchOverheadNs *= 2.0;
            slow.cpu.launchCpuNs *= 2.0;
            skip::ProfileResult pa = runSim(base, 1, 128);
            skip::ProfileResult pb = runSim(slow, 1, 128);
            double a = pa.metrics.gpuIdleNs / pa.metrics.ilNs;
            double b = pb.metrics.gpuIdleNs / pb.metrics.ilNs;
            return judge("sim.launch-overhead-bound-region", "sim", a,
                         b, nonDecreasing(a, b),
                         strprintf("GPU-idle fraction %.4f -> %.4f "
                                   "after doubling launch costs",
                                   a, b));
        });

    // Note the law deliberately compares IL, not TKLQT: a faster CPU
    // issues launches back-to-back faster, which *deepens* the launch
    // queue and can legitimately raise TKLQT (queueing is part of it).
    // The direction that must hold is end-to-end: shrinking every CPU
    // segment can only move kernel starts earlier, never later.
    add("sim.cpu-speed-latency", "sim",
        "a faster CPU single-thread score never increases prefill "
        "latency (IL)",
        [] {
            hw::Platform base = hw::platforms::gh200();
            hw::Platform fast = base;
            fast.cpu.singleThreadScore *= 2.0;
            double a = runSim(base, 1, 128).metrics.ilNs;
            double b = runSim(fast, 1, 128).metrics.ilNs;
            return judge("sim.cpu-speed-latency", "sim", a, b,
                         nonIncreasing(a, b),
                         strprintf("IL %.0f ns -> %.0f ns after "
                                   "doubling singleThreadScore",
                                   a, b));
        });

    add("sim.batch-latency", "sim",
        "a larger batch never decreases prefill latency (IL)", [] {
            hw::Platform platform = hw::platforms::gh200();
            double a = runSim(platform, 2, 128).metrics.ilNs;
            double b = runSim(platform, 8, 128).metrics.ilNs;
            return judge("sim.batch-latency", "sim", a, b,
                         nonDecreasing(a, b),
                         strprintf("IL %.0f ns (batch 2) -> %.0f ns "
                                   "(batch 8)",
                                   a, b));
        });

    add("sim.seqlen-latency", "sim",
        "a longer sequence never decreases prefill latency (IL)", [] {
            hw::Platform platform = hw::platforms::gh200();
            double a = runSim(platform, 2, 128).metrics.ilNs;
            double b = runSim(platform, 2, 256).metrics.ilNs;
            return judge("sim.seqlen-latency", "sim", a, b,
                         nonDecreasing(a, b),
                         strprintf("IL %.0f ns (seq 128) -> %.0f ns "
                                   "(seq 256)",
                                   a, b));
        });

    add("sim.fusion-launches", "sim",
        "a fused execution mode never launches more kernels than "
        "eager (K_fused <= K_eager, paper Eq. 7)",
        [] {
            hw::Platform platform = hw::platforms::gh200();
            double a = static_cast<double>(
                runSim(platform, 2, 128, workload::ExecMode::Eager)
                    .metrics.numKernels);
            double b = static_cast<double>(
                runSim(platform, 2, 128,
                       workload::ExecMode::CompileDefault)
                    .metrics.numKernels);
            return judge("sim.fusion-launches", "sim", a, b,
                         nonIncreasing(a, b),
                         strprintf("kernel launches %.0f (eager) -> "
                                   "%.0f (compiled)",
                                   a, b));
        });

    add("serving.load-ttft", "serving",
        "a higher arrival rate never decreases p50 TTFT", [] {
            serving::LatencyModel latency(linearSweep(2e6, 1e6));
            serving::ServingConfig base = servingBase();
            serving::ServingConfig loaded = base;
            loaded.arrivalRatePerSec *= 2.0;
            double a =
                serving::simulateServing(latency, base).p50TtftNs;
            double b =
                serving::simulateServing(latency, loaded).p50TtftNs;
            return judge("serving.load-ttft", "serving", a, b,
                         nonDecreasing(a, b),
                         strprintf("p50 TTFT %.0f ns at %.0f rps -> "
                                   "%.0f ns at %.0f rps",
                                   a, base.arrivalRatePerSec, b,
                                   loaded.arrivalRatePerSec));
        });

    add("serving.horizon-completed", "serving",
        "a longer horizon never decreases completed requests (the "
        "arrival process is a prefix of the longer run)",
        [] {
            serving::LatencyModel latency(linearSweep(2e6, 1e6));
            serving::ServingConfig base = servingBase();
            serving::ServingConfig longer = base;
            longer.horizonSec *= 2.0;
            double a = static_cast<double>(
                serving::simulateServing(latency, base).completed);
            double b = static_cast<double>(
                serving::simulateServing(latency, longer).completed);
            return judge("serving.horizon-completed", "serving", a, b,
                         nonDecreasing(a, b),
                         strprintf("completed %.0f in %.0f s -> %.0f "
                                   "in %.0f s",
                                   a, base.horizonSec, b,
                                   longer.horizonSec));
        });

    add("serving.mdc-oracle", "serving",
        "with unit batches the serving engine's mean latency matches "
        "the exact M/D/1 Pollaczek-Khinchine closed form within 5%",
        [] {
            serving::LatencyModel latency(linearSweep(2e6, 1e6));
            double service_ns = latency.latencyNs(1);
            serving::ServingConfig config;
            config.arrivalRatePerSec = 200.0; // rho = 0.6 at 3 ms
            config.horizonSec = 200.0;
            config.maxBatch = 1;
            config.maxWaitNs = 0.0;
            config.seed = 7;
            MdcSolution mdc = solveMdc(config.arrivalRatePerSec,
                                       service_ns, 1);
            double a = serving::simulateServing(latency, config)
                           .meanLatencyNs;
            double b = mdc.meanResponseNs;
            bool passed = std::abs(a - b) <= 0.05 * b;
            return judge(
                "serving.mdc-oracle", "serving", a, b, passed,
                strprintf("simulated mean latency %.0f ns vs M/D/1 "
                          "closed form %.0f ns at rho %.2f "
                          "(%.1f%% apart)",
                          a, b, mdc.utilization,
                          100.0 * std::abs(a - b) / b));
        });

    add("cluster.crash-goodput", "cluster",
        "injecting a replica crash never increases goodput", [] {
            cluster::ClusterSpec base = clusterBase();
            cluster::ClusterSpec faulty = base;
            cluster::FaultSpec crash;
            crash.atSec = 2.0;
            crash.replica = 1;
            crash.kind = cluster::FaultKind::Crash;
            faulty.faults.push_back(crash);
            double a =
                cluster::simulateCluster(base, sharedCosts()).goodputRps;
            double b = cluster::simulateCluster(faulty, sharedCosts())
                           .goodputRps;
            return judge("cluster.crash-goodput", "cluster", a, b,
                         nonIncreasing(a, b),
                         strprintf("goodput %.2f rps -> %.2f rps with "
                                   "one crash at 2 s",
                                   a, b));
        });

    add("cluster.slo-looseness", "cluster",
        "loosening both SLOs never decreases SLO attainment", [] {
            cluster::ClusterSpec base = clusterBase();
            cluster::ClusterSpec loose = base;
            loose.ttftSloMs *= 2.0;
            loose.e2eSloMs *= 2.0;
            double a = cluster::simulateCluster(base, sharedCosts())
                           .sloAttainment;
            double b = cluster::simulateCluster(loose, sharedCosts())
                           .sloAttainment;
            return judge("cluster.slo-looseness", "cluster", a, b,
                         nonDecreasing(a, b),
                         strprintf("attainment %.4f -> %.4f after "
                                   "doubling both SLOs",
                                   a, b));
        });

    add("cluster.replica-capacity", "cluster",
        "adding a replica never decreases completed requests", [] {
            cluster::ClusterSpec two = clusterBase();
            cluster::ClusterSpec one = two;
            one.replicas.resize(1);
            double a = static_cast<double>(
                cluster::simulateCluster(one, sharedCosts()).completed);
            double b = static_cast<double>(
                cluster::simulateCluster(two, sharedCosts()).completed);
            return judge("cluster.replica-capacity", "cluster", a, b,
                         nonDecreasing(a, b),
                         strprintf("completed %.0f (1 replica) -> "
                                   "%.0f (2 replicas)",
                                   a, b));
        });

    add("cluster.mdc-oracle", "cluster",
        "a three-replica single-slot cluster tracks the closed-form "
        "M/D/3 median response within 35%",
        [] {
            // Single-slot replicas serving one token make each request
            // one deterministic service; least-outstanding routing
            // approximates the central M/D/c queue. The service time
            // is calibrated from a near-idle run (the median response
            // with nobody waiting), which also absorbs any fixed
            // dispatch overhead.
            cluster::ClusterSpec idle = clusterBase();
            for (cluster::ReplicaSpec &replica : idle.replicas)
                replica.maxActive = 1;
            idle.replicas.push_back(idle.replicas.front());
            idle.genTokens = 1;
            idle.arrivalRatePerSec = 1.0;
            idle.horizonSec = 20.0;
            double service_ns =
                cluster::simulateCluster(idle, sharedCosts()).p50E2eNs;

            double rho = 0.8;
            double rate = rho * 3.0 / (service_ns / 1e9);
            cluster::ClusterSpec loaded = idle;
            loaded.arrivalRatePerSec = rate;
            loaded.horizonSec = 3000.0 / rate;
            MdcSolution mdc = solveMdc(rate, service_ns, 3);
            double a = cluster::simulateCluster(loaded, sharedCosts())
                           .p50E2eNs;
            double b = mdc.medianResponseNs;
            bool passed = std::abs(a - b) <= 0.35 * b;
            return judge(
                "cluster.mdc-oracle", "cluster", a, b, passed,
                strprintf("simulated p50 E2E %.0f ns vs M/D/3 median "
                          "%.0f ns at rho %.2f, service %.0f ns "
                          "(%.1f%% apart)",
                          a, b, mdc.utilization, service_ns,
                          100.0 * std::abs(a - b) / b));
        });

    add("cluster.mmpp-burst-ttft", "cluster",
        "burstier MMPP traffic at equal mean rate never improves p99 "
        "TTFT",
        [] {
            cluster::ClusterSpec steady = clusterBase();
            steady.traffic = std::make_shared<serving::MmppProcess>(
                std::vector<serving::MmppProcess::State>{{40.0, 1.0}},
                steady.sessions);
            // Same 40 rps long-run mean, but half the time at nearly
            // double the sustainable rate.
            cluster::ClusterSpec bursty = clusterBase();
            bursty.traffic = std::make_shared<serving::MmppProcess>(
                std::vector<serving::MmppProcess::State>{{5.0, 1.0},
                                                         {75.0, 1.0}},
                bursty.sessions);
            double a = cluster::simulateCluster(steady, sharedCosts())
                           .p99TtftNs;
            double b = cluster::simulateCluster(bursty, sharedCosts())
                           .p99TtftNs;
            return judge("cluster.mmpp-burst-ttft", "cluster", a, b,
                         nonDecreasing(a, b),
                         strprintf("p99 TTFT %.0f ns (steady 40 rps) "
                                   "-> %.0f ns (5/75 rps burst, same "
                                   "mean)",
                                   a, b));
        });

    add("cluster.session-cache-ttft", "cluster",
        "prefix-cache hits on multi-turn follow-ups never worsen p99 "
        "TTFT (same arrival timeline, less prefill compute)",
        [] {
            serving::SessionProcess::Params chat;
            chat.sessionRatePerSec = 10.0;
            chat.meanTurns = 4.0;
            chat.thinkSec = 1.0;
            chat.sessions = clusterBase().sessions;
            serving::SessionProcess::Params cold = chat;
            cold.cachedFrac = 0.0;
            serving::SessionProcess::Params warm = chat;
            warm.cachedFrac = 0.75;
            cluster::ClusterSpec a_spec = clusterBase();
            a_spec.traffic =
                std::make_shared<serving::SessionProcess>(cold);
            cluster::ClusterSpec b_spec = clusterBase();
            b_spec.traffic =
                std::make_shared<serving::SessionProcess>(warm);
            double a = cluster::simulateCluster(a_spec, sharedCosts())
                           .p99TtftNs;
            double b = cluster::simulateCluster(b_spec, sharedCosts())
                           .p99TtftNs;
            return judge("cluster.session-cache-ttft", "cluster", a, b,
                         nonIncreasing(a, b),
                         strprintf("p99 TTFT %.0f ns (cold prompts) -> "
                                   "%.0f ns (75%% prefix cached)",
                                   a, b));
        });

    add("cluster.tenant-slo-looseness", "cluster",
        "loosening every tenant's SLOs never decreases overall SLO "
        "attainment",
        [] {
            cluster::ClusterSpec base = clusterBase();
            base.traffic = std::make_shared<serving::TieredProcess>(
                std::vector<serving::TieredProcess::Tier>{
                    {"premium", 20.0}, {"standard", 20.0}},
                base.sessions);
            cluster::TenantSpec premium;
            premium.name = "premium";
            premium.ttftSloMs = 250.0;
            premium.e2eSloMs = 1000.0;
            cluster::TenantSpec standard;
            standard.name = "standard";
            standard.ttftSloMs = 500.0;
            standard.e2eSloMs = 2000.0;
            base.tenants = {premium, standard};
            cluster::ClusterSpec loose = base;
            for (cluster::TenantSpec &tenant : loose.tenants) {
                tenant.ttftSloMs *= 2.0;
                tenant.e2eSloMs *= 2.0;
            }
            double a = cluster::simulateCluster(base, sharedCosts())
                           .sloAttainment;
            double b = cluster::simulateCluster(loose, sharedCosts())
                           .sloAttainment;
            return judge("cluster.tenant-slo-looseness", "cluster", a, b,
                         nonDecreasing(a, b),
                         strprintf("attainment %.4f -> %.4f after "
                                   "doubling every tenant SLO",
                                   a, b));
        });

    add("cluster.kv-link-speed-ttft", "cluster",
        "a faster offload interconnect never raises p99 TTFT, under "
        "any tiering policy",
        [] {
            double worst_slow = 0.0, worst_fast = 0.0;
            bool passed = true;
            std::string detail;
            for (kv::OffloadPolicy policy :
                 {kv::OffloadPolicy::StaticWatermark,
                  kv::OffloadPolicy::LruBySession,
                  kv::OffloadPolicy::PrefixAware}) {
                cluster::ClusterSpec slow = kvClusterBase(policy);
                for (cluster::ReplicaSpec &r : slow.replicas) {
                    r.platform.link.bwGBs = 4.0;
                    r.platform.link.latencyNs = 5000.0;
                }
                cluster::ClusterSpec fast = kvClusterBase(policy);
                for (cluster::ReplicaSpec &r : fast.replicas) {
                    r.platform.link.bwGBs = 450.0;
                    r.platform.link.latencyNs = 300.0;
                }
                double a =
                    cluster::simulateCluster(slow, sharedCosts())
                        .p99TtftNs;
                double b =
                    cluster::simulateCluster(fast, sharedCosts())
                        .p99TtftNs;
                bool ok = nonIncreasing(a, b);
                if (!ok || detail.empty()) {
                    worst_slow = a;
                    worst_fast = b;
                    detail = strprintf(
                        "p99 TTFT %.0f ns (PCIe-class link) -> %.0f "
                        "ns (C2C-class link) under %s",
                        a, b, kv::offloadPolicyName(policy));
                }
                passed = passed && ok;
                if (!ok)
                    break;
            }
            return judge("cluster.kv-link-speed-ttft", "cluster",
                         worst_slow, worst_fast, passed, detail);
        });

    add("cluster.kv-capacity-bounds", "cluster",
        "KV tiering never holds more bytes than the HBM it offloads "
        "from or the host pool it offloads into",
        [] {
            cluster::ClusterSpec spec =
                kvClusterBase(kv::OffloadPolicy::LruBySession);
            cluster::ClusterResult r =
                cluster::simulateCluster(spec, sharedCosts());
            double peak_hbm = 0.0, peak_host = 0.0;
            for (const cluster::ReplicaStats &stats : r.replicas) {
                peak_hbm = std::max(peak_hbm, stats.peakKvBytes);
                peak_host = std::max(peak_host, stats.peakHostKvBytes);
            }
            double hbm_cap =
                spec.replicas.front().platform.gpu.hbmBytes();
            double host_cap = spec.kvTier.hostCapacityBytes();
            bool pressured = r.kv.offloads > 0;
            bool passed = pressured && peak_hbm <= hbm_cap + 0.5 &&
                peak_host <= host_cap + 0.5;
            return judge(
                "cluster.kv-capacity-bounds", "cluster", peak_hbm,
                peak_host, passed,
                strprintf("peak KV %.0f B of %.0f B HBM, peak host "
                          "%.0f B of %.0f B pool (%zu offloads)",
                          peak_hbm, hbm_cap, peak_host, host_cap,
                          static_cast<std::size_t>(r.kv.offloads)));
        });

    add("cluster.disagg-collapse", "cluster",
        "a role-annotated spec collapsed to co-located (every replica "
        "Mixed, tiering off) byte-matches the plain spec",
        [] {
            cluster::ClusterSpec plain = clusterBase();
            // Round-trip through serde and annotate every replica
            // with the explicit Mixed role: the collapsed form must
            // take the exact non-disaggregated code path (no handoff
            // lanes, no staging charges, no kv report section).
            cluster::ClusterSpec collapsed =
                cluster::ClusterSpec::fromJson(plain.toJson());
            for (cluster::ReplicaSpec &r : collapsed.replicas)
                r.role = cluster::ReplicaRole::Mixed;
            collapsed.kvTier = kv::TierSpec{};
            std::string a = json::write(
                cluster::simulateCluster(plain, sharedCosts())
                    .toJson());
            std::string b = json::write(
                cluster::simulateCluster(collapsed, sharedCosts())
                    .toJson());
            bool passed = a == b;
            return judge("cluster.disagg-collapse", "cluster",
                         static_cast<double>(a.size()),
                         static_cast<double>(b.size()), passed,
                         passed ? strprintf("identical %zu-byte "
                                            "reports",
                                            a.size())
                                : "collapsed disagg report diverged "
                                  "from the co-located report");
        });

    add("cluster.shard-identity", "cluster",
        "partitioning one run across engine shards is a pure "
        "execution-topology change: a fault-injected disaggregated "
        "spec with an explicit dispatch hop produces byte-identical "
        "reports at --shards 1 and --shards 4",
        [] {
            // Adversarial shape on purpose: a prefill/decode split
            // (cross-shard KV handoffs), a dispatch hop (non-zero
            // lookahead windows), and a mid-run crash (detect/heal
            // traffic through the router's shard).
            cluster::ClusterSpec spec = clusterBase();
            cluster::ReplicaSpec prefill = spec.replicas.front();
            prefill.role = cluster::ReplicaRole::Prefill;
            cluster::ReplicaSpec decode = prefill;
            decode.role = cluster::ReplicaRole::Decode;
            spec.replicas = {prefill, decode, decode, decode};
            spec.dispatchUs = 5.0;
            cluster::FaultSpec fault;
            fault.atSec = 4.0;
            fault.replica = 2;
            fault.kind = cluster::FaultKind::Crash;
            spec.faults.push_back(fault);

            cluster::ClusterSpec sharded = spec;
            sharded.shards = 4;
            core::ShardStats stats;
            std::string a = json::write(
                cluster::simulateCluster(spec, sharedCosts())
                    .toJson());
            std::string b = json::write(
                cluster::simulateCluster(sharded, sharedCosts(),
                                         nullptr, nullptr, &stats)
                    .toJson());
            bool passed = a == b && stats.shards == 4 &&
                stats.crossShardMessages > 0 &&
                stats.lookaheadViolations == 0;
            std::string detail;
            if (a != b)
                detail = "sharded report diverged from the "
                         "single-shard report";
            else if (stats.crossShardMessages == 0)
                detail = "no cross-shard traffic: the partition "
                         "exercised nothing";
            else if (stats.lookaheadViolations != 0)
                detail = strprintf("%llu lookahead violations",
                                   static_cast<unsigned long long>(
                                       stats.lookaheadViolations));
            else
                detail = strprintf(
                    "identical %zu-byte reports; %llu events over "
                    "%llu windows, %llu cross-shard messages",
                    a.size(),
                    static_cast<unsigned long long>(stats.events),
                    static_cast<unsigned long long>(stats.windows),
                    static_cast<unsigned long long>(
                        stats.crossShardMessages));
            return judge("cluster.shard-identity", "cluster",
                         static_cast<double>(a.size()),
                         static_cast<double>(b.size()), passed,
                         detail);
        });

    add("cluster.threaded-shard-identity", "cluster",
        "advancing the shards with a worker team is a pure execution "
        "change: the same adversarial spec produces byte-identical "
        "reports at --shard-threads 1 and --shard-threads 4, with at "
        "least one window actually executed in parallel",
        [] {
            // Same adversarial shape as cluster.shard-identity (the
            // disaggregated split plus dispatch hop plus crash), now
            // stressing the threaded window scheduler: worker-team
            // fan-out, survivor mailbox, and barrier replay.
            cluster::ClusterSpec spec = clusterBase();
            cluster::ReplicaSpec prefill = spec.replicas.front();
            prefill.role = cluster::ReplicaRole::Prefill;
            cluster::ReplicaSpec decode = prefill;
            decode.role = cluster::ReplicaRole::Decode;
            spec.replicas = {prefill, decode, decode, decode};
            spec.dispatchUs = 5.0;
            cluster::FaultSpec fault;
            fault.atSec = 4.0;
            fault.replica = 2;
            fault.kind = cluster::FaultKind::Crash;
            spec.faults.push_back(fault);
            spec.shards = 4;

            cluster::ClusterSpec threaded = spec;
            threaded.shardThreads = 4;
            core::ShardStats stats;
            std::string a = json::write(
                cluster::simulateCluster(spec, sharedCosts())
                    .toJson());
            std::string b = json::write(
                cluster::simulateCluster(threaded, sharedCosts(),
                                         nullptr, nullptr, &stats)
                    .toJson());
            bool passed = a == b && stats.threads == 4 &&
                stats.parallelWindows > 0 && stats.parallelEvents > 0;
            std::string detail;
            if (a != b)
                detail = "threaded report diverged from the "
                         "single-threaded report";
            else if (stats.parallelWindows == 0 ||
                     stats.parallelEvents == 0)
                detail = "no parallel windows: the worker team "
                         "exercised nothing";
            else
                detail = strprintf(
                    "identical %zu-byte reports; %llu of %llu events "
                    "in %llu parallel windows",
                    a.size(),
                    static_cast<unsigned long long>(
                        stats.parallelEvents),
                    static_cast<unsigned long long>(stats.events),
                    static_cast<unsigned long long>(
                        stats.parallelWindows));
            return judge("cluster.threaded-shard-identity", "cluster",
                         static_cast<double>(a.size()),
                         static_cast<double>(b.size()), passed,
                         detail);
        });

    add("cluster.span-attribution-jobs", "cluster",
        "lifecycle spans satisfy the stage-partition invariant and "
        "the span export and attribution are pure functions of the "
        "spec (byte-identical across independent runs, the contract "
        "--jobs fan-out relies on)",
        [] {
            // The KV-pressured spec exercises every stage kind:
            // queue, prefill_wait, kv_fetch stalls, prefill, decode.
            cluster::ClusterSpec spec =
                kvClusterBase(kv::OffloadPolicy::LruBySession);

            // Run twice exactly as two --jobs workers would: one
            // against the shared cache, one against a private
            // rebuild. Spans and attribution must not notice.
            obs::SpanLog spans_a;
            cluster::simulateCluster(spec, sharedCosts(), nullptr,
                                     &spans_a);
            cluster::CostCache private_costs;
            private_costs.build(spec);
            obs::SpanLog spans_b;
            cluster::simulateCluster(spec, private_costs, nullptr,
                                     &spans_b);

            SpanCheckReport report = checkSpans(spans_a.spans());
            std::string a = spans_a.toChromeText();
            std::string b = spans_b.toChromeText();
            std::string attr_a = json::write(
                obs::attributeSpans(spans_a.spans(), spec.ttftSloMs,
                                    spec.e2eSloMs)
                    .toJson());
            std::string attr_b = json::write(
                obs::attributeSpans(spans_b.spans(), spec.ttftSloMs,
                                    spec.e2eSloMs)
                    .toJson());
            bool passed = report.ok() && !spans_a.spans().empty() &&
                a == b && attr_a == attr_b;
            std::string detail;
            if (!report.ok())
                detail = strprintf("%zu span invariant violations "
                                   "([%s] ...)",
                                   report.violations.size(),
                                   report.violations.front()
                                       .code.c_str());
            else if (a != b)
                detail = "span export diverged between runs";
            else if (attr_a != attr_b)
                detail = "attribution diverged between runs";
            else
                detail = strprintf("%zu spans partition %zu "
                                   "requests; %zu-byte export and "
                                   "%zu-byte attribution stable",
                                   spans_a.spans().size(),
                                   spans_a.requestCount(), a.size(),
                                   attr_a.size());
            return judge("cluster.span-attribution-jobs", "cluster",
                         static_cast<double>(a.size()),
                         static_cast<double>(b.size()), passed,
                         detail);
        });

    return props;
}

} // namespace

const std::vector<Property> &
properties()
{
    static const std::vector<Property> catalog = buildCatalog();
    return catalog;
}

std::vector<PropertyResult>
runProperties(const std::string &filter)
{
    std::vector<PropertyResult> results;
    for (const Property &p : properties()) {
        if (!filter.empty() &&
            p.name.find(filter) == std::string::npos)
            continue;
        results.push_back(p.run());
    }
    return results;
}

std::string
renderProperties(const std::vector<PropertyResult> &results)
{
    std::string out;
    std::size_t passed = 0;
    for (const PropertyResult &r : results) {
        if (r.passed)
            ++passed;
        out += strprintf("  %-34s [%-7s] %s  (%s)\n", r.name.c_str(),
                         r.engine.c_str(), r.passed ? "PASS" : "FAIL",
                         r.detail.c_str());
    }
    out += strprintf("properties: %zu/%zu passed\n", passed,
                     results.size());
    return out;
}

json::Value
propertiesToJson(const std::vector<PropertyResult> &results)
{
    json::Value::Array items;
    std::size_t passed = 0;
    for (const PropertyResult &r : results) {
        if (r.passed)
            ++passed;
        json::Object item;
        item.set("name", r.name);
        item.set("engine", r.engine);
        item.set("passed", json::Value(r.passed));
        item.set("base", r.baseValue);
        item.set("perturbed", r.perturbedValue);
        item.set("detail", r.detail);
        items.push_back(json::Value(std::move(item)));
    }
    json::Object doc;
    doc.set("passed", static_cast<unsigned long long>(passed));
    doc.set("total", static_cast<unsigned long long>(results.size()));
    doc.set("properties", json::Value(std::move(items)));
    return json::Value(std::move(doc));
}

} // namespace skipsim::check
