/**
 * @file
 * Metamorphic property suite: directional laws the simulators must
 * obey under parameter perturbation. Where byte-identical goldens
 * freeze one output and validateTrace() checks one trace, each
 * property here runs a base/perturbed *pair* of configurations through
 * the real engines and checks only the direction of the change —
 * doubling the launch overhead must not shrink TKLQT, adding load must
 * not improve p50 TTFT, injecting a crash must not raise goodput.
 * Such laws survive recalibration and refactors that legitimately move
 * every absolute number, yet catch sign errors, inverted scalings and
 * dropped terms that goldens can only flag as "something changed".
 *
 * Properties are registered in a static catalog (properties()) spanning
 * the sim, serving and cluster engines; runProperties() executes them
 * (optionally filtered by substring) and reports base/perturbed values
 * with a pass/fail per law.
 */

#ifndef SKIPSIM_CHECK_PROPERTIES_HH
#define SKIPSIM_CHECK_PROPERTIES_HH

#include <functional>
#include <string>
#include <vector>

#include "json/value.hh"

namespace skipsim::check
{

/** Outcome of one property evaluation. */
struct PropertyResult
{
    std::string name;   ///< catalog name, e.g. "sim.launch-overhead-tklqt"
    std::string engine; ///< "sim", "serving" or "cluster"
    bool passed = false;

    /** Compared quantity in the base and perturbed runs. */
    double baseValue = 0.0;
    double perturbedValue = 0.0;

    /** Human-readable account of what was compared. */
    std::string detail;
};

/** One registered metamorphic property. */
struct Property
{
    /** Dotted name: "<engine>.<law>", stable across releases. */
    std::string name;

    /** Engine exercised: "sim", "serving" or "cluster". */
    std::string engine;

    /** The directional law in words (documentation + reports). */
    std::string law;

    /** Run base + perturbed configurations and judge the direction. */
    std::function<PropertyResult()> run;
};

/** The static property catalog (built once, thread-safe after that). */
const std::vector<Property> &properties();

/**
 * Run every property whose name contains @p filter (all when empty).
 * Cluster properties share one lazily-built cost cache, so the first
 * call pays the calibration cost once.
 */
std::vector<PropertyResult>
runProperties(const std::string &filter = std::string());

/** Aligned text table: one line per property plus a summary line. */
std::string renderProperties(const std::vector<PropertyResult> &results);

/** Deterministic JSON document for reports and CI artifacts. */
json::Value propertiesToJson(const std::vector<PropertyResult> &results);

} // namespace skipsim::check

#endif // SKIPSIM_CHECK_PROPERTIES_HH
