#include "check/span_check.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/strutil.hh"

namespace skipsim::check
{

namespace
{

using obs::Span;

void
report(SpanCheckReport &out, const char *code, std::int64_t spanId,
       std::string message)
{
    Violation v;
    v.code = code;
    v.eventId = static_cast<std::uint64_t>(spanId < 0 ? 0 : spanId);
    v.message = std::move(message);
    out.violations.push_back(std::move(v));
}

/** One request's span tree, grouped for the partition checks. */
struct RequestSpans
{
    const Span *root = nullptr;
    std::vector<const Span *> stages;
    std::vector<const Span *> children;
};

} // namespace

bool
SpanCheckReport::has(const std::string &code) const
{
    for (const Violation &v : violations) {
        if (v.code == code)
            return true;
    }
    return false;
}

std::string
SpanCheckReport::render() const
{
    std::string out = strprintf(
        "span check: %zu requests, %zu spans -> %s (%zu "
        "violation%s)\n",
        requestsChecked, spansChecked, ok() ? "OK" : "FAIL",
        violations.size(), violations.size() == 1 ? "" : "s");
    for (const Violation &v : violations)
        out += strprintf("  [%s] %s\n", v.code.c_str(),
                         v.message.c_str());
    return out;
}

json::Value
SpanCheckReport::toJson() const
{
    json::Object doc;
    doc.set("ok", json::Value(ok()));
    doc.set("requests",
            static_cast<unsigned long long>(requestsChecked));
    doc.set("spans", static_cast<unsigned long long>(spansChecked));
    json::Value::Array items;
    for (const Violation &v : violations) {
        json::Object item;
        item.set("code", v.code);
        item.set("message", v.message);
        item.set("span", static_cast<unsigned long long>(v.eventId));
        items.push_back(json::Value(std::move(item)));
    }
    doc.set("violations", json::Value(std::move(items)));
    return json::Value(std::move(doc));
}

SpanCheckReport
checkSpans(const std::vector<Span> &spans)
{
    SpanCheckReport out;
    out.spansChecked = spans.size();

    std::map<std::int64_t, const Span *> by_id;
    for (const Span &s : spans) {
        if (s.durNs < 0)
            report(out, "span-negative-duration", s.id,
                   strprintf("span %lld '%s' (request %lld) has "
                             "negative duration %lld ns",
                             static_cast<long long>(s.id),
                             s.stage.c_str(),
                             static_cast<long long>(s.request),
                             static_cast<long long>(s.durNs)));
        if (!by_id.emplace(s.id, &s).second)
            report(out, "span-duplicate-id", s.id,
                   strprintf("span id %lld assigned twice",
                             static_cast<long long>(s.id)));
    }

    // Group by request, resolving each span's role from its parent:
    // root (-1), stage (child of the root), or annotation child.
    std::map<std::int64_t, RequestSpans> by_request;
    for (const Span &s : spans) {
        RequestSpans &req = by_request[s.request];
        if (s.parent < 0) {
            if (req.root != nullptr)
                report(out, "span-duplicate-root", s.id,
                       strprintf("request %lld has roots %lld and "
                                 "%lld",
                                 static_cast<long long>(s.request),
                                 static_cast<long long>(req.root->id),
                                 static_cast<long long>(s.id)));
            else
                req.root = &s;
            continue;
        }
        auto it = by_id.find(s.parent);
        if (it == by_id.end()) {
            report(out, "span-orphan", s.id,
                   strprintf("span %lld '%s' names missing parent "
                             "%lld",
                             static_cast<long long>(s.id),
                             s.stage.c_str(),
                             static_cast<long long>(s.parent)));
            continue;
        }
        const Span *parent = it->second;
        if (parent->request != s.request) {
            report(out, "span-parent-mismatch", s.id,
                   strprintf("span %lld (request %lld) has parent "
                             "%lld of request %lld",
                             static_cast<long long>(s.id),
                             static_cast<long long>(s.request),
                             static_cast<long long>(parent->id),
                             static_cast<long long>(parent->request)));
            continue;
        }
        if (parent->parent < 0)
            req.stages.push_back(&s);
        else
            req.children.push_back(&s);
    }

    out.requestsChecked = by_request.size();
    for (auto &[request, req] : by_request) {
        if (req.root == nullptr) {
            report(out, "span-missing-root",
                   req.stages.empty() ? 0 : req.stages.front()->id,
                   strprintf("request %lld has %zu stage spans but "
                             "no root",
                             static_cast<long long>(request),
                             req.stages.size()));
            continue;
        }
        const Span &root = *req.root;
        std::sort(req.stages.begin(), req.stages.end(),
                  [](const Span *a, const Span *b) {
                      return a->beginNs != b->beginNs
                          ? a->beginNs < b->beginNs
                          : a->id < b->id;
                  });

        // Stage spans must tile [root.begin, root.end] exactly.
        std::int64_t cursor = root.beginNs;
        bool first = true;
        for (const Span *stage : req.stages) {
            if (first && stage->beginNs != root.beginNs)
                report(out, "span-partition-begin", stage->id,
                       strprintf("request %lld: first stage '%s' "
                                 "begins at %lld ns, root at %lld ns",
                                 static_cast<long long>(request),
                                 stage->stage.c_str(),
                                 static_cast<long long>(
                                     stage->beginNs),
                                 static_cast<long long>(
                                     root.beginNs)));
            if (!first && stage->beginNs > cursor)
                report(out, "span-stage-gap", stage->id,
                       strprintf("request %lld: %lld ns gap before "
                                 "stage '%s' at %lld ns",
                                 static_cast<long long>(request),
                                 static_cast<long long>(
                                     stage->beginNs - cursor),
                                 stage->stage.c_str(),
                                 static_cast<long long>(
                                     stage->beginNs)));
            if (!first && stage->beginNs < cursor)
                report(out, "span-stage-overlap", stage->id,
                       strprintf("request %lld: stage '%s' at %lld "
                                 "ns overlaps the previous stage by "
                                 "%lld ns",
                                 static_cast<long long>(request),
                                 stage->stage.c_str(),
                                 static_cast<long long>(
                                     stage->beginNs),
                                 static_cast<long long>(
                                     cursor - stage->beginNs)));
            cursor = stage->beginNs + stage->durNs;
            first = false;
        }
        std::int64_t root_end = root.beginNs + root.durNs;
        if (!req.stages.empty() && cursor != root_end)
            report(out, "span-partition-end", req.stages.back()->id,
                   strprintf("request %lld: last stage ends at %lld "
                             "ns, root at %lld ns",
                             static_cast<long long>(request),
                             static_cast<long long>(cursor),
                             static_cast<long long>(root_end)));
        if (req.stages.empty() && root.durNs != 0)
            report(out, "span-no-stages", root.id,
                   strprintf("request %lld root spans %lld ns but "
                             "has no stage spans",
                             static_cast<long long>(request),
                             static_cast<long long>(root.durNs)));

        // Annotation children stay inside their parent stage.
        for (const Span *child : req.children) {
            const Span *parent = by_id.at(child->parent);
            if (child->beginNs < parent->beginNs ||
                child->beginNs + child->durNs >
                    parent->beginNs + parent->durNs)
                report(out, "span-child-bounds", child->id,
                       strprintf("request %lld: child '%s' "
                                 "[%lld, %lld] ns escapes stage "
                                 "'%s' [%lld, %lld] ns",
                                 static_cast<long long>(request),
                                 child->stage.c_str(),
                                 static_cast<long long>(
                                     child->beginNs),
                                 static_cast<long long>(
                                     child->beginNs + child->durNs),
                                 parent->stage.c_str(),
                                 static_cast<long long>(
                                     parent->beginNs),
                                 static_cast<long long>(
                                     parent->beginNs +
                                     parent->durNs)));
        }
    }
    return out;
}

} // namespace skipsim::check
