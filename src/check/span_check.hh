/**
 * @file
 * Lifecycle-span invariant checker. obs::SpanLog promises that each
 * request's stage spans exactly partition its end-to-end interval;
 * the latency attribution built on top (obs::attributeSpans) silently
 * misattributes time if that promise breaks. checkSpans() asserts the
 * laws directly on a sealed span set, independent of the numbers:
 *
 *  - durations are non-negative ("span-negative-duration");
 *  - span ids are unique ("span-duplicate-id");
 *  - every non-root span's parent exists and belongs to the same
 *    request ("span-orphan", "span-parent-mismatch");
 *  - every request with spans has exactly one root
 *    ("span-missing-root", "span-duplicate-root"), and a root with
 *    nonzero extent has stage spans ("span-no-stages");
 *  - stage spans (children of the root) tile the root exactly: the
 *    first begins at the root's begin ("span-partition-begin"), the
 *    last ends at the root's end ("span-partition-end"), and
 *    consecutive stages share a boundary with no gap
 *    ("span-stage-gap") and no overlap ("span-stage-overlap");
 *  - grandchildren (route, decode_iter) stay inside their parent
 *    stage's interval ("span-child-bounds").
 *
 * Like check::validateTrace, all findings are reported — one corrupt
 * span cannot mask another.
 */

#ifndef SKIPSIM_CHECK_SPAN_CHECK_HH
#define SKIPSIM_CHECK_SPAN_CHECK_HH

#include <string>
#include <vector>

#include "check/invariants.hh"
#include "json/value.hh"
#include "obs/span.hh"

namespace skipsim::check
{

/** Outcome of one checkSpans() run. */
struct SpanCheckReport
{
    std::vector<Violation> violations;

    /** Requests (roots) inspected. */
    std::size_t requestsChecked = 0;

    /** Spans inspected. */
    std::size_t spansChecked = 0;

    bool ok() const { return violations.empty(); }

    /** True when any violation carries @p code. */
    bool has(const std::string &code) const;

    /** Aligned text rendering (summary line + one per violation). */
    std::string render() const;

    /** Deterministic JSON document (ok flag, counts, violations). */
    json::Value toJson() const;
};

/**
 * Check every span invariant against @p spans (a sealed SpanLog's
 * spans() or a re-read export). Never throws on bad spans.
 */
SpanCheckReport checkSpans(const std::vector<obs::Span> &spans);

} // namespace skipsim::check

#endif // SKIPSIM_CHECK_SPAN_CHECK_HH
