#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "obs/collector.hh"
#include "stats/summary.hh"
#include "workload/memory.hh"

namespace skipsim::cluster
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Crash:
        return "crash";
    case FaultKind::Slowdown:
        return "slowdown";
    case FaultKind::Partition:
        return "partition";
    }
    return "unknown";
}

FaultKind
faultKindByName(const std::string &name)
{
    for (FaultKind kind : {FaultKind::Crash, FaultKind::Slowdown,
                           FaultKind::Partition}) {
        if (name == faultKindName(kind))
            return kind;
    }
    fatal(strprintf("cluster: unknown fault kind '%s' (expected crash, "
                    "slowdown or partition)",
                    name.c_str()));
}

void
ClusterSpec::validate() const
{
    if (replicas.empty())
        fatal("ClusterSpec: need at least one replica");
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        const ReplicaSpec &rep = replicas[r];
        if (rep.maxActive <= 0)
            fatal(strprintf("ClusterSpec: replica %zu maxActive must be "
                            "positive",
                            r));
        if (rep.clock <= 0.0)
            fatal(strprintf("ClusterSpec: replica %zu clock must be "
                            "positive",
                            r));
        if (rep.maxQueue < 0)
            fatal(strprintf("ClusterSpec: replica %zu maxQueue must be "
                            "non-negative",
                            r));
    }
    if (arrivalRatePerSec <= 0.0 && rates.empty())
        fatal("ClusterSpec: arrival rate must be positive");
    for (double rate : rates) {
        if (rate <= 0.0)
            fatal("ClusterSpec: every sweep rate must be positive");
    }
    if (horizonSec <= 0.0)
        fatal("ClusterSpec: horizon must be positive");
    if (promptLen <= 0)
        fatal("ClusterSpec: promptLen must be positive");
    if (genTokens <= 0)
        fatal("ClusterSpec: genTokens must be positive");
    if (sessions <= 0)
        fatal("ClusterSpec: sessions must be positive");
    if (detectDelaySec < 0.0)
        fatal("ClusterSpec: detection delay must be non-negative");
    if (jitterFrac < 0.0 || jitterFrac >= 1.0)
        fatal("ClusterSpec: jitterFrac must be within [0, 1)");
    for (const FaultSpec &f : faults) {
        if (f.replica >= replicas.size())
            fatal(strprintf("ClusterSpec: fault targets replica %zu of "
                            "%zu",
                            f.replica, replicas.size()));
        if (f.atSec < 0.0)
            fatal("ClusterSpec: fault time must be non-negative");
        if (f.kind == FaultKind::Slowdown && f.factor <= 0.0)
            fatal("ClusterSpec: slowdown factor must be positive");
        if (f.kind == FaultKind::Partition && f.healSec >= 0.0 &&
            f.healSec <= f.atSec)
            fatal("ClusterSpec: partition heal must come after the "
                  "fault");
    }
}

std::size_t
ClusterSpec::scenarioCount() const
{
    return rates.empty() ? 1 : rates.size();
}

ClusterSpec
ClusterSpec::scenarioAt(std::size_t index) const
{
    if (index >= scenarioCount())
        fatal(strprintf("ClusterSpec: scenario %zu of %zu", index,
                        scenarioCount()));
    ClusterSpec scenario = *this;
    if (!rates.empty())
        scenario.arrivalRatePerSec = rates[index];
    scenario.rates.clear();
    // Same discipline as exec::SweepSpec: the point seed is a pure
    // function of (baseSeed, index), never of execution order.
    scenario.seed = mixSeed(seed, index);
    return scenario;
}

void
CostCache::build(const ClusterSpec &spec)
{
    spec.validate();
    if (!_models.empty() &&
        (_modelName != spec.model.name || _promptLen != spec.promptLen))
        fatal(strprintf("CostCache: built for %s/prompt %d, asked for "
                        "%s/prompt %d",
                        _modelName.c_str(), _promptLen,
                        spec.model.name.c_str(), spec.promptLen));
    _modelName = spec.model.name;
    _promptLen = spec.promptLen;
    for (const ReplicaSpec &rep : spec.replicas) {
        if (_models.count(rep.platform.name))
            continue;
        _models[rep.platform.name] =
            std::make_shared<serving::IterationCostModel>(
                spec.model, rep.platform, spec.promptLen);
    }
}

const serving::IterationCostModel &
CostCache::get(const std::string &platformName) const
{
    auto it = _models.find(platformName);
    if (it == _models.end())
        fatal(strprintf("CostCache: platform '%s' was not built",
                        platformName.c_str()));
    return *it->second;
}

namespace
{

/** Discrete-event kinds, in tie-break order at equal timestamps. */
enum EventType
{
    EvFault = 0,
    EvDetect = 1,
    EvHeal = 2,
    EvIterEnd = 3,
    EvArrival = 4,
};

struct Event
{
    double tNs = 0.0;
    int type = EvArrival;
    std::size_t idx = 0;       ///< fault index / replica / request id
    std::uint64_t serial = 0;  ///< iteration serial (EvIterEnd)
};

struct EventAfter
{
    bool operator()(const Event &a, const Event &b) const
    {
        if (a.tNs != b.tNs)
            return a.tNs > b.tNs;
        if (a.type != b.type)
            return a.type > b.type;
        if (a.idx != b.idx)
            return a.idx > b.idx;
        return a.serial > b.serial;
    }
};

struct Request
{
    double arrivalNs = 0.0;
    int session = 0;
    double ttftNs = -1.0;   ///< reset when a fault forces a restart
    double doneNs = -1.0;
    int tokensLeft = 0;     ///< decode tokens still owed (post-prefill)
    int attempts = 0;       ///< dispatches, including fault re-routes
};

/** One replica's runtime state. */
struct ReplicaRt
{
    const ReplicaSpec *spec = nullptr;
    const serving::IterationCostModel *cost = nullptr;
    Rng jitterRng{0};

    double kvPerSeqBytes = 0.0;
    double kvCapacityBytes = 0.0;
    double kvBytes = 0.0;

    std::deque<std::size_t> pending;   ///< accepted, awaiting admission
    std::vector<std::size_t> limbo;    ///< sent while partitioned
    std::vector<std::size_t> active;   ///< decoding
    std::vector<std::size_t> prefilling;
    std::vector<std::size_t> stranded; ///< frozen by a crash

    bool busy = false;
    bool prefillIter = false;
    std::uint64_t iterSerial = 0;
    double iterBeginNs = 0.0; ///< start of the in-flight iteration

    bool crashed = false;
    bool partitioned = false;
    double slowFactor = 1.0;

    double busyNs = 0.0;
    stats::Summary activeSizes;
    ReplicaStats stats;
};

/** The whole simulation, so handlers share state without globals. */
class Sim
{
  public:
    Sim(const ClusterSpec &spec, const CostCache &costs,
        obs::Collector *obs)
        : _spec(spec), _horizonNs(spec.horizonSec * 1e9),
          _router(spec.router, makeWeights(spec, costs)), _obs(obs)
    {
        if (_obs != nullptr) {
            _ticker = _obs->ticker();
            // Visit through the first boundary at or past the horizon
            // so the final partial window is represented; iterations
            // draining past the horizon are not sampled.
            _obsStopNs = static_cast<std::int64_t>(_horizonNs) +
                _obs->intervalNs() - 1;
        }
        _reps.resize(spec.replicas.size());
        for (std::size_t r = 0; r < _reps.size(); ++r) {
            ReplicaRt &rt = _reps[r];
            rt.spec = &spec.replicas[r];
            rt.cost = &costs.get(rt.spec->platform.name);
            rt.jitterRng = Rng(mixSeed(spec.seed, r + 1));
            rt.stats.platformName = rt.spec->platform.name;

            // KV budget: HBM minus weights and one max-batch of
            // activations; each admission conservatively reserves the
            // full prompt+generation KV footprint (vLLM-style
            // worst-case admission control).
            workload::MemoryFootprint per_seq = workload::estimateMemory(
                spec.model, 1, spec.promptLen + spec.genTokens);
            workload::MemoryFootprint at_cap = workload::estimateMemory(
                spec.model, rt.spec->maxActive, spec.promptLen);
            rt.kvPerSeqBytes = per_seq.kvCacheBytes;
            rt.kvCapacityBytes = rt.spec->platform.gpu.hbmBytes() -
                at_cap.weightsBytes - at_cap.activationBytes;
            if (rt.kvCapacityBytes < rt.kvPerSeqBytes)
                fatal(strprintf(
                    "simulateCluster: replica %zu (%s) cannot hold one "
                    "%d-token sequence's KV cache",
                    r, rt.spec->platform.name.c_str(),
                    spec.promptLen + spec.genTokens));
        }
    }

    ClusterResult run();

  private:
    static std::vector<double> makeWeights(const ClusterSpec &spec,
                                           const CostCache &costs);

    void dispatch(std::size_t id, double now);
    void maybeStart(std::size_t r, double now);
    void complete(std::size_t r, std::size_t id, double now);
    void restartAndReroute(std::size_t r,
                           std::vector<std::size_t> &ids, double now);
    void drainBacklog(double now);

    void onIterEnd(const Event &ev);
    void onFault(const Event &ev);
    void onDetect(const Event &ev);
    void onHeal(const Event &ev);

    /** Sample every unvisited probe boundary up to @p nowNs. */
    void flushObs(double nowNs);
    /** One boundary sample of the current cluster state. */
    void sampleObs(std::int64_t t);
    /** End-of-run registry totals and histograms. */
    void finishObs(const ClusterResult &result,
                   const std::vector<double> &ttfts,
                   const std::vector<double> &e2es);

    const ClusterSpec &_spec;
    double _horizonNs;
    Router _router;
    std::vector<ReplicaRt> _reps;
    std::vector<Request> _requests;
    std::vector<std::size_t> _backlog;
    std::priority_queue<Event, std::vector<Event>, EventAfter> _events;
    std::size_t _rerouted = 0;

    obs::Collector *_obs = nullptr;
    obs::Ticker _ticker{0};
    std::int64_t _obsStopNs = 0;
    // Per-window accumulators, reset at every sampled boundary.
    std::size_t _windowCompleted = 0;
    double _windowTtftNs = 0.0;
    std::size_t _windowTtftCount = 0;
};

std::vector<double>
Sim::makeWeights(const ClusterSpec &spec, const CostCache &costs)
{
    // Static decode capacity (tokens/s at the full batch), the weight
    // a real balancer would configure from offline benchmarks.
    std::vector<double> weights;
    weights.reserve(spec.replicas.size());
    for (const ReplicaSpec &rep : spec.replicas) {
        double decode_ns =
            costs.get(rep.platform.name).decodeNs(rep.maxActive);
        weights.push_back(static_cast<double>(rep.maxActive) /
                          decode_ns * 1e9 * rep.clock);
    }
    return weights;
}

void
Sim::dispatch(std::size_t id, double now)
{
    Request &req = _requests[id];
    std::vector<std::size_t> exclude;
    while (true) {
        std::size_t r = _router.pick(req.session, exclude);
        if (r == Router::npos()) {
            _backlog.push_back(id);
            return;
        }
        ReplicaRt &rt = _reps[r];
        // Bounded-queue admission: a live, reachable replica answers a
        // full queue with an immediate rejection and the router moves
        // on. Crashed or partitioned replicas cannot answer at all —
        // the dispatch sinks into the failure until detection.
        if (!rt.crashed && !rt.partitioned && rt.spec->maxQueue > 0 &&
            rt.pending.size() >=
                static_cast<std::size_t>(rt.spec->maxQueue)) {
            ++rt.stats.rejected;
            exclude.push_back(r);
            continue;
        }
        _router.onDispatch(r);
        ++rt.stats.routed;
        ++req.attempts;
        if (rt.partitioned) {
            rt.limbo.push_back(id);
            return;
        }
        rt.pending.push_back(id);
        maybeStart(r, now);
        return;
    }
}

void
Sim::maybeStart(std::size_t r, double now)
{
    ReplicaRt &rt = _reps[r];
    if (rt.crashed || rt.busy || now >= _horizonNs)
        return;

    // Admit pending prefills while batch slots and KV budget allow;
    // what does not fit stays queued until completions release KV.
    std::vector<std::size_t> admit;
    while (!rt.pending.empty() &&
           rt.active.size() + admit.size() <
               static_cast<std::size_t>(rt.spec->maxActive) &&
           rt.kvBytes + rt.kvPerSeqBytes <= rt.kvCapacityBytes) {
        admit.push_back(rt.pending.front());
        rt.pending.pop_front();
        rt.kvBytes += rt.kvPerSeqBytes;
    }
    rt.stats.peakKvBytes = std::max(rt.stats.peakKvBytes, rt.kvBytes);

    double base_ns = 0.0;
    if (!admit.empty()) {
        rt.prefillIter = true;
        rt.prefilling = std::move(admit);
        base_ns = rt.cost->prefillNs(static_cast<int>(rt.prefilling.size()));
    } else if (!rt.active.empty()) {
        rt.prefillIter = false;
        rt.activeSizes.add(static_cast<double>(rt.active.size()));
        base_ns = rt.cost->decodeNs(static_cast<int>(rt.active.size()));
    } else {
        return;
    }

    double dur_ns = base_ns * rt.slowFactor / rt.spec->clock;
    if (_spec.jitterFrac > 0.0)
        dur_ns *= std::max(
            0.05, rt.jitterRng.gaussian(1.0, _spec.jitterFrac));

    rt.busy = true;
    ++rt.iterSerial;
    rt.iterBeginNs = now;
    rt.busyNs += dur_ns;
    _events.push({now + dur_ns, EvIterEnd, r, rt.iterSerial});
}

void
Sim::flushObs(double nowNs)
{
    if (_obs == nullptr)
        return;
    _ticker.advanceTo(std::min(nowNs,
                               static_cast<double>(_obsStopNs)),
                      [this](std::int64_t t) { sampleObs(t); });
}

void
Sim::sampleObs(std::int64_t t)
{
    for (std::size_t r = 0; r < _reps.size(); ++r) {
        const ReplicaRt &rt = _reps[r];
        const obs::Labels labels{{"replica", std::to_string(r)}};
        _obs->sample("cluster.queue_depth", labels, t,
                     static_cast<double>(rt.pending.size()));
        _obs->sample("cluster.batch_active", labels, t,
                     static_cast<double>(rt.active.size() +
                                         rt.prefilling.size()));
        _obs->sample("cluster.kv_bytes", labels, t, rt.kvBytes);
        _obs->sample("cluster.outstanding", labels, t,
                     static_cast<double>(_router.outstanding(r)));
        _obs->sample("cluster.rerouted", labels, t,
                     static_cast<double>(rt.stats.rerouted));
    }
    const double window_sec =
        static_cast<double>(_obs->intervalNs()) / 1e9;
    _obs->sample("cluster.throughput_rps", {}, t,
                 static_cast<double>(_windowCompleted) / window_sec);
    _obs->sample("cluster.ttft_ms", {}, t,
                 _windowTtftCount > 0
                     ? _windowTtftNs /
                         static_cast<double>(_windowTtftCount) / 1e6
                     : 0.0);
    _obs->sample("cluster.backlog", {}, t,
                 static_cast<double>(_backlog.size()));
    _obs->sample("cluster.rerouted_total", {}, t,
                 static_cast<double>(_rerouted));
    _windowCompleted = 0;
    _windowTtftNs = 0.0;
    _windowTtftCount = 0;
}

void
Sim::complete(std::size_t r, std::size_t id, double now)
{
    ReplicaRt &rt = _reps[r];
    _requests[id].doneNs = now;
    rt.kvBytes -= rt.kvPerSeqBytes;
    ++rt.stats.completed;
    ++_windowCompleted;
    _router.onSettled(r);
}

void
Sim::restartAndReroute(std::size_t r, std::vector<std::size_t> &ids,
                       double now)
{
    ReplicaRt &rt = _reps[r];
    for (std::size_t id : ids) {
        // Generated tokens died with the replica: the client restarts
        // from scratch, so TTFT re-measures against the new replica.
        Request &req = _requests[id];
        req.ttftNs = -1.0;
        req.tokensLeft = 0;
        _router.onSettled(r);
        ++rt.stats.rerouted;
        ++_rerouted;
        dispatch(id, now);
    }
    ids.clear();
}

void
Sim::drainBacklog(double now)
{
    std::vector<std::size_t> waiting;
    waiting.swap(_backlog);
    for (std::size_t id : waiting)
        dispatch(id, now);
}

void
Sim::onIterEnd(const Event &ev)
{
    ReplicaRt &rt = _reps[ev.idx];
    if (rt.crashed || !rt.busy || ev.serial != rt.iterSerial)
        return; // cancelled by a crash
    rt.busy = false;
    if (_obs != nullptr) {
        const std::size_t batch = rt.prefillIter ? rt.prefilling.size()
                                                 : rt.active.size();
        _obs->span((rt.prefillIter ? "prefill b=" : "decode b=") +
                       std::to_string(batch),
                   static_cast<int>(ev.idx),
                   std::llround(rt.iterBeginNs),
                   std::llround(ev.tNs - rt.iterBeginNs));
    }
    if (rt.prefillIter) {
        for (std::size_t id : rt.prefilling) {
            Request &req = _requests[id];
            req.ttftNs = ev.tNs - req.arrivalNs;
            _windowTtftNs += req.ttftNs;
            ++_windowTtftCount;
            req.tokensLeft = _spec.genTokens - 1;
            if (req.tokensLeft == 0)
                complete(ev.idx, id, ev.tNs);
            else
                rt.active.push_back(id);
        }
        rt.prefilling.clear();
    } else {
        std::vector<std::size_t> still;
        still.reserve(rt.active.size());
        for (std::size_t id : rt.active) {
            Request &req = _requests[id];
            if (--req.tokensLeft <= 0)
                complete(ev.idx, id, ev.tNs);
            else
                still.push_back(id);
        }
        rt.active.swap(still);
    }
    maybeStart(ev.idx, ev.tNs);
}

void
Sim::onFault(const Event &ev)
{
    const FaultSpec &f = _spec.faults[ev.idx];
    ReplicaRt &rt = _reps[f.replica];
    if (_obs != nullptr)
        _obs->instant(std::string("fault.") + faultKindName(f.kind),
                      static_cast<int>(f.replica),
                      std::llround(ev.tNs));
    switch (f.kind) {
    case FaultKind::Crash: {
        if (rt.crashed)
            return;
        rt.crashed = true;
        rt.stats.crashed = true;
        rt.busy = false;
        ++rt.iterSerial; // invalidates the in-flight IterEnd
        // Freeze everything on the replica until detection.
        auto strand = [&](std::vector<std::size_t> &src) {
            rt.stranded.insert(rt.stranded.end(), src.begin(),
                               src.end());
            src.clear();
        };
        for (std::size_t id : rt.pending)
            rt.stranded.push_back(id);
        rt.pending.clear();
        strand(rt.prefilling);
        strand(rt.active);
        strand(rt.limbo);
        rt.kvBytes = 0.0;
        _events.push({ev.tNs + _spec.detectDelaySec * 1e9, EvDetect,
                      ev.idx, 0});
        return;
    }
    case FaultKind::Slowdown:
        rt.slowFactor = f.factor; // next iteration start onward
        return;
    case FaultKind::Partition:
        if (rt.crashed || rt.partitioned)
            return;
        rt.partitioned = true;
        _events.push({ev.tNs + _spec.detectDelaySec * 1e9, EvDetect,
                      ev.idx, 0});
        if (f.healSec >= 0.0)
            _events.push({f.healSec * 1e9, EvHeal, ev.idx, 0});
        return;
    }
}

void
Sim::onDetect(const Event &ev)
{
    const FaultSpec &f = _spec.faults[ev.idx];
    ReplicaRt &rt = _reps[f.replica];
    if (f.kind == FaultKind::Crash) {
        if (_obs != nullptr)
            _obs->instant("fault.detected",
                          static_cast<int>(f.replica),
                          std::llround(ev.tNs));
        _router.markDown(f.replica);
        restartAndReroute(f.replica, rt.stranded, ev.tNs);
    } else if (f.kind == FaultKind::Partition) {
        if (!rt.partitioned || rt.crashed)
            return; // healed (or upgraded to a crash) before detection
        if (_obs != nullptr)
            _obs->instant("fault.detected",
                          static_cast<int>(f.replica),
                          std::llround(ev.tNs));
        _router.markDown(f.replica);
        // Requests sent into the partition never arrived; the replica
        // keeps serving what it already held (data plane intact).
        restartAndReroute(f.replica, rt.limbo, ev.tNs);
    }
}

void
Sim::onHeal(const Event &ev)
{
    const FaultSpec &f = _spec.faults[ev.idx];
    ReplicaRt &rt = _reps[f.replica];
    if (rt.crashed || !rt.partitioned)
        return;
    rt.partitioned = false;
    if (_obs != nullptr)
        _obs->instant("fault.healed", static_cast<int>(f.replica),
                      std::llround(ev.tNs));
    _router.markUp(f.replica);
    // Undelivered requests from the undetected window finally arrive.
    for (std::size_t id : rt.limbo)
        rt.pending.push_back(id);
    rt.limbo.clear();
    maybeStart(f.replica, ev.tNs);
    drainBacklog(ev.tNs);
}

ClusterResult
Sim::run()
{
    // Poisson arrivals with per-request session ids, all from the
    // dedicated arrival stream mixSeed(seed, 0).
    Rng arrival_rng(mixSeed(_spec.seed, 0));
    double mean_gap_ns = 1e9 / _spec.arrivalRatePerSec;
    double t = 0.0;
    while (true) {
        double u = arrival_rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        t += -std::log(u) * mean_gap_ns;
        if (t >= _horizonNs)
            break;
        Request req;
        req.arrivalNs = t;
        req.session = static_cast<int>(arrival_rng.below(
            static_cast<std::uint64_t>(_spec.sessions)));
        _requests.push_back(req);
    }
    for (std::size_t id = 0; id < _requests.size(); ++id)
        _events.push({_requests[id].arrivalNs, EvArrival, id, 0});
    for (std::size_t i = 0; i < _spec.faults.size(); ++i)
        _events.push({_spec.faults[i].atSec * 1e9, EvFault, i, 0});

    while (!_events.empty()) {
        Event ev = _events.top();
        _events.pop();
        // Sample every probe boundary up to (and including) this
        // event's instant before applying it: boundary samples see the
        // state as of the boundary, never a partially applied event.
        flushObs(ev.tNs);
        switch (ev.type) {
        case EvArrival:
            dispatch(ev.idx, ev.tNs);
            break;
        case EvIterEnd:
            onIterEnd(ev);
            break;
        case EvFault:
            onFault(ev);
            break;
        case EvDetect:
            onDetect(ev);
            break;
        case EvHeal:
            onHeal(ev);
            break;
        }
    }

    ClusterResult result;
    result.arrivalRatePerSec = _spec.arrivalRatePerSec;
    result.offered = _requests.size();
    result.rerouted = _rerouted;

    std::vector<double> ttfts;
    std::vector<double> e2es;
    double ttft_slo_ns = _spec.ttftSloMs * 1e6;
    double e2e_slo_ns = _spec.e2eSloMs * 1e6;
    std::size_t slo_ok = 0;
    for (const Request &req : _requests) {
        if (req.doneNs < 0.0)
            continue;
        ++result.completed;
        double e2e = req.doneNs - req.arrivalNs;
        ttfts.push_back(req.ttftNs);
        e2es.push_back(e2e);
        if (req.ttftNs <= ttft_slo_ns && e2e <= e2e_slo_ns)
            ++slo_ok;
    }
    result.lost = result.offered - result.completed;
    result.throughputRps =
        static_cast<double>(result.completed) / _spec.horizonSec;
    result.goodputRps =
        static_cast<double>(slo_ok) / _spec.horizonSec;
    result.sloAttainment = result.offered == 0
        ? 0.0
        : static_cast<double>(slo_ok) /
            static_cast<double>(result.offered);
    if (!ttfts.empty()) {
        std::vector<double> tp =
            stats::percentiles(ttfts, {50.0, 95.0, 99.0});
        std::vector<double> ep =
            stats::percentiles(e2es, {50.0, 95.0, 99.0});
        result.p50TtftNs = tp[0];
        result.p95TtftNs = tp[1];
        result.p99TtftNs = tp[2];
        result.p50E2eNs = ep[0];
        result.p95E2eNs = ep[1];
        result.p99E2eNs = ep[2];
    }

    for (ReplicaRt &rt : _reps) {
        rt.stats.utilization =
            std::min(1.0, rt.busyNs / _horizonNs);
        rt.stats.meanActive =
            rt.activeSizes.count() > 0 ? rt.activeSizes.mean() : 0.0;
        result.replicas.push_back(rt.stats);
    }

    if (_obs != nullptr) {
        flushObs(static_cast<double>(_obsStopNs));
        finishObs(result, ttfts, e2es);
    }
    return result;
}

void
Sim::finishObs(const ClusterResult &result,
               const std::vector<double> &ttfts,
               const std::vector<double> &e2es)
{
    obs::Registry &metrics = _obs->metrics();
    metrics.counter("cluster.requests_offered")
        .add(static_cast<double>(result.offered));
    metrics.counter("cluster.requests_completed")
        .add(static_cast<double>(result.completed));
    metrics.counter("cluster.requests_lost")
        .add(static_cast<double>(result.lost));
    metrics.counter("cluster.rerouted")
        .add(static_cast<double>(result.rerouted));
    for (std::size_t r = 0; r < _reps.size(); ++r) {
        const ReplicaStats &stats = _reps[r].stats;
        const obs::Labels labels{{"replica", std::to_string(r)}};
        metrics.counter("cluster.replica_routed", labels)
            .add(static_cast<double>(stats.routed));
        metrics.counter("cluster.replica_completed", labels)
            .add(static_cast<double>(stats.completed));
        metrics.counter("cluster.replica_rejected", labels)
            .add(static_cast<double>(stats.rejected));
        metrics.counter("cluster.replica_rerouted", labels)
            .add(static_cast<double>(stats.rerouted));
        metrics.gauge("cluster.replica_peak_kv_bytes", labels)
            .set(stats.peakKvBytes);
    }
    obs::Histogram &ttft_hist = metrics.histogram(
        "cluster.ttft_ms", obs::defaultLatencyBucketsMs());
    for (double ttft : ttfts)
        ttft_hist.observe(ttft / 1e6);
    obs::Histogram &e2e_hist = metrics.histogram(
        "cluster.e2e_ms", obs::defaultLatencyBucketsMs());
    for (double e2e : e2es)
        e2e_hist.observe(e2e / 1e6);
}

} // namespace

ClusterResult
simulateCluster(const ClusterSpec &spec, const CostCache &costs,
                obs::Collector *obs)
{
    spec.validate();
    if (!spec.rates.empty())
        fatal("simulateCluster: expand rate sweeps via scenarioAt() "
              "first");
    Sim sim(spec, costs, obs);
    return sim.run();
}

ClusterResult
simulateCluster(const ClusterSpec &spec, obs::Collector *obs)
{
    CostCache costs;
    costs.build(spec);
    return simulateCluster(spec, costs, obs);
}

json::Value
ClusterResult::toJson() const
{
    json::Object doc;
    doc.set("rate", arrivalRatePerSec);
    doc.set("offered", static_cast<unsigned long long>(offered));
    doc.set("completed", static_cast<unsigned long long>(completed));
    doc.set("lost", static_cast<unsigned long long>(lost));
    doc.set("rerouted", static_cast<unsigned long long>(rerouted));
    doc.set("throughput_rps", throughputRps);
    doc.set("ttft_p50_ms", p50TtftNs / 1e6);
    doc.set("ttft_p95_ms", p95TtftNs / 1e6);
    doc.set("ttft_p99_ms", p99TtftNs / 1e6);
    doc.set("e2e_p50_ms", p50E2eNs / 1e6);
    doc.set("e2e_p95_ms", p95E2eNs / 1e6);
    doc.set("e2e_p99_ms", p99E2eNs / 1e6);
    doc.set("slo_attainment", sloAttainment);
    doc.set("goodput_rps", goodputRps);
    json::Value::Array reps;
    for (const ReplicaStats &rep : replicas) {
        json::Object entry;
        entry.set("platform", rep.platformName);
        entry.set("routed", static_cast<unsigned long long>(rep.routed));
        entry.set("completed",
                  static_cast<unsigned long long>(rep.completed));
        entry.set("rejected",
                  static_cast<unsigned long long>(rep.rejected));
        entry.set("rerouted",
                  static_cast<unsigned long long>(rep.rerouted));
        entry.set("utilization", rep.utilization);
        entry.set("mean_active", rep.meanActive);
        entry.set("peak_kv_bytes", rep.peakKvBytes);
        entry.set("crashed", rep.crashed);
        reps.push_back(json::Value(std::move(entry)));
    }
    doc.set("replicas", json::Value(std::move(reps)));
    return json::Value(std::move(doc));
}

} // namespace skipsim::cluster
