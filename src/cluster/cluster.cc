#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "cluster/shard_plan.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "core/resource.hh"
#include "core/rng_stream.hh"
#include "core/sharded_engine.hh"
#include "obs/collector.hh"
#include "obs/span.hh"
#include "serving/replica_engine.hh"
#include "stats/summary.hh"
#include "workload/memory.hh"

namespace skipsim::cluster
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Crash:
        return "crash";
    case FaultKind::Slowdown:
        return "slowdown";
    case FaultKind::Partition:
        return "partition";
    }
    return "unknown";
}

FaultKind
faultKindByName(const std::string &name)
{
    for (FaultKind kind : {FaultKind::Crash, FaultKind::Slowdown,
                           FaultKind::Partition}) {
        if (name == faultKindName(kind))
            return kind;
    }
    fatal(strprintf("cluster: unknown fault kind '%s' (expected crash, "
                    "slowdown or partition)",
                    name.c_str()));
}

const char *
replicaRoleName(ReplicaRole role)
{
    switch (role) {
    case ReplicaRole::Mixed:
        return "mixed";
    case ReplicaRole::Prefill:
        return "prefill";
    case ReplicaRole::Decode:
        return "decode";
    }
    return "unknown";
}

ReplicaRole
replicaRoleByName(const std::string &name)
{
    for (ReplicaRole role : {ReplicaRole::Mixed, ReplicaRole::Prefill,
                             ReplicaRole::Decode}) {
        if (name == replicaRoleName(role))
            return role;
    }
    fatal(strprintf("cluster: unknown replica role '%s' (expected "
                    "mixed, prefill or decode)",
                    name.c_str()));
}

bool
ClusterSpec::disaggregated() const
{
    for (const ReplicaSpec &rep : replicas) {
        if (rep.role != ReplicaRole::Mixed)
            return true;
    }
    return false;
}

void
ClusterSpec::validate() const
{
    if (replicas.empty())
        fatal("ClusterSpec: need at least one replica");
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        const ReplicaSpec &rep = replicas[r];
        if (rep.maxActive <= 0)
            fatal(strprintf("ClusterSpec: replica %zu maxActive must be "
                            "positive",
                            r));
        if (rep.clock <= 0.0)
            fatal(strprintf("ClusterSpec: replica %zu clock must be "
                            "positive",
                            r));
        if (rep.maxQueue < 0)
            fatal(strprintf("ClusterSpec: replica %zu maxQueue must be "
                            "non-negative",
                            r));
    }
    if (traffic != nullptr) {
        traffic->validate();
        if (!rates.empty())
            fatal("ClusterSpec: a rate sweep needs the default Poisson "
                  "traffic (custom arrival processes carry their own "
                  "rates)");
    } else if (arrivalRatePerSec <= 0.0 && rates.empty()) {
        fatal("ClusterSpec: arrival rate must be positive");
    }
    for (double rate : rates) {
        if (rate <= 0.0)
            fatal("ClusterSpec: every sweep rate must be positive");
    }
    for (std::size_t i = 0; i < tenants.size(); ++i) {
        if (tenants[i].ttftSloMs <= 0.0 || tenants[i].e2eSloMs <= 0.0)
            fatal(strprintf("ClusterSpec: tenant %zu SLO thresholds "
                            "must be positive",
                            i));
    }
    kvTier.validate();
    if (shards < 1)
        fatal("ClusterSpec: shards must be >= 1");
    if (static_cast<std::size_t>(shards) > replicas.size())
        fatal(strprintf("ClusterSpec: shards (%d) cannot exceed the "
                        "fleet's %zu replica(s)",
                        shards, replicas.size()));
    if (shardThreads < 1)
        fatal("ClusterSpec: shardThreads must be >= 1");
    if (dispatchUs < 0.0)
        fatal("ClusterSpec: dispatchUs must be non-negative");
    if (disaggregated()) {
        bool prefill_capable = false;
        bool decode_capable = false;
        for (const ReplicaSpec &rep : replicas) {
            if (rep.role != ReplicaRole::Decode)
                prefill_capable = true;
            if (rep.role != ReplicaRole::Prefill)
                decode_capable = true;
        }
        if (!prefill_capable)
            fatal("ClusterSpec: a disaggregated fleet needs at least "
                  "one prefill-capable (prefill or mixed) replica");
        if (genTokens > 1 && !decode_capable)
            fatal("ClusterSpec: a disaggregated fleet generating more "
                  "than one token needs at least one decode-capable "
                  "(decode or mixed) replica");
    }
    if (horizonSec <= 0.0)
        fatal("ClusterSpec: horizon must be positive");
    if (promptLen <= 0)
        fatal("ClusterSpec: promptLen must be positive");
    if (genTokens <= 0)
        fatal("ClusterSpec: genTokens must be positive");
    if (sessions <= 0)
        fatal("ClusterSpec: sessions must be positive");
    if (detectDelaySec < 0.0)
        fatal("ClusterSpec: detection delay must be non-negative");
    if (jitterFrac < 0.0 || jitterFrac >= 1.0)
        fatal("ClusterSpec: jitterFrac must be within [0, 1)");
    for (const FaultSpec &f : faults) {
        if (f.replica >= replicas.size())
            fatal(strprintf("ClusterSpec: fault targets replica %zu of "
                            "%zu",
                            f.replica, replicas.size()));
        if (f.atSec < 0.0)
            fatal("ClusterSpec: fault time must be non-negative");
        if (f.kind == FaultKind::Slowdown && f.factor <= 0.0)
            fatal("ClusterSpec: slowdown factor must be positive");
        if (f.kind == FaultKind::Partition && f.healSec >= 0.0 &&
            f.healSec <= f.atSec)
            fatal("ClusterSpec: partition heal must come after the "
                  "fault");
    }
}

std::size_t
ClusterSpec::scenarioCount() const
{
    return rates.empty() ? 1 : rates.size();
}

ClusterSpec
ClusterSpec::scenarioAt(std::size_t index) const
{
    if (index >= scenarioCount())
        fatal(strprintf("ClusterSpec: scenario %zu of %zu", index,
                        scenarioCount()));
    ClusterSpec scenario = *this;
    if (!rates.empty())
        scenario.arrivalRatePerSec = rates[index];
    scenario.rates.clear();
    // Same discipline as exec::SweepSpec: the point seed is a pure
    // function of (baseSeed, index), never of execution order.
    scenario.seed = mixSeed(seed, index);
    return scenario;
}

void
CostCache::build(const ClusterSpec &spec)
{
    spec.validate();
    if (!_models.empty() &&
        (_modelName != spec.model.name || _promptLen != spec.promptLen))
        fatal(strprintf("CostCache: built for %s/prompt %d, asked for "
                        "%s/prompt %d",
                        _modelName.c_str(), _promptLen,
                        spec.model.name.c_str(), spec.promptLen));
    _modelName = spec.model.name;
    _promptLen = spec.promptLen;
    for (const ReplicaSpec &rep : spec.replicas) {
        if (_models.count(rep.platform.name))
            continue;
        _models[rep.platform.name] =
            std::make_shared<serving::IterationCostModel>(
                spec.model, rep.platform, spec.promptLen);
    }
}

const serving::IterationCostModel &
CostCache::get(const std::string &platformName) const
{
    auto it = _models.find(platformName);
    if (it == _models.end())
        fatal(strprintf("CostCache: platform '%s' was not built",
                        platformName.c_str()));
    return *it->second;
}

namespace
{

/** Discrete-event kinds, in tie-break order at equal timestamps.
 *  Append-only: reordering would change equal-timestamp tie-breaks
 *  and break every locked report golden. */
enum EventType
{
    EvFault = 0,
    EvDetect = 1,
    EvHeal = 2,
    EvIterEnd = 3,
    EvArrival = 4,
    EvKvXfer = 5,  ///< a KV handoff transfer reached the far side
    EvDeliver = 6, ///< a routed request reached its replica (dispatchUs)
    EvStage = 7,   ///< staged-dispatch prompt transfer landed
};

/**
 * Queue priority packing (type, entity index): the pre-core event
 * comparator broke equal-timestamp ties by (type, idx, serial). The
 * core queue orders by (time, priority, seq), so the index is packed
 * under the type and push order stands in for the serial (a replica's
 * iteration-end events are pushed in serial order).
 */
int
eventPriority(EventType type, std::size_t idx)
{
    constexpr std::size_t stride = std::size_t{1} << 20;
    return static_cast<int>(type) * static_cast<int>(stride) +
        static_cast<int>(std::min(idx, stride - 1));
}

struct Request
{
    double arrivalNs = 0.0;
    int session = 0;
    int tenant = 0;         ///< SLO-tier index (0 when single-tenant)
    double cachedFrac = 0.0; ///< prefix-cache share of the prompt
    double ttftNs = -1.0;   ///< reset when a fault forces a restart
    double doneNs = -1.0;
    int attempts = 0;       ///< dispatches, including fault re-routes

    /** Disaggregated phase: prefill done, KV ready for a decode pool
     *  (routes to decode-capable replicas; reset on restart). */
    bool decodeReady = false;
};

/**
 * One replica's runtime state. The batching discipline itself —
 * queues, KV admission, iteration scheduling — lives in the shared
 * serving::ReplicaEngine; this wrapper keeps what is cluster-specific:
 * fault status, partition limbo, routing stats.
 */
struct ReplicaRt
{
    const ReplicaSpec *spec = nullptr;
    Rng jitterRng{0};
    std::unique_ptr<serving::ReplicaEngine> engine;

    std::vector<std::size_t> limbo;    ///< sent while partitioned
    std::vector<std::size_t> stranded; ///< frozen by a crash

    bool crashed = false;
    bool partitioned = false;
    double slowFactor = 1.0;

    /** Lane time from staging and handoff transfers (the store tracks
     *  its own paging traffic separately). */
    double laneExtraNs = 0.0;

    ReplicaStats stats;
};

/** The whole simulation, so handlers share state without globals. */
class Sim
{
  public:
    Sim(const ClusterSpec &spec, const CostCache &costs,
        obs::Collector *obs, obs::SpanLog *spans)
        : _spec(spec), _horizonNs(spec.horizonSec * 1e9),
          _streams(spec.seed),
          _router(spec.router, makeWeights(spec, costs)),
          _disagg(spec.disaggregated()), _kvOn(spec.kvTier.enabled()),
          _plan(ShardPlan::build(spec)),
          _engine(_plan.shards, engineOptions(_plan, spec)),
          _dispatchNs(spec.dispatchUs * 1e3), _obs(obs), _spans(spans)
    {
        if (_disagg) {
            std::vector<unsigned> classes;
            classes.reserve(spec.replicas.size());
            for (const ReplicaSpec &rep : spec.replicas) {
                switch (rep.role) {
                case ReplicaRole::Prefill:
                    classes.push_back(kPrefillClass);
                    break;
                case ReplicaRole::Decode:
                    classes.push_back(kDecodeClass);
                    break;
                case ReplicaRole::Mixed:
                    classes.push_back(kPrefillClass | kDecodeClass);
                    break;
                }
            }
            _router.setClasses(std::move(classes));
        }
        // Input staging per dispatched request: the prompt's token
        // embeddings cross the link (FP16); unified-memory platforms
        // skip the explicit copy. Only charged when lanes are live.
        _stageBytes = static_cast<double>(spec.promptLen) *
            static_cast<double>(spec.model.hidden) * 2.0;
        if (_obs != nullptr) {
            _ticker = _obs->ticker();
            // Visit through the first boundary at or past the horizon
            // so the final partial window is represented; iterations
            // draining past the horizon are not sampled.
            _obsStopNs = static_cast<std::int64_t>(_horizonNs) +
                _obs->intervalNs() - 1;
        }
        _reps.resize(spec.replicas.size());
        _lanes.resize(spec.replicas.size());
        _stores.resize(spec.replicas.size());
        for (std::size_t r = 0; r < _reps.size(); ++r) {
            ReplicaRt &rt = _reps[r];
            rt.spec = &spec.replicas[r];
            rt.jitterRng = _streams.stream(r + 1);
            rt.stats.platformName = rt.spec->platform.name;

            // KV budget: HBM minus weights and one max-batch of
            // activations; each admission conservatively reserves the
            // full prompt+generation KV footprint (vLLM-style
            // worst-case admission control).
            workload::MemoryFootprint per_seq = workload::estimateMemory(
                spec.model, 1, spec.promptLen + spec.genTokens);
            workload::MemoryFootprint at_cap = workload::estimateMemory(
                spec.model, rt.spec->maxActive, spec.promptLen);
            double kv_per_seq = per_seq.kvCacheBytes;
            double kv_capacity = rt.spec->platform.gpu.hbmBytes() -
                at_cap.weightsBytes - at_cap.activationBytes;
            if (kv_capacity < kv_per_seq)
                fatal(strprintf(
                    "simulateCluster: replica %zu (%s) cannot hold one "
                    "%d-token sequence's KV cache",
                    r, rt.spec->platform.name.c_str(),
                    spec.promptLen + spec.genTokens));
            _kvPerSeqBytes = kv_per_seq;
            if (_kvOn)
                _stores[r] = std::make_unique<kv::TieredStore>(
                    spec.kvTier, rt.spec->platform, kv_capacity,
                    _lanes[r]);

            serving::ReplicaEngine::Config ec;
            ec.cost = &costs.get(rt.spec->platform.name);
            ec.maxActive = rt.spec->maxActive;
            ec.promptLen = spec.promptLen;
            ec.genTokens = spec.genTokens;
            ec.kvPerSeqBytes = kv_per_seq;
            ec.kvCapacityBytes = kv_capacity;
            ec.horizonNs = _horizonNs;
            ec.iterPriority = eventPriority(EvIterEnd, r);
            if (_spec.traffic != nullptr) {
                // Prefix-cache hits (multi-turn traffic) skip the
                // cached share of the prefill; legacy Poisson specs
                // leave the hook unset so their cost path is
                // bit-identical to the pre-traffic-model code.
                ec.prefillFrac = [this](std::size_t id) {
                    return 1.0 - _requests[id].cachedFrac;
                };
            }
            ec.prefillOnly = rt.spec->role == ReplicaRole::Prefill;
            if (_kvOn) {
                // Two-tier store: admission pages retained entries
                // per policy and a prefix hit only saves prefill when
                // the entry is actually resident (HBM free, host paid
                // as a fetch over the link).
                kv::TieredStore *store = _stores[r].get();
                bool retain = rt.spec->role != ReplicaRole::Prefill;
                ec.kvAdmit = [this, store, kv_per_seq](
                                 std::size_t id, double now,
                                 bool decode_entry) {
                    serving::ReplicaEngine::Config::KvAdmission out;
                    kv::TieredStore::AdmitResult res = store->admit(
                        _requests[id].session, kv_per_seq, now,
                        !decode_entry);
                    out.admitted = res.admitted;
                    out.stallNs = res.stallNs;
                    out.prefillShare =
                        res.prefixHit == kv::Residency::None
                        ? 1.0
                        : 1.0 - _requests[id].cachedFrac;
                    return out;
                };
                ec.kvRelease = [this, store, kv_per_seq,
                                retain](std::size_t id, double now) {
                    store->release(_requests[id].session, kv_per_seq,
                                   now, retain);
                };
            }

            serving::ReplicaEngine::Callbacks cb;
            // Replica callbacks run inside parallel windows when the
            // engine is threaded: writes to state owned by this
            // replica (or keyed by request id) stay inline, while
            // global effects — window accumulators, the router
            // scoreboard, ordered span sealing/export — go through
            // engine.defer(), which replays them in exact global event
            // order at the window barrier (immediately in sequential
            // mode). FP accumulation order in particular must match
            // the sequential run for byte-identical reports.
            cb.onFirstToken = [this](std::size_t id, double ttft,
                                     double now) {
                _requests[id].ttftNs = ttft;
                _engine.defer([this, ttft] {
                    _windowTtftNs += ttft;
                    ++_windowTtftCount;
                });
                if (_spans != nullptr)
                    _spans->onFirstToken(id, now);
            };
            cb.onComplete = [this, r](std::size_t id, double now) {
                ReplicaRt &rep = _reps[r];
                if (_disagg &&
                    rep.spec->role == ReplicaRole::Prefill &&
                    _spec.genTokens > 1) {
                    // First token served; the sequence's KV pages out
                    // over this replica's link, then re-dispatches
                    // into the decode pool.
                    if (_spans != nullptr)
                        _spans->onHandoffStart(id, now);
                    ++rep.stats.handoffs;
                    _engine.defer([this, r] { _router.onSettled(r); });
                    _requests[id].decodeReady = true;
                    // The re-dispatch is a routing decision, so the
                    // transfer-done event posts to the router's shard
                    // (a cross-shard message from this replica).
                    double end = chargeLane(r, _kvPerSeqBytes, now);
                    routerSched().at(end, eventPriority(EvKvXfer, id),
                                     [this, id](double t) {
                                         dispatch(id, t);
                                     });
                    return;
                }
                _requests[id].doneNs = now;
                ++rep.stats.completed;
                _engine.defer([this, r, id, now] {
                    ++_windowCompleted;
                    _router.onSettled(r);
                    if (_spans != nullptr)
                        _spans->onComplete(id, now);
                });
            };
            if (_spans != nullptr)
                cb.onAdmitRequest = [this](std::size_t id, double now,
                                           double stall_ns,
                                           bool decode_entry) {
                    _spans->onAdmit(id, now, stall_ns, decode_entry);
                };
            cb.onIteration =
                [this, r](const serving::IterationInfo &info) {
                    if (_obs != nullptr) {
                        // Captured by value: the IterationInfo
                        // reference dies with the callback, but the
                        // span append (global, ordered) is deferred.
                        const int batch = info.prefill
                            ? info.prefillBatch
                            : info.decodeBatch;
                        std::string name =
                            (info.prefill ? "prefill b="
                                          : "decode b=") +
                            std::to_string(batch);
                        const std::int64_t begin =
                            std::llround(info.beginNs);
                        const std::int64_t dur = std::llround(
                            info.endNs - info.beginNs);
                        _engine.defer(
                            [this, r, name = std::move(name), begin,
                             dur] {
                                _obs->span(name, static_cast<int>(r),
                                           begin, dur);
                            });
                    }
                    if (_spans != nullptr && !info.prefill &&
                        info.decodeBatch > 0 &&
                        info.activeIds != nullptr) {
                        for (const auto &[id, left] : *info.activeIds)
                            _spans->onDecodeIter(id, info.beginNs,
                                                 info.endNs,
                                                 info.decodeBatch);
                    }
                };
            cb.scaleDuration = [this, r](double base_ns) {
                ReplicaRt &rep = _reps[r];
                double dur_ns =
                    base_ns * rep.slowFactor / rep.spec->clock;
                if (_spec.jitterFrac > 0.0)
                    dur_ns *= std::max(
                        0.05,
                        rep.jitterRng.gaussian(1.0, _spec.jitterFrac));
                return dur_ns;
            };
            rt.engine = std::make_unique<serving::ReplicaEngine>(
                replicaSched(r), ec, std::move(cb));
        }
    }

    ClusterResult run();

    /** Synchronization counters of the finished run. */
    const core::ShardStats &shardStats() const
    {
        return _engine.stats();
    }

  private:
    static std::vector<double> makeWeights(const ClusterSpec &spec,
                                           const CostCache &costs);

    /** Engine execution options derived from plan + spec. */
    static core::ShardedEngine::Options
    engineOptions(const ShardPlan &plan, const ClusterSpec &spec)
    {
        core::ShardedEngine::Options opts;
        opts.lookaheadNs = plan.lookaheadNs;
        opts.threads = spec.shardThreads < 1
            ? 1
            : static_cast<std::size_t>(spec.shardThreads);
        opts.safeCrossNs = plan.safeCrossNs;
        return opts;
    }

    /** Scheduler replica @p r's events execute on. */
    core::Scheduler &
    replicaSched(std::size_t r)
    {
        return _engine.shard(_plan.homeShard[r]);
    }

    /** Scheduler router-side events (arrivals, routing decisions,
     *  fault detection) execute on. Router handlers touch global
     *  state (router scoreboard, backlog, other replicas), so their
     *  events carry the unsafe tag: the threaded engine always runs
     *  them sequentially at the global minimum, and their pending
     *  heads bound every parallel window. */
    core::Scheduler &
    routerSched()
    {
        return _engine.shard(_plan.routerShard).unsafeScheduler();
    }

    void dispatch(std::size_t id, double now);
    /** A routed request reached replica @p r: stage and enqueue. */
    void deliver(std::size_t id, std::size_t r, double now);
    void restartAndReroute(std::size_t r,
                           std::vector<std::size_t> &ids, double now);
    void drainBacklog(double now);

    /** FIFO-queue @p bytes onto replica @p r's CPU-GPU link; returns
     *  the transfer's completion instant. */
    double chargeLane(std::size_t r, double bytes, double now);
    /** A handed-off KV cache finished crossing into replica @p r. */
    void onKvArrive(std::size_t id, std::size_t r, double now);
    /** Send @p id's KV into decode replica @p r (lane + arrival). */
    void startHandoffInto(std::size_t id, std::size_t r, double now);

    void onFault(std::size_t faultIdx, double tNs);
    void onDetect(std::size_t faultIdx, double tNs);
    void onHeal(std::size_t faultIdx, double tNs);

    /** Sample every unvisited probe boundary up to @p nowNs. */
    void flushObs(double nowNs);
    /** One boundary sample of the current cluster state. */
    void sampleObs(std::int64_t t);
    /** End-of-run registry totals and histograms. */
    void finishObs(const ClusterResult &result,
                   const std::vector<double> &ttfts,
                   const std::vector<double> &e2es);

    const ClusterSpec &_spec;
    double _horizonNs;
    core::RngStreams _streams;
    Router _router;
    bool _disagg = false; ///< any replica has a non-Mixed role
    bool _kvOn = false;   ///< spec.kvTier enables the two-tier store
    /** Shard topology (replica homes, router shard, lookahead) and
     *  the partitioned engine the whole run executes on. shards == 1
     *  degenerates to the classic single-queue run, event for event. */
    ShardPlan _plan;
    core::ShardedEngine _engine;
    double _dispatchNs = 0.0; ///< spec.dispatchUs, in ns
    /** Interconnect lanes and tier stores, one per replica; lanes are
     *  live (staging + handoff traffic) whenever tiering or
     *  disaggregation is on, stores only under tiering. */
    std::vector<core::FifoResource> _lanes;
    std::vector<std::unique_ptr<kv::TieredStore>> _stores;
    double _kvPerSeqBytes = 0.0;
    double _stageBytes = 0.0;
    std::vector<ReplicaRt> _reps;
    std::vector<Request> _requests;
    std::vector<std::size_t> _backlog;
    std::size_t _rerouted = 0;

    obs::Collector *_obs = nullptr;
    obs::SpanLog *_spans = nullptr;
    obs::Ticker _ticker{0};
    std::int64_t _obsStopNs = 0;
    // Per-window accumulators, reset at every sampled boundary.
    std::size_t _windowCompleted = 0;
    double _windowTtftNs = 0.0;
    std::size_t _windowTtftCount = 0;
};

std::vector<double>
Sim::makeWeights(const ClusterSpec &spec, const CostCache &costs)
{
    // Static decode capacity (tokens/s at the full batch), the weight
    // a real balancer would configure from offline benchmarks.
    std::vector<double> weights;
    weights.reserve(spec.replicas.size());
    for (const ReplicaSpec &rep : spec.replicas) {
        double decode_ns =
            costs.get(rep.platform.name).decodeNs(rep.maxActive);
        weights.push_back(static_cast<double>(rep.maxActive) /
                          decode_ns * 1e9 * rep.clock);
    }
    return weights;
}

void
Sim::dispatch(std::size_t id, double now)
{
    Request &req = _requests[id];
    // Role-aware routing: fresh requests go to prefill-capable
    // replicas, handed-off sequences to decode-capable ones. Co-located
    // fleets dispatch class-blind, exactly as before.
    unsigned klass = kAnyClass;
    if (_disagg)
        klass = req.decodeReady ? kDecodeClass : kPrefillClass;
    std::vector<std::size_t> exclude;
    while (true) {
        std::size_t r = _router.pick(req.session, exclude, klass);
        if (r == Router::npos()) {
            _backlog.push_back(id);
            return;
        }
        ReplicaRt &rt = _reps[r];
        // Bounded-queue admission: a live, reachable replica answers a
        // full queue with an immediate rejection and the router moves
        // on. Crashed or partitioned replicas cannot answer at all —
        // the dispatch sinks into the failure until detection.
        if (!rt.crashed && !rt.partitioned && rt.spec->maxQueue > 0 &&
            rt.engine->pendingCount() >=
                static_cast<std::size_t>(rt.spec->maxQueue)) {
            ++rt.stats.rejected;
            exclude.push_back(r);
            continue;
        }
        _router.onDispatch(r);
        ++rt.stats.routed;
        ++req.attempts;
        if (_spans != nullptr) {
            std::string reason = routerPolicyName(_spec.router);
            if (req.decodeReady)
                reason += " decode-pool";
            if (!exclude.empty())
                reason += strprintf(" after %zu rejects",
                                    exclude.size());
            _spans->onRoute(id, now, static_cast<int>(r), reason);
        }
        if (rt.partitioned) {
            rt.limbo.push_back(id);
            return;
        }
        if (req.decodeReady) {
            // The prefilled KV must land before the sequence can join
            // the decode batch; the lane transfer is the handoff cost.
            startHandoffInto(id, r, now);
            return;
        }
        if (_dispatchNs > 0.0) {
            // Routing latency: the decision happens here on the
            // router's shard, the request reaches its replica one
            // explicit delivery event later — the cross-shard message
            // the shard lookahead is derived from.
            replicaSched(r).at(now + _dispatchNs,
                               eventPriority(EvDeliver, id),
                               [this, id, r](double t) {
                                   deliver(id, r, t);
                               });
            return;
        }
        deliver(id, r, now);
        return;
    }
}

void
Sim::deliver(std::size_t id, std::size_t r, double now)
{
    ReplicaRt &rt = _reps[r];
    if (rt.partitioned) {
        // A partition raced the delivery: the request is stuck until
        // heal or detection re-routes it.
        rt.limbo.push_back(id);
        return;
    }
    const bool lane_live =
        (_kvOn || _disagg) && !rt.spec->platform.unifiedMemory;
    if (lane_live && _spec.stagedDispatch) {
        // Staged dispatch: admission waits for the prompt's staging
        // transfer, so KV paging and handoffs on the same lane delay
        // it — the bandwidth-contention coupling.
        double end = chargeLane(r, _stageBytes, now);
        replicaSched(r).at(
            end, eventPriority(EvStage, id), [this, id, r](double t) {
                ReplicaRt &rep = _reps[r];
                if (rep.partitioned) {
                    rep.limbo.push_back(id);
                    return;
                }
                rep.engine->enqueue(id, _requests[id].arrivalNs);
                rep.engine->maybeStart(t);
            });
        return;
    }
    // Input staging: the prompt crosses the link asynchronously
    // ahead of admission, contending with KV traffic but not
    // delaying this request. Unified-memory platforms skip it.
    if (lane_live)
        chargeLane(r, _stageBytes, now);
    // A crashed replica's engine still queues the request — it
    // sinks into the failure until detection routes around it.
    rt.engine->enqueue(id, _requests[id].arrivalNs);
    rt.engine->maybeStart(now);
}

double
Sim::chargeLane(std::size_t r, double bytes, double now)
{
    double start = _lanes[r].startFor(now);
    double dur = _reps[r].spec->platform.transferNs(bytes);
    _lanes[r].occupyUntil(start + dur);
    _reps[r].laneExtraNs += dur;
    return start + dur;
}

void
Sim::startHandoffInto(std::size_t id, std::size_t r, double now)
{
    double end = chargeLane(r, _kvPerSeqBytes, now);
    replicaSched(r).at(end, eventPriority(EvKvXfer, id),
                       [this, id, r](double t) {
                           onKvArrive(id, r, t);
                       });
}

void
Sim::onKvArrive(std::size_t id, std::size_t r, double now)
{
    ReplicaRt &rt = _reps[r];
    if (rt.partitioned) {
        // Partition raced the transfer: the KV is stuck until heal or
        // detection re-routes the request back through prefill.
        rt.limbo.push_back(id);
        return;
    }
    // A crashed replica sinks the arrival just like a fresh enqueue.
    rt.engine->enqueueDecode(id, _requests[id].arrivalNs);
    rt.engine->maybeStart(now);
}

void
Sim::flushObs(double nowNs)
{
    if (_obs == nullptr)
        return;
    _ticker.advanceTo(std::min(nowNs,
                               static_cast<double>(_obsStopNs)),
                      [this](std::int64_t t) { sampleObs(t); });
}

void
Sim::sampleObs(std::int64_t t)
{
    for (std::size_t r = 0; r < _reps.size(); ++r) {
        const ReplicaRt &rt = _reps[r];
        const obs::Labels labels{{"replica", std::to_string(r)}};
        _obs->sample("cluster.queue_depth", labels, t,
                     static_cast<double>(rt.engine->pendingCount()));
        _obs->sample("cluster.batch_active", labels, t,
                     static_cast<double>(rt.engine->activeCount() +
                                         rt.engine->prefillingCount()));
        _obs->sample("cluster.kv_bytes", labels, t,
                     rt.engine->kvBytes());
        _obs->sample("cluster.outstanding", labels, t,
                     static_cast<double>(_router.outstanding(r)));
        _obs->sample("cluster.rerouted", labels, t,
                     static_cast<double>(rt.stats.rerouted));
    }
    const double window_sec =
        static_cast<double>(_obs->intervalNs()) / 1e9;
    _obs->sample("cluster.throughput_rps", {}, t,
                 static_cast<double>(_windowCompleted) / window_sec);
    _obs->sample("cluster.ttft_ms", {}, t,
                 _windowTtftCount > 0
                     ? _windowTtftNs /
                         static_cast<double>(_windowTtftCount) / 1e6
                     : 0.0);
    _obs->sample("cluster.backlog", {}, t,
                 static_cast<double>(_backlog.size()));
    _obs->sample("cluster.rerouted_total", {}, t,
                 static_cast<double>(_rerouted));
    _windowCompleted = 0;
    _windowTtftNs = 0.0;
    _windowTtftCount = 0;
}

void
Sim::restartAndReroute(std::size_t r, std::vector<std::size_t> &ids,
                       double now)
{
    ReplicaRt &rt = _reps[r];
    for (std::size_t id : ids) {
        // Generated tokens died with the replica: the client restarts
        // from scratch, so TTFT re-measures against the new replica.
        // A handed-off sequence's KV died too — back through prefill.
        _requests[id].ttftNs = -1.0;
        _requests[id].decodeReady = false;
        _router.onSettled(r);
        ++rt.stats.rerouted;
        ++_rerouted;
        if (_spans != nullptr)
            _spans->onRestart(id, now);
        dispatch(id, now);
    }
    ids.clear();
}

void
Sim::drainBacklog(double now)
{
    std::vector<std::size_t> waiting;
    waiting.swap(_backlog);
    for (std::size_t id : waiting)
        dispatch(id, now);
}

void
Sim::onFault(std::size_t faultIdx, double tNs)
{
    const FaultSpec &f = _spec.faults[faultIdx];
    ReplicaRt &rt = _reps[f.replica];
    if (_obs != nullptr)
        _obs->instant(std::string("fault.") + faultKindName(f.kind),
                      static_cast<int>(f.replica), std::llround(tNs));
    switch (f.kind) {
    case FaultKind::Crash: {
        if (rt.crashed)
            return;
        rt.crashed = true;
        rt.stats.crashed = true;
        // Cancel the in-flight iteration and freeze everything on the
        // replica until detection: evicted in pending, prefilling,
        // active order, with limbo appended last.
        rt.engine->halt();
        std::vector<std::size_t> evicted = rt.engine->evictAll();
        if (_kvOn)
            _stores[f.replica]->dropAll(); // host tier dies with it
        rt.stranded.insert(rt.stranded.end(), evicted.begin(),
                           evicted.end());
        rt.stranded.insert(rt.stranded.end(), rt.limbo.begin(),
                           rt.limbo.end());
        rt.limbo.clear();
        routerSched().at(tNs + _spec.detectDelaySec * 1e9,
                         eventPriority(EvDetect, faultIdx),
                         [this, faultIdx](double t) {
                             onDetect(faultIdx, t);
                         });
        return;
    }
    case FaultKind::Slowdown:
        rt.slowFactor = f.factor; // next iteration start onward
        return;
    case FaultKind::Partition:
        if (rt.crashed || rt.partitioned)
            return;
        rt.partitioned = true;
        routerSched().at(tNs + _spec.detectDelaySec * 1e9,
                         eventPriority(EvDetect, faultIdx),
                         [this, faultIdx](double t) {
                             onDetect(faultIdx, t);
                         });
        if (f.healSec >= 0.0)
            routerSched().at(f.healSec * 1e9,
                             eventPriority(EvHeal, faultIdx),
                             [this, faultIdx](double t) {
                                 onHeal(faultIdx, t);
                             });
        return;
    }
}

void
Sim::onDetect(std::size_t faultIdx, double tNs)
{
    const FaultSpec &f = _spec.faults[faultIdx];
    ReplicaRt &rt = _reps[f.replica];
    if (f.kind == FaultKind::Crash) {
        if (_obs != nullptr)
            _obs->instant("fault.detected",
                          static_cast<int>(f.replica),
                          std::llround(tNs));
        _router.markDown(f.replica);
        restartAndReroute(f.replica, rt.stranded, tNs);
    } else if (f.kind == FaultKind::Partition) {
        if (!rt.partitioned || rt.crashed)
            return; // healed (or upgraded to a crash) before detection
        if (_obs != nullptr)
            _obs->instant("fault.detected",
                          static_cast<int>(f.replica),
                          std::llround(tNs));
        _router.markDown(f.replica);
        // Requests sent into the partition never arrived; the replica
        // keeps serving what it already held (data plane intact).
        restartAndReroute(f.replica, rt.limbo, tNs);
    }
}

void
Sim::onHeal(std::size_t faultIdx, double tNs)
{
    const FaultSpec &f = _spec.faults[faultIdx];
    ReplicaRt &rt = _reps[f.replica];
    if (rt.crashed || !rt.partitioned)
        return;
    rt.partitioned = false;
    if (_obs != nullptr)
        _obs->instant("fault.healed", static_cast<int>(f.replica),
                      std::llround(tNs));
    _router.markUp(f.replica);
    // Undelivered requests from the undetected window finally arrive;
    // handed-off sequences still owe their KV transfer.
    std::vector<std::size_t> limbo;
    limbo.swap(rt.limbo);
    for (std::size_t id : limbo) {
        if (_requests[id].decodeReady)
            startHandoffInto(id, f.replica, tNs);
        else
            rt.engine->enqueue(id, _requests[id].arrivalNs);
    }
    rt.engine->maybeStart(tNs);
    drainBacklog(tNs);
}

ClusterResult
Sim::run()
{
    // Arrivals come from the spec's traffic model; a null traffic
    // field means the legacy constant-rate Poisson, whose generate()
    // replays the historical inline loop draw-for-draw (dedicated
    // arrival stream 0; replicas jitter on i + 1).
    const serving::ArrivalProcess *process = _spec.traffic.get();
    serving::PoissonProcess legacy(_spec.arrivalRatePerSec,
                                   _spec.sessions);
    if (process == nullptr)
        process = &legacy;
    const int tenant_cap = _spec.tenants.empty()
        ? 0
        : static_cast<int>(_spec.tenants.size()) - 1;
    for (const serving::Arrival &arr :
         process->generate(_horizonNs, _spec.seed)) {
        Request req;
        req.arrivalNs = arr.timeNs;
        req.session = arr.session;
        req.tenant = std::clamp(arr.tenant, 0, tenant_cap);
        req.cachedFrac = arr.cachedFrac;
        _requests.push_back(req);
    }
    if (_spans != nullptr) {
        _spans->setMeta("ttft_slo_ms",
                        strprintf("%g", _spec.ttftSloMs));
        _spans->setMeta("e2e_slo_ms", strprintf("%g", _spec.e2eSloMs));
        for (std::size_t id = 0; id < _requests.size(); ++id)
            _spans->onArrival(id, _requests[id].arrivalNs);
    }
    // Arrivals and faults are router-side events; seeding them on the
    // router's shard before the run never counts as mailbox traffic.
    for (std::size_t id = 0; id < _requests.size(); ++id)
        routerSched().at(_requests[id].arrivalNs,
                         eventPriority(EvArrival, id),
                         [this, id](double now) { dispatch(id, now); });
    for (std::size_t i = 0; i < _spec.faults.size(); ++i)
        routerSched().at(_spec.faults[i].atSec * 1e9,
                         eventPriority(EvFault, i),
                         [this, i](double now) { onFault(i, now); });

    // Sample every probe boundary up to (and including) each event's
    // instant before applying it: boundary samples see the state as
    // of the boundary, never a partially applied event.
    _engine.onBeforeEvent([this](double tNs) { flushObs(tNs); });
    if (_obs != nullptr) {
        // Boundary samples read global state, so a parallel window
        // must never span one. The hook above has already flushed
        // through its event's instant when this runs, making the
        // ticker's next boundary the exact first constraint after it;
        // boundaries past the sampling stop no longer matter.
        _engine.setSyncPoint([this](double) {
            const std::int64_t next = _ticker.nextNs();
            return next > _obsStopNs
                ? std::numeric_limits<double>::infinity()
                : static_cast<double>(next);
        });
    }
    _engine.run();

    ClusterResult result;
    result.arrivalRatePerSec = _spec.traffic != nullptr
        ? _spec.traffic->meanRatePerSec()
        : _spec.arrivalRatePerSec;
    result.offered = _requests.size();
    result.rerouted = _rerouted;

    // Per-tenant accounting scaffolding; single-tenant specs judge
    // every request against the spec-level thresholds.
    struct TenantAcc
    {
        std::size_t offered = 0;
        std::size_t sloOk = 0;
        std::vector<double> ttfts;
        std::vector<double> e2es;
    };
    std::vector<TenantAcc> tenant_acc(_spec.tenants.size());

    std::vector<double> ttfts;
    std::vector<double> e2es;
    double ttft_slo_ns = _spec.ttftSloMs * 1e6;
    double e2e_slo_ns = _spec.e2eSloMs * 1e6;
    std::size_t slo_ok = 0;
    for (const Request &req : _requests) {
        TenantAcc *acc = _spec.tenants.empty()
            ? nullptr
            : &tenant_acc[static_cast<std::size_t>(req.tenant)];
        double ttft_slo = acc == nullptr
            ? ttft_slo_ns
            : _spec.tenants[static_cast<std::size_t>(req.tenant)]
                      .ttftSloMs *
                1e6;
        double e2e_slo = acc == nullptr
            ? e2e_slo_ns
            : _spec.tenants[static_cast<std::size_t>(req.tenant)]
                      .e2eSloMs *
                1e6;
        if (acc != nullptr)
            ++acc->offered;
        if (req.doneNs < 0.0)
            continue;
        ++result.completed;
        double e2e = req.doneNs - req.arrivalNs;
        ttfts.push_back(req.ttftNs);
        e2es.push_back(e2e);
        bool ok = req.ttftNs <= ttft_slo && e2e <= e2e_slo;
        if (ok)
            ++slo_ok;
        if (acc != nullptr) {
            acc->ttfts.push_back(req.ttftNs);
            acc->e2es.push_back(e2e);
            if (ok)
                ++acc->sloOk;
        }
    }
    result.lost = result.offered - result.completed;
    result.throughputRps =
        static_cast<double>(result.completed) / _spec.horizonSec;
    result.goodputRps =
        static_cast<double>(slo_ok) / _spec.horizonSec;
    result.sloAttainment = result.offered == 0
        ? 0.0
        : static_cast<double>(slo_ok) /
            static_cast<double>(result.offered);
    if (!ttfts.empty()) {
        std::vector<double> tp =
            stats::percentiles(ttfts, {50.0, 95.0, 99.0});
        std::vector<double> ep =
            stats::percentiles(e2es, {50.0, 95.0, 99.0});
        result.p50TtftNs = tp[0];
        result.p95TtftNs = tp[1];
        result.p99TtftNs = tp[2];
        result.p50E2eNs = ep[0];
        result.p95E2eNs = ep[1];
        result.p99E2eNs = ep[2];
    }

    for (std::size_t i = 0; i < _spec.tenants.size(); ++i) {
        const TenantAcc &acc = tenant_acc[i];
        TenantStats ts;
        ts.name = _spec.tenants[i].name;
        ts.offered = acc.offered;
        ts.completed = acc.ttfts.size();
        ts.sloAttainment = acc.offered == 0
            ? 0.0
            : static_cast<double>(acc.sloOk) /
                static_cast<double>(acc.offered);
        ts.goodputRps =
            static_cast<double>(acc.sloOk) / _spec.horizonSec;
        if (!acc.ttfts.empty()) {
            ts.p99TtftNs = stats::percentiles(acc.ttfts, {99.0})[0];
            ts.p99E2eNs = stats::percentiles(acc.e2es, {99.0})[0];
        }
        result.tenants.push_back(std::move(ts));
    }

    for (std::size_t r = 0; r < _reps.size(); ++r) {
        ReplicaRt &rt = _reps[r];
        rt.stats.utilization =
            std::min(1.0, rt.engine->busyNs() / _horizonNs);
        rt.stats.meanActive = rt.engine->activeSizes().count() > 0
            ? rt.engine->activeSizes().mean()
            : 0.0;
        rt.stats.peakKvBytes = rt.engine->peakKvBytes();
        rt.stats.linkBusyNs = rt.laneExtraNs;
        if (_kvOn) {
            const kv::TierStats &ks = _stores[r]->stats();
            rt.stats.kvOffloads = ks.offloads;
            rt.stats.kvFetches = ks.fetches;
            rt.stats.kvEvictions = ks.evictions;
            rt.stats.peakHostKvBytes = ks.peakHostBytes;
            rt.stats.linkBusyNs += ks.linkBusyNs;
            // External store: the engine never tracks KV itself.
            rt.stats.peakKvBytes =
                std::max(rt.stats.peakKvBytes, ks.peakHbmBytes);
        }
        result.replicas.push_back(rt.stats);
    }

    if (_kvOn || _disagg) {
        KvClusterStats &kv = result.kv;
        kv.enabled = true;
        for (std::size_t r = 0; r < _reps.size(); ++r) {
            const ReplicaRt &rt = _reps[r];
            kv.handoffs += rt.stats.handoffs;
            kv.linkBusyNs += rt.stats.linkBusyNs;
            if (_kvOn) {
                const kv::TierStats &ks = _stores[r]->stats();
                kv.offloads += ks.offloads;
                kv.fetches += ks.fetches;
                kv.evictions += ks.evictions;
                kv.hitsHbm += ks.hitsHbm;
                kv.hitsHost += ks.hitsHost;
                kv.misses += ks.misses;
                kv.offloadedBytes += ks.offloadedBytes;
                kv.fetchedBytes += ks.fetchedBytes;
            }
        }
        kv.handoffBytes =
            _kvPerSeqBytes * static_cast<double>(kv.handoffs);
        // Fleet energy over the horizon: busy time at busy power,
        // the remainder idle (the single-node analysis model, summed
        // across heterogeneous replicas).
        for (const ReplicaRt &rt : _reps) {
            const hw::Platform &p = rt.spec->platform;
            double busy_sec = rt.stats.utilization * _spec.horizonSec;
            double idle_sec = _spec.horizonSec - busy_sec;
            kv.gpuJoules += busy_sec * p.gpu.busyPowerW +
                idle_sec * p.gpu.idlePowerW;
            kv.cpuJoules += busy_sec * p.cpu.busyPowerW +
                idle_sec * p.cpu.idlePowerW;
        }
        kv.joulesPerCompleted = result.completed > 0
            ? (kv.cpuJoules + kv.gpuJoules) /
                static_cast<double>(result.completed)
            : 0.0;
    }

    if (_obs != nullptr) {
        flushObs(static_cast<double>(_obsStopNs));
        finishObs(result, ttfts, e2es);
    }
    return result;
}

void
Sim::finishObs(const ClusterResult &result,
               const std::vector<double> &ttfts,
               const std::vector<double> &e2es)
{
    obs::Registry &metrics = _obs->metrics();
    metrics.counter("cluster.requests_offered")
        .add(static_cast<double>(result.offered));
    metrics.counter("cluster.requests_completed")
        .add(static_cast<double>(result.completed));
    metrics.counter("cluster.requests_lost")
        .add(static_cast<double>(result.lost));
    metrics.counter("cluster.rerouted")
        .add(static_cast<double>(result.rerouted));
    for (std::size_t r = 0; r < _reps.size(); ++r) {
        const ReplicaStats &stats = _reps[r].stats;
        const obs::Labels labels{{"replica", std::to_string(r)}};
        metrics.counter("cluster.replica_routed", labels)
            .add(static_cast<double>(stats.routed));
        metrics.counter("cluster.replica_completed", labels)
            .add(static_cast<double>(stats.completed));
        metrics.counter("cluster.replica_rejected", labels)
            .add(static_cast<double>(stats.rejected));
        metrics.counter("cluster.replica_rerouted", labels)
            .add(static_cast<double>(stats.rerouted));
        metrics.gauge("cluster.replica_peak_kv_bytes", labels)
            .set(stats.peakKvBytes);
    }
    obs::Histogram &ttft_hist = metrics.histogram(
        "cluster.ttft_ms", obs::defaultLatencyBucketsMs());
    for (double ttft : ttfts)
        ttft_hist.observe(ttft / 1e6);
    obs::Histogram &e2e_hist = metrics.histogram(
        "cluster.e2e_ms", obs::defaultLatencyBucketsMs());
    for (double e2e : e2es)
        e2e_hist.observe(e2e / 1e6);
}

} // namespace

ClusterResult
simulateCluster(const ClusterSpec &spec, const CostCache &costs,
                obs::Collector *obs, obs::SpanLog *spans,
                core::ShardStats *shardStats)
{
    spec.validate();
    if (!spec.rates.empty())
        fatal("simulateCluster: expand rate sweeps via scenarioAt() "
              "first");
    Sim sim(spec, costs, obs, spans);
    ClusterResult result = sim.run();
    if (shardStats != nullptr)
        *shardStats = sim.shardStats();
    return result;
}

ClusterResult
simulateCluster(const ClusterSpec &spec, obs::Collector *obs,
                obs::SpanLog *spans, core::ShardStats *shardStats)
{
    CostCache costs;
    costs.build(spec);
    return simulateCluster(spec, costs, obs, spans, shardStats);
}

json::Value
ClusterResult::toJson() const
{
    json::Object doc;
    doc.set("rate", arrivalRatePerSec);
    doc.set("offered", static_cast<unsigned long long>(offered));
    doc.set("completed", static_cast<unsigned long long>(completed));
    doc.set("lost", static_cast<unsigned long long>(lost));
    doc.set("rerouted", static_cast<unsigned long long>(rerouted));
    doc.set("throughput_rps", throughputRps);
    doc.set("ttft_p50_ms", p50TtftNs / 1e6);
    doc.set("ttft_p95_ms", p95TtftNs / 1e6);
    doc.set("ttft_p99_ms", p99TtftNs / 1e6);
    doc.set("e2e_p50_ms", p50E2eNs / 1e6);
    doc.set("e2e_p95_ms", p95E2eNs / 1e6);
    doc.set("e2e_p99_ms", p99E2eNs / 1e6);
    doc.set("slo_attainment", sloAttainment);
    doc.set("goodput_rps", goodputRps);
    json::Value::Array reps;
    for (const ReplicaStats &rep : replicas) {
        json::Object entry;
        entry.set("platform", rep.platformName);
        entry.set("routed", static_cast<unsigned long long>(rep.routed));
        entry.set("completed",
                  static_cast<unsigned long long>(rep.completed));
        entry.set("rejected",
                  static_cast<unsigned long long>(rep.rejected));
        entry.set("rerouted",
                  static_cast<unsigned long long>(rep.rerouted));
        entry.set("utilization", rep.utilization);
        entry.set("mean_active", rep.meanActive);
        entry.set("peak_kv_bytes", rep.peakKvBytes);
        entry.set("crashed", rep.crashed);
        if (kv.enabled) {
            entry.set("kv_offloads",
                      static_cast<unsigned long long>(rep.kvOffloads));
            entry.set("kv_fetches",
                      static_cast<unsigned long long>(rep.kvFetches));
            entry.set("kv_evictions",
                      static_cast<unsigned long long>(rep.kvEvictions));
            entry.set("handoffs",
                      static_cast<unsigned long long>(rep.handoffs));
            entry.set("peak_host_kv_bytes", rep.peakHostKvBytes);
            entry.set("link_busy_ms", rep.linkBusyNs / 1e6);
        }
        reps.push_back(json::Value(std::move(entry)));
    }
    doc.set("replicas", json::Value(std::move(reps)));
    if (!tenants.empty()) {
        json::Value::Array tiers;
        for (const TenantStats &tier : tenants) {
            json::Object entry;
            entry.set("name", tier.name);
            entry.set("offered",
                      static_cast<unsigned long long>(tier.offered));
            entry.set("completed",
                      static_cast<unsigned long long>(tier.completed));
            entry.set("slo_attainment", tier.sloAttainment);
            entry.set("goodput_rps", tier.goodputRps);
            entry.set("ttft_p99_ms", tier.p99TtftNs / 1e6);
            entry.set("e2e_p99_ms", tier.p99E2eNs / 1e6);
            tiers.push_back(json::Value(std::move(entry)));
        }
        doc.set("tenants", json::Value(std::move(tiers)));
    }
    if (kv.enabled) {
        json::Object tier;
        tier.set("offloads",
                 static_cast<unsigned long long>(kv.offloads));
        tier.set("offloaded_bytes", kv.offloadedBytes);
        tier.set("fetches", static_cast<unsigned long long>(kv.fetches));
        tier.set("fetched_bytes", kv.fetchedBytes);
        tier.set("evictions",
                 static_cast<unsigned long long>(kv.evictions));
        tier.set("hits_hbm",
                 static_cast<unsigned long long>(kv.hitsHbm));
        tier.set("hits_host",
                 static_cast<unsigned long long>(kv.hitsHost));
        tier.set("misses", static_cast<unsigned long long>(kv.misses));
        tier.set("handoffs",
                 static_cast<unsigned long long>(kv.handoffs));
        tier.set("handoff_bytes", kv.handoffBytes);
        tier.set("link_busy_ms", kv.linkBusyNs / 1e6);
        tier.set("cpu_joules", kv.cpuJoules);
        tier.set("gpu_joules", kv.gpuJoules);
        tier.set("joules_per_completed", kv.joulesPerCompleted);
        doc.set("kv", json::Value(std::move(tier)));
    }
    return json::Value(std::move(doc));
}

} // namespace skipsim::cluster
