/**
 * @file
 * Multi-replica cluster serving simulator. N replicas — each an
 * independent continuous-batching server over a calibrated
 * hw::Platform, optionally heterogeneous — sit behind a Router with a
 * pluggable policy. Each replica tracks KV-cache memory occupancy and
 * queues (or, with a bounded queue, rejects) admissions when full; a
 * fault layer can crash a replica mid-horizon, slow it down, or
 * partition it from the router, with a configurable detection delay
 * before in-flight requests re-route. Results report per-replica
 * utilization, cluster-level TTFT and end-to-end latency percentiles,
 * SLO attainment and goodput — the quantities the single-instance
 * serving layer cannot see.
 *
 * Determinism contract: a ClusterSpec plus its seed fully determines
 * the report. Arrivals draw from mixSeed(seed, 0); replica i's
 * (opt-in) service jitter draws from mixSeed(seed, i + 1); rate-sweep
 * scenario i reseeds as mixSeed(seed, i) — the exec::SweepSpec
 * discipline — so fanning scenarios across any number of workers is
 * byte-identical to a serial run.
 */

#ifndef SKIPSIM_CLUSTER_CLUSTER_HH
#define SKIPSIM_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/router.hh"
#include "hw/platform.hh"
#include "json/value.hh"
#include "kv/tier.hh"
#include "serving/arrival.hh"
#include "serving/continuous.hh"
#include "workload/model_config.hh"

namespace skipsim::obs
{
class Collector;
class SpanLog;
}

namespace skipsim::core
{
struct ShardStats;
}

namespace skipsim::cluster
{

/** Fault kinds the injection layer models. */
enum class FaultKind
{
    Crash,     ///< replica dies; stranded requests re-route on detection
    Slowdown,  ///< degraded clock: iterations stretch by `factor`
    Partition, ///< unreachable from the router; optionally heals
};

/** @return canonical fault name ("crash", "slowdown", "partition"). */
const char *faultKindName(FaultKind kind);

/** @throws skipsim::FatalError for unknown fault names. */
FaultKind faultKindByName(const std::string &name);

/** One injected fault. */
struct FaultSpec
{
    /** Injection instant, seconds into the horizon. */
    double atSec = 0.0;

    /** Target replica index. */
    std::size_t replica = 0;

    FaultKind kind = FaultKind::Crash;

    /** Slowdown only: iteration-duration multiplier (> 1 is slower). */
    double factor = 2.0;

    /**
     * Partition only: heal instant, seconds; negative means the
     * partition never heals within the horizon.
     */
    double healSec = -1.0;
};

/**
 * Disaggregated-serving role. Mixed replicas run the classic
 * co-located pipeline; a Prefill replica hands each sequence's KV off
 * to a Decode replica over the interconnect after the first token.
 */
enum class ReplicaRole
{
    Mixed,   ///< prefill and decode co-located (the default)
    Prefill, ///< prefill pool: first token, then KV handoff
    Decode,  ///< decode pool: receives KV, generates the rest
};

/** @return canonical role name ("mixed", "prefill", "decode"). */
const char *replicaRoleName(ReplicaRole role);

/** @throws skipsim::FatalError for unknown role names. */
ReplicaRole replicaRoleByName(const std::string &name);

/** One replica of the fleet. */
struct ReplicaSpec
{
    hw::Platform platform;

    /** Disaggregated-serving role (Mixed = classic co-located). */
    ReplicaRole role = ReplicaRole::Mixed;

    /** Maximum concurrently decoding sequences. */
    int maxActive = 32;

    /**
     * Nominal speed multiplier (1.0 = calibrated platform speed);
     * < 1.0 models a permanently degraded instance.
     */
    double clock = 1.0;

    /**
     * Pending-queue bound: a dispatch finding this many requests
     * queued is rejected back to the router, which retries elsewhere.
     * 0 means unbounded (queue, never reject).
     */
    int maxQueue = 0;
};

/**
 * One SLO tier of a multi-tenant fleet. When ClusterSpec::tenants is
 * non-empty, a request's SLO thresholds come from its tenant tag
 * (serving::Arrival::tenant, clamped into range) instead of the
 * spec-level thresholds, and the result reports per-tenant attainment.
 */
struct TenantSpec
{
    std::string name = "tenant";

    /** This tier's SLO thresholds, ms. */
    double ttftSloMs = 500.0;
    double e2eSloMs = 2000.0;
};

/** The whole cluster scenario. */
struct ClusterSpec
{
    workload::ModelConfig model;
    std::vector<ReplicaSpec> replicas;
    RouterPolicy router = RouterPolicy::LeastOutstanding;

    /** Mean Poisson arrival rate, requests per second. */
    double arrivalRatePerSec = 100.0;

    /**
     * Pluggable traffic model (serving::ArrivalProcess). Null means
     * the legacy constant-rate Poisson built from arrivalRatePerSec
     * and sessions — draw-for-draw identical to the pre-registry
     * inline loop, so old specs keep their byte-identical reports.
     * Shared (immutable) so scenarioAt() copies stay cheap.
     */
    std::shared_ptr<const serving::ArrivalProcess> traffic;

    /**
     * SLO tiers for multi-tenant traffic; empty means single-tenant
     * accounting against ttftSloMs/e2eSloMs. Indexed by the arrival
     * process's tenant tags.
     */
    std::vector<TenantSpec> tenants;

    /**
     * Optional rate-sweep axis; when non-empty, scenarioCount() /
     * scenarioAt() expand one scenario per rate (arrivalRatePerSec is
     * ignored) with seeds mixSeed(seed, index).
     */
    std::vector<double> rates;

    double horizonSec = 20.0;

    /** Prompt length of every request, tokens. */
    int promptLen = 256;

    /** Tokens generated per request. */
    int genTokens = 16;

    /** Session-id pool size (SessionAffinity routing key space). */
    int sessions = 64;

    /** Fault-detection delay: router learns of a fault this late, s. */
    double detectDelaySec = 0.25;

    /** SLO thresholds for attainment/goodput accounting, ms. */
    double ttftSloMs = 500.0;
    double e2eSloMs = 2000.0;

    /**
     * Opt-in per-iteration service jitter (fraction of duration);
     * 0 disables it. Replica i draws from mixSeed(seed, i + 1).
     */
    double jitterFrac = 0.0;

    std::uint64_t seed = 42;

    std::vector<FaultSpec> faults;

    /**
     * KV-cache tiering (host-memory offload over the interconnect).
     * The default Never policy disables tiering entirely — no store,
     * no link traffic — keeping pre-tiering reports byte-identical.
     */
    kv::TierSpec kvTier;

    /**
     * Execution topology: engine shards the replicas are partitioned
     * across (round-robin), 1..replicas. Purely an execution knob —
     * the report is byte-identical at any value — so the JSON serde
     * accepts "shards" but never emits it (a saved spec or report
     * carries no trace of how it was executed).
     */
    int shards = 1;

    /**
     * Worker threads advancing the shards in parallel windows
     * (core::ShardedEngine::Options::threads); 1 keeps the classic
     * sequential merge loop. Like `shards`, a pure execution knob —
     * byte-identical reports at any value — accepted but never
     * emitted by the JSON serde.
     */
    int shardThreads = 1;

    /**
     * Router dispatch latency, microseconds: a routed request reaches
     * its replica this much later, as an explicit delivery event on
     * the replica's shard. 0 (the default) keeps the historical
     * inline hand-off — and forces the shard lookahead to 0, since an
     * inline dispatch affects another shard at the current instant.
     */
    double dispatchUs = 0.0;

    /**
     * Gate each delivery on its input-staging transfer: the request
     * only enters the replica's queue once its prompt has crossed the
     * CPU-GPU link lane, so heavy KV-offload paging on the same lane
     * delays admission (bandwidth contention). Off keeps the
     * historical fire-and-forget staging. Only meaningful when the
     * lanes are live (KV tiering or disaggregation enabled).
     */
    bool stagedDispatch = false;

    /** True when any replica has a non-Mixed role. */
    bool disaggregated() const;

    /** @throws skipsim::FatalError on inconsistent specs. */
    void validate() const;

    /** Rate-sweep cardinality (1 when `rates` is empty). */
    std::size_t scenarioCount() const;

    /**
     * Expand sweep scenario @p index: rates collapse to one rate and
     * the seed becomes mixSeed(seed, index).
     * @throws skipsim::FatalError when index >= scenarioCount().
     */
    ClusterSpec scenarioAt(std::size_t index) const;

    /**
     * JSON round trip. Platforms serialize by catalog name (fromJson
     * also accepts inline platform objects); replica entries may
     * carry a "count" to stamp out identical replicas.
     */
    json::Value toJson() const;
    /** @throws skipsim::FatalError on malformed documents. */
    static ClusterSpec fromJson(const json::Value &doc);

    /** File round trip via src/json. */
    static ClusterSpec load(const std::string &path);
    void save(const std::string &path) const;
};

/** Per-replica outcome. */
struct ReplicaStats
{
    std::string platformName;

    /** Requests the router dispatched here (including re-routes). */
    std::size_t routed = 0;

    std::size_t completed = 0;

    /** Dispatches bounced off a full pending queue. */
    std::size_t rejected = 0;

    /** In-flight requests pulled away by fault detection. */
    std::size_t rerouted = 0;

    /** Fraction of the horizon spent executing iterations. */
    double utilization = 0.0;

    /** Mean active sequences per decode iteration (0 if none ran). */
    double meanActive = 0.0;

    /** Peak reserved KV-cache bytes. */
    double peakKvBytes = 0.0;

    bool crashed = false;

    /** @name KV-tiering / disaggregation extras (zero when off)
     *  @{ */
    std::size_t kvOffloads = 0;  ///< HBM -> host pages
    std::size_t kvFetches = 0;   ///< host -> HBM prefix fetches
    std::size_t kvEvictions = 0; ///< retained entries dropped
    std::size_t handoffs = 0;    ///< prefill -> decode KV handoffs
    double peakHostKvBytes = 0.0;
    double linkBusyNs = 0.0; ///< KV + staging + handoff lane time
    /** @} */
};

/** Per-tenant outcome (only populated for multi-tenant specs). */
struct TenantStats
{
    std::string name;

    std::size_t offered = 0;
    std::size_t completed = 0;

    /** Fraction of this tenant's offered requests meeting its SLOs. */
    double sloAttainment = 0.0;

    /** This tenant's SLO-meeting completions per simulated second. */
    double goodputRps = 0.0;

    double p99TtftNs = 0.0;
    double p99E2eNs = 0.0;
};

/**
 * Cluster-level KV-tiering / disaggregation outcome, reported only
 * when the spec enables tiering or replica roles ("kv" in the JSON).
 */
struct KvClusterStats
{
    bool enabled = false;

    std::size_t offloads = 0;
    std::size_t fetches = 0;
    std::size_t evictions = 0;
    std::size_t hitsHbm = 0;
    std::size_t hitsHost = 0;
    std::size_t misses = 0;
    std::size_t handoffs = 0;
    double offloadedBytes = 0.0;
    double fetchedBytes = 0.0;
    double handoffBytes = 0.0;
    double linkBusyNs = 0.0;

    /** Energy accounting over the horizon (extends the single-node
     *  analysis::estimateEnergy model to the fleet). */
    double cpuJoules = 0.0;
    double gpuJoules = 0.0;
    double joulesPerCompleted = 0.0;
};

/** Cluster-level outcome. */
struct ClusterResult
{
    /** Arrival-rate identity of the scenario (mean rate for
     *  non-Poisson traffic). */
    double arrivalRatePerSec = 0.0;

    /** Requests that arrived within the horizon. */
    std::size_t offered = 0;

    std::size_t completed = 0;

    /** Offered requests that never completed (stranded, backlogged). */
    std::size_t lost = 0;

    /** Requests re-dispatched after a fault was detected. */
    std::size_t rerouted = 0;

    double throughputRps = 0.0;

    /** TTFT: arrival -> first token of the finally-serving replica, ns. */
    double p50TtftNs = 0.0;
    double p95TtftNs = 0.0;
    double p99TtftNs = 0.0;

    /** End-to-end: arrival -> last generated token, ns. */
    double p50E2eNs = 0.0;
    double p95E2eNs = 0.0;
    double p99E2eNs = 0.0;

    /**
     * Fraction of offered requests that completed within both SLOs
     * (a lost request counts as a miss, so overload shows honestly).
     */
    double sloAttainment = 0.0;

    /** SLO-meeting completions per second of simulated time. */
    double goodputRps = 0.0;

    std::vector<ReplicaStats> replicas;

    /** Per-tenant breakdown (empty for single-tenant specs). */
    std::vector<TenantStats> tenants;

    /** KV-tiering breakdown (enabled=false for classic specs). */
    KvClusterStats kv;

    /** Deterministic report document (no host timings). */
    json::Value toJson() const;
};

/**
 * Shared per-platform iteration-cost models. Building an
 * IterationCostModel simulates the workload across a batch grid, so
 * sweeps build the cache once (serially) and share it across
 * scenarios; lookups after build() are const and thread-safe.
 */
class CostCache
{
  public:
    /** Build models for every distinct platform in @p spec (idempotent
     *  for a matching model/prompt; @throws skipsim::FatalError when
     *  reused across different model or prompt configurations). */
    void build(const ClusterSpec &spec);

    /** @throws skipsim::FatalError when @p platformName was not built. */
    const serving::IterationCostModel &
    get(const std::string &platformName) const;

  private:
    std::string _modelName;
    int _promptLen = 0;
    std::map<std::string, std::shared_ptr<serving::IterationCostModel>>
        _models;
};

/**
 * Simulate one cluster scenario. Builds a private CostCache; prefer
 * the cost-cache overload when running many scenarios.
 *
 * When @p spans is non-null the simulation records per-request
 * lifecycle spans into it through the real dispatch path: arrival,
 * routing decision (replica + policy reason), queue wait, prefill
 * admission wait, KV-tier fetch stalls, prefill, prefill->decode
 * handoff, per-iteration decode and completion (see obs::SpanLog).
 * Requests seal in completion-event order, so the span export honours
 * the same any---jobs byte-identity contract as the report.
 *
 * When @p obs is non-null the simulation records probes into it at the
 * collector's deterministic simulated-time boundaries: per-replica
 * cluster.queue_depth / cluster.batch_active / cluster.kv_bytes /
 * cluster.outstanding / cluster.rerouted samples, cluster-wide
 * windowed cluster.throughput_rps / cluster.ttft_ms plus
 * cluster.backlog and cluster.rerouted_total, one duration span per
 * completed iteration (track = replica index), instant markers for
 * fault injection/detection/heal, and end-of-run registry totals with
 * TTFT/E2E histograms. Probes never perturb the result; because
 * sampling instants are pure functions of the interval, the obs JSON
 * honours the same determinism contract as the report itself.
 *
 * When @p shardStats is non-null it receives the sharded engine's
 * synchronization counters (windows, cross-shard messages, lookahead)
 * for the run — diagnostics only, deliberately kept out of the result
 * so the report stays byte-identical at any ClusterSpec::shards.
 *
 * @throws skipsim::FatalError on invalid specs.
 */
ClusterResult simulateCluster(const ClusterSpec &spec,
                              obs::Collector *obs = nullptr,
                              obs::SpanLog *spans = nullptr,
                              core::ShardStats *shardStats = nullptr);

/** Simulate with a pre-built cost cache (see CostCache). */
ClusterResult simulateCluster(const ClusterSpec &spec,
                              const CostCache &costs,
                              obs::Collector *obs = nullptr,
                              obs::SpanLog *spans = nullptr,
                              core::ShardStats *shardStats = nullptr);

} // namespace skipsim::cluster

#endif // SKIPSIM_CLUSTER_CLUSTER_HH
