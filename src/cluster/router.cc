#include "cluster/router.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::cluster
{

const char *
routerPolicyName(RouterPolicy policy)
{
    switch (policy) {
    case RouterPolicy::RoundRobin:
        return "round-robin";
    case RouterPolicy::LeastOutstanding:
        return "least-outstanding";
    case RouterPolicy::WeightedThroughput:
        return "weighted";
    case RouterPolicy::SessionAffinity:
        return "affinity";
    }
    return "unknown";
}

RouterPolicy
routerPolicyByName(const std::string &name)
{
    for (RouterPolicy policy :
         {RouterPolicy::RoundRobin, RouterPolicy::LeastOutstanding,
          RouterPolicy::WeightedThroughput,
          RouterPolicy::SessionAffinity}) {
        if (name == routerPolicyName(policy))
            return policy;
    }
    fatal(strprintf("cluster: unknown router policy '%s' (expected "
                    "round-robin, least-outstanding, weighted or "
                    "affinity)",
                    name.c_str()));
}

std::vector<std::string>
routerPolicyNames()
{
    return {"round-robin", "least-outstanding", "weighted", "affinity"};
}

Router::Router(RouterPolicy policy, std::vector<double> weights)
    : _policy(policy), _weights(std::move(weights))
{
    if (_weights.empty())
        fatal("Router: need at least one replica");
    for (double w : _weights) {
        if (w <= 0.0)
            fatal("Router: replica weights must be positive");
    }
    _outstanding.assign(_weights.size(), 0);
    _down.assign(_weights.size(), false);
}

std::size_t
Router::npos()
{
    return std::numeric_limits<std::size_t>::max();
}

void
Router::setClasses(std::vector<unsigned> classes)
{
    if (!classes.empty() && classes.size() != _weights.size())
        fatal("Router: class mask count must match the replica count");
    _classes = std::move(classes);
}

bool
Router::eligible(std::size_t replica,
                 const std::vector<std::size_t> &exclude,
                 unsigned klass) const
{
    if (_down[replica])
        return false;
    if (klass != kAnyClass && !_classes.empty() &&
        (_classes[replica] & klass) == 0)
        return false;
    return std::find(exclude.begin(), exclude.end(), replica) ==
        exclude.end();
}

std::size_t
Router::leastLoaded(const std::vector<std::size_t> &exclude,
                    bool weighted, unsigned klass) const
{
    std::size_t best = npos();
    double best_load = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < _weights.size(); ++r) {
        if (!eligible(r, exclude, klass))
            continue;
        double load = static_cast<double>(_outstanding[r]);
        if (weighted)
            load /= _weights[r];
        if (load < best_load) {
            best_load = load;
            best = r;
        }
    }
    return best;
}

std::size_t
Router::pick(int session, const std::vector<std::size_t> &exclude,
             unsigned klass) const
{
    std::size_t n = _weights.size();
    switch (_policy) {
    case RouterPolicy::RoundRobin:
        for (std::size_t step = 0; step < n; ++step) {
            std::size_t r = (_rrCursor + step) % n;
            if (eligible(r, exclude, klass)) {
                _rrCursor = (r + 1) % n;
                return r;
            }
        }
        return npos();
    case RouterPolicy::LeastOutstanding:
        return leastLoaded(exclude, false, klass);
    case RouterPolicy::WeightedThroughput:
        return leastLoaded(exclude, true, klass);
    case RouterPolicy::SessionAffinity: {
        std::size_t home = static_cast<std::size_t>(session) % n;
        if (eligible(home, exclude, klass))
            return home;
        return leastLoaded(exclude, false, klass);
    }
    }
    return npos();
}

void
Router::onDispatch(std::size_t replica)
{
    ++_outstanding.at(replica);
}

void
Router::onSettled(std::size_t replica)
{
    std::size_t &count = _outstanding.at(replica);
    if (count == 0)
        fatal("Router: settled more requests than were dispatched");
    --count;
}

void
Router::markDown(std::size_t replica)
{
    _down.at(replica) = true;
}

void
Router::markUp(std::size_t replica)
{
    _down.at(replica) = false;
}

} // namespace skipsim::cluster
