/**
 * @file
 * Request router for the cluster simulator: pluggable policies that
 * pick which replica an arriving request is dispatched to, using only
 * what a real front-end load balancer could know — per-replica
 * outstanding counts it tracks itself, static capacity weights, and
 * health marks that appear one detection delay after a fault. The
 * router never peeks at replica-internal state, which is what makes
 * routing skew and detection-delay tail amplification reproducible.
 */

#ifndef SKIPSIM_CLUSTER_ROUTER_HH
#define SKIPSIM_CLUSTER_ROUTER_HH

#include <cstddef>
#include <string>
#include <vector>

namespace skipsim::cluster
{

/** Replica-selection policy. */
enum class RouterPolicy
{
    RoundRobin,         ///< cycle through healthy replicas in index order
    LeastOutstanding,   ///< fewest router-tracked in-flight requests
    WeightedThroughput, ///< least outstanding / decode-capacity weight
    SessionAffinity,    ///< session id pins a home replica, LOR fallback
};

/**
 * Dispatch-class bits for role-aware routing (disaggregated pools).
 * A replica serves the union of the bits in its class mask; pick()
 * with kAnyClass ignores classes entirely (the classic behavior).
 */
enum : unsigned
{
    kAnyClass = 0u,
    kPrefillClass = 1u,
    kDecodeClass = 2u,
};

/** @return canonical policy name ("round-robin", ...). */
const char *routerPolicyName(RouterPolicy policy);

/** @throws skipsim::FatalError for unknown policy names. */
RouterPolicy routerPolicyByName(const std::string &name);

/** All policy names in enum order (CLI/bench enumeration). */
std::vector<std::string> routerPolicyNames();

/**
 * The router's view of a replica fleet. Health and outstanding counts
 * are updated by the cluster simulator as it learns about completions
 * and (delayed) fault detections; pick() is a pure function of that
 * view plus the round-robin cursor, so routing is deterministic for a
 * given arrival sequence regardless of host thread count.
 */
class Router
{
  public:
    /**
     * @param policy replica-selection policy.
     * @param weights static per-replica capacity weights (decode
     *        tokens/s at nominal clock); must be positive. Only
     *        WeightedThroughput consults them.
     * @throws skipsim::FatalError on empty fleet or non-positive
     *         weights.
     */
    Router(RouterPolicy policy, std::vector<double> weights);

    std::size_t replicaCount() const { return _weights.size(); }
    RouterPolicy policy() const { return _policy; }

    /**
     * Role-aware dispatch classes: @p classes[r] is the bitmask of
     * dispatch classes replica r serves (kPrefillClass |
     * kDecodeClass). Empty (the default) means every replica serves
     * everything — classic co-located routing.
     */
    void setClasses(std::vector<unsigned> classes);

    /**
     * Choose a replica for a request from @p session. Replicas marked
     * down, replicas in @p exclude (admission-rejected during this
     * dispatch) and replicas whose class mask misses @p klass are
     * skipped; ties break toward the lowest index.
     * @return replica index, or npos() when no replica is eligible.
     */
    std::size_t pick(int session,
                     const std::vector<std::size_t> &exclude,
                     unsigned klass = kAnyClass) const;

    /** Sentinel returned by pick() when every replica is ineligible. */
    static std::size_t npos();

    /** @name Simulator feedback
     *  @{ */
    void onDispatch(std::size_t replica);
    /** A dispatched request completed or left the replica for good. */
    void onSettled(std::size_t replica);
    /** Fault detected: stop routing to @p replica. */
    void markDown(std::size_t replica);
    /** Partition healed: resume routing to @p replica. */
    void markUp(std::size_t replica);
    /** @} */

    bool isDown(std::size_t replica) const { return _down.at(replica); }
    std::size_t outstanding(std::size_t replica) const
    {
        return _outstanding.at(replica);
    }

  private:
    bool eligible(std::size_t replica,
                  const std::vector<std::size_t> &exclude,
                  unsigned klass) const;
    std::size_t leastLoaded(const std::vector<std::size_t> &exclude,
                            bool weighted, unsigned klass) const;

    RouterPolicy _policy;
    std::vector<double> _weights;
    std::vector<unsigned> _classes; ///< empty = no role filtering
    std::vector<std::size_t> _outstanding;
    std::vector<bool> _down;
    mutable std::size_t _rrCursor = 0;
};

} // namespace skipsim::cluster

#endif // SKIPSIM_CLUSTER_ROUTER_HH
