/**
 * @file
 * ClusterSpec JSON round trip. Platforms serialize by catalog name
 * (import also accepts inline hw platform objects); identical replicas
 * compress through a "count" field on import and re-expand to
 * individual entries, so a 64-replica fleet stays a 3-line spec.
 */

#include "cluster/cluster.hh"

#include "common/logging.hh"
#include "common/strutil.hh"
#include "hw/catalog.hh"
#include "hw/serde.hh"
#include "json/parser.hh"
#include "json/schema.hh"
#include "json/writer.hh"
#include "workload/model_config.hh"
#include "workload/serde.hh"

namespace skipsim::cluster
{

namespace
{

json::Value
faultToJson(const FaultSpec &fault)
{
    json::Object doc;
    doc.set("at-sec", fault.atSec);
    doc.set("replica", static_cast<unsigned long long>(fault.replica));
    doc.set("kind", faultKindName(fault.kind));
    if (fault.kind == FaultKind::Slowdown)
        doc.set("factor", fault.factor);
    if (fault.kind == FaultKind::Partition && fault.healSec >= 0.0)
        doc.set("heal-sec", fault.healSec);
    return json::Value(std::move(doc));
}

FaultSpec
faultFromJson(const json::Value &value)
{
    const json::Object &obj = value.asObject();
    FaultSpec fault;
    fault.atSec = obj.at("at-sec").asDouble();
    fault.replica = static_cast<std::size_t>(obj.at("replica").asInt());
    fault.kind = faultKindByName(obj.at("kind").asString());
    if (obj.has("factor"))
        fault.factor = obj.at("factor").asDouble();
    if (obj.has("heal-sec"))
        fault.healSec = obj.at("heal-sec").asDouble();
    return fault;
}

json::Value
replicaToJson(const ReplicaSpec &replica)
{
    json::Object doc;
    doc.set("platform", replica.platform.name);
    if (replica.role != ReplicaRole::Mixed)
        doc.set("role", replicaRoleName(replica.role));
    doc.set("max-active", replica.maxActive);
    if (replica.clock != 1.0)
        doc.set("clock", replica.clock);
    if (replica.maxQueue != 0)
        doc.set("max-queue", replica.maxQueue);
    return json::Value(std::move(doc));
}

/** One replica entry, possibly stamped out `count` times. */
void
replicasFromJson(const json::Value &value,
                 std::vector<ReplicaSpec> &out)
{
    const json::Object &obj = value.asObject();
    ReplicaSpec replica;
    const json::Value &platform = obj.at("platform");
    replica.platform = platform.isString()
        ? hw::platforms::byName(platform.asString())
        : hw::platformFromJson(platform);
    if (obj.has("role"))
        replica.role = replicaRoleByName(obj.at("role").asString());
    if (obj.has("max-active"))
        replica.maxActive =
            static_cast<int>(obj.at("max-active").asInt());
    if (obj.has("clock"))
        replica.clock = obj.at("clock").asDouble();
    if (obj.has("max-queue"))
        replica.maxQueue = static_cast<int>(obj.at("max-queue").asInt());
    long count =
        obj.has("count") ? obj.at("count").asInt() : 1;
    if (count <= 0)
        fatal("ClusterSpec: replica count must be positive");
    for (long i = 0; i < count; ++i)
        out.push_back(replica);
}

} // namespace

json::Value
ClusterSpec::toJson() const
{
    json::Object doc;
    json::stampSchemaVersion(doc);
    doc.set("model", model.name);
    json::Value::Array reps;
    for (const ReplicaSpec &replica : replicas)
        reps.push_back(replicaToJson(replica));
    doc.set("replicas", json::Value(std::move(reps)));
    doc.set("router", routerPolicyName(router));
    if (kvTier.enabled())
        doc.set("kv", kvTier.toJson());
    doc.set("rate", arrivalRatePerSec);
    if (traffic != nullptr)
        doc.set("traffic", traffic->toJson());
    if (!tenants.empty()) {
        json::Value::Array tiers;
        for (const TenantSpec &tenant : tenants) {
            json::Object entry;
            entry.set("name", tenant.name);
            entry.set("ttft-slo-ms", tenant.ttftSloMs);
            entry.set("e2e-slo-ms", tenant.e2eSloMs);
            tiers.push_back(json::Value(std::move(entry)));
        }
        doc.set("tenants", json::Value(std::move(tiers)));
    }
    if (!rates.empty()) {
        json::Value::Array axis;
        for (double rate : rates)
            axis.push_back(json::Value(rate));
        doc.set("rates", json::Value(std::move(axis)));
    }
    // "shards" and "shard-threads" are deliberately never emitted:
    // they are execution topology, not scenario identity, and reports
    // embedding the spec must stay byte-identical at any shard or
    // thread count.
    if (dispatchUs > 0.0)
        doc.set("dispatch-us", dispatchUs);
    if (stagedDispatch)
        doc.set("staged-dispatch", stagedDispatch);
    doc.set("horizon-sec", horizonSec);
    doc.set("prompt", promptLen);
    doc.set("gen-tokens", genTokens);
    doc.set("sessions", sessions);
    doc.set("detect-ms", detectDelaySec * 1e3);
    doc.set("ttft-slo-ms", ttftSloMs);
    doc.set("e2e-slo-ms", e2eSloMs);
    if (jitterFrac > 0.0)
        doc.set("jitter-frac", jitterFrac);
    doc.set("seed", static_cast<unsigned long long>(seed));
    if (!faults.empty()) {
        json::Value::Array list;
        for (const FaultSpec &fault : faults)
            list.push_back(faultToJson(fault));
        doc.set("faults", json::Value(std::move(list)));
    }
    return json::Value(std::move(doc));
}

ClusterSpec
ClusterSpec::fromJson(const json::Value &value)
{
    const json::Object &obj = value.asObject();
    json::checkSchemaVersion(obj, "ClusterSpec");
    ClusterSpec spec;
    if (obj.has("model")) {
        const json::Value &model_value = obj.at("model");
        spec.model = model_value.isString()
            ? workload::modelByName(model_value.asString())
            : workload::modelFromJson(model_value);
    } else {
        spec.model = workload::modelByName("GPT2");
    }
    if (!obj.has("replicas"))
        fatal("ClusterSpec: missing 'replicas'");
    for (const json::Value &entry : obj.at("replicas").asArray())
        replicasFromJson(entry, spec.replicas);
    if (obj.has("router"))
        spec.router = routerPolicyByName(obj.at("router").asString());
    if (obj.has("kv"))
        spec.kvTier = kv::TierSpec::fromJson(obj.at("kv"));
    if (obj.has("rate"))
        spec.arrivalRatePerSec = obj.at("rate").asDouble();
    if (obj.has("traffic"))
        spec.traffic = serving::arrivalProcessFromJson(obj.at("traffic"));
    if (obj.has("tenants")) {
        for (const json::Value &entry : obj.at("tenants").asArray()) {
            const json::Object &tier = entry.asObject();
            TenantSpec tenant;
            if (tier.has("name"))
                tenant.name = tier.at("name").asString();
            if (tier.has("ttft-slo-ms"))
                tenant.ttftSloMs = tier.at("ttft-slo-ms").asDouble();
            if (tier.has("e2e-slo-ms"))
                tenant.e2eSloMs = tier.at("e2e-slo-ms").asDouble();
            spec.tenants.push_back(std::move(tenant));
        }
    }
    if (obj.has("rates")) {
        for (const json::Value &rate : obj.at("rates").asArray())
            spec.rates.push_back(rate.asDouble());
    }
    if (obj.has("shards"))
        spec.shards = static_cast<int>(obj.at("shards").asInt());
    if (obj.has("shard-threads"))
        spec.shardThreads =
            static_cast<int>(obj.at("shard-threads").asInt());
    if (obj.has("dispatch-us"))
        spec.dispatchUs = obj.at("dispatch-us").asDouble();
    if (obj.has("staged-dispatch"))
        spec.stagedDispatch = obj.at("staged-dispatch").asBool();
    if (obj.has("horizon-sec"))
        spec.horizonSec = obj.at("horizon-sec").asDouble();
    if (obj.has("prompt"))
        spec.promptLen = static_cast<int>(obj.at("prompt").asInt());
    if (obj.has("gen-tokens"))
        spec.genTokens = static_cast<int>(obj.at("gen-tokens").asInt());
    if (obj.has("sessions"))
        spec.sessions = static_cast<int>(obj.at("sessions").asInt());
    if (obj.has("detect-ms"))
        spec.detectDelaySec = obj.at("detect-ms").asDouble() / 1e3;
    if (obj.has("ttft-slo-ms"))
        spec.ttftSloMs = obj.at("ttft-slo-ms").asDouble();
    if (obj.has("e2e-slo-ms"))
        spec.e2eSloMs = obj.at("e2e-slo-ms").asDouble();
    if (obj.has("jitter-frac"))
        spec.jitterFrac = obj.at("jitter-frac").asDouble();
    if (obj.has("seed")) {
        // Via double, not asInt: JSON numbers are doubles, and seeds
        // in the upper uint64 range (e.g. mixSeed output) would
        // saturate an int64 conversion and break the round trip.
        spec.seed =
            static_cast<std::uint64_t>(obj.at("seed").asDouble());
    }
    if (obj.has("faults")) {
        for (const json::Value &fault : obj.at("faults").asArray())
            spec.faults.push_back(faultFromJson(fault));
    }
    spec.validate();
    return spec;
}

ClusterSpec
ClusterSpec::load(const std::string &path)
{
    return fromJson(json::parseFile(path));
}

void
ClusterSpec::save(const std::string &path) const
{
    json::writeFile(path, toJson(), true);
}

} // namespace skipsim::cluster
