#include "cluster/shard_plan.hh"

#include <algorithm>
#include <limits>

#include "workload/memory.hh"

namespace skipsim::cluster
{

ShardPlan
ShardPlan::build(const ClusterSpec &spec)
{
    ShardPlan plan;
    std::size_t shards =
        spec.shards < 1 ? 1 : static_cast<std::size_t>(spec.shards);
    plan.shards = std::min(shards, spec.replicas.size());
    plan.homeShard.resize(spec.replicas.size());
    for (std::size_t r = 0; r < spec.replicas.size(); ++r)
        plan.homeShard[r] = r % plan.shards;
    if (spec.dispatchUs > 0.0) {
        plan.lookaheadNs = spec.dispatchUs * 1e3;
        if (spec.disaggregated() && spec.genTokens > 1) {
            // Handoffs post cross-shard at the lane transfer's end;
            // the window must not outrun the fastest link.
            double kv_bytes =
                workload::estimateMemory(spec.model, 1,
                                         spec.promptLen +
                                             spec.genTokens)
                    .kvCacheBytes;
            for (const ReplicaSpec &rep : spec.replicas)
                plan.lookaheadNs =
                    std::min(plan.lookaheadNs,
                             rep.platform.transferNs(kv_bytes));
        }
    }
    plan.safeCrossNs = std::numeric_limits<double>::infinity();
    if (spec.disaggregated() && spec.genTokens > 1) {
        // The prefill completion posts the handoff's transfer-done
        // event onto the router's shard no sooner than one sequence's
        // KV crossing the fastest link (chargeLane never finishes
        // early — FIFO lanes only push completions later).
        double kv_bytes =
            workload::estimateMemory(
                spec.model, 1, spec.promptLen + spec.genTokens)
                .kvCacheBytes;
        for (const ReplicaSpec &rep : spec.replicas)
            plan.safeCrossNs = std::min(
                plan.safeCrossNs, rep.platform.transferNs(kv_bytes));
    }
    return plan;
}

} // namespace skipsim::cluster
