/**
 * @file
 * Shard topology of one cluster run: which engine shard each replica's
 * events execute on, where the router lives, and the synchronization
 * lookahead the core::ShardedEngine windows advance by. The plan is a
 * pure function of the ClusterSpec — execution topology never feeds
 * back into results, which is what keeps the report byte-identical at
 * any shard count.
 *
 * Lookahead rule (docs/core.md): windows can only be wider than a
 * single timestamp when every cross-shard interaction carries a
 * modelled latency. The two cross-shard couplings are router dispatch
 * (spec.dispatchUs, the delivery event) and — on disaggregated fleets
 * — the prefill->decode KV handoff over the interconnect
 * (platform.transferNs of one sequence's KV). The lookahead is the
 * minimum of those, and zero whenever dispatch is inline
 * (dispatchUs == 0), because an inline hand-off can affect another
 * shard at the current instant.
 */

#ifndef SKIPSIM_CLUSTER_SHARD_PLAN_HH
#define SKIPSIM_CLUSTER_SHARD_PLAN_HH

#include <cstddef>
#include <vector>

#include "cluster/cluster.hh"

namespace skipsim::cluster
{

/** Replica-to-shard assignment plus the derived lookahead. */
struct ShardPlan
{
    /** Shard count, clamped into [1, replicas]. */
    std::size_t shards = 1;

    /** Shard whose queue runs router-side events (arrivals, routing
     *  decisions, fault detection). */
    std::size_t routerShard = 0;

    /** homeShard[r]: the shard replica r's engine is pinned to
     *  (round-robin). */
    std::vector<std::size_t> homeShard;

    /** Synchronization window width; see file comment. */
    double lookaheadNs = 0.0;

    /**
     * Minimum latency of a *parallel-safe* event's cross-shard (or
     * unsafe) postings — core::ShardedEngine::Options::safeCrossNs.
     * Replica events only ever post off their shard through the
     * prefill->decode KV handoff, so non-disaggregated fleets (and
     * single-token runs) report +infinity: their parallel windows are
     * bounded only by router-event heads and probe boundaries. Unlike
     * the lookahead this does not depend on dispatchUs — dispatch
     * latency gates *router* (unsafe, always sequential) postings.
     */
    double safeCrossNs = 0.0;

    /** Derive the plan from @p spec (see file comment). */
    static ShardPlan build(const ClusterSpec &spec);
};

} // namespace skipsim::cluster

#endif // SKIPSIM_CLUSTER_SHARD_PLAN_HH
