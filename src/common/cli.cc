#include "common/cli.hh"

#include <cstdlib>
#include <thread>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim
{

CliArgs::CliArgs(int argc, const char *const *argv)
{
    if (argc > 0)
        _program = argv[0];
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (!startsWith(arg, "--")) {
            _positional.push_back(arg);
            continue;
        }
        std::string body = arg.substr(2);
        std::size_t eq = body.find('=');
        if (eq != std::string::npos) {
            _options[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
            _options[body] = argv[i + 1];
            ++i;
        } else {
            _options[body] = "true";
        }
    }
}

bool
CliArgs::has(const std::string &key) const
{
    return _options.count(key) > 0;
}

std::string
CliArgs::getString(const std::string &key, const std::string &def) const
{
    auto it = _options.find(key);
    return it == _options.end() ? def : it->second;
}

long
CliArgs::getInt(const std::string &key, long def) const
{
    auto it = _options.find(key);
    if (it == _options.end())
        return def;
    char *end = nullptr;
    long v = std::strtol(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --" + key + " expects an integer, got '" +
              it->second + "'");
    return v;
}

double
CliArgs::getDouble(const std::string &key, double def) const
{
    auto it = _options.find(key);
    if (it == _options.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --" + key + " expects a number, got '" +
              it->second + "'");
    return v;
}

bool
CliArgs::getBool(const std::string &key, bool def) const
{
    auto it = _options.find(key);
    if (it == _options.end())
        return def;
    std::string v = toLower(it->second);
    return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::vector<long>
CliArgs::getIntList(const std::string &key, std::vector<long> def) const
{
    auto it = _options.find(key);
    if (it == _options.end())
        return def;
    std::vector<long> out;
    for (const auto &field : split(it->second, ',', false)) {
        char *end = nullptr;
        long v = std::strtol(field.c_str(), &end, 10);
        if (end == field.c_str() || *end != '\0')
            fatal("option --" + key + " expects integers, got '" +
                  field + "'");
        out.push_back(v);
    }
    return out;
}

RunFlags
parseRunFlags(const CliArgs &args, int defaultJobs,
              double defaultObsIntervalMs)
{
    RunFlags flags;
    flags.jobs = static_cast<int>(args.getInt("jobs", defaultJobs));
    flags.shards = static_cast<int>(args.getInt("shards", 0));
    if (args.has("shards") && flags.shards <= 0)
        fatal("option --shards expects a positive shard count, got " +
              args.getString("shards"));
    flags.shardThreads =
        static_cast<int>(args.getInt("shard-threads", 0));
    if (args.has("shard-threads")) {
        const unsigned hw = std::thread::hardware_concurrency();
        const int cap = hw == 0 ? 1 : static_cast<int>(hw);
        if (flags.shardThreads < 1)
            fatal("option --shard-threads expects a positive thread "
                  "count, got " +
                  args.getString("shard-threads"));
        if (flags.shardThreads > cap)
            fatal(strprintf("option --shard-threads expects at most "
                            "the machine's %d hardware thread(s), "
                            "got %d",
                            cap, flags.shardThreads));
    }
    flags.queue = args.getString("queue");
    if (!flags.queue.empty() && flags.queue != "heap" &&
        flags.queue != "calendar")
        fatal("option --queue expects 'heap' or 'calendar', got '" +
              flags.queue + "'");
    flags.seed = static_cast<std::uint64_t>(
        args.getDouble("seed", 42.0));
    flags.quick = args.getBool("quick");
    flags.csv = args.getBool("csv");
    flags.out = args.getString("out");
    flags.obsOut = args.getString("obs-out");
    flags.obsFormat = args.getString("obs-format", "json");
    if (flags.obsFormat != "json" && flags.obsFormat != "openmetrics")
        fatal("option --obs-format expects 'json' or 'openmetrics', "
              "got '" +
              flags.obsFormat + "'");
    flags.obsTrace = args.getString("obs-trace");
    flags.spanOut = args.getString("span-out");
    flags.harnessTrace = args.getString("harness-trace");
    flags.obsIntervalMs =
        args.getDouble("obs-interval-ms", defaultObsIntervalMs);
    if (flags.obsIntervalMs <= 0.0)
        fatal("option --obs-interval-ms expects a positive interval "
              "in milliseconds, got " +
              args.getString("obs-interval-ms"));
    return flags;
}

} // namespace skipsim
