/**
 * @file
 * Minimal command-line option parser for example programs and bench
 * binaries. Supports --flag, --key value, and --key=value forms.
 */

#ifndef SKIPSIM_COMMON_CLI_HH
#define SKIPSIM_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace skipsim
{

/**
 * Parsed command line. Options are stored as key -> value strings;
 * bare flags map to "true". Positional arguments are kept in order.
 */
class CliArgs
{
  public:
    /**
     * Parse argv. Anything starting with "--" is an option; a following
     * token that does not start with "--" becomes its value unless the
     * option used the --key=value form.
     */
    CliArgs(int argc, const char *const *argv);

    /** @return true when --key was present. */
    bool has(const std::string &key) const;

    /** String option with default. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Integer option with default. @throws FatalError on bad format. */
    long getInt(const std::string &key, long def) const;

    /** Floating-point option with default. @throws FatalError on bad format. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean flag: present (or "true"/"1") means true. */
    bool getBool(const std::string &key, bool def = false) const;

    /** Comma-separated integer list option, e.g. --batches 1,2,4,8. */
    std::vector<long> getIntList(const std::string &key,
                                 std::vector<long> def) const;

    /** Positional (non-option) arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return _positional; }

    /** Program name (argv[0]). */
    const std::string &program() const { return _program; }

  private:
    std::string _program;
    std::map<std::string, std::string> _options;
    std::vector<std::string> _positional;
};

/**
 * The run-harness flags every entry point shares — parallelism, seed,
 * report/observability outputs — parsed once by parseRunFlags() so
 * skipctl subcommands and bench binaries stop hand-rolling the same
 * getInt/getString calls (and drifting on defaults).
 */
struct RunFlags
{
    /** Worker threads (--jobs); semantics of 0 are caller-defined. */
    int jobs = 1;

    /** Engine shards per cluster run (--shards); 0 means "unset, use
     *  the spec's ClusterSpec::shards". Composes with --jobs: shards
     *  partition one run, the pool fans across runs. */
    int shards = 0;

    /** Worker threads advancing one cluster run's shards in parallel
     *  (--shard-threads); 0 means "unset, use the spec's
     *  ClusterSpec::shardThreads". Bounded by the machine's hardware
     *  concurrency at parse time. */
    int shardThreads = 0;

    /** Engine pending-set implementation (--queue): "heap" or
     *  "calendar"; empty means "unset, keep the process default". */
    std::string queue;

    std::uint64_t seed = 42;

    /** CI smoke mode (--quick): shrink grids/horizons, same code path. */
    bool quick = false;

    /** Machine-readable table output (--csv). */
    bool csv = false;

    /** Report JSON path (--out); empty means stdout/table only. */
    std::string out;

    /** Probe/metrics JSON path (--obs-out). */
    std::string obsOut;

    /** Metrics text format (--obs-format): "json" or "openmetrics". */
    std::string obsFormat = "json";

    /** Chrome-trace render of the probes (--obs-trace). */
    std::string obsTrace;

    /** Per-request lifecycle span trace path (--span-out). */
    std::string spanOut;

    /** Harness self-trace path (--harness-trace). */
    std::string harnessTrace;

    /** Probe sampling interval (--obs-interval-ms). */
    double obsIntervalMs = 100.0;

    /** Any observability sink requested? */
    bool wantObs() const { return !obsOut.empty() || !obsTrace.empty(); }

    bool wantOut() const { return !out.empty(); }
};

/**
 * Parse the shared flags out of @p args. Callers with different
 * conventions pass their defaults (e.g. ext_cluster_scaling's
 * jobs = 0 for "one per core", profile's 0.1 ms probe interval).
 */
RunFlags parseRunFlags(const CliArgs &args, int defaultJobs = 1,
                       double defaultObsIntervalMs = 100.0);

} // namespace skipsim

#endif // SKIPSIM_COMMON_CLI_HH
