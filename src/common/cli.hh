/**
 * @file
 * Minimal command-line option parser for example programs and bench
 * binaries. Supports --flag, --key value, and --key=value forms.
 */

#ifndef SKIPSIM_COMMON_CLI_HH
#define SKIPSIM_COMMON_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace skipsim
{

/**
 * Parsed command line. Options are stored as key -> value strings;
 * bare flags map to "true". Positional arguments are kept in order.
 */
class CliArgs
{
  public:
    /**
     * Parse argv. Anything starting with "--" is an option; a following
     * token that does not start with "--" becomes its value unless the
     * option used the --key=value form.
     */
    CliArgs(int argc, const char *const *argv);

    /** @return true when --key was present. */
    bool has(const std::string &key) const;

    /** String option with default. */
    std::string getString(const std::string &key,
                          const std::string &def = "") const;

    /** Integer option with default. @throws FatalError on bad format. */
    long getInt(const std::string &key, long def) const;

    /** Floating-point option with default. @throws FatalError on bad format. */
    double getDouble(const std::string &key, double def) const;

    /** Boolean flag: present (or "true"/"1") means true. */
    bool getBool(const std::string &key, bool def = false) const;

    /** Comma-separated integer list option, e.g. --batches 1,2,4,8. */
    std::vector<long> getIntList(const std::string &key,
                                 std::vector<long> def) const;

    /** Positional (non-option) arguments in order of appearance. */
    const std::vector<std::string> &positional() const { return _positional; }

    /** Program name (argv[0]). */
    const std::string &program() const { return _program; }

  private:
    std::string _program;
    std::map<std::string, std::string> _options;
    std::vector<std::string> _positional;
};

} // namespace skipsim

#endif // SKIPSIM_COMMON_CLI_HH
