#include "common/jitter.hh"

#include <algorithm>
#include <cmath>

namespace skipsim
{

double
jitterMultiplier(Rng &rng, double frac)
{
    double mult = rng.gaussian(1.0, frac);
    return std::clamp(mult, 1.0 - 4.0 * frac, 1.0 + 4.0 * frac);
}

std::int64_t
jitterNs(Rng &rng, double ns, double frac, bool enabled)
{
    if (ns <= 0.0)
        return 0;
    if (!enabled)
        return static_cast<std::int64_t>(std::llround(ns));
    return static_cast<std::int64_t>(
        std::llround(ns * jitterMultiplier(rng, frac)));
}

std::int64_t
jitterComponentsNs(Rng &rng, double ns, double frac, bool enabled,
                   std::size_t components)
{
    if (!enabled || components <= 1)
        return jitterNs(rng, ns, frac, enabled);
    // No non-positive short-circuit here: the multiplier draw happens
    // unconditionally, keeping the RNG stream position a function of
    // the launch sequence alone.
    double shrunk = frac / std::sqrt(static_cast<double>(components));
    return static_cast<std::int64_t>(
        std::llround(ns * jitterMultiplier(rng, shrunk)));
}

} // namespace skipsim
