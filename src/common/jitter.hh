/**
 * @file
 * Multiplicative timing-jitter helpers shared by the timing models
 * (previously copied into each duration path of the execution
 * simulator). The multiplier is a gaussian around 1 clamped to +-4
 * sigma, so a jittered duration can stretch or shrink but never go
 * negative or explode; fused-kernel durations use a sigma shrunk by
 * sqrt(components), since a fused duration is a sum of independent
 * component durations.
 */

#ifndef SKIPSIM_COMMON_JITTER_HH
#define SKIPSIM_COMMON_JITTER_HH

#include <cstdint>

#include "common/random.hh"

namespace skipsim
{

/** Gaussian multiplier around 1, clamped to [1 - 4f, 1 + 4f]. */
double jitterMultiplier(Rng &rng, double frac);

/**
 * @p ns jittered by a clamped gaussian multiplier and rounded to
 * integer ns. Non-positive durations return 0; @p enabled false (the
 * deterministic default) rounds without drawing from @p rng, so the
 * stream position is untouched.
 */
std::int64_t jitterNs(Rng &rng, double ns, double frac, bool enabled);

/**
 * jitterNs() for a duration summing @p components independent parts:
 * the relative noise shrinks with sqrt(components).
 */
std::int64_t jitterComponentsNs(Rng &rng, double ns, double frac,
                                bool enabled, std::size_t components);

} // namespace skipsim

#endif // SKIPSIM_COMMON_JITTER_HH
