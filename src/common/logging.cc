#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>

namespace skipsim
{

namespace
{

std::atomic<LogLevel> global_level{LogLevel::Inform};

std::mutex &
ioMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** Single guarded write per message so concurrent lines never shear. */
void
writeLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(ioMutex());
    std::fputs(line.c_str(), stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
inform(const std::string &msg)
{
    if (logLevel() >= LogLevel::Inform)
        writeLine("info: ", msg);
}

void
warn(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        writeLine("warn: ", msg);
}

namespace
{

std::mutex &
onceMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::set<std::string> &
onceKeys()
{
    static std::set<std::string> keys;
    return keys;
}

} // namespace

bool
warnOnce(const std::string &key, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(onceMutex());
        if (!onceKeys().insert(key).second)
            return false;
    }
    warn(msg);
    return true;
}

void
resetWarnOnce()
{
    std::lock_guard<std::mutex> lock(onceMutex());
    onceKeys().clear();
}

void
debug(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        writeLine("debug: ", msg);
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace skipsim
