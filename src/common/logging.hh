/**
 * @file
 * Status-message and error-reporting helpers, in the spirit of gem5's
 * logging.hh: inform() for status, warn() for suspicious-but-survivable
 * conditions, fatal() for user errors (throws FatalError), and panic()
 * for internal invariant violations (throws PanicError).
 *
 * Errors are reported as exceptions rather than process exits so that the
 * library is embeddable and the behaviours are unit-testable.
 *
 * Output is thread-safe: each message is formatted into one buffer and
 * written under a mutex, so lines from concurrent exec::Pool workers
 * never interleave mid-line.
 */

#ifndef SKIPSIM_COMMON_LOGGING_HH
#define SKIPSIM_COMMON_LOGGING_HH

#include <stdexcept>
#include <string>

namespace skipsim
{

/** Error caused by invalid user input or configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** Error caused by a violated internal invariant (a bug in this library). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Set the global verbosity threshold (default: Inform). */
void setLogLevel(LogLevel level);

/** @return the current global verbosity threshold. */
LogLevel logLevel();

/** Print an informational message to stderr when verbosity allows. */
void inform(const std::string &msg);

/** Print a warning message to stderr when verbosity allows. */
void warn(const std::string &msg);

/**
 * warn() the first time @p key is seen and stay silent on repeats, so
 * per-point conditions in thousand-point sweeps report once instead of
 * flooding stderr. Thread-safe.
 * @return true when the warning was emitted (first sighting).
 */
bool warnOnce(const std::string &key, const std::string &msg);

/** Forget all warnOnce() keys (test hook). */
void resetWarnOnce();

/** Print a debug message to stderr when verbosity allows. */
void debug(const std::string &msg);

/**
 * Report a user-caused error.
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation.
 * @throws PanicError always.
 */
[[noreturn]] void panic(const std::string &msg);

} // namespace skipsim

#endif // SKIPSIM_COMMON_LOGGING_HH
