#include "common/random.hh"

namespace skipsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t index)
{
    // Two finalizer rounds over the sum keep distinct (base, index)
    // pairs well separated even for small sequential indices.
    std::uint64_t x = base + 0x9e3779b97f4a7c15ULL * (index + 1);
    splitmix64(x);
    return splitmix64(x);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : _state)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    std::uint64_t t = _state[1] << 17;
    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    // Modulo bias is negligible for the small ranges used here.
    return n == 0 ? 0 : next() % n;
}

double
Rng::gaussian(double mean, double stddev)
{
    // Irwin-Hall: sum of 4 uniforms has mean 2 and variance 1/3.
    double sum = uniform() + uniform() + uniform() + uniform();
    double z = (sum - 2.0) * 1.7320508075688772; // / sqrt(1/3)
    return mean + stddev * z;
}

} // namespace skipsim
