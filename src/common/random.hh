/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64-seeded
 * xoshiro256**). Used for launch-latency jitter in the simulator so runs
 * are reproducible given a seed.
 */

#ifndef SKIPSIM_COMMON_RANDOM_HH
#define SKIPSIM_COMMON_RANDOM_HH

#include <cstdint>

namespace skipsim
{

/**
 * Derive an independent stream seed from a base seed and a stream
 * index (splitmix64 finalizer over the combined words). This is the
 * project-wide convention for decorrelating per-point PRNG streams in
 * sweeps: every grid point i uses mixSeed(baseSeed, i), so a sweep's
 * results are identical no matter which thread (or order) executes
 * each point.
 */
std::uint64_t mixSeed(std::uint64_t base, std::uint64_t index);

/**
 * xoshiro256** PRNG with splitmix64 seeding. Small, fast and
 * deterministic across platforms (unlike std::default_random_engine).
 */
class Rng
{
  public:
    /** Seed the generator; the same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t below(std::uint64_t n);

    /**
     * Approximately normal sample (Irwin-Hall of 4 uniforms, rescaled).
     * Bounded output makes it safe for jittering durations.
     */
    double gaussian(double mean, double stddev);

  private:
    std::uint64_t _state[4];
};

} // namespace skipsim

#endif // SKIPSIM_COMMON_RANDOM_HH
