#include "common/strutil.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdint>

namespace skipsim
{

std::string
vstrprintf(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return {};
    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
strprintf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vstrprintf(fmt, args);
    va_end(args);
    return out;
}

std::vector<std::string>
split(const std::string &s, char delim, bool keep_empty)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t pos = s.find(delim, start);
        if (pos == std::string::npos)
            pos = s.size();
        std::string field = s.substr(start, pos - start);
        if (keep_empty || !field.empty())
            out.push_back(std::move(field));
        start = pos + 1;
        if (pos == s.size())
            break;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
        s.compare(0, prefix.size(), prefix) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
        s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool
contains(const std::string &s, const std::string &needle)
{
    return s.find(needle) != std::string::npos;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

std::string
formatNs(double ns)
{
    double mag = std::abs(ns);
    if (mag < 1e3)
        return strprintf("%.1f ns", ns);
    if (mag < 1e6)
        return strprintf("%.2f us", ns / 1e3);
    if (mag < 1e9)
        return strprintf("%.3f ms", ns / 1e6);
    return strprintf("%.4f s", ns / 1e9);
}

std::string
formatBytes(double bytes)
{
    double mag = std::abs(bytes);
    if (mag < 1024.0)
        return strprintf("%.0f B", bytes);
    if (mag < 1024.0 * 1024.0)
        return strprintf("%.1f KiB", bytes / 1024.0);
    if (mag < 1024.0 * 1024.0 * 1024.0)
        return strprintf("%.1f MiB", bytes / (1024.0 * 1024.0));
    return strprintf("%.2f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
}

std::string
formatCount(std::uint64_t n)
{
    std::string digits = std::to_string(n);
    std::string out;
    int since_sep = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (since_sep == 3) {
            out.push_back(',');
            since_sep = 0;
        }
        out.push_back(*it);
        ++since_sep;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace skipsim
