/**
 * @file
 * Small string utilities shared across the library: printf-style
 * formatting into std::string, split/join/trim, predicates, and
 * human-readable number formatting for reports.
 */

#ifndef SKIPSIM_COMMON_STRUTIL_HH
#define SKIPSIM_COMMON_STRUTIL_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace skipsim
{

/**
 * Format a string printf-style.
 * @param fmt printf format string.
 * @return the formatted string.
 */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style counterpart of strprintf(). */
std::string vstrprintf(const char *fmt, va_list args);

/**
 * Split a string on a delimiter character.
 * @param s input string.
 * @param delim delimiter character.
 * @param keep_empty when false, empty fields are dropped.
 */
std::vector<std::string> split(const std::string &s, char delim,
                               bool keep_empty = true);

/** Join a list of strings with a separator. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** @return true when @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** @return true when @p s ends with @p suffix. */
bool endsWith(const std::string &s, const std::string &suffix);

/** @return true when @p s contains @p needle. */
bool contains(const std::string &s, const std::string &needle);

/** Lowercase an ASCII string. */
std::string toLower(const std::string &s);

/**
 * Render a nanosecond quantity with an auto-selected unit (ns/us/ms/s).
 * Used throughout bench output.
 */
std::string formatNs(double ns);

/** Render a byte quantity with an auto-selected unit (B/KiB/MiB/GiB). */
std::string formatBytes(double bytes);

/** Render a count with thousands separators, e.g. 1234567 -> "1,234,567". */
std::string formatCount(std::uint64_t n);

} // namespace skipsim

#endif // SKIPSIM_COMMON_STRUTIL_HH
