#include "common/table.hh"

#include <algorithm>
#include <cctype>

#include "common/logging.hh"

namespace skipsim
{

namespace
{

// A cell is "numeric-looking" if all characters are digits, separators,
// signs, decimal points or unit-ish suffix characters. Used for alignment.
bool
looksNumeric(const std::string &cell)
{
    if (cell.empty())
        return false;
    bool saw_digit = false;
    for (char c : cell) {
        if (std::isdigit(static_cast<unsigned char>(c))) {
            saw_digit = true;
        } else if (c != '.' && c != ',' && c != '-' && c != '+' &&
                   c != '%' && c != 'x' && c != 'e' && c != ' ' &&
                   c != 'n' && c != 'u' && c != 'm' && c != 's') {
            return false;
        }
    }
    return saw_digit;
}

std::string
escapeCsv(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char c : cell) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out += "\"";
    return out;
}

} // namespace

void
TextTable::setHeader(std::vector<std::string> header)
{
    _header = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (!_header.empty() && row.size() > _header.size())
        fatal("TextTable: row has more cells than the header");
    if (!_header.empty())
        row.resize(_header.size());
    _rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::size_t ncols = _header.size();
    for (const auto &row : _rows)
        ncols = std::max(ncols, row.size());

    std::vector<std::size_t> widths(ncols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    measure(_header);
    for (const auto &row : _rows)
        measure(row);

    std::string out;
    if (!_title.empty()) {
        out += _title;
        out += '\n';
    }

    auto emit = [&](const std::vector<std::string> &row, bool align_num) {
        for (std::size_t i = 0; i < ncols; ++i) {
            const std::string cell = i < row.size() ? row[i] : "";
            std::size_t pad = widths[i] - cell.size();
            if (i > 0)
                out += "  ";
            if (align_num && looksNumeric(cell)) {
                out.append(pad, ' ');
                out += cell;
            } else {
                out += cell;
                out.append(pad, ' ');
            }
        }
        // Trim trailing spaces for tidy output.
        while (!out.empty() && out.back() == ' ')
            out.pop_back();
        out += '\n';
    };

    if (!_header.empty()) {
        emit(_header, false);
        std::string sep;
        for (std::size_t i = 0; i < ncols; ++i) {
            if (i > 0)
                sep += "  ";
            sep.append(widths[i], '-');
        }
        out += sep;
        out += '\n';
    }
    for (const auto &row : _rows)
        emit(row, true);
    return out;
}

std::string
TextTable::renderCsv() const
{
    std::string out;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i > 0)
                out += ',';
            out += escapeCsv(row[i]);
        }
        out += '\n';
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &row : _rows)
        emit(row);
    return out;
}

} // namespace skipsim
