/**
 * @file
 * Plain-text table renderer used by bench binaries and report printers to
 * regenerate the paper's tables/figure series as aligned console output.
 */

#ifndef SKIPSIM_COMMON_TABLE_HH
#define SKIPSIM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace skipsim
{

/**
 * A simple text table: set a header once, append rows, then render.
 * Columns are sized to the widest cell; numeric-looking cells are
 * right-aligned, text cells left-aligned.
 */
class TextTable
{
  public:
    TextTable() = default;

    /** Construct with a title printed above the table. */
    explicit TextTable(std::string title)
        : _title(std::move(title))
    {}

    /** Set the header row. Resets column count expectations. */
    void setHeader(std::vector<std::string> header);

    /**
     * Append a data row.
     * Rows shorter than the header are padded with empty cells; rows
     * longer than the header raise FatalError.
     */
    void addRow(std::vector<std::string> row);

    /** Number of data rows added so far. */
    std::size_t numRows() const { return _rows.size(); }

    /** Render the table (title, header, separator, rows). */
    std::string render() const;

    /** Render as comma-separated values (header + rows, no title). */
    std::string renderCsv() const;

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace skipsim

#endif // SKIPSIM_COMMON_TABLE_HH
