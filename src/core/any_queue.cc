#include "core/any_queue.hh"

#include "common/logging.hh"

namespace skipsim::core
{

namespace
{
QueueKind g_defaultKind = QueueKind::Heap;
} // namespace

QueueKind
defaultQueueKind()
{
    return g_defaultKind;
}

void
setDefaultQueueKind(QueueKind kind)
{
    g_defaultKind = kind;
}

QueueKind
queueKindFromName(const std::string &name)
{
    if (name == "heap")
        return QueueKind::Heap;
    if (name == "calendar")
        return QueueKind::Calendar;
    fatal("unknown event-queue kind '" + name +
          "' (expected 'heap' or 'calendar')");
}

} // namespace skipsim::core
