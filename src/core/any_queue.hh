/**
 * @file
 * Queue-kind selection for the engines: the binary heap
 * (core::EventQueue) or the calendar queue (core::CalendarQueue)
 * behind one concrete wrapper. Both structures implement the same
 * (time, priority, seq) total order, so the choice is invisible in
 * simulation output — `--queue calendar` is a pure pending-set-
 * implementation switch, locked by the randomized differential oracle
 * and the datacenter bench's byte-compare across kinds.
 *
 * AnyQueue dispatches on a per-instance kind with an ordinary branch
 * rather than virtual calls: the branch is perfectly predicted in the
 * run loop and keeps both implementations inlineable, which matters on
 * the hottest path in the project.
 */

#ifndef SKIPSIM_CORE_ANY_QUEUE_HH
#define SKIPSIM_CORE_ANY_QUEUE_HH

#include <string>

#include "core/calendar_queue.hh"
#include "core/event_queue.hh"

namespace skipsim::core
{

/** Pending-event-set implementations selectable at engine build. */
enum class QueueKind
{
    Heap,    ///< binary min-heap (core::EventQueue)
    Calendar ///< calendar queue (core::CalendarQueue)
};

/** Process-wide default used by engines constructed without an
 *  explicit kind (the CLI's --queue flag sets it once at startup;
 *  not thread-safe against concurrently constructing engines). */
QueueKind defaultQueueKind();
void setDefaultQueueKind(QueueKind kind);

/** @return the kind named by @p name ("heap" or "calendar").
 *  @throws FatalError on anything else, naming the valid values. */
QueueKind queueKindFromName(const std::string &name);

/** One pending-event set of the selected kind. */
class AnyQueue
{
  public:
    explicit AnyQueue(QueueKind kind = defaultQueueKind())
        : _kind(kind)
    {
    }

    QueueKind kind() const { return _kind; }

    void
    schedule(double timeNs, int priority, EventFn fn)
    {
        if (_kind == QueueKind::Heap)
            _heap.schedule(timeNs, priority, std::move(fn));
        else
            _calendar.schedule(timeNs, priority, std::move(fn));
    }

    void
    push(Event ev)
    {
        if (_kind == QueueKind::Heap)
            _heap.push(std::move(ev));
        else
            _calendar.push(std::move(ev));
    }

    bool
    empty() const
    {
        return _kind == QueueKind::Heap ? _heap.empty()
                                        : _calendar.empty();
    }

    std::size_t
    size() const
    {
        return _kind == QueueKind::Heap ? _heap.size()
                                        : _calendar.size();
    }

    double
    nextTimeNs() const
    {
        return _kind == QueueKind::Heap ? _heap.nextTimeNs()
                                        : _calendar.nextTimeNs();
    }

    int
    nextPriority() const
    {
        return _kind == QueueKind::Heap ? _heap.nextPriority()
                                        : _calendar.nextPriority();
    }

    const Event &
    peek() const
    {
        return _kind == QueueKind::Heap ? _heap.peek()
                                        : _calendar.peek();
    }

    Event
    pop()
    {
        return _kind == QueueKind::Heap ? _heap.pop()
                                        : _calendar.pop();
    }

    void
    clear()
    {
        if (_kind == QueueKind::Heap)
            _heap.clear();
        else
            _calendar.clear();
    }

  private:
    QueueKind _kind;
    EventQueue _heap;
    CalendarQueue _calendar;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_ANY_QUEUE_HH
