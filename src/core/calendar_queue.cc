#include "core/calendar_queue.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.hh"

namespace skipsim::core
{

namespace
{

constexpr std::size_t kInitialBuckets = 16;

/** @return true when @p a executes before @p b (strict). */
bool
before(const Event &a, const Event &b)
{
    if (a.timeNs != b.timeNs)
        return a.timeNs < b.timeNs;
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.seq < b.seq;
}

} // namespace

CalendarQueue::CalendarQueue()
{
    _buckets.resize(kInitialBuckets);
    _mask = kInitialBuckets - 1;
}

std::size_t
CalendarQueue::bucketOf(double timeNs) const
{
    // Negative times floor toward -inf so adjacent days stay adjacent.
    double day = std::floor(timeNs / _widthNs);
    // Large |day| wraps via the unsigned cast; only the low bits
    // matter for the ring index.
    return static_cast<std::size_t>(static_cast<std::int64_t>(day)) &
        _mask;
}

void
CalendarQueue::insertSorted(std::vector<Event> &bucket, Event ev)
{
    // Descending order: the bucket minimum lives at back() so pop is
    // an O(1) pop_back. Linear insertion is fine — the width estimate
    // keeps buckets near one event per day, so the scan is short.
    auto it = bucket.end();
    while (it != bucket.begin() && before(*(it - 1), ev))
        --it;
    bucket.insert(it, std::move(ev));
}

void
CalendarQueue::schedule(double timeNs, int priority, EventFn fn)
{
    Event ev;
    ev.timeNs = timeNs;
    ev.priority = priority;
    ev.seq = _nextSeq++;
    ev.fn = std::move(fn);
    push(std::move(ev));
}

void
CalendarQueue::push(Event ev)
{
    if (std::isnan(ev.timeNs))
        panic("core::CalendarQueue: NaN event time");
    std::size_t b = bucketOf(ev.timeNs);
    // Keep the min cache coherent: a new global minimum lands at the
    // back of its bucket, so the cache can follow it for free.
    if (_minValid && before(ev, _buckets[_minBucket].back()))
        _minBucket = b;
    insertSorted(_buckets[b], std::move(ev));
    ++_size;
    if (_size > 2 * _buckets.size())
        rebuild(_buckets.size() * 2);
}

void
CalendarQueue::directScan() const
{
    const Event *best = nullptr;
    std::size_t best_bucket = 0;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i].empty())
            continue;
        const Event &cand = _buckets[i].back();
        if (best == nullptr || before(cand, *best)) {
            best = &cand;
            best_bucket = i;
        }
    }
    _minBucket = best_bucket;
    _minValid = true;
}

void
CalendarQueue::findMin() const
{
    if (_minValid)
        return;
    if (_size == 0)
        panic("core::CalendarQueue: scan on empty queue");
    // Before the first pop there is no day cursor yet: direct scan.
    if (!std::isfinite(_lastNs)) {
        directScan();
        return;
    }
    // Walk the calendar day by day from the last pop's day. The first
    // bucket whose minimum falls inside its current day holds the
    // global minimum: earlier walk positions cover earlier days, and
    // an event of an earlier day in a later bucket would have to
    // predate the cursor (handled by the direct-scan fallback).
    std::int64_t d0 = static_cast<std::int64_t>(
        std::floor(_lastNs / _widthNs));
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        std::int64_t day = d0 + static_cast<std::int64_t>(i);
        std::size_t b = static_cast<std::size_t>(day) & _mask;
        const std::vector<Event> &bucket = _buckets[b];
        if (!bucket.empty()) {
            const Event &cand = bucket.back();
            // Same floor arithmetic as bucketOf: comparing against
            // day boundaries computed by multiplication instead would
            // disagree with the mapping near the boundary (floating
            // point), skipping the minimum inside its own bucket.
            std::int64_t cand_day = static_cast<std::int64_t>(
                std::floor(cand.timeNs / _widthNs));
            if (cand_day < d0) {
                // An event behind the cursor (posted into the past —
                // the engine panics on it later, but order must stay
                // exact until then): the walk invariant is broken, so
                // fall back to the full scan.
                directScan();
                return;
            }
            if (cand_day == day) {
                _minBucket = b;
                _minValid = true;
                return;
            }
        }
    }
    // A full lap without a same-year hit: everything pending is at
    // least a calendar-year ahead. One direct scan jumps the cursor.
    directScan();
}

const Event &
CalendarQueue::peek() const
{
    if (_size == 0)
        panic("core::CalendarQueue: peek on empty queue");
    findMin();
    return _buckets[_minBucket].back();
}

double
CalendarQueue::nextTimeNs() const
{
    if (_size == 0)
        panic("core::CalendarQueue: nextTimeNs on empty queue");
    return peek().timeNs;
}

int
CalendarQueue::nextPriority() const
{
    if (_size == 0)
        panic("core::CalendarQueue: nextPriority on empty queue");
    return peek().priority;
}

Event
CalendarQueue::pop()
{
    if (_size == 0)
        panic("core::CalendarQueue: pop from empty queue");
    findMin();
    std::vector<Event> &bucket = _buckets[_minBucket];
    Event ev = std::move(bucket.back());
    bucket.pop_back();
    --_size;
    _minValid = false;
    _lastNs = ev.timeNs;
    if (_buckets.size() > kInitialBuckets &&
        _size < _buckets.size() / 4)
        rebuild(_buckets.size() / 2);
    return ev;
}

void
CalendarQueue::clear()
{
    for (auto &bucket : _buckets)
        bucket.clear();
    _size = 0;
    _minValid = false;
    _lastNs = -std::numeric_limits<double>::infinity();
}

void
CalendarQueue::rebuild(std::size_t buckets)
{
    std::vector<Event> all;
    all.reserve(_size);
    for (auto &bucket : _buckets) {
        for (Event &ev : bucket)
            all.push_back(std::move(ev));
        bucket.clear();
    }

    // Width estimate: spread the population's time span over the
    // population so the head region averages ~1 event per day.
    // Degenerate spans (all events at one instant) keep the previous
    // width.
    if (all.size() > 1) {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (const Event &ev : all) {
            lo = std::min(lo, ev.timeNs);
            hi = std::max(hi, ev.timeNs);
        }
        double span = hi - lo;
        if (span > 0.0)
            _widthNs = span / static_cast<double>(all.size());
    }

    _buckets.assign(buckets, {});
    _mask = buckets - 1;
    _minValid = false;
    ++_resizes;
    for (Event &ev : all) {
        std::size_t b = bucketOf(ev.timeNs);
        insertSorted(_buckets[b], std::move(ev));
    }
}

} // namespace skipsim::core
