/**
 * @file
 * Calendar queue (Brown 1988): an alternative pending-event set to the
 * binary heap in core::EventQueue. Time is divided into fixed-width
 * "days" mapped onto a power-of-two ring of buckets; an event lands in
 * the bucket of its day, each bucket is kept sorted, and pop walks the
 * calendar day by day. For the near-uniform event-time distributions a
 * serving simulation produces, enqueue and dequeue are O(1) amortized
 * against the heap's O(log n).
 *
 * Order contract: identical to EventQueue — the project-wide
 * (time, priority, seq) total order, where `seq` is the push serial.
 * The randomized differential oracle in tests/test_core.cpp drives
 * both structures with colliding timestamps and asserts byte-equal pop
 * sequences; the datacenter bench byte-compares full cluster reports
 * across queue kinds.
 */

#ifndef SKIPSIM_CORE_CALENDAR_QUEUE_HH
#define SKIPSIM_CORE_CALENDAR_QUEUE_HH

#include <cstdint>
#include <limits>
#include <vector>

#include "core/event_queue.hh"

namespace skipsim::core
{

/** Calendar of sorted day-buckets ordered by (timeNs, priority, seq). */
class CalendarQueue
{
  public:
    CalendarQueue();

    /** Schedule @p fn at @p timeNs, stamping the push serial. */
    void schedule(double timeNs, int priority, EventFn fn);

    /** Insert a fully-formed event, keeping its pre-assigned seq
     *  (same contract as EventQueue::push). */
    void push(Event ev);

    bool empty() const { return _size == 0; }
    std::size_t size() const { return _size; }

    /** Timestamp of the next event. @throws PanicError when empty. */
    double nextTimeNs() const;

    /** Priority of the next event. @throws PanicError when empty. */
    int nextPriority() const;

    /** The next event without removing it. @throws PanicError when
     *  empty. The reference is invalidated by any mutation. */
    const Event &peek() const;

    /** Remove and return the next event under (time, priority, seq). */
    Event pop();

    /** Drop every scheduled event (the push serial keeps counting). */
    void clear();

    /** Bucket-structure rebuilds so far (test hook). */
    std::size_t resizes() const { return _resizes; }

  private:
    /** Bucket index of @p timeNs under the current width. */
    std::size_t bucketOf(double timeNs) const;

    /** Locate the global minimum and cache its bucket; requires a
     *  non-empty calendar. */
    void findMin() const;

    /** Full-ring scan fallback of findMin (first pop, far-future
     *  jumps, past-posted events). */
    void directScan() const;

    /** Rebuild with @p buckets buckets and a width estimated from the
     *  current population. */
    void rebuild(std::size_t buckets);

    void insertSorted(std::vector<Event> &bucket, Event ev);

    /** Buckets sorted descending, so bucket.back() is its minimum. */
    std::vector<std::vector<Event>> _buckets;
    std::size_t _mask = 0;
    double _widthNs = 1.0;
    std::size_t _size = 0;
    std::uint64_t _nextSeq = 0;
    std::size_t _resizes = 0;

    /** Day cursor: timestamp of the most recent pop (-inf before the
     *  first one). Pops are monotone in a discrete-event run, so the
     *  calendar walk can start at this day. */
    double _lastNs = -std::numeric_limits<double>::infinity();

    /** Cached bucket holding the global minimum (lazy; peek() fills
     *  it, push() keeps it coherent, pop() invalidates it). */
    mutable bool _minValid = false;
    mutable std::size_t _minBucket = 0;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_CALENDAR_QUEUE_HH
