/**
 * @file
 * Simulated-time clock. One Clock is the single source of "now" for an
 * engine; it only moves forward, and it moves only when the engine (or
 * a synchronous runner like sim::Runner's CPU cursor) advances it.
 * Time is a double in nanoseconds: integer-valued ns stay exact up to
 * 2^53 (~104 simulated days), so engines that think in integer ns
 * (the execution simulator) lose nothing, while engines that think in
 * fractional ns (the serving/cluster cost models) keep their exact
 * pre-core arithmetic.
 */

#ifndef SKIPSIM_CORE_CLOCK_HH
#define SKIPSIM_CORE_CLOCK_HH

#include "common/logging.hh"

namespace skipsim::core
{

/** Monotone simulated-time cursor, ns. */
class Clock
{
  public:
    explicit Clock(double startNs = 0.0) : _nowNs(startNs) {}

    double nowNs() const { return _nowNs; }

    /**
     * Move to @p tNs (>= now).
     * @throws skipsim::PanicError on time regression — an engine bug.
     */
    void
    advanceTo(double tNs)
    {
        if (tNs < _nowNs)
            panic("core::Clock: time regression");
        _nowNs = tNs;
    }

    /** Move forward by @p durNs (>= 0). */
    void
    advanceBy(double durNs)
    {
        if (durNs < 0.0)
            panic("core::Clock: negative advance");
        _nowNs += durNs;
    }

  private:
    double _nowNs = 0.0;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_CLOCK_HH
