#include "core/engine.hh"

#include <utility>

namespace skipsim::core
{

bool
Engine::step()
{
    if (_queue.empty())
        return false;
    Event ev = _queue.pop();
    if (_beforeEvent)
        _beforeEvent(ev.timeNs);
    _clock.advanceTo(ev.timeNs);
    ++_processed;
    if (ev.fn)
        ev.fn(ev.timeNs);
    return true;
}

std::size_t
Engine::run()
{
    std::size_t n = 0;
    while (step())
        ++n;
    return n;
}

std::size_t
Engine::runUntil(double tNs)
{
    std::size_t n = 0;
    while (!_queue.empty() && _queue.nextTimeNs() <= tNs && step())
        ++n;
    return n;
}

} // namespace skipsim::core
