/**
 * @file
 * Discrete-event engine: one Clock plus one EventQueue plus the run
 * loop every simulation path shares (sim GPU stream, dynamic batcher,
 * continuous batching, cluster). The loop pops events in
 * (time, priority, seq) order, invokes the before-event hook (probe
 * samplers flush deterministic boundaries here, so a boundary sample
 * always sees the state *as of* the boundary, never a partially
 * applied event — the sample-then-update contract), advances the
 * clock, and runs the handler. Handlers schedule follow-up events
 * through the same engine; determinism follows from the queue's total
 * order and from drawing randomness out of core::RngStreams.
 */

#ifndef SKIPSIM_CORE_ENGINE_HH
#define SKIPSIM_CORE_ENGINE_HH

#include <cstdint>

#include "core/any_queue.hh"
#include "core/clock.hh"
#include "core/event_queue.hh"

namespace skipsim::core
{

/**
 * Scheduling surface shared by Engine and ShardedEngine shards: where
 * a Process posts its follow-up events. Processes hold a Scheduler&
 * rather than an Engine&, so the same actor code runs unchanged inside
 * a single-queue engine or pinned to one shard of a partitioned run —
 * the scheduler decides which queue (and, for shards, which mailbox)
 * the event lands in.
 */
class Scheduler
{
  public:
    Scheduler() = default;
    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;
    virtual ~Scheduler() = default;

    virtual double nowNs() const = 0;

    /**
     * Schedule @p fn at absolute time @p tNs (>= now; the queue would
     * regress the clock otherwise, which panics at pop time).
     */
    virtual void at(double tNs, int priority, EventFn fn) = 0;

    /** Schedule @p fn @p delayNs after now. */
    void
    after(double delayNs, int priority, EventFn fn)
    {
        at(nowNs() + delayNs, priority, std::move(fn));
    }
};

/** Clock + queue + run loop; see file comment. */
class Engine final : public Scheduler
{
  public:
    /** Pending set of the process-wide default queue kind. */
    Engine() = default;

    /** Pending set of an explicit kind (e.g. QueueKind::Calendar). */
    explicit Engine(QueueKind kind) : _queue(kind) {}

    double nowNs() const override { return _clock.nowNs(); }
    const Clock &clock() const { return _clock; }

    void
    at(double tNs, int priority, EventFn fn) override
    {
        _queue.schedule(tNs, priority, std::move(fn));
    }

    /**
     * Install the pre-event hook: invoked with the next event's
     * timestamp before the clock advances and the handler runs.
     * Probe collectors sample their interval boundaries here.
     */
    void
    onBeforeEvent(EventFn hook)
    {
        _beforeEvent = std::move(hook);
    }

    /** Run until the queue drains. @return events processed. */
    std::size_t run();

    /**
     * Run events with time <= @p tNs, then stop (remaining events stay
     * queued). @return events processed.
     */
    std::size_t runUntil(double tNs);

    bool idle() const { return _queue.empty(); }
    std::size_t pendingEvents() const { return _queue.size(); }

    /** Events processed across all run()/runUntil() calls. */
    std::uint64_t processed() const { return _processed; }

  private:
    bool step();

    Clock _clock;
    AnyQueue _queue;
    EventFn _beforeEvent;
    std::uint64_t _processed = 0;
};

/**
 * Lightweight actor base: a Process owns a slice of simulation state
 * and schedules its own follow-up events on the shared engine. The
 * base class only carries the engine reference and scheduling sugar —
 * composition is by convention (handlers are plain member-capturing
 * callbacks), not by virtual dispatch, so porting an existing loop
 * costs nothing but moving its state into a class.
 */
class Process
{
  public:
    explicit Process(Scheduler &scheduler) : _scheduler(scheduler) {}
    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

  protected:
    ~Process() = default;

    Scheduler &scheduler() { return _scheduler; }
    const Scheduler &scheduler() const { return _scheduler; }
    double nowNs() const { return _scheduler.nowNs(); }

    void
    at(double tNs, int priority, EventFn fn)
    {
        _scheduler.at(tNs, priority, std::move(fn));
    }

    void
    after(double delayNs, int priority, EventFn fn)
    {
        _scheduler.after(delayNs, priority, std::move(fn));
    }

  private:
    Scheduler &_scheduler;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_ENGINE_HH
