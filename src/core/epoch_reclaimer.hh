/**
 * @file
 * Epoch-based reclamation for lock-free structures. A retired object
 * (e.g. a work-stealing deque's outgrown ring buffer, which a thief
 * may still be reading after the owner swapped in a larger one) is
 * tagged with the global epoch at retirement and freed only once every
 * registered participant has been observed in a later epoch — at that
 * point no thread can still hold a reference obtained under the old
 * epoch, because references are only taken inside pin()/unpin()
 * critical sections and a pinned thread blocks the epoch from
 * advancing past it.
 *
 * The scheme is the classic three-epoch design: participants announce
 * the global epoch (with an "active" bit) on entering a critical
 * section; tryAdvance() bumps the global epoch when every active
 * participant has caught up, and retirements from two epochs ago are
 * then provably unreachable. Memory orders: the announcement is an
 * acq_rel exchange so it both publishes the pin before any shared-
 * structure loads and orders prior critical sections; unpin is a
 * release store.
 */

#ifndef SKIPSIM_CORE_EPOCH_RECLAIMER_HH
#define SKIPSIM_CORE_EPOCH_RECLAIMER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"

namespace skipsim::core
{

/**
 * One reclamation domain with a fixed set of participant slots.
 * Threads claim a slot up front (registerParticipant), pin around
 * reads of the protected structure, and retire garbage from anywhere;
 * retired objects are freed inside later retire()/drain() calls once
 * the epoch has safely advanced twice.
 */
class EpochReclaimer
{
  public:
    /** @param participants max concurrent threads (slots).
     *  @throws PanicError on zero. */
    explicit EpochReclaimer(std::size_t participants)
        : _slots(participants)
    {
        if (participants == 0)
            panic("core::EpochReclaimer: need >= 1 participant");
    }

    EpochReclaimer(const EpochReclaimer &) = delete;
    EpochReclaimer &operator=(const EpochReclaimer &) = delete;

    ~EpochReclaimer()
    {
        // All participants must be unpinned by now; everything
        // outstanding is reclaimable.
        for (Bucket &bucket : _buckets)
            for (Retired &r : bucket.items)
                r.deleter();
    }

    std::size_t participants() const { return _slots.size(); }

    /** RAII pin: holds slot @p slot in the current epoch. */
    class Guard
    {
      public:
        Guard(EpochReclaimer &domain, std::size_t slot)
            : _domain(&domain), _slot(slot)
        {
            _domain->pin(_slot);
        }
        ~Guard()
        {
            if (_domain)
                _domain->unpin(_slot);
        }
        Guard(const Guard &) = delete;
        Guard &operator=(const Guard &) = delete;

      private:
        EpochReclaimer *_domain;
        std::size_t _slot;
    };

    /** Enter a critical section on slot @p slot. */
    void
    pin(std::size_t slot)
    {
        std::uint64_t epoch =
            _globalEpoch.load(std::memory_order_acquire);
        // acq_rel: publishes the pin before any protected loads and
        // keeps a previous unpin from sinking below it.
        _slots[slot].state.exchange(epoch * 2 + 1,
                                    std::memory_order_acq_rel);
    }

    /** Leave the critical section on slot @p slot. */
    void
    unpin(std::size_t slot)
    {
        std::uint64_t epoch =
            _slots[slot].state.load(std::memory_order_relaxed) / 2;
        _slots[slot].state.store(epoch * 2,
                                 std::memory_order_release);
    }

    /**
     * Retire @p deleter 's object under the current epoch. Called by
     * the owner thread of the structure (possibly while pinned); the
     * deleter runs later, never inside this call's critical path for
     * the same object.
     */
    void
    retire(std::function<void()> deleter)
    {
        std::uint64_t epoch =
            _globalEpoch.load(std::memory_order_acquire);
        {
            std::lock_guard<SpinLock> lock(_retireLock);
            _buckets[epoch % 3].items.push_back(
                Retired{epoch, std::move(deleter)});
            ++_retiredCount;
        }
        tryAdvance();
    }

    /**
     * Attempt one epoch advance and free everything from two epochs
     * ago. Cheap no-op while any participant is still pinned in the
     * previous epoch.
     */
    void
    tryAdvance()
    {
        std::uint64_t epoch =
            _globalEpoch.load(std::memory_order_acquire);
        for (Slot &slot : _slots) {
            std::uint64_t s =
                slot.state.load(std::memory_order_acquire);
            if ((s & 1) != 0 && s / 2 != epoch)
                return; // pinned in an older epoch: not yet safe
        }
        if (!_globalEpoch.compare_exchange_strong(
                epoch, epoch + 1, std::memory_order_acq_rel))
            return; // someone else advanced; they will free
        // Everything retired in epoch-1 (now two behind the bucket
        // that epoch+1 retires into) is unreachable: free it.
        std::vector<Retired> dead;
        {
            std::lock_guard<SpinLock> lock(_retireLock);
            Bucket &bucket = _buckets[(epoch + 2) % 3];
            dead.swap(bucket.items);
            _retiredCount -= dead.size();
            _freedCount += dead.size();
        }
        for (Retired &r : dead)
            r.deleter();
    }

    /** Drive advancement until nothing reclaimable remains (test and
     *  shutdown hook; requires all participants unpinned). */
    void
    drain()
    {
        for (int i = 0; i < 3; ++i)
            tryAdvance();
    }

    /** Objects retired but not yet freed (approximate under load). */
    std::size_t
    retiredCount() const
    {
        std::lock_guard<SpinLock> lock(_retireLock);
        return _retiredCount;
    }

    /** Objects freed so far (approximate under load). */
    std::size_t
    freedCount() const
    {
        std::lock_guard<SpinLock> lock(_retireLock);
        return _freedCount;
    }

  private:
    /** Tiny TTAS spinlock guarding only the retire lists (never held
     *  across user code; the hot pin/unpin path does not touch it). */
    class SpinLock
    {
      public:
        void
        lock()
        {
            while (_flag.exchange(true, std::memory_order_acquire))
                while (_flag.load(std::memory_order_relaxed))
                    ;
        }
        void unlock() { _flag.store(false, std::memory_order_release); }

      private:
        std::atomic<bool> _flag{false};
    };

    struct Retired
    {
        std::uint64_t epoch = 0;
        std::function<void()> deleter;
    };

    /** state = epoch * 2 + activeBit. */
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> state{0};
    };

    struct Bucket
    {
        std::vector<Retired> items;
    };

    std::vector<Slot> _slots;
    std::atomic<std::uint64_t> _globalEpoch{0};
    mutable SpinLock _retireLock;
    Bucket _buckets[3];
    std::size_t _retiredCount = 0;
    std::size_t _freedCount = 0;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_EPOCH_RECLAIMER_HH
