#include "core/event_queue.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"

namespace skipsim::core
{

bool
EventQueue::after(const Event &a, const Event &b)
{
    if (a.timeNs != b.timeNs)
        return a.timeNs > b.timeNs;
    if (a.priority != b.priority)
        return a.priority > b.priority;
    return a.seq > b.seq;
}

void
EventQueue::schedule(double timeNs, int priority, EventFn fn)
{
    if (std::isnan(timeNs))
        panic("core::EventQueue: NaN event time");
    Event ev;
    ev.timeNs = timeNs;
    ev.priority = priority;
    ev.seq = _nextSeq++;
    ev.fn = std::move(fn);
    _heap.push_back(std::move(ev));
    std::push_heap(_heap.begin(), _heap.end(), after);
}

void
EventQueue::push(Event ev)
{
    if (std::isnan(ev.timeNs))
        panic("core::EventQueue: NaN event time");
    _heap.push_back(std::move(ev));
    std::push_heap(_heap.begin(), _heap.end(), after);
}

const Event &
EventQueue::peek() const
{
    if (_heap.empty())
        panic("core::EventQueue: peek on empty queue");
    return _heap.front();
}

double
EventQueue::nextTimeNs() const
{
    if (_heap.empty())
        panic("core::EventQueue: nextTimeNs on empty queue");
    return _heap.front().timeNs;
}

int
EventQueue::nextPriority() const
{
    if (_heap.empty())
        panic("core::EventQueue: nextPriority on empty queue");
    return _heap.front().priority;
}

Event
EventQueue::pop()
{
    if (_heap.empty())
        panic("core::EventQueue: pop from empty queue");
    std::pop_heap(_heap.begin(), _heap.end(), after);
    Event ev = std::move(_heap.back());
    _heap.pop_back();
    return ev;
}

} // namespace skipsim::core
