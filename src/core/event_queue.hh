/**
 * @file
 * Deterministic discrete-event queue: a binary min-heap keyed by
 * (time, priority, seq). `seq` is the push serial, so events that
 * collide on both timestamp and priority pop in scheduling order —
 * never in heap-internal order. This total order is the project-wide
 * tie-breaking contract (docs/core.md): every engine built on the
 * queue is reproducible event-for-event from its inputs alone,
 * independent of host threading or library internals.
 */

#ifndef SKIPSIM_CORE_EVENT_QUEUE_HH
#define SKIPSIM_CORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace skipsim::core
{

/** Event handler; receives the event's timestamp. */
using EventFn = std::function<void(double tNs)>;

/** One scheduled event. */
struct Event
{
    double timeNs = 0.0;
    int priority = 0;
    std::uint64_t seq = 0;
    EventFn fn;
};

/** Min-heap of events ordered by (timeNs, priority, seq). */
class EventQueue
{
  public:
    /** Schedule @p fn at @p timeNs. Events never execute here. */
    void schedule(double timeNs, int priority, EventFn fn);

    /**
     * Insert a fully-formed event, keeping its pre-assigned @p seq
     * rather than stamping the queue's own push serial. ShardedEngine
     * uses this to merge mailbox events into per-shard queues while a
     * single global serial keeps the cross-shard (time, priority, seq)
     * order identical to the one-queue run.
     */
    void push(Event ev);

    bool empty() const { return _heap.empty(); }
    std::size_t size() const { return _heap.size(); }

    /** Timestamp of the next event. @throws PanicError when empty. */
    double nextTimeNs() const;

    /** Priority of the next event. @throws PanicError when empty. */
    int nextPriority() const;

    /** The next event without removing it. @throws PanicError when
     *  empty. The reference is invalidated by any mutation. */
    const Event &peek() const;

    /** Remove and return the next event (time, then priority, then
     *  scheduling order); queue must be non-empty. */
    Event pop();

    /** Drop every scheduled event (the push serial keeps counting). */
    void clear() { _heap.clear(); }

  private:
    /** @return true when @p a executes after @p b. */
    static bool after(const Event &a, const Event &b);

    std::vector<Event> _heap;
    std::uint64_t _nextSeq = 0;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_EVENT_QUEUE_HH
