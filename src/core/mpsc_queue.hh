/**
 * @file
 * Bounded multi-producer queue (Vyukov bounded-queue scheme): a
 * power-of-two ring of cells, each carrying a sequence stamp that
 * encodes whether the cell is free for the next producer lap or holds
 * a value for the consumer lap. Producers claim a cell with one
 * fetch_add on the tail and publish by storing the stamp with release
 * order; the consumer (or consumers — the scheme is MPMC, the engine
 * uses it MPSC) observes the stamp with acquire order before reading
 * the payload, so every pop happens-after the push that produced it.
 *
 * The queue is the sharded engine's cross-shard mailbox: during a
 * parallel window every worker is a producer into every other shard's
 * inbox, and the coordinator drains all inboxes single-threaded at the
 * window barrier. Capacity is fixed at construction — tryPush returns
 * false when the ring is full and callers spill to a local overflow
 * buffer rather than blocking (a producer that spins on a full ring
 * would deadlock against a consumer that only drains at the barrier).
 *
 * Determinism note: pop order is *not* part of any engine contract.
 * Mailbox entries are self-describing (source shard, event ordinal,
 * post ordinal) and the barrier re-orders them deterministically, so
 * the interleaving of producer laps never leaks into simulation
 * output.
 */

#ifndef SKIPSIM_CORE_MPSC_QUEUE_HH
#define SKIPSIM_CORE_MPSC_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/logging.hh"

namespace skipsim::core
{

/**
 * Bounded MPSC/MPMC queue of movable values.
 *
 * @tparam T element type; moved in on push, moved out on pop.
 */
template <typename T>
class MpscQueue
{
  public:
    /** @param capacity ring size; rounded up to a power of two.
     *  @throws PanicError on zero capacity. */
    explicit MpscQueue(std::size_t capacity)
    {
        if (capacity == 0)
            panic("core::MpscQueue: capacity must be >= 1");
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        _mask = cap - 1;
        _cells = std::make_unique<Cell[]>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            _cells[i].stamp.store(i, std::memory_order_relaxed);
        _tail.store(0, std::memory_order_relaxed);
        _head.store(0, std::memory_order_relaxed);
    }

    MpscQueue(const MpscQueue &) = delete;
    MpscQueue &operator=(const MpscQueue &) = delete;

    std::size_t capacity() const { return _mask + 1; }

    /**
     * Producer side; safe from any number of threads concurrently.
     * @return false when the ring is full (value is left untouched).
     */
    bool
    tryPush(T &&value)
    {
        Cell *cell;
        std::uint64_t pos = _tail.load(std::memory_order_relaxed);
        for (;;) {
            cell = &_cells[pos & _mask];
            std::uint64_t stamp =
                cell->stamp.load(std::memory_order_acquire);
            std::intptr_t dif = static_cast<std::intptr_t>(stamp) -
                static_cast<std::intptr_t>(pos);
            if (dif == 0) {
                // Cell free for this lap: claim it by advancing tail.
                if (_tail.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // full: a whole lap behind
            } else {
                pos = _tail.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        // Publish: pop's acquire load of the stamp syncs with this.
        cell->stamp.store(pos + 1, std::memory_order_release);
        return true;
    }

    /**
     * Consumer side; the engine calls it from one thread at a time
     * (the barrier coordinator), though the scheme supports several.
     * @return false when empty.
     */
    bool
    tryPop(T &out)
    {
        Cell *cell;
        std::uint64_t pos = _head.load(std::memory_order_relaxed);
        for (;;) {
            cell = &_cells[pos & _mask];
            std::uint64_t stamp =
                cell->stamp.load(std::memory_order_acquire);
            std::intptr_t dif = static_cast<std::intptr_t>(stamp) -
                static_cast<std::intptr_t>(pos + 1);
            if (dif == 0) {
                if (_head.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                    break;
            } else if (dif < 0) {
                return false; // empty: no producer reached this cell
            } else {
                pos = _head.load(std::memory_order_relaxed);
            }
        }
        out = std::move(cell->value);
        // Free the cell for the producers' next lap.
        cell->stamp.store(pos + _mask + 1, std::memory_order_release);
        return true;
    }

    /** Racy size estimate (exact when producers/consumer are quiet). */
    std::size_t
    sizeEstimate() const
    {
        std::uint64_t tail = _tail.load(std::memory_order_relaxed);
        std::uint64_t head = _head.load(std::memory_order_relaxed);
        return tail >= head ? static_cast<std::size_t>(tail - head)
                            : 0;
    }

  private:
    /** Cache-line sized cell so neighbouring stamps do not false-share
     *  under heavy multi-producer traffic. */
    struct alignas(64) Cell
    {
        std::atomic<std::uint64_t> stamp{0};
        T value{};
    };

    std::unique_ptr<Cell[]> _cells;
    std::size_t _mask = 0;
    alignas(64) std::atomic<std::uint64_t> _tail{0};
    alignas(64) std::atomic<std::uint64_t> _head{0};
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_MPSC_QUEUE_HH
