/**
 * @file
 * In-order FIFO resource: the timing skeleton of a CUDA stream (and of
 * any serially-draining queue). Work items start no earlier than their
 * eligibility instant, and no earlier than the previous item's finish
 * plus an inter-item gap when the resource is backed up — exactly the
 * launch-to-start stretching that the paper's TKLQT metric integrates
 * (Fig. 4). The resource does not advance time itself; callers (or
 * completion events on a core::Engine) occupy it explicitly, keeping
 * the arithmetic identical to the pre-core cursor implementation.
 */

#ifndef SKIPSIM_CORE_RESOURCE_HH
#define SKIPSIM_CORE_RESOURCE_HH

#include <algorithm>

namespace skipsim::core
{

/** Single-lane in-order resource; see file comment. */
class FifoResource
{
  public:
    /**
     * Start instant for work eligible at @p earliestNs: the eligibility
     * instant on an idle lane, or the previous item's finish plus
     * @p gapNs when the lane is backed up.
     */
    double
    startFor(double earliestNs, double gapNs = 0.0) const
    {
        double queued = _used ? _freeNs + gapNs : 0.0;
        return std::max(earliestNs, queued);
    }

    /** Occupy the lane through @p endNs (the accepted item's finish). */
    void
    occupyUntil(double endNs)
    {
        _freeNs = endNs;
        _used = true;
    }

    /** Has any item ever occupied the lane? */
    bool everUsed() const { return _used; }

    /** Finish instant of the last accepted item (0 before first use). */
    double freeNs() const { return _freeNs; }

  private:
    double _freeNs = 0.0;
    bool _used = false;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_RESOURCE_HH
