#include "core/rng_stream.hh"

namespace skipsim::core
{

std::uint64_t
streamId(std::string_view name)
{
    // FNV-1a 64: deterministic across platforms, unlike std::hash.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace skipsim::core
