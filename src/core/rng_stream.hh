/**
 * @file
 * Named deterministic RNG streams. A RngStreams fans one base seed
 * into independent per-entity streams via mixSeed (the project-wide
 * per-point seeding convention from exec::SweepSpec): stream i is
 * Rng(mixSeed(base, i)), so the numbers an entity draws are a pure
 * function of (base seed, stream id) — never of event interleaving,
 * worker count, or the order entities happen to be constructed in.
 * Streams can also be addressed by name (FNV-1a hash of the label),
 * which new engines should prefer; the numeric indices remain for
 * engines whose published determinism contract already names them
 * (cluster: arrivals = stream 0, replica i jitter = stream i + 1).
 */

#ifndef SKIPSIM_CORE_RNG_STREAM_HH
#define SKIPSIM_CORE_RNG_STREAM_HH

#include <cstdint>
#include <string_view>

#include "common/random.hh"

namespace skipsim::core
{

/** Deterministic stream-id hash (FNV-1a 64) for named streams. */
std::uint64_t streamId(std::string_view name);

/** Factory of decorrelated Rng streams over one base seed. */
class RngStreams
{
  public:
    explicit RngStreams(std::uint64_t baseSeed) : _base(baseSeed) {}

    std::uint64_t baseSeed() const { return _base; }

    /** Seed of stream @p index: mixSeed(base, index). */
    std::uint64_t
    seedFor(std::uint64_t index) const
    {
        return mixSeed(_base, index);
    }

    /** Independent generator for stream @p index. */
    Rng
    stream(std::uint64_t index) const
    {
        return Rng(seedFor(index));
    }

    /** Independent generator for the stream named @p name. */
    Rng
    stream(std::string_view name) const
    {
        return stream(streamId(name));
    }

  private:
    std::uint64_t _base = 0;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_RNG_STREAM_HH
