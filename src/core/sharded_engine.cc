#include "core/sharded_engine.hh"

#include <utility>

#include "common/logging.hh"

namespace skipsim::core
{

namespace
{

/** @return true when @p a executes before @p b under the project-wide
 *  (time, priority, seq) total order. */
bool
executesBefore(const Event &a, const Event &b)
{
    if (a.timeNs != b.timeNs)
        return a.timeNs < b.timeNs;
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.seq < b.seq;
}

} // namespace

double
ShardedEngine::Shard::nowNs() const
{
    return _owner.nowNs();
}

void
ShardedEngine::Shard::at(double tNs, int priority, EventFn fn)
{
    _owner.post(_index, tNs, priority, std::move(fn));
}

ShardedEngine::ShardedEngine(std::size_t shards, double lookaheadNs)
    : _lookaheadNs(lookaheadNs)
{
    if (shards == 0)
        panic("core::ShardedEngine: shard count must be >= 1");
    if (lookaheadNs < 0.0)
        panic("core::ShardedEngine: negative lookahead");
    _shards.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        _shards.emplace_back(new Shard(*this, i));
    _stats.shards = shards;
    _stats.lookaheadNs = lookaheadNs;
}

ShardedEngine::Shard &
ShardedEngine::shard(std::size_t index)
{
    if (index >= _shards.size())
        panic("core::ShardedEngine: shard index out of range");
    return *_shards[index];
}

void
ShardedEngine::post(std::size_t target, double tNs, int priority,
                    EventFn fn)
{
    Event ev;
    ev.timeNs = tNs;
    ev.priority = priority;
    ev.seq = _nextSeq++;
    ev.fn = std::move(fn);
    if (_running != npos && _running != target) {
        ++_stats.crossShardMessages;
        if (_lookaheadNs > 0.0 &&
            tNs < _clock.nowNs() + _lookaheadNs)
            ++_stats.lookaheadViolations;
        _shards[target]->_inbox.push_back(std::move(ev));
    } else {
        _shards[target]->_queue.push(std::move(ev));
    }
}

void
ShardedEngine::flushInboxes()
{
    for (auto &shard : _shards) {
        for (Event &ev : shard->_inbox)
            shard->_queue.push(std::move(ev));
        shard->_inbox.clear();
    }
}

std::size_t
ShardedEngine::argminShard() const
{
    std::size_t best = npos;
    for (std::size_t i = 0; i < _shards.size(); ++i) {
        if (_shards[i]->_queue.empty())
            continue;
        if (best == npos ||
            executesBefore(_shards[i]->_queue.peek(),
                           _shards[best]->_queue.peek()))
            best = i;
    }
    return best;
}

std::size_t
ShardedEngine::run()
{
    std::size_t processed = 0;
    for (;;) {
        flushInboxes();
        std::size_t s = argminShard();
        if (s == npos)
            break;
        // Open a window at the earliest pending event; everything up
        // to the lookahead horizon is safe to execute because no
        // cross-shard interaction can land sooner.
        const double window_end =
            _shards[s]->_queue.peek().timeNs + _lookaheadNs;
        ++_stats.windows;
        while (s != npos &&
               _shards[s]->_queue.peek().timeNs <= window_end) {
            Event ev = _shards[s]->_queue.pop();
            if (_beforeEvent)
                _beforeEvent(ev.timeNs);
            _clock.advanceTo(ev.timeNs);
            ++_stats.events;
            ++processed;
            _running = s;
            if (ev.fn)
                ev.fn(ev.timeNs);
            _running = npos;
            // Deliver mailboxes before the next pick so the merge
            // always sees the true global minimum — this is what
            // keeps the sharded order identical to the one-queue
            // order at any shard count.
            flushInboxes();
            s = argminShard();
        }
    }
    return processed;
}

bool
ShardedEngine::idle() const
{
    for (const auto &shard : _shards)
        if (!shard->_queue.empty() || !shard->_inbox.empty())
            return false;
    return true;
}

std::size_t
ShardedEngine::pendingEvents() const
{
    std::size_t total = 0;
    for (const auto &shard : _shards)
        total += shard->_queue.size() + shard->_inbox.size();
    return total;
}

} // namespace skipsim::core
