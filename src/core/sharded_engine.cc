#include "core/sharded_engine.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace skipsim::core
{

namespace
{

/** @return true when @p a executes before @p b under the project-wide
 *  (time, priority, seq) total order. */
bool
executesBefore(const Event &a, const Event &b)
{
    if (a.timeNs != b.timeNs)
        return a.timeNs < b.timeNs;
    if (a.priority != b.priority)
        return a.priority < b.priority;
    return a.seq < b.seq;
}

/** Executing-window context of the current thread. `engine` is the
 *  routing discriminator: postings and defer() calls made while it
 *  matches belong to the window of shard `shard`. */
struct WindowTls
{
    const void *engine = nullptr;
    std::size_t worker = 0;
    std::size_t shard = 0;
    double winEnd = 0.0;
    /** Timestamp of the event currently executing — the value a
     *  sequential run's clock would hold. */
    double localNow = 0.0;
};

thread_local WindowTls t_window;

} // namespace

double
ShardedEngine::Shard::nowNs() const
{
    if (t_window.engine == &_owner)
        return t_window.localNow;
    return _owner.nowNs();
}

void
ShardedEngine::Shard::at(double tNs, int priority, EventFn fn)
{
    _owner.post(_index, tNs, priority, std::move(fn), /*unsafe=*/false);
}

ShardedEngine::ShardedEngine(std::size_t shards, const Options &opts)
    : _lookaheadNs(opts.lookaheadNs),
      _safeCrossNs(opts.safeCrossNs < 0.0 ? opts.lookaheadNs
                                          : opts.safeCrossNs),
      _threads(opts.threads)
{
    if (shards == 0)
        panic("core::ShardedEngine: shard count must be >= 1");
    if (opts.lookaheadNs < 0.0)
        panic("core::ShardedEngine: negative lookahead");
    if (opts.threads < 1)
        panic("core::ShardedEngine: thread count must be >= 1");
    _shards.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i)
        _shards.emplace_back(new Shard(*this, i, opts.queueKind));
    _stats.shards = shards;
    _stats.threads = _threads;
    _stats.lookaheadNs = opts.lookaheadNs;
}

ShardedEngine::~ShardedEngine()
{
    stopTeam();
}

ShardedEngine::Shard &
ShardedEngine::shard(std::size_t index)
{
    if (index >= _shards.size())
        panic("core::ShardedEngine: shard index out of range");
    return *_shards[index];
}

void
ShardedEngine::deliver(std::size_t target, Event ev, bool unsafeTag)
{
    Shard &sh = *_shards[target];
    (unsafeTag ? sh._unsafe : sh._safe).push(std::move(ev));
}

void
ShardedEngine::post(std::size_t target, double tNs, int priority,
                    EventFn fn, bool unsafeTag)
{
    if (t_window.engine == this) {
        parallelPost(t_window.shard, target, tNs, priority,
                     std::move(fn), unsafeTag);
        return;
    }
    Event ev;
    ev.timeNs = tNs;
    ev.priority = priority;
    ev.seq = _nextSeq++;
    ev.fn = std::move(fn);
    if (_running != npos && _running != target) {
        ++_stats.crossShardMessages;
        if (_lookaheadNs > 0.0 && tNs < _clock.nowNs() + _lookaheadNs)
            ++_stats.lookaheadViolations;
    }
    deliver(target, std::move(ev), unsafeTag);
}

void
ShardedEngine::parallelPost(std::size_t src, std::size_t target,
                            double tNs, int priority, EventFn fn,
                            bool unsafeTag)
{
    Shard &sh = *_shards[src];
    if (target == src && !unsafeTag && tNs < t_window.winEnd) {
        // Lands inside the executing window: push straight into the
        // shard's own queue under a provisional serial. kIntraBit
        // sorts it after every final serial at the same (time,
        // priority) — correct, because every final serial already in
        // the queue predates the window — and intra postings compare
        // among themselves in posting order, which is final order.
        Event ev;
        ev.timeNs = tNs;
        ev.priority = priority;
        ev.seq = kIntraBit | sh._intraCount++;
        ev.fn = std::move(fn);
        sh._safe.push(std::move(ev));
        sh._postIntra.push_back(1);
        return;
    }
    // Survives the window: ship to the coordinator, which assigns the
    // final serial at replay. `order` self-describes the posting so
    // mailbox/spill interleaving never perturbs the replay.
    SurvivorMsg msg;
    msg.src = static_cast<std::uint32_t>(src);
    msg.order = static_cast<std::uint32_t>(sh._postIntra.size());
    msg.target = static_cast<std::uint32_t>(target);
    msg.unsafeTag = unsafeTag ? 1 : 0;
    msg.ev.timeNs = tNs;
    msg.ev.priority = priority;
    msg.ev.fn = std::move(fn);
    sh._postIntra.push_back(0);
    if (!_mail.tryPush(std::move(msg)))
        _spill[t_window.worker].push_back(std::move(msg));
}

void
ShardedEngine::defer(std::function<void()> fn)
{
    if (t_window.engine == this) {
        _shards[t_window.shard]->_defers.push_back(std::move(fn));
        return;
    }
    fn();
}

ShardedEngine::Head
ShardedEngine::globalMin() const
{
    Head best;
    const Event *bestEv = nullptr;
    for (std::size_t s = 0; s < _shards.size(); ++s) {
        const Shard &sh = *_shards[s];
        if (!sh._safe.empty()) {
            const Event &cand = sh._safe.peek();
            if (bestEv == nullptr || executesBefore(cand, *bestEv)) {
                best.shard = s;
                best.fromUnsafe = false;
                bestEv = &cand;
            }
        }
        if (!sh._unsafe.empty()) {
            const Event &cand = sh._unsafe.peek();
            if (bestEv == nullptr || executesBefore(cand, *bestEv)) {
                best.shard = s;
                best.fromUnsafe = true;
                bestEv = &cand;
            }
        }
    }
    return best;
}

const Event &
ShardedEngine::headEvent(const Head &head) const
{
    const Shard &sh = *_shards[head.shard];
    return (head.fromUnsafe ? sh._unsafe : sh._safe).peek();
}

std::size_t
ShardedEngine::run()
{
    if (_threads <= 1 || _shards.size() == 1)
        return runSequential();
    return runThreaded();
}

std::size_t
ShardedEngine::runSequential()
{
    std::size_t processed = 0;
    for (;;) {
        Head head = globalMin();
        if (head.shard == npos)
            break;
        // Open a window at the earliest pending event; everything up
        // to the lookahead horizon is safe to execute because no
        // cross-shard interaction can land sooner.
        const double windowEnd = headEvent(head).timeNs + _lookaheadNs;
        ++_stats.windows;
        while (head.shard != npos &&
               headEvent(head).timeNs <= windowEnd) {
            Shard &sh = *_shards[head.shard];
            Event ev = (head.fromUnsafe ? sh._unsafe : sh._safe).pop();
            if (_beforeEvent)
                _beforeEvent(ev.timeNs);
            _clock.advanceTo(ev.timeNs);
            ++_stats.events;
            ++processed;
            _running = head.shard;
            if (ev.fn)
                ev.fn(ev.timeNs);
            _running = npos;
            // Re-pick over every head: handlers push straight into
            // the target queues under the global serial, so the merge
            // always sees the true global minimum — this is what
            // keeps the sharded order identical to the one-queue
            // order at any shard count.
            head = globalMin();
        }
    }
    return processed;
}

std::size_t
ShardedEngine::runThreaded()
{
    startTeam();
    std::size_t processed = 0;
    try {
        for (;;) {
            Head head = globalMin();
            if (head.shard == npos)
                break;
            const double headNs = headEvent(head).timeNs;
            // The hook fires before the window bound is computed so a
            // sampling hook's own sync point has already advanced past
            // headNs — windows then never span a pending boundary.
            if (_beforeEvent)
                _beforeEvent(headNs);
            if (head.fromUnsafe) {
                sequentialStepOne(head);
                ++processed;
                continue;
            }
            double windowEnd = headNs + _safeCrossNs;
            for (const auto &sh : _shards)
                if (!sh->_unsafe.empty())
                    windowEnd =
                        std::min(windowEnd, sh->_unsafe.nextTimeNs());
            if (_syncPoint) {
                const double sync = _syncPoint(headNs);
                if (sync > headNs)
                    windowEnd = std::min(windowEnd, sync);
            }
            if (!(windowEnd > headNs)) {
                // Empty (or NaN) window: degrade to one step.
                sequentialStepOne(head);
                ++processed;
                continue;
            }
            _actives.clear();
            for (std::size_t s = 0; s < _shards.size(); ++s) {
                const Shard &sh = *_shards[s];
                if (!sh._safe.empty() &&
                    sh._safe.nextTimeNs() < windowEnd)
                    _actives.push_back(s);
            }
            if (_actives.size() < 2) {
                // One busy shard parallelizes nothing; keep the
                // cheaper sequential step.
                sequentialStepOne(head);
                ++processed;
                continue;
            }
            processed += parallelWindow(windowEnd);
            if (workerFailed())
                break;
        }
    } catch (...) {
        stopTeam();
        throw;
    }
    stopTeam();
    if (_workerError) {
        std::exception_ptr err = _workerError;
        _workerError = nullptr;
        std::rethrow_exception(err);
    }
    return processed;
}

void
ShardedEngine::sequentialStepOne(const Head &head)
{
    Shard &sh = *_shards[head.shard];
    Event ev = (head.fromUnsafe ? sh._unsafe : sh._safe).pop();
    _clock.advanceTo(ev.timeNs);
    ++_stats.windows;
    ++_stats.events;
    _running = head.shard;
    if (ev.fn)
        ev.fn(ev.timeNs);
    _running = npos;
}

std::size_t
ShardedEngine::parallelWindow(double windowEnd)
{
    _winEnd = windowEnd;
    ++_stats.windows;
    ++_stats.parallelWindows;
    const std::size_t team = _team.size();
    _doneCount.store(0, std::memory_order_relaxed);
    _windowSeq.fetch_add(1, std::memory_order_release);
    _windowSeq.notify_all();

    // Drain the survivor mailbox concurrently with the window: the
    // workers produce, this thread consumes. Overflow past the bounded
    // capacity spilled to per-worker vectors and is merged after the
    // barrier.
    SurvivorMsg msg;
    std::size_t idle = 0;
    while (_doneCount.load(std::memory_order_acquire) < team) {
        if (_mail.tryPop(msg)) {
            _buckets[msg.src].push_back(std::move(msg));
            idle = 0;
        } else if (++idle < 64) {
            std::this_thread::yield();
        } else {
            const std::size_t done =
                _doneCount.load(std::memory_order_acquire);
            if (done < team)
                _doneCount.wait(done, std::memory_order_acquire);
            idle = 0;
        }
    }
    while (_mail.tryPop(msg))
        _buckets[msg.src].push_back(std::move(msg));
    for (auto &spill : _spill) {
        for (SurvivorMsg &spilled : spill)
            _buckets[spilled.src].push_back(std::move(spilled));
        spill.clear();
    }
    if (workerFailed())
        return 0; // runThreaded stops the team and rethrows.
    return replayWindow();
}

std::size_t
ShardedEngine::replayWindow()
{
    // Survivors of one source shard may interleave between the
    // mailbox and the spill vector; `order` restores posting order.
    for (std::size_t s : _actives) {
        auto &bucket = _buckets[s];
        std::sort(bucket.begin(), bucket.end(),
                  [](const SurvivorMsg &a, const SurvivorMsg &b) {
                      return a.order < b.order;
                  });
        Shard &sh = *_shards[s];
        sh._intraFinal.assign(
            static_cast<std::size_t>(sh._intraCount), 0);
    }

    // K-way merge over the per-shard execution logs. A log head's
    // provisional serial always resolves: the posting event precedes
    // the posted event in the same shard's log, so its final serial
    // was assigned by an earlier commit.
    struct Cursor
    {
        std::size_t log = 0;
        std::size_t post = 0;
        std::size_t survivor = 0;
        std::size_t defer = 0;
        std::uint64_t intra = 0;
    };
    std::vector<Cursor> cursors(_actives.size());
    const auto resolvedSeq = [this](const Shard &sh,
                                    const Shard::ExecRec &rec) {
        if (rec.seq & kIntraBit)
            return sh._intraFinal[static_cast<std::size_t>(
                rec.seq & ~kIntraBit)];
        return rec.seq;
    };

    std::size_t committed = 0;
    for (;;) {
        std::size_t bestIdx = npos;
        double bestNs = 0.0;
        int bestPrio = 0;
        std::uint64_t bestSeq = 0;
        for (std::size_t i = 0; i < _actives.size(); ++i) {
            const Shard &sh = *_shards[_actives[i]];
            if (cursors[i].log == sh._log.size())
                continue;
            const Shard::ExecRec &rec = sh._log[cursors[i].log];
            const std::uint64_t seq = resolvedSeq(sh, rec);
            if (bestIdx == npos || rec.timeNs < bestNs ||
                (rec.timeNs == bestNs &&
                 (rec.priority < bestPrio ||
                  (rec.priority == bestPrio && seq < bestSeq)))) {
                bestIdx = i;
                bestNs = rec.timeNs;
                bestPrio = rec.priority;
                bestSeq = seq;
            }
        }
        if (bestIdx == npos)
            break;

        // Commit: the sequential run would execute exactly this event
        // now, so reproduce its observable effects in order — clock,
        // posting serials, survivor delivery, deferred side effects.
        const std::size_t shardIdx = _actives[bestIdx];
        Shard &sh = *_shards[shardIdx];
        Cursor &cur = cursors[bestIdx];
        const Shard::ExecRec &rec = sh._log[cur.log];
        _clock.advanceTo(rec.timeNs);
        ++_stats.events;
        ++_stats.parallelEvents;
        ++committed;
        auto &bucket = _buckets[shardIdx];
        for (; cur.post < rec.postEnd; ++cur.post) {
            const std::uint64_t finalSeq = _nextSeq++;
            if (sh._postIntra[cur.post]) {
                sh._intraFinal[static_cast<std::size_t>(cur.intra++)] =
                    finalSeq;
                continue;
            }
            if (cur.survivor == bucket.size())
                panic("core::ShardedEngine: window survivor lost in "
                      "transit");
            SurvivorMsg &sv = bucket[cur.survivor++];
            if (sv.order != cur.post)
                panic("core::ShardedEngine: survivor replay order "
                      "mismatch");
            sv.ev.seq = finalSeq;
            const std::size_t target = sv.target;
            if (target != shardIdx) {
                ++_stats.crossShardMessages;
                if (_lookaheadNs > 0.0 &&
                    sv.ev.timeNs < rec.timeNs + _lookaheadNs)
                    ++_stats.lookaheadViolations;
            }
            if (sv.ev.timeNs < _winEnd)
                panic("core::ShardedEngine: cross-shard or unsafe "
                      "posting landed inside a parallel window "
                      "(safeCrossNs overpromised)");
            deliver(target, std::move(sv.ev), sv.unsafeTag != 0);
        }
        for (; cur.defer < rec.deferEnd; ++cur.defer)
            sh._defers[cur.defer]();
        ++cur.log;
    }

    for (std::size_t i = 0; i < _actives.size(); ++i) {
        Shard &sh = *_shards[_actives[i]];
        const Cursor &cur = cursors[i];
        if (cur.post != sh._postIntra.size() ||
            cur.survivor != _buckets[_actives[i]].size() ||
            cur.defer != sh._defers.size() ||
            cur.intra != sh._intraCount)
            panic("core::ShardedEngine: window journal not fully "
                  "replayed");
        sh._log.clear();
        sh._postIntra.clear();
        sh._defers.clear();
        sh._intraCount = 0;
        sh._intraFinal.clear();
        _buckets[_actives[i]].clear();
    }
    return committed;
}

void
ShardedEngine::runShardWindow(std::size_t shardIdx, std::size_t worker)
{
    Shard &sh = *_shards[shardIdx];
    t_window.engine = this;
    t_window.worker = worker;
    t_window.shard = shardIdx;
    t_window.winEnd = _winEnd;
    while (!sh._safe.empty() && sh._safe.nextTimeNs() < _winEnd) {
        Event ev = sh._safe.pop();
        t_window.localNow = ev.timeNs;
        if (ev.fn)
            ev.fn(ev.timeNs);
        sh._log.push_back(Shard::ExecRec{
            ev.timeNs, ev.priority, ev.seq,
            static_cast<std::uint32_t>(sh._postIntra.size()),
            static_cast<std::uint32_t>(sh._defers.size())});
    }
    t_window = WindowTls{};
}

void
ShardedEngine::windowWork(std::size_t worker)
{
    WorkStealDeque<std::uint64_t> &own = *_deques[worker];
    const std::size_t team = _team.size();
    for (std::size_t i = worker; i < _actives.size(); i += team)
        own.push(static_cast<std::uint64_t>(_actives[i]));
    std::uint64_t shardIdx = 0;
    for (;;) {
        while (own.tryPop(shardIdx))
            runShardWindow(static_cast<std::size_t>(shardIdx), worker);
        bool stole = false;
        {
            EpochReclaimer::Guard guard(*_reclaimer, worker);
            for (std::size_t v = 1; v < team && !stole; ++v)
                stole = _deques[(worker + v) % team]->steal(shardIdx);
        }
        if (!stole)
            break; // Own deque empty and one full sweep came up dry;
                   // still-running peers drain their own deques.
        runShardWindow(static_cast<std::size_t>(shardIdx), worker);
    }
}

void
ShardedEngine::workerMain(std::size_t worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        std::uint64_t current =
            _windowSeq.load(std::memory_order_acquire);
        std::size_t spins = 0;
        while (current == seen) {
            if (++spins < 64)
                std::this_thread::yield();
            else
                _windowSeq.wait(current, std::memory_order_acquire);
            current = _windowSeq.load(std::memory_order_acquire);
        }
        seen = current;
        if (_shutdown.load(std::memory_order_acquire))
            return;
        try {
            windowWork(worker);
        } catch (...) {
            recordWorkerError();
            // Drop the rest of this worker's share so the barrier is
            // still reached; the coordinator rethrows after joining.
            std::uint64_t discard = 0;
            while (_deques[worker]->tryPop(discard)) {
            }
            t_window = WindowTls{};
        }
        _doneCount.fetch_add(1, std::memory_order_release);
        _doneCount.notify_all();
    }
}

void
ShardedEngine::recordWorkerError()
{
    std::lock_guard<std::mutex> lock(_errorMu);
    if (!_workerError)
        _workerError = std::current_exception();
}

bool
ShardedEngine::workerFailed()
{
    std::lock_guard<std::mutex> lock(_errorMu);
    return static_cast<bool>(_workerError);
}

void
ShardedEngine::startTeam()
{
    if (!_team.empty())
        return;
    _reclaimer = std::make_unique<EpochReclaimer>(_threads);
    _deques.clear();
    for (std::size_t w = 0; w < _threads; ++w)
        _deques.push_back(
            std::make_unique<WorkStealDeque<std::uint64_t>>(
                *_reclaimer));
    _spill.assign(_threads, {});
    _buckets.assign(_shards.size(), {});
    _shutdown.store(false, std::memory_order_relaxed);
    _team.reserve(_threads);
    for (std::size_t w = 0; w < _threads; ++w)
        _team.emplace_back([this, w] { workerMain(w); });
}

void
ShardedEngine::stopTeam()
{
    if (_team.empty())
        return;
    _shutdown.store(true, std::memory_order_release);
    _windowSeq.fetch_add(1, std::memory_order_release);
    _windowSeq.notify_all();
    for (std::thread &worker : _team)
        worker.join();
    _team.clear();
    _deques.clear();
    if (_reclaimer) {
        _reclaimer->drain();
        _reclaimer.reset();
    }
}

bool
ShardedEngine::idle() const
{
    for (const auto &sh : _shards)
        if (!sh->_safe.empty() || !sh->_unsafe.empty())
            return false;
    return true;
}

std::size_t
ShardedEngine::pendingEvents() const
{
    std::size_t total = 0;
    for (const auto &sh : _shards)
        total += sh->_safe.size() + sh->_unsafe.size();
    return total;
}

} // namespace skipsim::core
