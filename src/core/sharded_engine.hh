/**
 * @file
 * Partitioned discrete-event engine: K per-shard pending-event sets
 * advanced under conservative time-windowed synchronization, either by
 * one merge loop (threads == 1) or by a worker team that executes
 * whole shard windows in parallel (threads > 1). In both modes the
 * executed event sequence — and therefore every report, probe export
 * and span export — is byte-for-byte the one a single-queue
 * core::Engine would produce. That is the contract the cluster
 * simulator's shard-identity goldens lock (docs/core.md, "Sharded
 * execution" and "Threading model").
 *
 * Sequential mode picks the globally minimal event under the
 * project-wide (time, priority, seq) order with a single global push
 * serial; cross-shard postings push straight into the target queue
 * (the pick always re-scans every head, so a mailbox stage would be
 * an exact no-op — earlier inboxes were flushed before every pick).
 *
 * Threaded mode partitions events into two classes, tagged at posting
 * time by which scheduler facet posted them:
 *
 *  - "safe" events (Shard::at, the default) only touch state owned by
 *    their shard and only post cross-shard or unsafe at least
 *    safeCrossNs into the future;
 *  - "unsafe" events (Shard::unsafeScheduler — e.g. a cluster's
 *    router arrivals and fault handlers) may read or write global
 *    state and post anywhere.
 *
 * Unsafe events always execute sequentially at the global minimum.
 * When the global minimum is safe, the loop opens a window [T, wEnd)
 * bounded by the earliest unsafe head, the next declared sync point
 * (observability boundaries) and T + safeCrossNs, and fans the active
 * shards across the worker team: each worker drains its own shards
 * and steals the rest through Chase–Lev deques. A worker executes its
 * shard's events in shard-local order, journaling intra-shard
 * postings with provisional serials, shipping cross-window postings
 * ("survivors") through a bounded MPSC mailbox the coordinator drains
 * concurrently, and journaling defer()ed global side effects. At the
 * window barrier the coordinator replays the per-shard execution logs
 * in exact (time, priority, seq) order, assigning the same global
 * serials a sequential run would have and running the deferred
 * effects in commit order — which is what makes the parallel run
 * byte-identical, not merely equivalent.
 */

#ifndef SKIPSIM_CORE_SHARDED_ENGINE_HH
#define SKIPSIM_CORE_SHARDED_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/any_queue.hh"
#include "core/clock.hh"
#include "core/engine.hh"
#include "core/epoch_reclaimer.hh"
#include "core/event_queue.hh"
#include "core/mpsc_queue.hh"
#include "core/worksteal_deque.hh"

namespace skipsim::core
{

/** Synchronization counters of one sharded run (not part of any
 *  report JSON — execution topology must not leak into results). */
struct ShardStats
{
    std::size_t shards = 0;
    /** Execution threads the run was configured with. */
    std::size_t threads = 1;
    /** Events executed across all shards. */
    std::uint64_t events = 0;
    /** Synchronization intervals: lookahead windows in sequential
     *  mode; parallel windows plus single sequential steps in
     *  threaded mode. */
    std::uint64_t windows = 0;
    /** Windows executed by the worker team (threaded mode only). */
    std::uint64_t parallelWindows = 0;
    /** Events executed inside parallel windows. */
    std::uint64_t parallelEvents = 0;
    /** Events posted from a handler on one shard onto another. */
    std::uint64_t crossShardMessages = 0;
    /** Cross-shard messages that arrived closer than the lookahead
     *  promised — zero on a correctly derived lookahead. */
    std::uint64_t lookaheadViolations = 0;
    /** Lookahead the run was configured with. */
    double lookaheadNs = 0.0;
};

/** K shard queues + one clock + the windowed merge loop. */
class ShardedEngine
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** Execution configuration beyond the shard count. */
    struct Options
    {
        /** Minimum cross-shard latency of the model: a handler on one
         *  shard never affects another sooner than this. Zero
         *  collapses sequential windows to a single timestamp. */
        double lookaheadNs = 0.0;

        /** Worker threads for parallel windows; <= 1 runs the classic
         *  sequential merge loop. (The calling thread additionally
         *  coordinates windows and drains the survivor mailbox.) */
        std::size_t threads = 1;

        /** Minimum latency of a *safe* event's cross-shard or unsafe
         *  postings; caps parallel windows at T + safeCrossNs.
         *  Negative (the default) falls back to lookaheadNs;
         *  +infinity declares that safe events only ever post onto
         *  their own shard's safe queue (windows bounded only by
         *  unsafe heads and sync points). */
        double safeCrossNs = -1.0;

        /** Pending-set implementation for every shard queue. */
        QueueKind queueKind = defaultQueueKind();
    };

    /**
     * One shard's scheduling surface. Processes pinned to the shard
     * hold it as their core::Scheduler; postings route through the
     * owner so the global serial stays centralized. Events posted via
     * the Shard itself are tagged parallel-safe: their handlers may
     * only touch state owned by this shard (plus engine.defer() for
     * global effects). Events posted via unsafeScheduler() always
     * execute sequentially at the global minimum and may touch
     * anything — the tag rides with the event, so one shard can host
     * both classes (a cluster's shard 0 runs the router *and* its
     * share of replicas).
     */
    class Shard final : public Scheduler
    {
      public:
        /** Inside a parallel window this is the executing event's
         *  timestamp (the exact value a sequential run would see);
         *  otherwise the engine clock. */
        double nowNs() const override;
        void at(double tNs, int priority, EventFn fn) override;
        std::size_t index() const { return _index; }

        /** Scheduling facet whose postings are tagged unsafe. */
        Scheduler &unsafeScheduler() { return _unsafeFacet; }

      private:
        friend class ShardedEngine;

        /** Facet tagging postings unsafe; see Shard comment. */
        class UnsafeFacet final : public Scheduler
        {
          public:
            explicit UnsafeFacet(Shard &shard) : _shard(shard) {}
            double nowNs() const override { return _shard.nowNs(); }
            void
            at(double tNs, int priority, EventFn fn) override
            {
                _shard._owner.post(_shard._index, tNs, priority,
                                   std::move(fn), /*unsafe=*/true);
            }

          private:
            Shard &_shard;
        };

        Shard(ShardedEngine &owner, std::size_t index, QueueKind kind)
            : _owner(owner), _index(index), _safe(kind), _unsafe(kind),
              _unsafeFacet(*this)
        {
        }

        /** One executed event of the current parallel window. */
        struct ExecRec
        {
            double timeNs;
            int priority;
            /** Final serial, or kIntraBit | intra ordinal. */
            std::uint64_t seq;
            /** Ends (exclusive) of this event's slices of _postIntra
             *  and _defers; begins are the previous record's ends. */
            std::uint32_t postEnd;
            std::uint32_t deferEnd;
        };

        ShardedEngine &_owner;
        std::size_t _index;
        AnyQueue _safe;
        AnyQueue _unsafe;
        UnsafeFacet _unsafeFacet;

        /** @name Parallel-window journal
         *  Written only by the worker executing this shard's window;
         *  read and cleared by the coordinator at the barrier.
         *  @{ */
        std::vector<ExecRec> _log;
        /** One entry per posting, in posting order: 1 = intra-shard
         *  (provisional serial), 0 = survivor (mailboxed). */
        std::vector<std::uint8_t> _postIntra;
        /** Journaled defer() closures, in call order. */
        std::vector<std::function<void()>> _defers;
        /** Intra-shard postings so far this window (provisional
         *  serials 0.._intraCount-1 under kIntraBit). */
        std::uint64_t _intraCount = 0;
        /** Final serial of each intra posting, filled at replay. */
        std::vector<std::uint64_t> _intraFinal;
        /** @} */
    };

    /** Classic two-argument form: sequential, default queue kind. */
    explicit ShardedEngine(std::size_t shards, double lookaheadNs = 0.0)
        : ShardedEngine(shards, Options{lookaheadNs})
    {
    }

    /**
     * @param shards number of partitions (>= 1).
     * @param opts   execution options; see Options.
     */
    ShardedEngine(std::size_t shards, const Options &opts);
    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;
    ~ShardedEngine();

    Shard &shard(std::size_t index);
    std::size_t shardCount() const { return _shards.size(); }

    double nowNs() const { return _clock.nowNs(); }
    const Clock &clock() const { return _clock; }
    double lookaheadNs() const { return _lookaheadNs; }
    std::size_t threads() const { return _threads; }

    /** Pre-event hook, same contract as Engine::onBeforeEvent. In
     *  threaded mode it fires once per sequential step and once per
     *  parallel window (with the window's first event time) — the
     *  observable effect is identical because windows never span a
     *  declared sync point. */
    void
    onBeforeEvent(EventFn hook)
    {
        _beforeEvent = std::move(hook);
    }

    /**
     * Declare the model's synchronization points (e.g. probe-sampling
     * boundaries): @p fn(t) returns the first point strictly after
     * @p t, and parallel windows never extend across it. Values <= t
     * mean "no constraint". Without a hook that samples state, no
     * sync-point function is needed.
     */
    void
    setSyncPoint(std::function<double(double)> fn)
    {
        _syncPoint = std::move(fn);
    }

    /**
     * Run @p fn's global side effects at this event's commit point:
     * immediately when called outside a parallel window, or at the
     * window barrier — in exact global event order — when called from
     * a handler executing inside one. Handlers of safe events that
     * must touch state owned outside their shard (routers, global
     * accumulators, ordered exports) wrap those writes in defer();
     * everything shard-local stays inline. Deferred closures must not
     * post events.
     */
    void defer(std::function<void()> fn);

    /** Run until every queue drains. @return events processed. */
    std::size_t run();

    bool idle() const;
    std::size_t pendingEvents() const;

    const ShardStats &stats() const { return _stats; }

  private:
    /** Provisional-serial tag: sorts after every final serial at the
     *  same (time, priority), which is exactly where an intra-window
     *  posting belongs — every final serial in the queue predates the
     *  window. */
    static constexpr std::uint64_t kIntraBit = std::uint64_t{1} << 63;

    /** A cross-window posting shipped through the survivor mailbox. */
    struct SurvivorMsg
    {
        std::uint32_t src = 0;    ///< posting shard
        std::uint32_t order = 0;  ///< index into the source shard's
                                  ///< posting journal (sort key)
        std::uint32_t target = 0; ///< destination shard
        std::uint8_t unsafeTag = 0;
        Event ev;                 ///< seq assigned at replay
    };

    /** Head of a shard's pending events (which queue it came from). */
    struct Head
    {
        std::size_t shard = npos;
        bool fromUnsafe = false;
    };

    void post(std::size_t target, double tNs, int priority, EventFn fn,
              bool unsafeTag);
    /** Route a posting made inside a parallel window. */
    void parallelPost(std::size_t src, std::size_t target, double tNs,
                      int priority, EventFn fn, bool unsafeTag);
    /** Push a final-serial event into @p target's queue by tag. */
    void deliver(std::size_t target, Event ev, bool unsafeTag);

    /** Globally minimal head under (time, priority, seq); shard ==
     *  npos when every queue is empty. */
    Head globalMin() const;
    const Event &headEvent(const Head &head) const;

    std::size_t runSequential();
    std::size_t runThreaded();
    /** Execute the single event at @p head sequentially (threaded
     *  mode; the hook already fired). */
    void sequentialStepOne(const Head &head);
    /** Execute one parallel window over _actives. @return events. */
    std::size_t parallelWindow(double windowEnd);
    /** Drain one shard's window on a worker thread. */
    void runShardWindow(std::size_t shard, std::size_t worker);
    /** Deterministic barrier replay; assigns final serials, delivers
     *  survivors and runs deferred effects in commit order. */
    std::size_t replayWindow();

    void startTeam();
    void stopTeam();
    void workerMain(std::size_t worker);
    /** One worker's share of the current window. */
    void windowWork(std::size_t worker);
    void recordWorkerError();
    bool workerFailed();

    std::vector<std::unique_ptr<Shard>> _shards;
    Clock _clock;
    EventFn _beforeEvent;
    std::function<double(double)> _syncPoint;
    double _lookaheadNs = 0.0;
    double _safeCrossNs = 0.0;
    std::size_t _threads = 1;
    /** Shard whose handler is currently executing sequentially; npos
     *  outside the run loop (setup postings are never cross-shard). */
    std::size_t _running = npos;
    /** Global push serial: the single sequence every shard stamps
     *  from, which is what makes the K-way merge reproduce the
     *  one-queue order. */
    std::uint64_t _nextSeq = 0;
    ShardStats _stats;

    /** @name Worker-team state (threaded mode)
     *  @{ */
    std::vector<std::thread> _team;
    /** Window generation; bumped (release) to publish a window, woken
     *  via atomic notify. */
    std::atomic<std::uint64_t> _windowSeq{0};
    /** Workers finished with the current window. */
    std::atomic<std::size_t> _doneCount{0};
    std::atomic<bool> _shutdown{false};
    std::mutex _errorMu;
    std::exception_ptr _workerError;

    /** Published before the _windowSeq bump; read-only to workers. */
    double _winEnd = 0.0;
    std::vector<std::size_t> _actives;

    /** Cross-window postings: workers produce concurrently, the
     *  coordinator consumes while the window runs. Overflow spills to
     *  the producing worker's local vector (blocking would deadlock
     *  against the barrier). */
    MpscQueue<SurvivorMsg> _mail{1024};
    std::vector<std::vector<SurvivorMsg>> _spill;
    /** Survivors bucketed per source shard for the replay. */
    std::vector<std::vector<SurvivorMsg>> _buckets;

    /** Epoch domain for the deques' retired rings. */
    std::unique_ptr<EpochReclaimer> _reclaimer;
    /** One shard-distribution deque per worker. */
    std::vector<std::unique_ptr<WorkStealDeque<std::uint64_t>>> _deques;
    /** @} */
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_SHARDED_ENGINE_HH
