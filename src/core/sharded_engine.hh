/**
 * @file
 * Partitioned discrete-event engine: K per-shard EventQueues advanced
 * by one merge loop under conservative time-windowed synchronization.
 * Each window opens at the globally earliest pending event and extends
 * by the configured lookahead (the minimum cross-shard latency of the
 * model being simulated); inside the window the loop always executes
 * the globally minimal event under the project-wide
 * (time, priority, seq) order, with a single global push serial shared
 * by every shard. Cross-shard postings — a handler running on shard A
 * scheduling onto shard B — are buffered in per-shard mailboxes and
 * merged into the target queue at the next synchronization point.
 *
 * Because the merge always picks the global minimum and the serial is
 * global, the executed event sequence is byte-for-byte the one a
 * single-queue core::Engine would produce, at any shard count. That is
 * the contract the cluster simulator's shard-identity goldens lock
 * (docs/core.md, "Sharded execution").
 */

#ifndef SKIPSIM_CORE_SHARDED_ENGINE_HH
#define SKIPSIM_CORE_SHARDED_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/clock.hh"
#include "core/engine.hh"
#include "core/event_queue.hh"

namespace skipsim::core
{

/** Synchronization counters of one sharded run (not part of any
 *  report JSON — shard count must not leak into results). */
struct ShardStats
{
    std::size_t shards = 0;
    /** Events executed across all shards. */
    std::uint64_t events = 0;
    /** Synchronization windows opened by the merge loop. */
    std::uint64_t windows = 0;
    /** Events posted from a handler on one shard onto another (the
     *  mailbox traffic). */
    std::uint64_t crossShardMessages = 0;
    /** Cross-shard messages that arrived closer than the lookahead
     *  promised — zero on a correctly derived lookahead. */
    std::uint64_t lookaheadViolations = 0;
    /** Lookahead the run was configured with. */
    double lookaheadNs = 0.0;
};

/** K shard queues + one clock + the windowed merge loop. */
class ShardedEngine
{
  public:
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /**
     * One shard's scheduling surface. Processes pinned to the shard
     * hold it as their core::Scheduler; postings route through the
     * owner so the global serial and the cross-shard mailbox
     * bookkeeping stay centralized.
     */
    class Shard final : public Scheduler
    {
      public:
        double nowNs() const override;
        void at(double tNs, int priority, EventFn fn) override;
        std::size_t index() const { return _index; }

      private:
        friend class ShardedEngine;
        Shard(ShardedEngine &owner, std::size_t index)
            : _owner(owner), _index(index)
        {
        }

        ShardedEngine &_owner;
        std::size_t _index;
        EventQueue _queue;
        std::vector<Event> _inbox;
    };

    /**
     * @param shards    number of partitions (>= 1).
     * @param lookaheadNs minimum cross-shard latency of the model: a
     *        handler on one shard never affects another sooner than
     *        this, so a window of that width is safe to advance.
     *        Zero collapses every window to a single timestamp.
     */
    explicit ShardedEngine(std::size_t shards,
                           double lookaheadNs = 0.0);
    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    Shard &shard(std::size_t index);
    std::size_t shardCount() const { return _shards.size(); }

    double nowNs() const { return _clock.nowNs(); }
    const Clock &clock() const { return _clock; }
    double lookaheadNs() const { return _lookaheadNs; }

    /** Pre-event hook, same contract as Engine::onBeforeEvent. */
    void
    onBeforeEvent(EventFn hook)
    {
        _beforeEvent = std::move(hook);
    }

    /** Run the windowed merge until every queue and mailbox drains.
     *  @return events processed by this call. */
    std::size_t run();

    bool idle() const;
    std::size_t pendingEvents() const;

    const ShardStats &stats() const { return _stats; }

  private:
    /** Route a posting from shard @p target 's scheduler: direct push
     *  when made outside any handler or from the shard itself,
     *  mailboxed (and counted) when made from another shard. */
    void post(std::size_t target, double tNs, int priority,
              EventFn fn);

    /** Merge every mailbox into its shard's queue. */
    void flushInboxes();

    /** Shard holding the globally minimal pending event under
     *  (time, priority, seq); npos when all queues are empty. */
    std::size_t argminShard() const;

    std::vector<std::unique_ptr<Shard>> _shards;
    Clock _clock;
    EventFn _beforeEvent;
    double _lookaheadNs = 0.0;
    /** Shard whose handler is currently executing; npos outside the
     *  run loop (setup postings are never cross-shard). */
    std::size_t _running = npos;
    /** Global push serial: the single sequence every shard stamps
     *  from, which is what makes the K-way merge reproduce the
     *  one-queue order. */
    std::uint64_t _nextSeq = 0;
    ShardStats _stats;
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_SHARDED_ENGINE_HH
