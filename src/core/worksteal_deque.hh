/**
 * @file
 * Chase–Lev work-stealing deque (the C11-formalized version of Lê,
 * Pop, Cohen & Nardelli, "Correct and Efficient Work-Stealing for
 * Weak Memory Models"): one owner pushes and pops at the bottom,
 * any number of thieves steal from the top. The element array is a
 * growable circular buffer; an outgrown buffer cannot be freed at the
 * moment of growth because a concurrent thief may still be reading a
 * slot of it, so retired buffers go through an EpochReclaimer and are
 * freed once every participant has left the epoch that could observe
 * them.
 *
 * Elements are stored in std::atomic<T> slots (T must be trivially
 * copyable and lock-free at 8 bytes or less — exec::Pool packs its
 * index chunks into one u64, the sharded engine stores shard ids), so
 * the racy buffer reads of the classic algorithm are data-race-free
 * relaxed atomic loads under TSan rather than undefined behavior.
 */

#ifndef SKIPSIM_CORE_WORKSTEAL_DEQUE_HH
#define SKIPSIM_CORE_WORKSTEAL_DEQUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/logging.hh"
#include "core/epoch_reclaimer.hh"

namespace skipsim::core
{

/**
 * Single-owner, multi-thief deque.
 *
 * Thread roles are fixed by call site, not construction: whichever
 * thread calls push()/tryPop() is "the owner" and must be unique at
 * any moment; steal() is safe from any thread concurrently. The
 * engine's window scheduler gives each worker its own deque and lets
 * idle workers steal shards from the others.
 */
template <typename T>
class WorkStealDeque
{
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "WorkStealDeque stores raced slots as atomics; use "
                  "a packed 8-byte payload");

  public:
    /**
     * @param reclaimer epoch domain retired ring buffers go through;
     *        must outlive the deque. Pass the pool/engine-wide domain
     *        shared by every worker that may steal.
     * @param initialCapacity starting ring size (power of two).
     */
    explicit WorkStealDeque(EpochReclaimer &reclaimer,
                            std::size_t initialCapacity = 64)
        : _reclaimer(reclaimer)
    {
        std::size_t cap = 1;
        while (cap < initialCapacity)
            cap <<= 1;
        _buffer.store(new Ring(cap), std::memory_order_relaxed);
    }

    WorkStealDeque(const WorkStealDeque &) = delete;
    WorkStealDeque &operator=(const WorkStealDeque &) = delete;

    ~WorkStealDeque()
    {
        delete _buffer.load(std::memory_order_relaxed);
    }

    /** Owner side: push one element at the bottom. Grows (and
     *  epoch-retires the old ring) when full. */
    void
    push(T value)
    {
        std::int64_t b = _bottom.load(std::memory_order_relaxed);
        std::int64_t t = _top.load(std::memory_order_acquire);
        Ring *ring = _buffer.load(std::memory_order_relaxed);
        if (b - t >= static_cast<std::int64_t>(ring->capacity)) {
            ring = grow(ring, b, t);
        }
        ring->slot(b).store(value, std::memory_order_relaxed);
        // Release: a thief that acquires the new bottom sees the slot.
        _bottom.store(b + 1, std::memory_order_release);
    }

    /** Owner side: pop the newest element. @return false when empty. */
    bool
    tryPop(T &out)
    {
        std::int64_t b = _bottom.load(std::memory_order_relaxed) - 1;
        Ring *ring = _buffer.load(std::memory_order_relaxed);
        // Full fence against steal(): either the thief sees our
        // claimed bottom or we see its advanced top.
        _bottom.store(b, std::memory_order_seq_cst);
        std::int64_t t = _top.load(std::memory_order_seq_cst);
        if (t > b) {
            // Already empty: undo.
            _bottom.store(b + 1, std::memory_order_relaxed);
            return false;
        }
        out = ring->slot(b).load(std::memory_order_relaxed);
        if (t == b) {
            // Last element: race the thieves for it via top.
            if (!_top.compare_exchange_strong(
                    t, t + 1, std::memory_order_seq_cst,
                    std::memory_order_relaxed)) {
                _bottom.store(b + 1, std::memory_order_relaxed);
                return false; // a thief won
            }
            _bottom.store(b + 1, std::memory_order_relaxed);
        }
        return true;
    }

    /**
     * Thief side: steal the oldest element. Callers must hold an
     * EpochReclaimer::Guard on the shared domain so the ring they are
     * reading cannot be freed mid-steal.
     * @return false when empty or when the steal lost a race.
     */
    bool
    steal(T &out)
    {
        std::int64_t t = _top.load(std::memory_order_acquire);
        // seq_cst fence pairing with tryPop's bottom store.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t b = _bottom.load(std::memory_order_acquire);
        if (t >= b)
            return false;
        Ring *ring = _buffer.load(std::memory_order_acquire);
        T value = ring->slot(t).load(std::memory_order_relaxed);
        if (!_top.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
            return false;
        out = value;
        return true;
    }

    /** Racy size estimate (exact for the quiescent owner). */
    std::size_t
    sizeEstimate() const
    {
        std::int64_t b = _bottom.load(std::memory_order_relaxed);
        std::int64_t t = _top.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

    /** Ring growths so far (test hook: reclamation was exercised). */
    std::size_t growths() const
    {
        return _growths.load(std::memory_order_relaxed);
    }

  private:
    struct Ring
    {
        explicit Ring(std::size_t cap)
            : capacity(cap), mask(cap - 1),
              slots(std::make_unique<std::atomic<T>[]>(cap))
        {
        }
        std::atomic<T> &
        slot(std::int64_t i)
        {
            return slots[static_cast<std::size_t>(i) & mask];
        }
        std::size_t capacity;
        std::size_t mask;
        std::unique_ptr<std::atomic<T>[]> slots;
    };

    /** Owner only: double the ring, copy live elements, publish the
     *  new ring and epoch-retire the old one. */
    Ring *
    grow(Ring *old, std::int64_t b, std::int64_t t)
    {
        Ring *bigger = new Ring(old->capacity * 2);
        for (std::int64_t i = t; i < b; ++i)
            bigger->slot(i).store(
                old->slot(i).load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        _buffer.store(bigger, std::memory_order_release);
        _growths.fetch_add(1, std::memory_order_relaxed);
        // A thief may still be dereferencing `old`: free it only when
        // every participant has moved past the current epoch.
        _reclaimer.retire([old] { delete old; });
        return bigger;
    }

    EpochReclaimer &_reclaimer;
    alignas(64) std::atomic<std::int64_t> _top{0};
    alignas(64) std::atomic<std::int64_t> _bottom{0};
    std::atomic<Ring *> _buffer{nullptr};
    std::atomic<std::size_t> _growths{0};
};

} // namespace skipsim::core

#endif // SKIPSIM_CORE_WORKSTEAL_DEQUE_HH
