/**
 * @file
 * runGrid: fan a SweepSpec's points across a worker pool and collect
 * the per-point results in submission (grid-index) order. Result slots
 * are preallocated and each worker writes only its own indices, so the
 * output is independent of scheduling; combined with per-point seeds
 * (mixSeed(baseSeed, index), see SweepSpec::at) a parallel run is
 * byte-identical to a serial one.
 */

#ifndef SKIPSIM_EXEC_GRID_HH
#define SKIPSIM_EXEC_GRID_HH

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/pool.hh"
#include "exec/run_spec.hh"
#include "exec/sweep_spec.hh"

namespace skipsim::exec
{

/**
 * Run @p fn over every point of @p spec on @p pool. @p fn is invoked
 * as fn(const RunSpec &) or fn(const RunSpec &, std::size_t index);
 * its return type must be default-constructible (slots preallocate).
 *
 * @return results in grid-index order, independent of worker count.
 * @throws skipsim::FatalError on an empty grid axis; exceptions from
 *         fn propagate (first one wins).
 */
template <typename Fn>
auto
runGrid(const SweepSpec &spec, Fn &&fn, const Pool &pool = Pool(1))
{
    spec.validate();

    constexpr bool takes_index =
        std::is_invocable_v<Fn &, const RunSpec &, std::size_t>;
    auto invoke = [&fn](const RunSpec &point, std::size_t i) {
        if constexpr (takes_index)
            return fn(point, i);
        else
            return fn(point);
    };
    using Result = std::invoke_result_t<decltype(invoke) &,
                                        const RunSpec &, std::size_t>;

    std::vector<Result> results(spec.size());
    pool.run(spec.size(), [&](std::size_t i) {
        RunSpec point = spec.at(i);
        results[i] = invoke(std::as_const(point), i);
    });
    return results;
}

/** runGrid with a worker count instead of a pool (0 = all cores). */
template <typename Fn>
auto
runGrid(const SweepSpec &spec, Fn &&fn, int jobs)
{
    Pool pool(jobs);
    return runGrid(spec, std::forward<Fn>(fn), pool);
}

} // namespace skipsim::exec

#endif // SKIPSIM_EXEC_GRID_HH
