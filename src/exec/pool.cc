#include "exec/pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "core/epoch_reclaimer.hh"
#include "core/worksteal_deque.hh"

namespace skipsim::exec
{

namespace
{

/** A contiguous slice [begin, end) of the index range. */
struct Chunk
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

} // namespace

Pool::Pool(int workers)
{
    if (workers < 0)
        fatal("exec::Pool: worker count must be >= 0");
    _workers = workers == 0 ? hardwareWorkers() : workers;
}

int
Pool::hardwareWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

Pool::RunStats
Pool::lastRunStats() const
{
    return _lastStats;
}

void
Pool::run(std::size_t n, const std::function<void(std::size_t)> &fn) const
{
    _lastStats = RunStats{};
    if (n == 0)
        return;

    if (_workers == 1 || n == 1) {
        _lastStats.chunks = n;
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Several chunks per worker so a worker that drew only cheap
    // points can steal leftovers from one stuck on expensive ones.
    std::size_t workers = static_cast<std::size_t>(_workers);
    std::size_t target_chunks = std::min(n, workers * 4);
    std::size_t chunk_size = (n + target_chunks - 1) / target_chunks;

    // The chunk table is immutable once built; the Chase–Lev deques
    // carry 8-byte indices into it. Each worker owns one deque,
    // seeded round-robin before the threads spawn (thread creation
    // transfers deque ownership with the necessary happens-before
    // edge); thieves take the oldest — largest remaining — chunk
    // under an epoch guard, which protects rings the owner retired
    // while growing.
    std::vector<Chunk> chunks;
    for (std::size_t begin = 0; begin < n; begin += chunk_size)
        chunks.push_back(Chunk{begin, std::min(begin + chunk_size, n)});

    skipsim::core::EpochReclaimer reclaimer(workers);
    std::vector<
        std::unique_ptr<skipsim::core::WorkStealDeque<std::uint64_t>>>
        deques;
    deques.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        deques.push_back(
            std::make_unique<
                skipsim::core::WorkStealDeque<std::uint64_t>>(
                reclaimer));
    for (std::size_t c = 0; c < chunks.size(); ++c)
        deques[c % workers]->push(static_cast<std::uint64_t>(c));

    std::atomic<std::size_t> steals{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker_main = [&](std::size_t self) {
        auto execute = [&](const Chunk &chunk) {
            for (std::size_t i = chunk.begin; i < chunk.end; ++i)
                fn(i);
        };
        try {
            std::uint64_t c = 0;
            while (deques[self]->tryPop(c))
                execute(chunks[static_cast<std::size_t>(c)]);
            // Own deque drained: steal the oldest chunk from the
            // first victim that still has work, round-robin from our
            // right-hand neighbour.
            for (;;) {
                bool stole = false;
                {
                    skipsim::core::EpochReclaimer::Guard guard(
                        reclaimer, self);
                    for (std::size_t off = 1; off < workers; ++off) {
                        std::size_t victim = (self + off) % workers;
                        if (deques[victim]->steal(c)) {
                            stole = true;
                            break;
                        }
                    }
                }
                if (!stole)
                    return;
                steals.fetch_add(1, std::memory_order_relaxed);
                execute(chunks[static_cast<std::size_t>(c)]);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker_main, w);
    for (auto &thread : threads)
        thread.join();

    _lastStats.chunks = chunks.size();
    _lastStats.steals = steals.load();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace skipsim::exec
