#include "exec/pool.hh"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace skipsim::exec
{

namespace
{

/** A contiguous slice [begin, end) of the index range. */
struct Chunk
{
    std::size_t begin = 0;
    std::size_t end = 0;
};

/**
 * One worker's chunk deque. A plain mutex-guarded deque: the engine's
 * work grain is whole simulations, so contention on the deque lock is
 * immeasurable next to the work itself, and the simple structure is
 * easy to reason about (and for TSan to verify).
 */
class WorkDeque
{
  public:
    void
    push(const Chunk &chunk)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _chunks.push_back(chunk);
    }

    /** Owner side: newest chunk first. */
    bool
    popBack(Chunk &out)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_chunks.empty())
            return false;
        out = _chunks.back();
        _chunks.pop_back();
        return true;
    }

    /** Thief side: oldest chunk first. */
    bool
    stealFront(Chunk &out)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_chunks.empty())
            return false;
        out = _chunks.front();
        _chunks.pop_front();
        return true;
    }

  private:
    std::mutex _mutex;
    std::deque<Chunk> _chunks;
};

} // namespace

Pool::Pool(int workers)
{
    if (workers < 0)
        fatal("exec::Pool: worker count must be >= 0");
    _workers = workers == 0 ? hardwareWorkers() : workers;
}

int
Pool::hardwareWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

Pool::RunStats
Pool::lastRunStats() const
{
    return _lastStats;
}

void
Pool::run(std::size_t n, const std::function<void(std::size_t)> &fn) const
{
    _lastStats = RunStats{};
    if (n == 0)
        return;

    if (_workers == 1 || n == 1) {
        _lastStats.chunks = n;
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Several chunks per worker so a worker that drew only cheap
    // points can steal leftovers from one stuck on expensive ones.
    std::size_t workers = static_cast<std::size_t>(_workers);
    std::size_t target_chunks = std::min(n, workers * 4);
    std::size_t chunk_size = (n + target_chunks - 1) / target_chunks;

    std::vector<WorkDeque> deques(workers);
    std::size_t num_chunks = 0;
    for (std::size_t begin = 0; begin < n; begin += chunk_size) {
        Chunk chunk{begin, std::min(begin + chunk_size, n)};
        deques[num_chunks % workers].push(chunk);
        ++num_chunks;
    }

    std::atomic<std::size_t> steals{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker_main = [&](std::size_t self) {
        auto execute = [&](const Chunk &chunk) {
            for (std::size_t i = chunk.begin; i < chunk.end; ++i)
                fn(i);
        };
        try {
            Chunk chunk;
            while (deques[self].popBack(chunk))
                execute(chunk);
            // Own deque drained: steal the oldest chunk from the
            // first victim that still has work, round-robin from our
            // right-hand neighbour.
            for (;;) {
                bool stole = false;
                for (std::size_t off = 1; off < workers; ++off) {
                    std::size_t victim = (self + off) % workers;
                    if (deques[victim].stealFront(chunk)) {
                        steals.fetch_add(1, std::memory_order_relaxed);
                        execute(chunk);
                        stole = true;
                        break;
                    }
                }
                if (!stole)
                    return;
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error)
                first_error = std::current_exception();
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
        threads.emplace_back(worker_main, w);
    for (auto &thread : threads)
        thread.join();

    _lastStats.chunks = num_chunks;
    _lastStats.steals = steals.load();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace skipsim::exec
