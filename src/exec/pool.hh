/**
 * @file
 * Fixed-size worker pool with chunked work-stealing over an index
 * range. Built for experiment fan-out: every unit of work is one
 * independent grid point that writes only its own result slot, so the
 * pool needs no result synchronization beyond the final join. Each
 * worker owns a deque of index chunks; it pops from the back of its
 * own deque (cache-friendly LIFO) and steals from the front of a
 * victim's deque (FIFO, taking the oldest — largest remaining — work)
 * when it runs dry, which keeps skewed per-point costs balanced.
 */

#ifndef SKIPSIM_EXEC_POOL_HH
#define SKIPSIM_EXEC_POOL_HH

#include <cstddef>
#include <functional>

namespace skipsim::exec
{

/**
 * A fixed-worker-count experiment pool. Stateless between run() calls:
 * threads are spawned per run, so the pool itself is trivially
 * copyable and has no shutdown protocol. For experiment workloads
 * (each index simulates a full forward pass or sweep) the per-run
 * spawn cost is noise.
 */
class Pool
{
  public:
    /**
     * @param workers worker thread count; 0 selects hardwareWorkers().
     * @throws skipsim::FatalError for negative counts.
     */
    explicit Pool(int workers = 0);

    /** Worker threads used by run(). */
    int workers() const { return _workers; }

    /** std::thread::hardware_concurrency, clamped to >= 1. */
    static int hardwareWorkers();

    /**
     * Execute fn(i) for every i in [0, n), fanned across the workers.
     * Blocks until all indices complete. With one worker the indices
     * run inline on the calling thread in order. The index space is
     * split into chunks (several per worker) that workers steal from
     * each other, so heavily skewed per-index costs still balance.
     *
     * Exceptions thrown by fn are captured; the first one (in worker
     * encounter order) is rethrown on the calling thread after every
     * worker has drained.
     */
    void run(std::size_t n, const std::function<void(std::size_t)> &fn) const;

    /** Work-stealing counters of the most recent run() (test hook). */
    struct RunStats
    {
        std::size_t chunks = 0; ///< chunks the index range was split into
        std::size_t steals = 0; ///< chunks executed by a non-owner worker
    };

    /** Stats of the last completed run() on this pool object. */
    RunStats lastRunStats() const;

  private:
    int _workers = 1;
    mutable RunStats _lastStats;
};

} // namespace skipsim::exec

#endif // SKIPSIM_EXEC_POOL_HH
