#include "exec/registry.hh"

#include <map>
#include <mutex>

#include "analysis/generation.hh"
#include "analysis/sweep.hh"
#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "common/strutil.hh"
#include "fusion/recommend.hh"
#include "serving/latency_model.hh"
#include "skip/profile.hh"

namespace skipsim::exec
{

namespace
{

/** Run identity common to every built-in analysis result. */
json::Object
identityJson(const RunSpec &spec)
{
    json::Object doc;
    doc.set("model", spec.model().name);
    doc.set("platform", spec.platform().name);
    doc.set("batch", spec.batch());
    doc.set("seq", spec.seqLen());
    doc.set("mode", workload::execModeName(spec.mode()));
    return doc;
}

json::Value
profileAnalysis(const RunSpec &spec)
{
    skip::ProfileResult run = skip::profile(spec.profileConfig());
    json::Object doc = identityJson(spec);
    doc.set("metrics", run.metrics.toJson());
    doc.set("kernel_launches",
            static_cast<unsigned long long>(run.kernelLaunches));
    doc.set("wall_ns", run.wallNs);
    return doc;
}

json::Value
servingAnalysis(const RunSpec &spec)
{
    serving::LatencyModel latency(analysis::runBatchSweep(
        spec.model(), spec.platform(), analysis::defaultBatchGrid(),
        spec.seqLen(), spec.mode(), spec.simOptions()));
    serving::ServingResult result =
        serving::simulateServing(latency, spec.servingConfig());

    json::Object doc = identityJson(spec);
    doc.set("completed", static_cast<unsigned long long>(result.completed));
    doc.set("throughput_rps", result.throughputRps);
    doc.set("p50_ms", result.p50LatencyNs / 1e6);
    doc.set("p95_ms", result.p95LatencyNs / 1e6);
    doc.set("p99_ms", result.p99LatencyNs / 1e6);
    doc.set("mean_batch", result.meanBatch);
    doc.set("utilization", result.utilization);
    doc.set("left_in_queue",
            static_cast<unsigned long long>(result.leftInQueue));
    return doc;
}

json::Value
fusionAnalysis(const RunSpec &spec)
{
    skip::ProfileResult run = skip::profile(spec.profileConfig());
    fusion::FusionReport report = fusion::recommendFromTrace(run.trace);

    json::Object doc = identityJson(spec);
    doc.set("k_eager", static_cast<unsigned long long>(report.kEager));
    json::Value::Array by_length;
    for (const auto &stats : report.byLength) {
        json::Object entry;
        entry.set("length", static_cast<unsigned long long>(stats.length));
        entry.set("ideal_speedup", stats.idealSpeedup);
        by_length.push_back(std::move(entry));
    }
    doc.set("by_length", std::move(by_length));
    doc.set("best_length",
            static_cast<unsigned long long>(report.best().length));
    doc.set("best_speedup", report.best().idealSpeedup);
    return doc;
}

json::Value
generationAnalysis(const RunSpec &spec)
{
    analysis::GenerationConfig config;
    config.batch = spec.batch();
    config.promptLen = spec.seqLen();
    config.genTokens = static_cast<int>(spec.opt("gen-tokens", 8));
    config.mode = spec.mode();
    config.sim = spec.simOptions();
    analysis::GenerationResult result = analysis::simulateGeneration(
        spec.model(), spec.platform(), config);

    json::Object doc = identityJson(spec);
    doc.set("gen_tokens", config.genTokens);
    doc.set("ttft_ms", result.ttftNs / 1e6);
    doc.set("tpot_ms", result.tpotNs() / 1e6);
    doc.set("total_ms", result.totalNs / 1e6);
    doc.set("tokens_per_sec", result.tokensPerSecond(config.batch));
    return doc;
}

json::Value
clusterAnalysis(const RunSpec &spec)
{
    cluster::ClusterSpec config;
    config.model = spec.model();
    int replicas = static_cast<int>(spec.opt("replicas", 4));
    if (replicas < 1)
        fatal("cluster analysis: option 'replicas' must be >= 1");
    cluster::ReplicaSpec replica;
    replica.platform = spec.platform();
    replica.maxActive = static_cast<int>(spec.opt("max-active", 32));
    replica.maxQueue = static_cast<int>(spec.opt("max-queue", 0));
    config.replicas.assign(static_cast<std::size_t>(replicas), replica);
    int router = static_cast<int>(spec.opt("router", 1));
    if (router < 0 || router > 3)
        fatal("cluster analysis: option 'router' must be 0..3 "
              "(round-robin, least-outstanding, weighted, affinity)");
    config.router = static_cast<cluster::RouterPolicy>(router);
    config.arrivalRatePerSec = spec.opt("rate", 100.0);
    config.horizonSec = spec.opt("horizon-sec", 20.0);
    config.promptLen = spec.seqLen();
    config.genTokens = static_cast<int>(spec.opt("gen-tokens", 16));
    config.sessions = static_cast<int>(spec.opt("sessions", 64));
    config.detectDelaySec = spec.opt("detect-ms", 250.0) / 1e3;
    config.ttftSloMs = spec.opt("ttft-slo-ms", 500.0);
    config.e2eSloMs = spec.opt("e2e-slo-ms", 2000.0);
    config.seed = spec.seed();
    config.validate();

    cluster::ClusterResult result = cluster::simulateCluster(config);

    json::Object doc = identityJson(spec);
    doc.set("replica_count", replicas);
    doc.set("router", cluster::routerPolicyName(config.router));
    json::Value report = result.toJson();
    for (const std::string &key : report.asObject().keys())
        doc.set(key, report.asObject().at(key));
    return doc;
}

class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry registry;
        return registry;
    }

    void
    add(const std::string &name, AnalysisFn fn)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _analyses[name] = std::move(fn);
    }

    bool
    has(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _analyses.count(name) != 0;
    }

    AnalysisFn
    find(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _analyses.find(name);
        if (it == _analyses.end()) {
            std::string known;
            for (const auto &[key, fn] : _analyses)
                known += (known.empty() ? "" : ", ") + key;
            fatal(strprintf("exec: unknown analysis '%s' (registered: %s)",
                            name.c_str(), known.c_str()));
        }
        return it->second;
    }

    std::vector<std::string>
    names()
    {
        std::lock_guard<std::mutex> lock(_mutex);
        std::vector<std::string> out;
        for (const auto &[key, fn] : _analyses)
            out.push_back(key);
        return out;
    }

  private:
    Registry()
    {
        _analyses["profile"] = profileAnalysis;
        _analyses["serving"] = servingAnalysis;
        _analyses["fusion"] = fusionAnalysis;
        _analyses["generation"] = generationAnalysis;
        _analyses["cluster"] = clusterAnalysis;
    }

    std::mutex _mutex;
    std::map<std::string, AnalysisFn> _analyses;
};

} // namespace

void
registerAnalysis(const std::string &name, AnalysisFn fn)
{
    if (name.empty())
        fatal("registerAnalysis: empty name");
    if (!fn)
        fatal("registerAnalysis: null analysis function");
    Registry::instance().add(name, std::move(fn));
}

bool
hasAnalysis(const std::string &name)
{
    return Registry::instance().has(name);
}

AnalysisFn
analysisByName(const std::string &name)
{
    return Registry::instance().find(name);
}

std::vector<std::string>
analysisNames()
{
    return Registry::instance().names();
}

} // namespace skipsim::exec
