/**
 * @file
 * Analysis registry: analyses are looked up by name (the
 * workload-factory pattern), so front ends like skipctl and the bench
 * binaries dispatch on a string instead of #include-ing every analysis
 * module. An analysis maps one RunSpec to a JSON result document —
 * JSON is the registry's uniform result currency so reports compose
 * and serialize without per-analysis glue.
 *
 * Built-in analyses (registered on first use):
 *  - "profile":    SKIP metric report of one prefill run.
 *  - "serving":    dynamic-batching serving simulation (options:
 *                  "rate", "horizon-sec", "max-batch", "max-wait-ms").
 *  - "fusion":     proximity-score fusion recommendation.
 *  - "generation": prefill + decode TTFT/TPOT (option: "gen-tokens").
 *  - "cluster":    multi-replica cluster serving simulation (options:
 *                  "replicas", "rate", "horizon-sec", "max-active",
 *                  "gen-tokens", "router" 0..3, "detect-ms",
 *                  "ttft-slo-ms", "e2e-slo-ms", "max-queue",
 *                  "sessions"); seqLen() is the prompt length.
 */

#ifndef SKIPSIM_EXEC_REGISTRY_HH
#define SKIPSIM_EXEC_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "exec/run_spec.hh"
#include "json/value.hh"

namespace skipsim::exec
{

/** An analysis: one RunSpec in, one JSON result document out. */
using AnalysisFn = std::function<json::Value(const RunSpec &)>;

/**
 * Register (or replace) an analysis under @p name. Thread-safe.
 * @throws skipsim::FatalError for an empty name or null function.
 */
void registerAnalysis(const std::string &name, AnalysisFn fn);

/** @return true when @p name resolves (built-in or registered). */
bool hasAnalysis(const std::string &name);

/**
 * Look up an analysis by name.
 * @throws skipsim::FatalError for unknown names; the message lists
 *         the registered analyses so callers can report, not abort.
 */
AnalysisFn analysisByName(const std::string &name);

/** All registered analysis names, sorted. */
std::vector<std::string> analysisNames();

} // namespace skipsim::exec

#endif // SKIPSIM_EXEC_REGISTRY_HH
