#include "exec/run_spec.hh"

#include "common/logging.hh"
#include "common/strutil.hh"
#include "hw/catalog.hh"
#include "hw/serde.hh"
#include "json/schema.hh"
#include "workload/serde.hh"

namespace skipsim::exec
{

RunSpec::RunSpec() = default;

RunSpec
RunSpec::of(const workload::ModelConfig &model)
{
    RunSpec spec;
    spec._model = model;
    return spec;
}

RunSpec
RunSpec::of(const std::string &model_name)
{
    return of(workload::modelByName(model_name));
}

RunSpec &
RunSpec::on(const hw::Platform &platform)
{
    _platform = platform;
    return *this;
}

RunSpec &
RunSpec::on(const std::string &platform_name)
{
    return on(hw::platforms::byName(platform_name));
}

RunSpec &
RunSpec::batch(int n)
{
    if (n <= 0)
        fatal("RunSpec: batch must be positive");
    _batch = n;
    return *this;
}

RunSpec &
RunSpec::seqLen(int n)
{
    if (n <= 0)
        fatal("RunSpec: seqLen must be positive");
    _seqLen = n;
    return *this;
}

RunSpec &
RunSpec::mode(workload::ExecMode m)
{
    _mode = m;
    return *this;
}

RunSpec &
RunSpec::mode(const std::string &mode_name)
{
    return mode(workload::execModeByName(mode_name));
}

RunSpec &
RunSpec::seed(std::uint64_t s)
{
    _seed = s;
    return *this;
}

RunSpec &
RunSpec::jitter(bool on, double frac)
{
    _jitter = on;
    _jitterFrac = frac;
    return *this;
}

RunSpec &
RunSpec::opt(const std::string &key, double value)
{
    _options[key] = value;
    return *this;
}

double
RunSpec::opt(const std::string &key, double def) const
{
    auto it = _options.find(key);
    return it == _options.end() ? def : it->second;
}

RunSpec &
RunSpec::strOpt(const std::string &key, const std::string &value)
{
    _strOptions[key] = value;
    return *this;
}

std::string
RunSpec::strOpt(const std::string &key, const std::string &def) const
{
    auto it = _strOptions.find(key);
    return it == _strOptions.end() ? def : it->second;
}

std::string
RunSpec::label() const
{
    return strprintf("%s/%s b%d s%d %s seed%llu", _model.name.c_str(),
                     _platform.name.c_str(), _batch, _seqLen,
                     workload::execModeName(_mode),
                     static_cast<unsigned long long>(_seed));
}

sim::SimOptions
RunSpec::simOptions() const
{
    sim::SimOptions opts;
    opts.seed = _seed;
    opts.jitter = _jitter;
    opts.jitterFrac = _jitterFrac;
    return opts;
}

skip::ProfileConfig
RunSpec::profileConfig() const
{
    skip::ProfileConfig config;
    config.model = _model;
    config.platform = _platform;
    config.batch = _batch;
    config.seqLen = _seqLen;
    config.mode = _mode;
    config.sim = simOptions();
    return config;
}

serving::ServingConfig
RunSpec::servingConfig() const
{
    serving::ServingConfig config;
    config.arrivalRatePerSec = opt("rate", config.arrivalRatePerSec);
    config.horizonSec = opt("horizon-sec", config.horizonSec);
    config.maxBatch =
        static_cast<int>(opt("max-batch", config.maxBatch));
    config.maxWaitNs = opt("max-wait-ms", config.maxWaitNs / 1e6) * 1e6;
    config.seed = _seed;
    return config;
}

json::Value
RunSpec::toJson() const
{
    json::Object doc;
    json::stampSchemaVersion(doc);
    doc.set("model", _model.name);
    doc.set("platform", _platform.name);
    doc.set("batch", _batch);
    doc.set("seq", _seqLen);
    doc.set("mode", workload::execModeName(_mode));
    doc.set("seed", static_cast<unsigned long long>(_seed));
    doc.set("jitter", _jitter);
    if (_jitter)
        doc.set("jitter_frac", _jitterFrac);
    if (!_options.empty()) {
        json::Object options;
        for (const auto &[key, value] : _options)
            options.set(key, value);
        doc.set("options", std::move(options));
    }
    if (!_strOptions.empty()) {
        json::Object options;
        for (const auto &[key, value] : _strOptions)
            options.set(key, value);
        doc.set("str_options", std::move(options));
    }
    return doc;
}

RunSpec
RunSpec::fromJson(const json::Value &doc)
{
    const json::Object &obj = doc.asObject();
    json::checkSchemaVersion(obj, "RunSpec");
    RunSpec spec;
    if (obj.has("model")) {
        const json::Value &model = obj.at("model");
        spec._model = model.isString()
            ? workload::modelByName(model.asString())
            : workload::modelFromJson(model);
    }
    if (obj.has("platform")) {
        const json::Value &platform = obj.at("platform");
        spec._platform = platform.isString()
            ? hw::platforms::byName(platform.asString())
            : hw::platformFromJson(platform);
    }
    if (obj.has("batch"))
        spec.batch(static_cast<int>(obj.at("batch").asInt()));
    if (obj.has("seq"))
        spec.seqLen(static_cast<int>(obj.at("seq").asInt()));
    if (obj.has("mode"))
        spec.mode(obj.at("mode").asString());
    if (obj.has("seed")) {
        // Via double so seeds in the upper uint64 range survive the
        // round trip instead of saturating an int64 conversion.
        spec.seed(
            static_cast<std::uint64_t>(obj.at("seed").asDouble()));
    }
    if (obj.has("jitter"))
        spec._jitter = obj.at("jitter").asBool();
    if (obj.has("jitter_frac"))
        spec._jitterFrac = obj.at("jitter_frac").asDouble();
    if (obj.has("options")) {
        for (const auto &key : obj.at("options").asObject().keys())
            spec._options[key] =
                obj.at("options").asObject().at(key).asDouble();
    }
    if (obj.has("str_options")) {
        for (const auto &key : obj.at("str_options").asObject().keys())
            spec._strOptions[key] =
                obj.at("str_options").asObject().at(key).asString();
    }
    return spec;
}

} // namespace skipsim::exec
