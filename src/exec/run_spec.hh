/**
 * @file
 * RunSpec: the one description of "a run" shared by every entry point.
 * Historically the profile path (skip::ProfileConfig), the raw
 * simulator (sim::SimOptions) and the serving simulator
 * (serving::ServingConfig) each invented their own seed/batch/naming
 * conventions; RunSpec unifies them behind a fluent builder
 *
 *     exec::RunSpec::of("GPT2").on("GH200").batch(8).seqLen(512).seed(42)
 *
 * and converts to each legacy config type, which remain as thin
 * compatibility aliases for out-of-tree callers.
 */

#ifndef SKIPSIM_EXEC_RUN_SPEC_HH
#define SKIPSIM_EXEC_RUN_SPEC_HH

#include <cstdint>
#include <map>
#include <string>

#include "hw/platform.hh"
#include "json/value.hh"
#include "serving/server_sim.hh"
#include "sim/simulator.hh"
#include "skip/profile.hh"
#include "workload/exec_mode.hh"
#include "workload/model_config.hh"

namespace skipsim::exec
{

/**
 * Everything identifying one experiment point. Construct with of(),
 * chain the fluent setters, then hand it to a Runner / analysis or
 * convert to a legacy config type.
 */
class RunSpec
{
  public:
    RunSpec();

    /** @name Fluent construction
     *  @{ */
    static RunSpec of(const workload::ModelConfig &model);
    /** @throws skipsim::FatalError for unknown catalog names. */
    static RunSpec of(const std::string &model_name);

    RunSpec &on(const hw::Platform &platform);
    /** @throws skipsim::FatalError for unknown catalog names. */
    RunSpec &on(const std::string &platform_name);

    RunSpec &batch(int n);
    RunSpec &seqLen(int n);
    RunSpec &mode(workload::ExecMode m);
    /** @throws skipsim::FatalError for unknown mode names. */
    RunSpec &mode(const std::string &mode_name);
    RunSpec &seed(std::uint64_t s);
    /** Opt into timing jitter (determinism is the default). */
    RunSpec &jitter(bool on, double frac = 0.02);
    /** Analysis-specific numeric knob (e.g. "rate" for serving). */
    RunSpec &opt(const std::string &key, double value);
    /** Analysis-specific string knob (e.g. "scenario" for scenario). */
    RunSpec &strOpt(const std::string &key, const std::string &value);
    /** @} */

    /** @name Accessors
     *  @{ */
    const workload::ModelConfig &model() const { return _model; }
    const hw::Platform &platform() const { return _platform; }
    int batch() const { return _batch; }
    int seqLen() const { return _seqLen; }
    workload::ExecMode mode() const { return _mode; }
    std::uint64_t seed() const { return _seed; }
    bool jitterOn() const { return _jitter; }
    double jitterFrac() const { return _jitterFrac; }
    double opt(const std::string &key, double def) const;
    std::string strOpt(const std::string &key,
                       const std::string &def) const;
    const std::map<std::string, double> &options() const { return _options; }
    const std::map<std::string, std::string> &strOptions() const
    {
        return _strOptions;
    }
    /** @} */

    /** "Model/Platform b8 s512 eager seed42" display identity. */
    std::string label() const;

    /** @name Conversions to the legacy per-module config structs
     *  @{ */
    sim::SimOptions simOptions() const;
    skip::ProfileConfig profileConfig() const;
    /**
     * Serving knobs from the option map: "rate" (requests/s),
     * "horizon-sec", "max-batch", "max-wait-ms"; arrival seed from
     * seed().
     */
    serving::ServingConfig servingConfig() const;
    /** @} */

    /**
     * JSON round trip. Models/platforms serialize by catalog name;
     * fromJson also accepts inline model/platform objects
     * (workload::modelFromJson / hw::platformFromJson).
     */
    json::Value toJson() const;
    /** @throws skipsim::FatalError on malformed documents. */
    static RunSpec fromJson(const json::Value &doc);

  private:
    workload::ModelConfig _model;
    hw::Platform _platform;
    int _batch = 1;
    int _seqLen = 512;
    workload::ExecMode _mode = workload::ExecMode::Eager;
    std::uint64_t _seed = 42;
    bool _jitter = false;
    double _jitterFrac = 0.02;
    std::map<std::string, double> _options;
    std::map<std::string, std::string> _strOptions;
};

} // namespace skipsim::exec

#endif // SKIPSIM_EXEC_RUN_SPEC_HH
