#include "exec/runner.hh"

#include <chrono>
#include <memory>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "exec/grid.hh"
#include "obs/harness.hh"

namespace skipsim::exec
{

namespace
{

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

std::size_t
GridReport::failed() const
{
    std::size_t n = 0;
    for (const auto &point : points)
        n += point.ok() ? 0 : 1;
    return n;
}

json::Value
GridReport::resultsJson() const
{
    json::Value::Array out;
    for (const auto &point : points) {
        json::Object entry;
        entry.set("index", static_cast<unsigned long long>(point.index));
        entry.set("spec", point.spec.toJson());
        if (point.ok())
            entry.set("result", point.value);
        else
            entry.set("error", point.error);
        out.push_back(std::move(entry));
    }
    return out;
}

json::Value
GridReport::toJson() const
{
    json::Object doc;
    doc.set("analysis", analysis);
    doc.set("jobs", jobs);
    doc.set("wall_ms", wallMs);
    doc.set("points", static_cast<unsigned long long>(points.size()));
    doc.set("failed", static_cast<unsigned long long>(failed()));

    json::Value::Array out;
    for (const auto &point : points) {
        json::Object entry;
        entry.set("index", static_cast<unsigned long long>(point.index));
        entry.set("spec", point.spec.toJson());
        entry.set("wall_ms", point.wallMs);
        if (point.ok())
            entry.set("result", point.value);
        else
            entry.set("error", point.error);
        out.push_back(std::move(entry));
    }
    doc.set("results", std::move(out));
    return doc;
}

Runner::Runner(int jobs)
{
    if (jobs < 0)
        fatal("exec::Runner: job count must be >= 0");
    _jobs = jobs == 0 ? Pool::hardwareWorkers() : jobs;
}

json::Value
Runner::runOne(const RunSpec &spec, const std::string &analysis) const
{
    return analysisByName(analysis)(spec);
}

GridReport
Runner::runGrid(const SweepSpec &spec, const std::string &analysis) const
{
    return runGrid(spec, analysisByName(analysis), analysis);
}

GridReport
Runner::runGrid(const SweepSpec &spec, const AnalysisFn &fn,
                const std::string &label) const
{
    if (!fn)
        fatal("exec::Runner: null analysis function");

    GridReport report;
    report.analysis = label;
    report.jobs = _jobs;

    auto grid_start = std::chrono::steady_clock::now();
    obs::HarnessTracer *tracer = _tracer;
    report.points = exec::runGrid(
        spec,
        [&fn, &label, tracer](const RunSpec &point, std::size_t index) {
            PointResult result;
            result.index = index;
            result.spec = point;
            std::unique_ptr<obs::HarnessTracer::Scope> span;
            if (tracer != nullptr)
                span = std::make_unique<obs::HarnessTracer::Scope>(
                    *tracer,
                    strprintf("point %zu: %s", index,
                              point.label().c_str()));
            auto point_start = std::chrono::steady_clock::now();
            try {
                result.value = fn(point);
            } catch (const FatalError &err) {
                result.error = err.what();
                // A sweep can fail the same way at hundreds of points;
                // one warning per distinct (analysis, message) pair
                // keeps stderr readable while still surfacing it.
                warnOnce(label + "|" + result.error,
                         strprintf("analysis '%s' failed: %s",
                                   label.c_str(),
                                   result.error.c_str()));
            }
            result.wallMs = elapsedMs(point_start);
            return result;
        },
        _jobs);
    report.wallMs = elapsedMs(grid_start);
    return report;
}

} // namespace skipsim::exec
