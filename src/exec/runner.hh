/**
 * @file
 * Runner: the single entry point for experiment execution. A Runner
 * binds a worker count, dispatches RunSpecs to analyses through the
 * registry (by name), and collects per-point results with wall-clock
 * timing so parallel speedup is directly measurable. Point failures
 * (FatalError from an analysis) are recorded per point, not aborted,
 * so one bad grid point cannot sink a thousand-point sweep.
 */

#ifndef SKIPSIM_EXEC_RUNNER_HH
#define SKIPSIM_EXEC_RUNNER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exec/registry.hh"
#include "exec/run_spec.hh"
#include "exec/sweep_spec.hh"
#include "json/value.hh"

namespace skipsim::obs
{
class HarnessTracer;
}

namespace skipsim::exec
{

/** One grid point's outcome. */
struct PointResult
{
    std::size_t index = 0;
    RunSpec spec;

    /** Analysis result document; Null when the point failed. */
    json::Value value;

    /** Host wall-clock spent on this point, ms. */
    double wallMs = 0.0;

    /** Failure message; empty on success. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** A whole grid run's outcome. */
struct GridReport
{
    std::string analysis;
    int jobs = 1;

    /** Host wall-clock for the whole grid, ms. */
    double wallMs = 0.0;

    /** Per-point outcomes in grid-index order. */
    std::vector<PointResult> points;

    /** Points that failed. */
    std::size_t failed() const;

    /**
     * Deterministic content only (spec + per-point result documents,
     * no host timing): two runs of the same grid and analysis compare
     * byte-identical through json::write() regardless of job count.
     */
    json::Value resultsJson() const;

    /** Full report including host timings and failure messages. */
    json::Value toJson() const;
};

/** Experiment runner over the analysis registry. */
class Runner
{
  public:
    /**
     * @param jobs worker threads for grids (0 = all cores, 1 = serial).
     * @throws skipsim::FatalError for negative job counts.
     */
    explicit Runner(int jobs = 1);

    int jobs() const { return _jobs; }

    /**
     * Run one point through a registered analysis.
     * @throws skipsim::FatalError for unknown analysis names and
     *         analysis failures (single-point runs surface errors).
     */
    json::Value runOne(const RunSpec &spec,
                       const std::string &analysis) const;

    /**
     * Fan a grid out across the workers. The analysis name resolves
     * once, up front (@throws skipsim::FatalError when unknown);
     * per-point analysis failures are recorded in the report instead.
     */
    GridReport runGrid(const SweepSpec &spec,
                       const std::string &analysis) const;

    /** Same, with an explicit analysis function. */
    GridReport runGrid(const SweepSpec &spec, const AnalysisFn &fn,
                       const std::string &label = "custom") const;

    /**
     * Attach a harness self-tracer: every grid point records one
     * wall-clock span ("point <i>: <spec label>") on its worker
     * thread's track, so parallel speedup and stragglers are visible
     * in Perfetto. Pass nullptr to detach. The tracer must outlive the
     * runs it observes; it does not affect results.
     */
    void setHarnessTracer(obs::HarnessTracer *tracer)
    {
        _tracer = tracer;
    }

    obs::HarnessTracer *harnessTracer() const { return _tracer; }

  private:
    int _jobs = 1;
    obs::HarnessTracer *_tracer = nullptr;
};

} // namespace skipsim::exec

#endif // SKIPSIM_EXEC_RUNNER_HH
