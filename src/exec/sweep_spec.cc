#include "exec/sweep_spec.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "hw/catalog.hh"
#include "hw/serde.hh"
#include "json/parser.hh"
#include "json/schema.hh"
#include "json/writer.hh"
#include "workload/serde.hh"

namespace skipsim::exec
{

std::size_t
SweepSpec::size() const
{
    return models.size() * platforms.size() * batches.size() *
        seqLens.size() * modes.size();
}

void
SweepSpec::validate() const
{
    if (models.empty())
        fatal("SweepSpec: no models");
    if (platforms.empty())
        fatal("SweepSpec: no platforms");
    if (batches.empty())
        fatal("SweepSpec: no batches");
    if (seqLens.empty())
        fatal("SweepSpec: no seqLens");
    if (modes.empty())
        fatal("SweepSpec: no modes");
}

RunSpec
SweepSpec::at(std::size_t index) const
{
    validate();
    if (index >= size())
        fatal(strprintf("SweepSpec: point %zu out of range (size %zu)",
                        index, size()));

    // Mixed-radix decode; mode varies fastest, model slowest.
    std::size_t rest = index;
    std::size_t mode_i = rest % modes.size();
    rest /= modes.size();
    std::size_t seq_i = rest % seqLens.size();
    rest /= seqLens.size();
    std::size_t batch_i = rest % batches.size();
    rest /= batches.size();
    std::size_t platform_i = rest % platforms.size();
    rest /= platforms.size();
    std::size_t model_i = rest;

    RunSpec spec = RunSpec::of(models[model_i])
                       .on(platforms[platform_i])
                       .batch(batches[batch_i])
                       .seqLen(seqLens[seq_i])
                       .mode(modes[mode_i])
                       .seed(mixSeed(baseSeed, index))
                       .jitter(jitter, jitterFrac);
    for (const auto &[key, value] : options)
        spec.opt(key, value);
    for (const auto &[key, value] : strOptions)
        spec.strOpt(key, value);
    return spec;
}

std::vector<RunSpec>
SweepSpec::expand() const
{
    validate();
    std::vector<RunSpec> points;
    points.reserve(size());
    for (std::size_t i = 0; i < size(); ++i)
        points.push_back(at(i));
    return points;
}

json::Value
SweepSpec::toJson() const
{
    json::Object doc;
    json::stampSchemaVersion(doc);

    json::Value::Array model_names;
    for (const auto &model : models)
        model_names.emplace_back(model.name);
    doc.set("models", std::move(model_names));

    json::Value::Array platform_names;
    for (const auto &platform : platforms)
        platform_names.emplace_back(platform.name);
    doc.set("platforms", std::move(platform_names));

    json::Value::Array batch_list;
    for (int batch : batches)
        batch_list.emplace_back(batch);
    doc.set("batches", std::move(batch_list));

    json::Value::Array seq_list;
    for (int seq : seqLens)
        seq_list.emplace_back(seq);
    doc.set("seqLens", std::move(seq_list));

    json::Value::Array mode_names;
    for (workload::ExecMode mode : modes)
        mode_names.emplace_back(workload::execModeName(mode));
    doc.set("modes", std::move(mode_names));

    doc.set("seed", static_cast<unsigned long long>(baseSeed));
    doc.set("jitter", jitter);
    if (jitter)
        doc.set("jitter_frac", jitterFrac);
    if (!options.empty()) {
        json::Object opts;
        for (const auto &[key, value] : options)
            opts.set(key, value);
        doc.set("options", std::move(opts));
    }
    if (!strOptions.empty()) {
        json::Object opts;
        for (const auto &[key, value] : strOptions)
            opts.set(key, value);
        doc.set("str_options", std::move(opts));
    }
    return doc;
}

SweepSpec
SweepSpec::fromJson(const json::Value &doc)
{
    const json::Object &obj = doc.asObject();
    json::checkSchemaVersion(obj, "SweepSpec");
    SweepSpec spec;

    if (!obj.has("models"))
        fatal("SweepSpec: missing 'models' array");
    for (const auto &entry : obj.at("models").asArray()) {
        spec.models.push_back(entry.isString()
                                  ? workload::modelByName(entry.asString())
                                  : workload::modelFromJson(entry));
    }

    if (!obj.has("platforms"))
        fatal("SweepSpec: missing 'platforms' array");
    for (const auto &entry : obj.at("platforms").asArray()) {
        spec.platforms.push_back(entry.isString()
                                     ? hw::platforms::byName(entry.asString())
                                     : hw::platformFromJson(entry));
    }

    auto int_axis = [&obj](const char *key, std::vector<int> def) {
        if (!obj.has(key))
            return def;
        std::vector<int> out;
        for (const auto &entry : obj.at(key).asArray())
            out.push_back(static_cast<int>(entry.asInt()));
        return out;
    };
    spec.batches = int_axis("batches", spec.batches);
    spec.seqLens = int_axis("seqLens", spec.seqLens);

    if (obj.has("modes")) {
        spec.modes.clear();
        for (const auto &entry : obj.at("modes").asArray())
            spec.modes.push_back(
                workload::execModeByName(entry.asString()));
    }

    if (obj.has("seed")) {
        // Via double so seeds in the upper uint64 range survive the
        // round trip instead of saturating an int64 conversion.
        spec.baseSeed =
            static_cast<std::uint64_t>(obj.at("seed").asDouble());
    }
    if (obj.has("jitter"))
        spec.jitter = obj.at("jitter").asBool();
    if (obj.has("jitter_frac"))
        spec.jitterFrac = obj.at("jitter_frac").asDouble();
    if (obj.has("options")) {
        for (const auto &key : obj.at("options").asObject().keys())
            spec.options[key] =
                obj.at("options").asObject().at(key).asDouble();
    }
    if (obj.has("str_options")) {
        for (const auto &key : obj.at("str_options").asObject().keys())
            spec.strOptions[key] =
                obj.at("str_options").asObject().at(key).asString();
    }

    spec.validate();
    return spec;
}

SweepSpec
SweepSpec::load(const std::string &path)
{
    return fromJson(json::parseFile(path));
}

void
SweepSpec::save(const std::string &path) const
{
    json::writeFile(path, toJson());
}

} // namespace skipsim::exec
