/**
 * @file
 * SweepSpec: a cartesian experiment grid over models x platforms x
 * batches x seqLens x modes. Point i of the grid expands to a RunSpec
 * whose PRNG seed is mixSeed(baseSeed, i), so a point's random stream
 * depends only on its grid position — never on which worker ran it or
 * in what order — making parallel and serial sweeps byte-identical.
 */

#ifndef SKIPSIM_EXEC_SWEEP_SPEC_HH
#define SKIPSIM_EXEC_SWEEP_SPEC_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/run_spec.hh"
#include "hw/platform.hh"
#include "json/value.hh"
#include "workload/exec_mode.hh"
#include "workload/model_config.hh"

namespace skipsim::exec
{

/** The five grid axes plus shared run settings. */
struct SweepSpec
{
    std::vector<workload::ModelConfig> models;
    std::vector<hw::Platform> platforms;
    std::vector<int> batches{1};
    std::vector<int> seqLens{512};
    std::vector<workload::ExecMode> modes{workload::ExecMode::Eager};

    /** Per-point seeds derive as mixSeed(baseSeed, pointIndex). */
    std::uint64_t baseSeed = 42;

    /** Timing jitter for every point (determinism is the default). */
    bool jitter = false;
    double jitterFrac = 0.02;

    /** Analysis-specific knobs copied onto every point's RunSpec. */
    std::map<std::string, double> options;

    /** String knobs copied onto every point's RunSpec. */
    std::map<std::string, std::string> strOptions;

    /** Grid cardinality (product of the five axis sizes). */
    std::size_t size() const;

    /**
     * Expand grid point @p index to a RunSpec (mode varies fastest,
     * then seqLen, batch, platform; model varies slowest) with its
     * derived per-point seed.
     * @throws skipsim::FatalError when index >= size() or an axis is
     *         empty.
     */
    RunSpec at(std::size_t index) const;

    /** All points in submission (index) order. */
    std::vector<RunSpec> expand() const;

    /** @throws skipsim::FatalError when any axis is empty. */
    void validate() const;

    /**
     * JSON round trip. Axes serialize as arrays; models/platforms by
     * catalog name (fromJson also accepts inline objects). Example:
     *
     *     {"models": ["GPT2", "Bert-Base-Uncased"],
     *      "platforms": ["GH200"],
     *      "batches": [1, 8, 64],
     *      "seqLens": [512],
     *      "modes": ["eager"],
     *      "seed": 42}
     */
    json::Value toJson() const;
    /** @throws skipsim::FatalError on malformed documents. */
    static SweepSpec fromJson(const json::Value &doc);

    /** File round trip via src/json. */
    static SweepSpec load(const std::string &path);
    void save(const std::string &path) const;
};

} // namespace skipsim::exec

#endif // SKIPSIM_EXEC_SWEEP_SPEC_HH
