#include "fusion/apply.hh"

#include <set>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "workload/builder.hh"

namespace skipsim::fusion
{

const char *
applyModeName(ApplyMode mode)
{
    switch (mode) {
      case ApplyMode::LaunchOnly: return "launch-only";
      case ApplyMode::CollapseOps: return "collapse-ops";
    }
    panic("applyModeName: invalid ApplyMode");
}

AppliedFusion
applyFusion(const workload::OperatorGraph &graph,
            std::size_t chain_length, ApplyMode mode)
{
    if (chain_length < 2)
        fatal("applyFusion: chain length must be >= 2");

    workload::Timeline timeline = workload::flattenGraph(graph);

    // Kernel-position view of the timeline (memcpys excluded) plus the
    // mapping back to step indices.
    std::vector<std::string> sequence;
    std::vector<std::size_t> step_of_kernel;
    for (std::size_t i = 0; i < timeline.steps.size(); ++i) {
        if (!timeline.steps[i].launch.isMemcpy) {
            sequence.push_back(timeline.steps[i].launch.kernelName);
            step_of_kernel.push_back(i);
        }
    }

    AppliedFusion result;
    result.launchesBefore = sequence.size();

    // Deterministic (PS = 1) windows of the requested length.
    ProximityAnalyzer analyzer(sequence);
    std::set<std::vector<std::string>> deterministic;
    for (const auto &cand : analyzer.candidates(chain_length, 1.0))
        deterministic.insert(cand.kernels);

    // Greedy non-overlapping occurrence selection (Eq. 7 accounting),
    // restricted to runs whose steps are contiguous in the timeline
    // (no memcpy interleaved inside a fused region).
    std::vector<bool> fused_start(sequence.size(), false);
    std::vector<bool> fused_member(sequence.size(), false);
    std::size_t i = 0;
    while (i + chain_length <= sequence.size()) {
        std::vector<std::string> window(
            sequence.begin() + static_cast<long>(i),
            sequence.begin() + static_cast<long>(i + chain_length));
        bool contiguous =
            step_of_kernel[i + chain_length - 1] - step_of_kernel[i] ==
            chain_length - 1;
        if (contiguous && deterministic.count(window)) {
            fused_start[i] = true;
            for (std::size_t j = i; j < i + chain_length; ++j)
                fused_member[j] = true;
            ++result.chainsApplied;
            i += chain_length;
        } else {
            ++i;
        }
    }

    // Rewrite the timeline.
    workload::Timeline rewritten;
    double pending_cpu = 0.0;
    std::size_t fused_id = 0;
    std::size_t kernel_pos = 0;
    for (std::size_t si = 0; si < timeline.steps.size(); ++si) {
        const workload::TimelineStep &step = timeline.steps[si];
        if (step.launch.isMemcpy) {
            workload::TimelineStep copy = step;
            copy.cpuBeforeNs += pending_cpu;
            pending_cpu = 0.0;
            rewritten.steps.push_back(std::move(copy));
            continue;
        }

        std::size_t pos = kernel_pos++;
        if (!fused_member[pos]) {
            workload::TimelineStep copy = step;
            copy.cpuBeforeNs += pending_cpu;
            pending_cpu = 0.0;
            rewritten.steps.push_back(std::move(copy));
            continue;
        }

        if (fused_start[pos]) {
            // Emit the fused kernel in place of the first member.
            workload::TimelineStep fused;
            fused.opName = "ps_fusion::launch";
            fused.cpuBeforeNs = pending_cpu + step.cpuBeforeNs;
            if (mode == ApplyMode::CollapseOps) {
                // The region's dispatch collapses into one compiled
                // call; interior segments are dropped entirely below.
                fused.cpuBeforeNs =
                    pending_cpu + workload::opCompiledCpuNs;
            }
            pending_cpu = 0.0;
            fused.launch.kernelName = strprintf(
                "ps_fused_L%zu_%zu", chain_length, fused_id++);
            // Concatenate member work in order.
            for (std::size_t j = pos; j < pos + chain_length; ++j) {
                const auto &member =
                    timeline.steps[step_of_kernel[j]].launch;
                for (const auto &w : member.work)
                    fused.launch.work.push_back(w);
            }
            rewritten.steps.push_back(std::move(fused));
        } else {
            // Interior member: its launch disappears; its CPU segment
            // survives in LaunchOnly mode and collapses otherwise.
            if (mode == ApplyMode::LaunchOnly)
                pending_cpu += step.cpuBeforeNs;
        }
    }
    rewritten.cpuTailNs = timeline.cpuTailNs + pending_cpu;

    result.graph = workload::timelineToGraph(rewritten);
    result.launchesAfter =
        result.launchesBefore - result.chainsApplied * (chain_length - 1);
    result.idealSpeedup = result.launchesAfter > 0
        ? static_cast<double>(result.launchesBefore) /
            static_cast<double>(result.launchesAfter)
        : 1.0;
    return result;
}

} // namespace skipsim::fusion
