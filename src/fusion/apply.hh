/**
 * @file
 * Fusion application prototype — the paper's stated future work
 * ("implement a more comprehensive kernel fusion prototype to validate
 * the predicted performance gains"). Takes an operator graph, mines
 * deterministic chains of a given length (PS = 1), rewrites the graph
 * so each selected chain executes as one fused kernel, and returns the
 * rewritten graph for simulation. Comparing the simulated speedup with
 * Eq. 8's idealized prediction quantifies how much of the predicted
 * gain survives real execution effects (remaining framework dispatch,
 * queuing).
 */

#ifndef SKIPSIM_FUSION_APPLY_HH
#define SKIPSIM_FUSION_APPLY_HH

#include <cstddef>

#include "fusion/proximity.hh"
#include "workload/flatten.hh"
#include "workload/op_graph.hh"

namespace skipsim::fusion
{

/** How aggressively the rewriter removes CPU work alongside launches. */
enum class ApplyMode
{
    /**
     * Only launches are saved: the framework still dispatches every
     * original operator (a runtime that intercepts launches). This is
     * the conservative floor of a fusion deployment.
     */
    LaunchOnly,

    /**
     * The fused region's operators collapse into one compiled call
     * (a Triton/compiler-style deployment): both the launches and the
     * interior framework dispatch are saved.
     */
    CollapseOps,
};

/** @return "launch-only" / "collapse-ops". */
const char *applyModeName(ApplyMode mode);

/** Result of applying fusion to a graph. */
struct AppliedFusion
{
    /** The rewritten graph, ready for simulation. */
    workload::OperatorGraph graph;

    /** Kernel launches before rewriting (K_eager). */
    std::size_t launchesBefore = 0;

    /** Kernel launches after rewriting (K_fused, Eq. 7). */
    std::size_t launchesAfter = 0;

    /** Non-overlapping deterministic chain occurrences fused. */
    std::size_t chainsApplied = 0;

    /** Eq. 8's idealized launch-saving speedup for this rewriting. */
    double idealSpeedup = 1.0;
};

/**
 * Apply proximity-score fusion to a graph.
 *
 * Chains are mined from the graph's own kernel sequence; occurrences
 * are selected greedily left-to-right, non-overlapping, PS = 1 —
 * exactly the accounting behind Eq. 7. Each selected occurrence is
 * replaced by one fused kernel whose work components are the
 * concatenation of the original kernels' components (execution time is
 * preserved; only launches — and, in CollapseOps mode, interior
 * dispatch — are saved). Memcpys never fuse.
 *
 * @param graph the graph to rewrite (typically eager mode).
 * @param chain_length L; chains of exactly this length are applied.
 * @param mode CPU-cost treatment of fused regions.
 * @throws skipsim::FatalError when chain_length < 2.
 */
AppliedFusion applyFusion(const workload::OperatorGraph &graph,
                          std::size_t chain_length,
                          ApplyMode mode = ApplyMode::LaunchOnly);

} // namespace skipsim::fusion

#endif // SKIPSIM_FUSION_APPLY_HH
