#include "fusion/proximity.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace skipsim::fusion
{

ProximityAnalyzer::ProximityAnalyzer(std::vector<std::string> sequence)
{
    _seq.reserve(sequence.size());
    for (auto &name : sequence) {
        auto [it, inserted] =
            _ids.emplace(name, static_cast<int>(_names.size()));
        if (inserted)
            _names.push_back(name);
        _seq.push_back(it->second);
    }
    _kernelFreq.assign(_names.size(), 0);
    for (int id : _seq)
        ++_kernelFreq[static_cast<std::size_t>(id)];
}

int
ProximityAnalyzer::internedId(const std::string &name) const
{
    auto it = _ids.find(name);
    return it == _ids.end() ? -1 : it->second;
}

std::size_t
ProximityAnalyzer::kernelFrequency(const std::string &kernel) const
{
    int id = internedId(kernel);
    return id < 0 ? 0 : _kernelFreq[static_cast<std::size_t>(id)];
}

std::size_t
ProximityAnalyzer::chainFrequency(
    const std::vector<std::string> &chain) const
{
    if (chain.empty() || chain.size() > _seq.size())
        return 0;
    std::vector<int> ids;
    ids.reserve(chain.size());
    for (const auto &name : chain) {
        int id = internedId(name);
        if (id < 0)
            return 0;
        ids.push_back(id);
    }
    std::size_t count = 0;
    for (std::size_t i = 0; i + ids.size() <= _seq.size(); ++i) {
        bool match = true;
        for (std::size_t j = 0; j < ids.size(); ++j) {
            if (_seq[i + j] != ids[j]) {
                match = false;
                break;
            }
        }
        if (match)
            ++count;
    }
    return count;
}

double
ProximityAnalyzer::proximityScore(
    const std::vector<std::string> &chain) const
{
    if (chain.empty())
        fatal("proximityScore: empty chain");
    std::size_t f_chain = chainFrequency(chain);
    if (f_chain == 0)
        return 0.0;
    std::size_t f_first = kernelFrequency(chain.front());
    return static_cast<double>(f_chain) / static_cast<double>(f_first);
}

std::map<std::vector<int>, std::size_t>
ProximityAnalyzer::windowCounts(std::size_t length) const
{
    std::map<std::vector<int>, std::size_t> counts;
    if (length == 0 || length > _seq.size())
        return counts;
    for (std::size_t i = 0; i + length <= _seq.size(); ++i) {
        std::vector<int> window(_seq.begin() + static_cast<long>(i),
                                _seq.begin() + static_cast<long>(i + length));
        ++counts[window];
    }
    return counts;
}

ChainStats
ProximityAnalyzer::analyze(std::size_t length) const
{
    if (length < 2)
        fatal("ProximityAnalyzer::analyze: chain length must be >= 2");

    ChainStats stats;
    stats.length = length;
    stats.kEager = _seq.size();
    stats.kFused = _seq.size();

    auto counts = windowCounts(length);
    std::set<std::vector<int>> deterministic;
    for (const auto &[window, freq] : counts) {
        ++stats.uniqueChains;
        stats.totalInstances += freq;
        std::size_t f_first =
            _kernelFreq[static_cast<std::size_t>(window.front())];
        if (freq == f_first)
            deterministic.insert(window);
    }
    stats.deterministicChains = deterministic.size();

    // Greedy left-to-right non-overlapping selection of deterministic
    // chain occurrences: matches the paper's "actual deterministic
    // kernel chains that can be fused ... non-overlapping and PS = 1".
    std::size_t i = 0;
    while (i + length <= _seq.size()) {
        std::vector<int> window(_seq.begin() + static_cast<long>(i),
                                _seq.begin() + static_cast<long>(i + length));
        if (deterministic.count(window)) {
            ++stats.fusedChains;
            i += length;
        } else {
            ++i;
        }
    }
    stats.kernelsFused = stats.fusedChains * length;
    stats.kFused = stats.kEager - stats.fusedChains * (length - 1);
    stats.idealSpeedup = stats.kFused > 0
        ? static_cast<double>(stats.kEager) /
            static_cast<double>(stats.kFused)
        : 1.0;
    return stats;
}

std::vector<ChainStats>
ProximityAnalyzer::sweep(const std::vector<std::size_t> &lengths) const
{
    std::vector<ChainStats> out;
    out.reserve(lengths.size());
    for (std::size_t length : lengths)
        out.push_back(analyze(length));
    return out;
}

std::vector<ChainCandidate>
ProximityAnalyzer::candidates(std::size_t length, double threshold) const
{
    if (threshold < 0.0 || threshold > 1.0)
        fatal("ProximityAnalyzer::candidates: threshold must be in [0,1]");

    std::vector<ChainCandidate> out;
    for (const auto &[window, freq] : windowCounts(length)) {
        std::size_t f_first =
            _kernelFreq[static_cast<std::size_t>(window.front())];
        double ps = static_cast<double>(freq) /
            static_cast<double>(f_first);
        if (ps + 1e-12 < threshold)
            continue;
        ChainCandidate cand;
        cand.frequency = freq;
        cand.proximityScore = ps;
        cand.kernels.reserve(window.size());
        for (int id : window)
            cand.kernels.push_back(_names[static_cast<std::size_t>(id)]);
        out.push_back(std::move(cand));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const ChainCandidate &a, const ChainCandidate &b) {
                         if (a.frequency != b.frequency)
                             return a.frequency > b.frequency;
                         return a.kernels < b.kernels;
                     });
    return out;
}

std::vector<std::size_t>
defaultChainLengths()
{
    return {2, 4, 8, 16, 32, 64, 128, 256};
}

std::vector<std::string>
kernelSequenceFromTrace(const trace::Trace &trace)
{
    std::vector<const trace::TraceEvent *> kernels;
    for (const auto &ev : trace.events()) {
        if (ev.kind == trace::EventKind::Kernel)
            kernels.push_back(&ev);
    }
    std::stable_sort(kernels.begin(), kernels.end(),
                     [](const trace::TraceEvent *a,
                        const trace::TraceEvent *b) {
                         return a->tsBeginNs < b->tsBeginNs;
                     });
    std::vector<std::string> out;
    out.reserve(kernels.size());
    for (const auto *k : kernels)
        out.push_back(k->name);
    return out;
}

} // namespace skipsim::fusion
