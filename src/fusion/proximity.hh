/**
 * @file
 * Proximity-score kernel-chain mining (paper Sec. III-C, Eqs. 6-8).
 *
 * Given the kernel execution sequence of a run, a chain C of length L
 * starting with kernel k_i has proximity score
 *
 *     PS(C) = f(C) / f(k_i)
 *
 * where f(C) is the chain's occurrence count and f(k_i) the count of
 * its first kernel. PS(C) = 1 identifies a deterministic pattern:
 * every time k_i executes, the same L-1 kernels follow — an ideal
 * fusion candidate. Fusing C_fused non-overlapping deterministic
 * chains reduces launches to
 *
 *     K_fused = K_eager - C_fused * (L - 1)            (Eq. 7)
 *
 * for an idealized launch-saving speedup K_eager / K_fused (Eq. 8).
 */

#ifndef SKIPSIM_FUSION_PROXIMITY_HH
#define SKIPSIM_FUSION_PROXIMITY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace skipsim::fusion
{

/** Aggregate chain-mining statistics for one chain length L. */
struct ChainStats
{
    std::size_t length = 0;

    /** Distinct length-L windows observed (irrespective of PS). */
    std::size_t uniqueChains = 0;

    /** Total window occurrences (sum of frequencies). */
    std::size_t totalInstances = 0;

    /** Distinct chains with PS == 1. */
    std::size_t deterministicChains = 0;

    /** Non-overlapping deterministic chains selected for fusion. */
    std::size_t fusedChains = 0;

    /** Kernels covered by the fused chains (fusedChains * L). */
    std::size_t kernelsFused = 0;

    /** Eager-mode launch count. */
    std::size_t kEager = 0;

    /** Post-fusion launch count (Eq. 7). */
    std::size_t kFused = 0;

    /** Idealized launch-saving speedup (Eq. 8). */
    double idealSpeedup = 1.0;
};

/** One recommended fusion chain. */
struct ChainCandidate
{
    std::vector<std::string> kernels;
    std::size_t frequency = 0;
    double proximityScore = 0.0;
};

/**
 * Mines kernel chains of a single execution sequence.
 * Kernel names are interned internally; mining is O(N * L) per length.
 */
class ProximityAnalyzer
{
  public:
    /** Analyze a kernel-name sequence (stream order). */
    explicit ProximityAnalyzer(std::vector<std::string> sequence);

    /** Length of the analyzed sequence (K_eager). */
    std::size_t sequenceLength() const { return _seq.size(); }

    /** Occurrences of one kernel name. */
    std::size_t kernelFrequency(const std::string &kernel) const;

    /** Occurrences of a chain (contiguous subsequence). */
    std::size_t chainFrequency(const std::vector<std::string> &chain) const;

    /**
     * Eq. 6 for an arbitrary chain.
     * @return 0 when the chain never occurs; otherwise
     *         f(C) / f(first kernel).
     */
    double proximityScore(const std::vector<std::string> &chain) const;

    /**
     * Mine all length-L statistics: unique/total/deterministic chains,
     * greedy non-overlapping fusion selection, Eq. 7/8 results.
     * @throws skipsim::FatalError when L < 2.
     */
    ChainStats analyze(std::size_t length) const;

    /** analyze() across several lengths. */
    std::vector<ChainStats> sweep(const std::vector<std::size_t> &lengths)
        const;

    /**
     * Chains of length L with PS >= threshold, sorted by frequency
     * descending (then lexicographically for determinism).
     */
    std::vector<ChainCandidate> candidates(std::size_t length,
                                           double threshold) const;

  private:
    std::vector<int> _seq;                 ///< interned sequence
    std::vector<std::string> _names;       ///< intern table
    std::map<std::string, int> _ids;
    std::vector<std::size_t> _kernelFreq;  ///< per interned id

    int internedId(const std::string &name) const;

    /** Frequency map over all length-L windows (interned windows). */
    std::map<std::vector<int>, std::size_t>
    windowCounts(std::size_t length) const;
};

/** Default chain-length sweep used by the paper's Figs. 7-9. */
std::vector<std::size_t> defaultChainLengths();

/**
 * Kernel names in stream (begin-time) order from a trace, excluding
 * memcpys — the input sequence for proximity mining.
 */
std::vector<std::string> kernelSequenceFromTrace(const trace::Trace &trace);

} // namespace skipsim::fusion

#endif // SKIPSIM_FUSION_PROXIMITY_HH
