#include "fusion/recommend.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "common/table.hh"

namespace skipsim::fusion
{

const ChainStats &
FusionReport::best() const
{
    if (byLength.empty())
        fatal("FusionReport::best on empty report");
    const ChainStats *best_stats = &byLength.front();
    for (const auto &stats : byLength) {
        if (stats.idealSpeedup > best_stats->idealSpeedup)
            best_stats = &stats;
    }
    return *best_stats;
}

std::string
FusionReport::render() const
{
    TextTable table(strprintf("Fusion recommendation (K_eager = %zu)",
                              kEager));
    table.setHeader({"L", "unique", "instances", "PS=1", "fused",
                     "K_fused", "speedup"});
    for (const auto &s : byLength) {
        table.addRow({std::to_string(s.length),
                      std::to_string(s.uniqueChains),
                      std::to_string(s.totalInstances),
                      std::to_string(s.deterministicChains),
                      std::to_string(s.fusedChains),
                      std::to_string(s.kFused),
                      strprintf("%.2fx", s.idealSpeedup)});
    }
    std::string out = table.render();

    if (!topCandidates.empty()) {
        out += strprintf("\nTop candidates at L = %zu:\n",
                         topCandidates.front().kernels.size());
        for (const auto &cand : topCandidates) {
            std::string head = cand.kernels.front();
            std::string tail = cand.kernels.back();
            out += strprintf("  x%zu  PS=%.2f  [%s ... %s]\n",
                             cand.frequency, cand.proximityScore,
                             head.c_str(), tail.c_str());
        }
    }
    return out;
}

FusionReport
recommend(const std::vector<std::string> &sequence,
          const std::vector<std::size_t> &lengths, double threshold,
          std::size_t max_candidates)
{
    if (lengths.empty())
        fatal("recommend: no chain lengths given");

    ProximityAnalyzer analyzer(sequence);
    FusionReport report;
    report.kEager = analyzer.sequenceLength();

    std::vector<std::size_t> sorted = lengths;
    std::sort(sorted.begin(), sorted.end());
    report.byLength = analyzer.sweep(sorted);

    const ChainStats &best_stats = report.best();
    report.topCandidates =
        analyzer.candidates(best_stats.length, threshold);
    if (report.topCandidates.size() > max_candidates)
        report.topCandidates.resize(max_candidates);
    return report;
}

FusionReport
recommendFromTrace(const trace::Trace &trace,
                   const std::vector<std::size_t> &lengths,
                   double threshold, std::size_t max_candidates)
{
    return recommend(kernelSequenceFromTrace(trace), lengths, threshold,
                     max_candidates);
}

} // namespace skipsim::fusion
