/**
 * @file
 * Fusion recommendation reports: run the proximity-score sweep over a
 * trace and render the per-length statistics and the top recommended
 * chains, the way SKIP's recommendation framework reports them.
 */

#ifndef SKIPSIM_FUSION_RECOMMEND_HH
#define SKIPSIM_FUSION_RECOMMEND_HH

#include <string>
#include <vector>

#include "fusion/proximity.hh"

namespace skipsim::fusion
{

/** Full fusion recommendation for one run. */
struct FusionReport
{
    /** Sequence length analyzed (K_eager). */
    std::size_t kEager = 0;

    /** Per-chain-length statistics, ascending length. */
    std::vector<ChainStats> byLength;

    /** The best-speedup entry of byLength. */
    const ChainStats &best() const;

    /** Top recommended chains at the best length (PS >= threshold). */
    std::vector<ChainCandidate> topCandidates;

    /** Aligned text rendering. */
    std::string render() const;
};

/**
 * Build a fusion recommendation from a kernel-name sequence.
 * @param sequence kernel names in stream order.
 * @param lengths chain lengths to analyze (default paper sweep).
 * @param threshold minimum PS for recommended chains (paper uses 1.0
 *        for actually-fusable chains).
 * @param max_candidates cap on reported chains.
 */
FusionReport recommend(const std::vector<std::string> &sequence,
                       const std::vector<std::size_t> &lengths =
                           defaultChainLengths(),
                       double threshold = 1.0,
                       std::size_t max_candidates = 8);

/** Convenience: recommend() over a trace's kernel sequence. */
FusionReport recommendFromTrace(const trace::Trace &trace,
                                const std::vector<std::size_t> &lengths =
                                    defaultChainLengths(),
                                double threshold = 1.0,
                                std::size_t max_candidates = 8);

} // namespace skipsim::fusion

#endif // SKIPSIM_FUSION_RECOMMEND_HH
