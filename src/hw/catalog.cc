#include "hw/catalog.hh"

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::hw::platforms
{

Platform
amdA100()
{
    Platform p;
    p.name = "AMD+A100";
    p.coupling = Coupling::LooselyCoupled;
    p.unifiedMemory = false;

    p.cpu.name = "AMD EPYC 7313 (16-core)";
    p.cpu.singleThreadScore = 0.68;
    p.cpu.launchOverheadNs = 2260.5;
    p.cpu.launchCpuNs = 1750.0;
    p.cpu.syncCallNs = 1800.0;
    p.cpu.busyPowerW = 155.0;
    p.cpu.idlePowerW = 55.0;

    p.gpu.name = "A100-SXM4-80GB";
    p.gpu.fp16Tflops = 312.0;
    p.gpu.memBwGBs = 2039.0;
    p.gpu.hbmCapacityGiB = 80.0;
    p.gpu.nvlinkGBs = 600.0; // NVLink3 SXM
    p.gpu.minKernelNs = 1440.0;
    p.gpu.interKernelGapNs = 700.0;
    p.gpu.busyPowerW = 400.0;
    p.gpu.idlePowerW = 55.0;
    p.gpu.maxGemmEff = 0.60;
    p.gpu.gemmHalfWorkFlops = 2.0e8;
    p.gpu.gemmHalfRows = 1024.0;
    p.gpu.memEff = 0.82;
    p.gpu.numSms = 108;

    p.link.name = "PCIe Gen4 x16";
    p.link.bwGBs = 32.0;
    p.link.latencyNs = 800.0;
    return p;
}

Platform
intelH100()
{
    Platform p;
    p.name = "Intel+H100";
    p.coupling = Coupling::LooselyCoupled;
    p.unifiedMemory = false;

    p.cpu.name = "2P Intel Xeon Platinum 8468V (48-core)";
    p.cpu.singleThreadScore = 1.0;
    p.cpu.launchOverheadNs = 2374.6;
    p.cpu.launchCpuNs = 1800.0;
    p.cpu.syncCallNs = 1500.0;
    p.cpu.busyPowerW = 330.0; // 2P Xeon 8468V
    p.cpu.idlePowerW = 110.0;

    p.gpu.name = "H100 PCIe (350W)";
    p.gpu.fp16Tflops = 756.0;
    p.gpu.memBwGBs = 2000.0;
    p.gpu.hbmCapacityGiB = 80.0;
    p.gpu.nvlinkGBs = 100.0; // PCIe P2P only
    p.gpu.minKernelNs = 1235.2;
    p.gpu.interKernelGapNs = 700.0;
    p.gpu.busyPowerW = 350.0;
    p.gpu.idlePowerW = 45.0;
    p.gpu.maxGemmEff = 0.55;
    p.gpu.gemmHalfWorkFlops = 2.0e8;
    p.gpu.gemmHalfRows = 1536.0;
    p.gpu.memEff = 0.82;
    p.gpu.numSms = 114;

    p.link.name = "PCIe Gen5 x16";
    p.link.bwGBs = 64.0;
    p.link.latencyNs = 700.0;
    return p;
}

Platform
gh200()
{
    Platform p;
    p.name = "GH200";
    p.coupling = Coupling::CloselyCoupled;
    p.unifiedMemory = true;

    p.cpu.name = "Grace 72-core Arm Neoverse V2";
    p.cpu.singleThreadScore = 0.32;
    p.cpu.launchOverheadNs = 2771.6;
    p.cpu.launchCpuNs = 2150.0;
    p.cpu.syncCallNs = 2400.0;
    p.cpu.busyPowerW = 250.0; // Grace share of the 900 W module
    p.cpu.idlePowerW = 70.0;

    p.gpu.name = "H100 96GB HBM3 (GH200)";
    p.gpu.fp16Tflops = 989.0;
    p.gpu.memBwGBs = 4000.0;
    p.gpu.hbmCapacityGiB = 96.0;
    p.gpu.nvlinkGBs = 900.0; // NVLink4 switch
    p.gpu.minKernelNs = 1171.2;
    p.gpu.interKernelGapNs = 600.0;
    p.gpu.busyPowerW = 650.0;
    p.gpu.idlePowerW = 80.0;
    p.gpu.maxGemmEff = 0.66;
    p.gpu.gemmHalfWorkFlops = 2.0e8;
    p.gpu.gemmHalfRows = 1536.0;
    p.gpu.memEff = 0.88;
    p.gpu.numSms = 132;

    p.link.name = "NVLink-C2C";
    p.link.bwGBs = 450.0; // 900 GB/s bidirectional
    p.link.latencyNs = 300.0;
    return p;
}

Platform
mi300a()
{
    Platform p;
    p.name = "MI300A";
    p.coupling = Coupling::TightlyCoupled;
    p.unifiedMemory = true;

    p.cpu.name = "Zen4 x86 (24-core, on package)";
    p.cpu.singleThreadScore = 0.90;
    p.cpu.launchOverheadNs = 2050.0;
    p.cpu.launchCpuNs = 1650.0;
    p.cpu.syncCallNs = 1400.0;
    p.cpu.busyPowerW = 140.0;
    p.cpu.idlePowerW = 45.0;

    p.gpu.name = "CDNA3 (MI300A)";
    p.gpu.fp16Tflops = 980.0;
    p.gpu.memBwGBs = 5300.0;
    p.gpu.hbmCapacityGiB = 128.0;
    p.gpu.nvlinkGBs = 1024.0;
    p.gpu.minKernelNs = 1150.0;
    p.gpu.interKernelGapNs = 600.0;
    p.gpu.busyPowerW = 550.0;
    p.gpu.idlePowerW = 70.0;
    p.gpu.maxGemmEff = 0.58;
    p.gpu.gemmHalfWorkFlops = 2.0e8;
    p.gpu.gemmHalfRows = 1536.0;
    p.gpu.memEff = 0.85;
    p.gpu.numSms = 228;

    p.link.name = "Infinity Fabric (on package)";
    p.link.bwGBs = 1024.0;
    p.link.latencyNs = 150.0;
    return p;
}

Platform
gb200()
{
    // Hypothetical projection of the Grace-Blackwell superchip the
    // paper lists as future work: same Grace CPU as GH200, a Blackwell
    // GPU with ~2.2x H100 dense FP16 and 8 TB/s HBM3e, and a second
    // generation NVLink-C2C. Calibration extrapolated, not measured.
    Platform p;
    p.name = "GB200";
    p.coupling = Coupling::CloselyCoupled;
    p.unifiedMemory = true;

    p.cpu.name = "Grace 72-core Arm Neoverse V2";
    p.cpu.singleThreadScore = 0.34; // slightly newer software stack
    p.cpu.launchOverheadNs = 2700.0;
    p.cpu.launchCpuNs = 2100.0;
    p.cpu.syncCallNs = 2300.0;
    p.cpu.busyPowerW = 250.0;
    p.cpu.idlePowerW = 70.0;

    p.gpu.name = "B200 192GB HBM3e";
    p.gpu.fp16Tflops = 2250.0;
    p.gpu.memBwGBs = 8000.0;
    p.gpu.hbmCapacityGiB = 192.0;
    p.gpu.nvlinkGBs = 1800.0; // NVLink5
    p.gpu.minKernelNs = 1100.0;
    p.gpu.interKernelGapNs = 550.0;
    p.gpu.busyPowerW = 1000.0;
    p.gpu.idlePowerW = 100.0;
    p.gpu.maxGemmEff = 0.66;
    p.gpu.gemmHalfWorkFlops = 2.0e8;
    p.gpu.gemmHalfRows = 1536.0;
    p.gpu.memEff = 0.88;
    p.gpu.numSms = 144;

    p.link.name = "NVLink-C2C Gen2";
    p.link.bwGBs = 900.0;
    p.link.latencyNs = 250.0;
    return p;
}

std::vector<Platform>
paperTrio()
{
    return {amdA100(), intelH100(), gh200()};
}

std::vector<Platform>
all()
{
    std::vector<Platform> list = {amdA100(), intelH100(), gh200(),
                                  mi300a(), gb200()};
    // Validate the catalog once, on first access, instead of deferring
    // to the first transferNs() deep inside a simulation.
    static const bool validated = [&list] {
        for (const Platform &p : list)
            p.validate();
        return true;
    }();
    (void)validated;
    return list;
}

std::vector<std::string>
names()
{
    std::vector<std::string> out;
    for (const auto &p : all())
        out.push_back(p.name);
    return out;
}

Platform
byName(const std::string &name)
{
    std::string needle = toLower(name);
    for (const auto &p : all()) {
        if (toLower(p.name) == needle)
            return p;
    }
    fatal("unknown platform '" + name + "' (expected one of: " +
          join(names(), ", ") + ")");
}

} // namespace skipsim::hw::platforms
