/**
 * @file
 * Calibrated platform catalog: the paper's three evaluation systems
 * (Table IV) plus a hypothetical MI300A-like tightly-coupled platform
 * for design exploration.
 *
 * Calibration anchors:
 *  - nullKernel launch overhead / duration: paper Table V.
 *  - GPU peaks: vendor specs (A100-SXM4 312 TFLOPS FP16 / 2039 GB/s;
 *    H100 PCIe 756 TFLOPS / 2000 GB/s; GH200's H100 989 TFLOPS /
 *    4000 GB/s HBM3).
 *  - CPU single-thread scores: chosen so BERT BS=1 prefill latency
 *    ratios reproduce Sec. V-D (GH200 2.8x/1.9x slower than
 *    Intel+H100 / AMD+A100).
 */

#ifndef SKIPSIM_HW_CATALOG_HH
#define SKIPSIM_HW_CATALOG_HH

#include <string>
#include <vector>

#include "hw/platform.hh"

namespace skipsim::hw::platforms
{

/** AMD EPYC 7313 + A100-SXM4-80GB over PCIe Gen4 (loosely coupled). */
Platform amdA100();

/** 2P Intel Xeon Platinum 8468V + H100 PCIe Gen5 (loosely coupled). */
Platform intelH100();

/** NVIDIA Grace Hopper Superchip GH200 (closely coupled). */
Platform gh200();

/**
 * Hypothetical MI300A-like tightly-coupled platform (not evaluated in
 * the paper; listed as future work). Used by examples/platform_explorer.
 */
Platform mi300a();

/**
 * Hypothetical Grace-Blackwell (GB200) closely-coupled platform — the
 * other system the paper names as future work. Projected, not
 * calibrated against measurements.
 */
Platform gb200();

/** The paper's three evaluation platforms in Table IV order. */
std::vector<Platform> paperTrio();

/** All catalog platforms. */
std::vector<Platform> all();

/** Platform names accepted by byName(). */
std::vector<std::string> names();

/**
 * Case-insensitive lookup ("amd+a100", "intel+h100", "gh200",
 * "mi300a").
 * @throws skipsim::FatalError for unknown names.
 */
Platform byName(const std::string &name);

} // namespace skipsim::hw::platforms

#endif // SKIPSIM_HW_CATALOG_HH
