#include "hw/kernel_cost.hh"

#include <algorithm>

#include "common/logging.hh"
#include "hw/platform.hh"

namespace skipsim::hw
{

const char *
kernelClassName(KernelClass cls)
{
    switch (cls) {
      case KernelClass::Gemm: return "gemm";
      case KernelClass::Attention: return "attention";
      case KernelClass::Softmax: return "softmax";
      case KernelClass::Norm: return "norm";
      case KernelClass::Elementwise: return "elementwise";
      case KernelClass::Reduction: return "reduction";
      case KernelClass::Copy: return "copy";
      case KernelClass::Embedding: return "embedding";
      case KernelClass::Memcpy: return "memcpy";
      case KernelClass::Collective: return "collective";
      case KernelClass::Null: return "null";
      case KernelClass::Graph: return "graph";
    }
    panic("kernelClassName: invalid KernelClass");
}

double
gemmEfficiency(const GpuModel &gpu, double flops, double rows)
{
    if (flops <= 0.0)
        return gpu.maxGemmEff;
    double eff = gpu.maxGemmEff * flops / (flops + gpu.gemmHalfWorkFlops);
    if (rows > 0.0) {
        // Floor the occupancy factor: even single-row (decode) GEMMs
        // retain a small fraction of peak; below it the memory side of
        // the roofline governs, as it does on real hardware.
        eff *= std::max(0.05, rows / (rows + gpu.gemmHalfRows));
    }
    return eff;
}

namespace
{

// Non-GEMM compute efficiency: pointwise/softmax kernels use the CUDA
// cores, not tensor cores; they reach only a small fraction of FP16
// tensor peak. Their cost is almost always memory-bound anyway.
constexpr double nonGemmComputeEff = 0.02;

} // namespace

double
kernelDurationNs(const GpuModel &gpu, const KernelWork &work)
{
    if (gpu.fp16Tflops <= 0.0 || gpu.memBwGBs <= 0.0)
        fatal("kernelDurationNs: GPU with non-positive peak rates");

    // flop/ns at peak: TFLOP/s * 1e12 / 1e9 = TFLOPs * 1e3.
    const double peak_flop_per_ns = gpu.fp16Tflops * 1e3;
    // bytes/ns: GB/s * 1e9 / 1e9 = GB/s numerically.
    const double peak_bytes_per_ns = gpu.memBwGBs;

    // Collectives move bytes over the GPU-GPU fabric, not HBM.
    if (work.cls == KernelClass::Collective) {
        if (gpu.nvlinkGBs <= 0.0)
            fatal("kernelDurationNs: collective kernel on a GPU with no "
                  "peer link (nvlinkGBs = 0) - tensor parallelism is "
                  "not available on this platform");
        return std::max(gpu.minKernelNs, work.bytes / gpu.nvlinkGBs);
    }

    double eff;
    switch (work.cls) {
      case KernelClass::Gemm:
      case KernelClass::Attention:
      case KernelClass::Graph:
        eff = gemmEfficiency(gpu, work.flops, work.rows);
        break;
      default:
        eff = nonGemmComputeEff;
        break;
    }

    double compute_ns =
        work.flops > 0.0 ? work.flops / (peak_flop_per_ns * eff) : 0.0;
    double memory_ns =
        work.bytes > 0.0
            ? work.bytes / (peak_bytes_per_ns * gpu.memEff)
            : 0.0;

    return std::max(gpu.minKernelNs, std::max(compute_ns, memory_ns));
}

double
kernelDurationNs(const GpuModel &gpu, const std::vector<KernelWork> &work)
{
    if (work.empty())
        return gpu.minKernelNs;
    double total = 0.0;
    for (const auto &w : work)
        total += kernelDurationNs(gpu, w);
    return total;
}

} // namespace skipsim::hw
