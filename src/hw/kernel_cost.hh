/**
 * @file
 * Kernel work descriptors and the roofline-style duration model.
 *
 * Each GPU kernel is characterized by its class, floating-point work and
 * device-memory traffic. Duration on a given GPU is
 *
 *     max(min_kernel_ns, compute_ns, memory_ns)
 *
 * with GEMM efficiency saturating in per-kernel work (small GEMMs cannot
 * fill the machine). Fused kernels carry multiple work components and
 * take the sum of component durations: fusion saves *launches*, not
 * execution time, exactly the assumption the paper makes (Sec. II-C:
 * "This work analyzes kernel fusion benefits solely through reduced
 * kernel launch counts").
 */

#ifndef SKIPSIM_HW_KERNEL_COST_HH
#define SKIPSIM_HW_KERNEL_COST_HH

#include <string>
#include <vector>

namespace skipsim::hw
{

/** Broad kernel families with distinct cost behaviour. */
enum class KernelClass
{
    Gemm,        ///< dense matrix multiply (compute-bound at scale)
    Attention,   ///< fused flash-attention style kernel
    Softmax,     ///< row softmax (memory-bound)
    Norm,        ///< layer/rms norm (memory-bound)
    Elementwise, ///< add/mul/gelu/silu/copy-like pointwise ops
    Reduction,   ///< reductions (memory-bound)
    Copy,        ///< device-side copies / transposes
    Embedding,   ///< gather from embedding tables
    Memcpy,      ///< host<->device transfer over the interconnect
    Collective,  ///< GPU-GPU collective (NCCL all-reduce/all-gather)
    Null,        ///< empty kernel (launch-overhead microbenchmark)
    Graph,       ///< captured CUDA-graph replay (fused whole graph)
};

/** @return a stable lowercase name for a kernel class. */
const char *kernelClassName(KernelClass cls);

/** One unit of GPU work: class plus FLOP and byte counts. */
struct KernelWork
{
    KernelClass cls = KernelClass::Elementwise;
    double flops = 0.0;
    double bytes = 0.0;

    /**
     * GEMM output rows (M = batch * sequence for transformer GEMMs);
     * 0 means unknown. Small-M GEMMs achieve lower occupancy even at
     * equal FLOP counts, which the efficiency model accounts for.
     */
    double rows = 0.0;
};

/** Forward declaration; defined in platform.hh. */
struct GpuModel;

/**
 * Duration of a single work component on a GPU, in ns.
 * @see file header for the model.
 */
double kernelDurationNs(const GpuModel &gpu, const KernelWork &work);

/**
 * Duration of a (possibly fused) kernel: the sum of its components'
 * durations. An empty component list costs the GPU's minimum kernel
 * duration (a null kernel).
 */
double kernelDurationNs(const GpuModel &gpu,
                        const std::vector<KernelWork> &work);

/**
 * GEMM efficiency achieved at a given per-kernel FLOP count and output
 * row count:
 *
 *     max_eff * w/(w + half_work) * m/(m + half_rows)
 *
 * (the row factor is 1 when rows are unknown). Exposed for tests and
 * ablations.
 */
double gemmEfficiency(const GpuModel &gpu, double flops, double rows = 0.0);

} // namespace skipsim::hw

#endif // SKIPSIM_HW_KERNEL_COST_HH
