#include "hw/platform.hh"

#include "common/logging.hh"

namespace skipsim::hw
{

const char *
couplingName(Coupling coupling)
{
    switch (coupling) {
      case Coupling::LooselyCoupled: return "LC";
      case Coupling::CloselyCoupled: return "CC";
      case Coupling::TightlyCoupled: return "TC";
    }
    panic("couplingName: invalid Coupling");
}

double
Platform::transferNs(double bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    if (link.bwGBs <= 0.0)
        fatal("Platform::transferNs: interconnect with no bandwidth");
    // bytes / (GB/s in bytes-per-ns) + latency
    return bytes / link.bwGBs + link.latencyNs;
}

} // namespace skipsim::hw
