#include "hw/platform.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::hw
{

const char *
couplingName(Coupling coupling)
{
    switch (coupling) {
      case Coupling::LooselyCoupled: return "LC";
      case Coupling::CloselyCoupled: return "CC";
      case Coupling::TightlyCoupled: return "TC";
    }
    panic("couplingName: invalid Coupling");
}

double
Platform::transferNs(double bytes) const
{
    if (bytes <= 0.0)
        return 0.0;
    if (link.bwGBs <= 0.0)
        fatal(strprintf("platform '%s': link '%s' has no bandwidth "
                        "(bw_gbs %g); cannot price a transfer",
                        name.c_str(), link.name.c_str(), link.bwGBs));
    // bytes / (GB/s in bytes-per-ns) + latency
    return bytes / link.bwGBs + link.latencyNs;
}

void
Platform::validate() const
{
    auto bad = [&](const char *what, double got) {
        fatal(strprintf("platform '%s': %s (got %g)", name.c_str(),
                        what, got));
    };
    if (cpu.singleThreadScore <= 0.0)
        bad("cpu single_thread_score must be positive",
            cpu.singleThreadScore);
    if (cpu.busyPowerW < 0.0 || cpu.idlePowerW < 0.0)
        bad("cpu power draws must be non-negative",
            std::min(cpu.busyPowerW, cpu.idlePowerW));
    if (gpu.fp16Tflops <= 0.0)
        bad("gpu fp16_tflops must be positive", gpu.fp16Tflops);
    if (gpu.memBwGBs <= 0.0)
        bad("gpu mem_bw_gbs must be positive", gpu.memBwGBs);
    if (gpu.hbmCapacityGiB <= 0.0)
        bad("gpu hbm_capacity_gib must be positive",
            gpu.hbmCapacityGiB);
    if (gpu.busyPowerW < 0.0 || gpu.idlePowerW < 0.0)
        bad("gpu power draws must be non-negative",
            std::min(gpu.busyPowerW, gpu.idlePowerW));
    if (link.bwGBs <= 0.0)
        fatal(strprintf("platform '%s': link '%s' bw_gbs must be "
                        "positive (got %g)",
                        name.c_str(), link.name.c_str(), link.bwGBs));
    if (link.latencyNs < 0.0)
        fatal(strprintf("platform '%s': link '%s' latency_ns must be "
                        "non-negative (got %g)",
                        name.c_str(), link.name.c_str(),
                        link.latencyNs));
}

} // namespace skipsim::hw
