/**
 * @file
 * CPU, GPU, interconnect and platform descriptors for the three
 * CPU-GPU coupling paradigms the paper studies (Fig. 1): loosely
 * coupled (PCIe, separate memories), closely coupled (NVLink-C2C,
 * unified virtual memory) and tightly coupled (same package, unified
 * physical memory).
 */

#ifndef SKIPSIM_HW_PLATFORM_HH
#define SKIPSIM_HW_PLATFORM_HH

#include <string>

#include "hw/kernel_cost.hh"

namespace skipsim::hw
{

/** CPU-GPU coupling paradigm (paper Fig. 1). */
enum class Coupling
{
    LooselyCoupled,  ///< discrete PUs over PCIe, separate memory pools
    CloselyCoupled,  ///< same board, C2C link, unified virtual memory
    TightlyCoupled,  ///< same package, unified physical memory
};

/** @return human-readable coupling name ("LC", "CC", "TC"). */
const char *couplingName(Coupling coupling);

/**
 * Host CPU model. The framework (PyTorch eager) dispatch path is
 * single-threaded, so the key figure of merit is single-thread speed.
 */
struct CpuModel
{
    std::string name;

    /**
     * Relative single-thread dispatch speed; 1.0 is the Intel Xeon
     * Platinum 8468V reference. Framework per-operator CPU costs are
     * divided by this.
     */
    double singleThreadScore = 1.0;

    /**
     * Total launch overhead t_l = ts_b(kernel) - ts_b(launch call) on
     * an idle GPU, ns (paper Table V "nullKernel launch overhead").
     */
    double launchOverheadNs = 2300.0;

    /**
     * The CPU-busy portion of a cudaLaunchKernel call, ns; the
     * remainder of launchOverheadNs proceeds asynchronously in the
     * driver/interconnect while the CPU moves on.
     */
    double launchCpuNs = 1800.0;

    /** CPU cost of a cudaDeviceSynchronize call, ns. */
    double syncCallNs = 1500.0;

    /** Package power when busy, W (energy model). */
    double busyPowerW = 250.0;

    /** Package power when idle, W. */
    double idlePowerW = 80.0;
};

/** GPU model with roofline and occupancy parameters. */
struct GpuModel
{
    std::string name;

    /** Peak dense FP16 tensor throughput, TFLOP/s. */
    double fp16Tflops = 500.0;

    /** Peak device memory bandwidth, GB/s. */
    double memBwGBs = 2000.0;

    /** Device memory (HBM) capacity, GiB. */
    double hbmCapacityGiB = 80.0;

    /**
     * Peer GPU-GPU fabric bandwidth, GB/s (NVLink / Infinity Fabric /
     * PCIe P2P); 0 means no multi-GPU support on this platform.
     */
    double nvlinkGBs = 0.0;

    /** HBM capacity in bytes. */
    double hbmBytes() const { return hbmCapacityGiB * 1024.0 * 1024.0 * 1024.0; }

    /**
     * Minimum kernel duration, ns (paper Table V "nullKernel
     * duration"): ramp-up/tear-down floor every kernel pays.
     */
    double minKernelNs = 1200.0;

    /** Highest fraction of peak FLOPs a large GEMM achieves. */
    double maxGemmEff = 0.55;

    /**
     * GEMM FLOP count at which half of maxGemmEff is reached; smaller
     * kernels run proportionally less efficiently (occupancy).
     */
    double gemmHalfWorkFlops = 6.0e9;

    /**
     * GEMM output-row count (M) at which the row-occupancy factor
     * reaches one half; skinny GEMMs cannot fill the SMs.
     */
    double gemmHalfRows = 1024.0;

    /** Achievable fraction of peak bandwidth for streaming kernels. */
    double memEff = 0.8;

    /**
     * Scheduling gap between back-to-back kernels on a busy stream,
     * ns. CUDA-graph replay eliminates this per-kernel cost, which is
     * part of why reduce-overhead mode beats default compilation.
     */
    double interKernelGapNs = 900.0;

    /** Streaming multiprocessor count (reporting only). */
    int numSms = 100;

    /** Board power when executing kernels, W (energy model). */
    double busyPowerW = 400.0;

    /** Board power when idle, W. */
    double idlePowerW = 60.0;
};

/** CPU-to-GPU interconnect. */
struct Interconnect
{
    std::string name;

    /** Unidirectional bandwidth, GB/s. */
    double bwGBs = 32.0;

    /** One-way latency, ns. */
    double latencyNs = 500.0;
};

/** A complete CPU-GPU platform. */
struct Platform
{
    std::string name;
    Coupling coupling = Coupling::LooselyCoupled;
    CpuModel cpu;
    GpuModel gpu;
    Interconnect link;

    /**
     * Unified memory: CC/TC platforms access host memory directly, so
     * model inputs need no explicit host-to-device staging copy.
     */
    bool unifiedMemory = false;

    /** Scale a framework CPU cost by this CPU's single-thread speed. */
    double
    cpuOpNs(double base_ns) const
    {
        return base_ns / cpu.singleThreadScore;
    }

    /** Host-to-device transfer time for @p bytes over the link, ns. */
    double transferNs(double bytes) const;

    /**
     * Check the descriptor for physically meaningless values (zero
     * link bandwidth, non-positive GPU peaks, negative power draws).
     * Catalog entries are validated once at load and user platforms at
     * deserialization, so transfer/cost paths can assume sane fields.
     * @throws skipsim::FatalError naming the platform (and the link,
     *         for interconnect fields) on the first violation.
     */
    void validate() const;
};

} // namespace skipsim::hw

#endif // SKIPSIM_HW_PLATFORM_HH
