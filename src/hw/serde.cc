#include "hw/serde.hh"

#include "common/logging.hh"
#include "json/parser.hh"
#include "json/writer.hh"

namespace skipsim::hw
{

namespace
{

Coupling
couplingFromName(const std::string &name)
{
    if (name == "LC")
        return Coupling::LooselyCoupled;
    if (name == "CC")
        return Coupling::CloselyCoupled;
    if (name == "TC")
        return Coupling::TightlyCoupled;
    fatal("platformFromJson: unknown coupling '" + name +
          "' (expected LC, CC or TC)");
}

double
getNum(const json::Object &obj, const char *key, double def)
{
    if (!obj.has(key))
        return def;
    return obj.at(key).asDouble();
}

std::string
getStr(const json::Object &obj, const char *key, const std::string &def)
{
    if (!obj.has(key))
        return def;
    return obj.at(key).asString();
}

} // namespace

json::Value
platformToJson(const Platform &p)
{
    json::Object cpu;
    cpu.set("name", p.cpu.name);
    cpu.set("single_thread_score", p.cpu.singleThreadScore);
    cpu.set("launch_overhead_ns", p.cpu.launchOverheadNs);
    cpu.set("launch_cpu_ns", p.cpu.launchCpuNs);
    cpu.set("sync_call_ns", p.cpu.syncCallNs);
    cpu.set("busy_power_w", p.cpu.busyPowerW);
    cpu.set("idle_power_w", p.cpu.idlePowerW);

    json::Object gpu;
    gpu.set("name", p.gpu.name);
    gpu.set("fp16_tflops", p.gpu.fp16Tflops);
    gpu.set("mem_bw_gbs", p.gpu.memBwGBs);
    gpu.set("hbm_capacity_gib", p.gpu.hbmCapacityGiB);
    gpu.set("nvlink_gbs", p.gpu.nvlinkGBs);
    gpu.set("min_kernel_ns", p.gpu.minKernelNs);
    gpu.set("inter_kernel_gap_ns", p.gpu.interKernelGapNs);
    gpu.set("max_gemm_eff", p.gpu.maxGemmEff);
    gpu.set("gemm_half_work_flops", p.gpu.gemmHalfWorkFlops);
    gpu.set("gemm_half_rows", p.gpu.gemmHalfRows);
    gpu.set("mem_eff", p.gpu.memEff);
    gpu.set("num_sms", p.gpu.numSms);
    gpu.set("busy_power_w", p.gpu.busyPowerW);
    gpu.set("idle_power_w", p.gpu.idlePowerW);

    json::Object link;
    link.set("name", p.link.name);
    link.set("bw_gbs", p.link.bwGBs);
    link.set("latency_ns", p.link.latencyNs);

    json::Object root;
    root.set("name", p.name);
    root.set("coupling", couplingName(p.coupling));
    root.set("unified_memory", p.unifiedMemory);
    root.set("cpu", json::Value(std::move(cpu)));
    root.set("gpu", json::Value(std::move(gpu)));
    root.set("link", json::Value(std::move(link)));
    return json::Value(std::move(root));
}

Platform
platformFromJson(const json::Value &doc)
{
    const json::Object &root = doc.asObject();
    Platform p;
    p.name = getStr(root, "name", "custom");
    if (root.has("coupling"))
        p.coupling = couplingFromName(root.at("coupling").asString());
    if (root.has("unified_memory"))
        p.unifiedMemory = root.at("unified_memory").asBool();

    if (root.has("cpu")) {
        const json::Object &cpu = root.at("cpu").asObject();
        p.cpu.name = getStr(cpu, "name", p.cpu.name);
        p.cpu.singleThreadScore =
            getNum(cpu, "single_thread_score", p.cpu.singleThreadScore);
        p.cpu.launchOverheadNs =
            getNum(cpu, "launch_overhead_ns", p.cpu.launchOverheadNs);
        p.cpu.launchCpuNs =
            getNum(cpu, "launch_cpu_ns", p.cpu.launchCpuNs);
        p.cpu.syncCallNs = getNum(cpu, "sync_call_ns", p.cpu.syncCallNs);
        p.cpu.busyPowerW = getNum(cpu, "busy_power_w", p.cpu.busyPowerW);
        p.cpu.idlePowerW = getNum(cpu, "idle_power_w", p.cpu.idlePowerW);
    }
    if (root.has("gpu")) {
        const json::Object &gpu = root.at("gpu").asObject();
        p.gpu.name = getStr(gpu, "name", p.gpu.name);
        p.gpu.fp16Tflops = getNum(gpu, "fp16_tflops", p.gpu.fp16Tflops);
        p.gpu.memBwGBs = getNum(gpu, "mem_bw_gbs", p.gpu.memBwGBs);
        p.gpu.hbmCapacityGiB =
            getNum(gpu, "hbm_capacity_gib", p.gpu.hbmCapacityGiB);
        p.gpu.nvlinkGBs = getNum(gpu, "nvlink_gbs", p.gpu.nvlinkGBs);
        p.gpu.minKernelNs =
            getNum(gpu, "min_kernel_ns", p.gpu.minKernelNs);
        p.gpu.interKernelGapNs =
            getNum(gpu, "inter_kernel_gap_ns", p.gpu.interKernelGapNs);
        p.gpu.maxGemmEff = getNum(gpu, "max_gemm_eff", p.gpu.maxGemmEff);
        p.gpu.gemmHalfWorkFlops = getNum(gpu, "gemm_half_work_flops",
                                         p.gpu.gemmHalfWorkFlops);
        p.gpu.gemmHalfRows =
            getNum(gpu, "gemm_half_rows", p.gpu.gemmHalfRows);
        p.gpu.memEff = getNum(gpu, "mem_eff", p.gpu.memEff);
        p.gpu.numSms = static_cast<int>(
            getNum(gpu, "num_sms", p.gpu.numSms));
        p.gpu.busyPowerW = getNum(gpu, "busy_power_w", p.gpu.busyPowerW);
        p.gpu.idlePowerW = getNum(gpu, "idle_power_w", p.gpu.idlePowerW);
    }
    if (root.has("link")) {
        const json::Object &link = root.at("link").asObject();
        p.link.name = getStr(link, "name", p.link.name);
        p.link.bwGBs = getNum(link, "bw_gbs", p.link.bwGBs);
        p.link.latencyNs = getNum(link, "latency_ns", p.link.latencyNs);
    }

    p.validate();
    return p;
}

void
savePlatform(const std::string &path, const Platform &platform)
{
    json::writeFile(path, platformToJson(platform));
}

Platform
loadPlatform(const std::string &path)
{
    return platformFromJson(json::parseFile(path));
}

} // namespace skipsim::hw
