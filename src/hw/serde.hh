/**
 * @file
 * JSON (de)serialization for platform descriptors, so users can define
 * custom CPU-GPU systems in configuration files and run every analysis
 * in this library against them without recompiling.
 */

#ifndef SKIPSIM_HW_SERDE_HH
#define SKIPSIM_HW_SERDE_HH

#include <string>

#include "hw/platform.hh"
#include "json/value.hh"

namespace skipsim::hw
{

/** Serialize a platform (all fields) to a JSON object. */
json::Value platformToJson(const Platform &platform);

/**
 * Deserialize a platform. Missing fields keep their defaults, so a
 * config file only needs the values it wants to override.
 * @throws skipsim::FatalError on malformed documents or non-positive
 *         critical rates (GPU peaks, CPU score).
 */
Platform platformFromJson(const json::Value &doc);

/** Write a platform to a JSON file. */
void savePlatform(const std::string &path, const Platform &platform);

/** Read a platform from a JSON file. */
Platform loadPlatform(const std::string &path);

} // namespace skipsim::hw

#endif // SKIPSIM_HW_SERDE_HH
