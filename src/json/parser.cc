#include "json/parser.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::json
{

namespace
{

/** Internal cursor over the input text with position tracking. */
class Parser
{
  public:
    explicit Parser(const std::string &text)
        : _text(text)
    {}

    Value
    parseDocument()
    {
        skipWs();
        Value v = parseValue();
        skipWs();
        if (!atEnd())
            error("trailing characters after JSON document");
        return v;
    }

  private:
    const std::string &_text;
    std::size_t _pos = 0;

    bool atEnd() const { return _pos >= _text.size(); }

    char
    peek() const
    {
        return atEnd() ? '\0' : _text[_pos];
    }

    char
    advance()
    {
        if (atEnd())
            error("unexpected end of input");
        return _text[_pos++];
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = _text[_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++_pos;
            else
                break;
        }
    }

    [[noreturn]] void
    error(const std::string &msg) const
    {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < _pos && i < _text.size(); ++i) {
            if (_text[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal(strprintf("json parse error at %zu:%zu: %s", line, col,
                        msg.c_str()));
    }

    void
    expect(char c)
    {
        if (peek() != c)
            error(strprintf("expected '%c'", c));
        ++_pos;
    }

    bool
    consumeLiteral(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (_text.compare(_pos, n, lit) == 0) {
            _pos += n;
            return true;
        }
        return false;
    }

    Value
    parseValue()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return Value(parseString());
          case 't':
            if (consumeLiteral("true"))
                return Value(true);
            error("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return Value(false);
            error("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return Value(nullptr);
            error("invalid literal");
          default:
            return parseNumber();
        }
    }

    Value
    parseObject()
    {
        expect('{');
        Object obj;
        skipWs();
        if (peek() == '}') {
            ++_pos;
            return Value(std::move(obj));
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                error("expected object key string");
            std::string key = parseString();
            skipWs();
            expect(':');
            obj.set(key, parseValue());
            skipWs();
            char c = advance();
            if (c == '}')
                break;
            if (c != ',')
                error("expected ',' or '}' in object");
        }
        return Value(std::move(obj));
    }

    Value
    parseArray()
    {
        expect('[');
        Value::Array arr;
        skipWs();
        if (peek() == ']') {
            ++_pos;
            return Value(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            skipWs();
            char c = advance();
            if (c == ']')
                break;
            if (c != ',')
                error("expected ',' or ']' in array");
        }
        return Value(std::move(arr));
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            char c = advance();
            if (c == '"')
                break;
            if (c == '\\') {
                char esc = advance();
                switch (esc) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'u': out += parseUnicodeEscape(); break;
                  default: error("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                error("unescaped control character in string");
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    std::string
    parseUnicodeEscape()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = advance();
            code <<= 4;
            if (c >= '0' && c <= '9')
                code |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                code |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                code |= static_cast<unsigned>(c - 'A' + 10);
            else
                error("invalid \\u escape");
        }
        // Encode as UTF-8 (surrogate pairs are not recombined; BMP only,
        // which is sufficient for trace names).
        std::string out;
        if (code < 0x80) {
            out.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
        return out;
    }

    Value
    parseNumber()
    {
        std::size_t start = _pos;
        if (peek() == '-')
            ++_pos;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            error("invalid number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++_pos;
        if (peek() == '.') {
            ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                error("invalid number: digit expected after '.'");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                error("invalid number: digit expected in exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        std::string slice = _text.substr(start, _pos - start);
        return Value(std::strtod(slice.c_str(), nullptr));
    }
};

} // namespace

Value
parse(const std::string &text)
{
    Parser parser(text);
    return parser.parseDocument();
}

Value
parseFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("json: cannot open file '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

} // namespace skipsim::json
