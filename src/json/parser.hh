/**
 * @file
 * Recursive-descent JSON parser producing json::Value documents.
 * Accepts standard RFC 8259 JSON; reports errors with line/column.
 */

#ifndef SKIPSIM_JSON_PARSER_HH
#define SKIPSIM_JSON_PARSER_HH

#include <string>

#include "json/value.hh"

namespace skipsim::json
{

/**
 * Parse a JSON document from text.
 * @param text the complete JSON document.
 * @return the parsed value.
 * @throws skipsim::FatalError with a line:column message on syntax errors.
 */
Value parse(const std::string &text);

/**
 * Parse the JSON document in a file.
 * @throws skipsim::FatalError when the file cannot be read or parsed.
 */
Value parseFile(const std::string &path);

} // namespace skipsim::json

#endif // SKIPSIM_JSON_PARSER_HH
