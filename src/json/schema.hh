/**
 * @file
 * Schema versioning for persisted spec documents. Every spec the tool
 * writes (RunSpec, SweepSpec, ClusterSpec, scenario specs) stamps a
 * "schema_version" so a future incompatible format change can be
 * detected up front instead of silently misreading old fields. Readers
 * accept documents without the field (everything written before
 * versioning existed is version 1 by definition) and reject any
 * explicit version other than the current one with an error naming the
 * document kind and both versions.
 */

#ifndef SKIPSIM_JSON_SCHEMA_HH
#define SKIPSIM_JSON_SCHEMA_HH

#include "common/logging.hh"
#include "common/strutil.hh"
#include "json/value.hh"

namespace skipsim::json
{

/** Current (and only) spec-document schema version. */
inline constexpr int kSchemaVersion = 1;

/** Stamp the current schema version onto an outgoing document. */
inline void
stampSchemaVersion(Object &doc)
{
    doc.set("schema_version", kSchemaVersion);
}

/**
 * Validate an incoming document's "schema_version" (absent = current).
 * @throws skipsim::FatalError naming @p what for any other version.
 */
inline void
checkSchemaVersion(const Object &doc, const char *what)
{
    if (!doc.has("schema_version"))
        return;
    long version = doc.at("schema_version").asInt();
    if (version != kSchemaVersion)
        fatal(strprintf("%s: unsupported schema_version %ld (this "
                        "build reads version %d)",
                        what, version, kSchemaVersion));
}

} // namespace skipsim::json

#endif // SKIPSIM_JSON_SCHEMA_HH
