#include "json/value.hh"

#include <cmath>

#include "common/logging.hh"

namespace skipsim::json
{

void
Object::set(const std::string &key, Value value)
{
    auto it = _members.find(key);
    if (it == _members.end()) {
        _keys.push_back(key);
        _members.emplace(key, std::make_shared<Value>(std::move(value)));
    } else {
        *it->second = std::move(value);
    }
}

bool
Object::has(const std::string &key) const
{
    return _members.count(key) > 0;
}

const Value &
Object::at(const std::string &key) const
{
    auto it = _members.find(key);
    if (it == _members.end())
        fatal("json: missing object member '" + key + "'");
    return *it->second;
}

const Value &
Object::get(const std::string &key, const Value &def) const
{
    auto it = _members.find(key);
    return it == _members.end() ? def : *it->second;
}

Kind
Value::kind() const
{
    switch (_data.index()) {
      case 0: return Kind::Null;
      case 1: return Kind::Bool;
      case 2: return Kind::Number;
      case 3: return Kind::String;
      case 4: return Kind::Array;
      default: return Kind::Object;
    }
}

bool
Value::asBool() const
{
    if (!isBool())
        fatal("json: value is not a bool");
    return std::get<bool>(_data);
}

double
Value::asDouble() const
{
    if (!isNumber())
        fatal("json: value is not a number");
    return std::get<double>(_data);
}

std::int64_t
Value::asInt() const
{
    double d = asDouble();
    if (d != std::nearbyint(d))
        fatal("json: number is not an integer");
    return static_cast<std::int64_t>(std::llround(d));
}

const std::string &
Value::asString() const
{
    if (!isString())
        fatal("json: value is not a string");
    return std::get<std::string>(_data);
}

const Value::Array &
Value::asArray() const
{
    if (!isArray())
        fatal("json: value is not an array");
    return std::get<Array>(_data);
}

const Object &
Value::asObject() const
{
    if (!isObject())
        fatal("json: value is not an object");
    return std::get<Object>(_data);
}

Value::Array &
Value::mutableArray()
{
    if (!isArray())
        _data = Array{};
    return std::get<Array>(_data);
}

Object &
Value::mutableObject()
{
    if (!isObject())
        _data = Object{};
    return std::get<Object>(_data);
}

} // namespace skipsim::json
