/**
 * @file
 * A minimal JSON document model. Holds null / bool / number / string /
 * array / object values and provides checked accessors. Used for the
 * Chrome-trace import/export in skipsim::trace and for report
 * serialization; kept dependency-free on purpose.
 */

#ifndef SKIPSIM_JSON_VALUE_HH
#define SKIPSIM_JSON_VALUE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace skipsim::json
{

class Value;

/** Ordered key/value object; insertion order preserved for stable output. */
class Object
{
  public:
    /** Insert or overwrite a member. */
    void set(const std::string &key, Value value);

    /** @return true when @p key is a member. */
    bool has(const std::string &key) const;

    /** Checked member access. @throws FatalError when absent. */
    const Value &at(const std::string &key) const;

    /** Member access with default fallback when absent. */
    const Value &get(const std::string &key, const Value &def) const;

    /** Keys in insertion order. */
    const std::vector<std::string> &keys() const { return _keys; }

    std::size_t size() const { return _keys.size(); }

  private:
    std::vector<std::string> _keys;
    std::map<std::string, std::shared_ptr<Value>> _members;
};

/** Kinds a Value can hold. */
enum class Kind { Null, Bool, Number, String, Array, Object };

/**
 * A JSON value. Numbers are stored as double; integer fidelity is
 * preserved up to 2^53, which covers every nanosecond timestamp and
 * counter in this project.
 */
class Value
{
  public:
    using Array = std::vector<Value>;

    Value() : _data(nullptr) {}
    Value(std::nullptr_t) : _data(nullptr) {}
    Value(bool b) : _data(b) {}
    Value(double d) : _data(d) {}
    Value(int i) : _data(static_cast<double>(i)) {}
    Value(long i) : _data(static_cast<double>(i)) {}
    Value(long long i) : _data(static_cast<double>(i)) {}
    Value(unsigned long long i) : _data(static_cast<double>(i)) {}
    Value(unsigned long i) : _data(static_cast<double>(i)) {}
    Value(unsigned i) : _data(static_cast<double>(i)) {}
    Value(const char *s) : _data(std::string(s)) {}
    Value(std::string s) : _data(std::move(s)) {}
    Value(Array a) : _data(std::move(a)) {}
    Value(Object o) : _data(std::move(o)) {}

    Kind kind() const;

    bool isNull() const { return kind() == Kind::Null; }
    bool isBool() const { return kind() == Kind::Bool; }
    bool isNumber() const { return kind() == Kind::Number; }
    bool isString() const { return kind() == Kind::String; }
    bool isArray() const { return kind() == Kind::Array; }
    bool isObject() const { return kind() == Kind::Object; }

    /** Checked accessors; each throws FatalError on kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Mutable access for building documents in place. */
    Array &mutableArray();
    Object &mutableObject();

  private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
        _data;
};

} // namespace skipsim::json

#endif // SKIPSIM_JSON_VALUE_HH
