#include "json/writer.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::json
{

namespace
{

void
appendEscaped(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
}

void
appendNumber(std::string &out, double d)
{
    if (!std::isfinite(d)) {
        // JSON has no NaN/Inf; emit null, matching common tooling.
        out += "null";
        return;
    }
    double rounded = std::nearbyint(d);
    if (d == rounded && std::abs(d) < 9.007199254740992e15) {
        out += strprintf("%lld", static_cast<long long>(rounded));
    } else {
        out += strprintf("%.17g", d);
    }
}

void
writeValue(std::string &out, const Value &v, int indent, int depth)
{
    auto newline = [&](int d) {
        if (indent >= 0) {
            out.push_back('\n');
            out.append(static_cast<std::size_t>(indent * d), ' ');
        }
    };

    switch (v.kind()) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Kind::Number:
        appendNumber(out, v.asDouble());
        break;
      case Kind::String:
        appendEscaped(out, v.asString());
        break;
      case Kind::Array: {
        const auto &arr = v.asArray();
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            newline(depth + 1);
            writeValue(out, arr[i], indent, depth + 1);
        }
        newline(depth);
        out.push_back(']');
        break;
      }
      case Kind::Object: {
        const auto &obj = v.asObject();
        if (obj.size() == 0) {
            out += "{}";
            break;
        }
        out.push_back('{');
        bool first = true;
        for (const auto &key : obj.keys()) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            appendEscaped(out, key);
            out.push_back(':');
            if (indent >= 0)
                out.push_back(' ');
            writeValue(out, obj.at(key), indent, depth + 1);
        }
        newline(depth);
        out.push_back('}');
        break;
      }
    }
}

} // namespace

std::string
write(const Value &value)
{
    std::string out;
    writeValue(out, value, -1, 0);
    return out;
}

std::string
writePretty(const Value &value)
{
    std::string out;
    writeValue(out, value, 2, 0);
    return out;
}

void
writeFile(const std::string &path, const Value &value, bool pretty)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("json: cannot open file '" + path + "' for writing");
    out << (pretty ? writePretty(value) : write(value));
    if (!out)
        fatal("json: write to '" + path + "' failed");
}

} // namespace skipsim::json
