/**
 * @file
 * JSON serialization for json::Value documents: compact or pretty
 * (2-space indented) forms, with stable object member order.
 */

#ifndef SKIPSIM_JSON_WRITER_HH
#define SKIPSIM_JSON_WRITER_HH

#include <string>

#include "json/value.hh"

namespace skipsim::json
{

/** Serialize a value compactly (no whitespace). */
std::string write(const Value &value);

/** Serialize a value with 2-space indentation. */
std::string writePretty(const Value &value);

/** Serialize to a file. @throws skipsim::FatalError on IO failure. */
void writeFile(const std::string &path, const Value &value,
               bool pretty = true);

} // namespace skipsim::json

#endif // SKIPSIM_JSON_WRITER_HH
