#include "kv/tier.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::kv
{

const char *
offloadPolicyName(OffloadPolicy policy)
{
    switch (policy) {
    case OffloadPolicy::Never:
        return "never";
    case OffloadPolicy::StaticWatermark:
        return "static-watermark";
    case OffloadPolicy::LruBySession:
        return "lru-by-session";
    case OffloadPolicy::PrefixAware:
        return "prefix-aware";
    }
    return "unknown";
}

OffloadPolicy
offloadPolicyByName(const std::string &name)
{
    for (OffloadPolicy policy :
         {OffloadPolicy::Never, OffloadPolicy::StaticWatermark,
          OffloadPolicy::LruBySession, OffloadPolicy::PrefixAware}) {
        if (name == offloadPolicyName(policy))
            return policy;
    }
    fatal(strprintf("kv: unknown offload policy '%s' (expected never, "
                    "static-watermark, lru-by-session or prefix-aware)",
                    name.c_str()));
}

std::vector<std::string>
offloadPolicyNames()
{
    return {"never", "static-watermark", "lru-by-session",
            "prefix-aware"};
}

void
TierSpec::validate() const
{
    if (hostCapacityGiB < 0.0)
        fatal("kv::TierSpec: host capacity must be non-negative");
    if (watermarkFrac <= 0.0 || watermarkFrac > 1.0)
        fatal("kv::TierSpec: watermark must be within (0, 1]");
}

json::Value
TierSpec::toJson() const
{
    json::Object doc;
    doc.set("policy", offloadPolicyName(policy));
    doc.set("host-gib", hostCapacityGiB);
    doc.set("watermark", watermarkFrac);
    return json::Value(std::move(doc));
}

TierSpec
TierSpec::fromJson(const json::Value &value)
{
    const json::Object &obj = value.asObject();
    TierSpec spec;
    if (obj.has("policy"))
        spec.policy = offloadPolicyByName(obj.at("policy").asString());
    if (obj.has("host-gib"))
        spec.hostCapacityGiB = obj.at("host-gib").asDouble();
    if (obj.has("watermark"))
        spec.watermarkFrac = obj.at("watermark").asDouble();
    spec.validate();
    return spec;
}

TieredStore::TieredStore(const TierSpec &spec,
                         const hw::Platform &platform,
                         double hbmCapacityBytes,
                         core::FifoResource &lane)
    : _spec(spec), _platform(&platform),
      _hbmCapacityBytes(hbmCapacityBytes), _lane(&lane)
{
    _spec.validate();
    if (!_spec.enabled())
        fatal("kv::TieredStore: policy 'never' means no store — do not "
              "construct one");
    if (_hbmCapacityBytes <= 0.0)
        fatal("kv::TieredStore: HBM KV budget must be positive");
}

double
TieredStore::transfer(double bytes, double nowNs, bool async)
{
    double start = _lane->startFor(nowNs);
    double dur = _platform->transferNs(bytes);
    _lane->occupyUntil(start + dur);
    _stats.linkBusyNs += dur;
    if (async)
        return 0.0;
    double stall = start + dur - nowNs;
    _stats.stallNs += stall;
    return stall;
}

std::map<int, TieredStore::Entry>::iterator
TieredStore::pickVictim()
{
    auto best = _retained.end();
    for (auto it = _retained.begin(); it != _retained.end(); ++it) {
        if (it->second.onHost)
            continue;
        if (best == _retained.end()) {
            best = it;
            continue;
        }
        const Entry &a = it->second;
        const Entry &b = best->second;
        bool better = false;
        switch (_spec.policy) {
        case OffloadPolicy::StaticWatermark:
            // FIFO: the oldest retained entry pages out first.
            better = a.seq < b.seq;
            break;
        case OffloadPolicy::LruBySession:
            better = a.lastUseNs < b.lastUseNs ||
                (a.lastUseNs == b.lastUseNs && a.seq < b.seq);
            break;
        case OffloadPolicy::PrefixAware:
            // Entries with proven reuse are paged last: a session that
            // already came back is likelier to come back again.
            better = std::make_tuple(a.hits > 0, a.lastUseNs, a.seq) <
                std::make_tuple(b.hits > 0, b.lastUseNs, b.seq);
            break;
        case OffloadPolicy::Never:
            break;
        }
        if (better)
            best = it;
    }
    return best;
}

double
TieredStore::pageOneOut(double nowNs, bool async)
{
    auto victim = pickVictim();
    if (victim == _retained.end())
        return -1.0;
    Entry &entry = victim->second;
    _retainedHbmBytes -= entry.bytes;
    if (_hostBytes + entry.bytes <= _spec.hostCapacityBytes()) {
        double stall = transfer(entry.bytes, nowNs, async);
        entry.onHost = true;
        _hostBytes += entry.bytes;
        ++_stats.offloads;
        _stats.offloadedBytes += entry.bytes;
        notePeaks();
        return stall;
    }
    // Host pool full: the entry is dropped, no transfer.
    ++_stats.evictions;
    _retained.erase(victim);
    return 0.0;
}

TieredStore::AdmitResult
TieredStore::admit(int session, double bytes, double nowNs,
                   bool fetchPrefix)
{
    AdmitResult result;
    if (fetchPrefix) {
        auto it = _retained.find(session);
        if (it == _retained.end()) {
            ++_stats.misses;
        } else {
            // The retained prefix is consumed by the new turn: its
            // bytes are subsumed by the full reservation below.
            Entry entry = it->second;
            _retained.erase(it);
            ++_reuse[session];
            if (entry.onHost) {
                _hostBytes -= entry.bytes;
                result.prefixHit = Residency::Host;
                result.stallNs +=
                    transfer(entry.bytes, nowNs, /*async=*/false);
                ++_stats.fetches;
                _stats.fetchedBytes += entry.bytes;
                ++_stats.hitsHost;
            } else {
                _retainedHbmBytes -= entry.bytes;
                result.prefixHit = Residency::Hbm;
                ++_stats.hitsHbm;
            }
        }
    }
    // Make room by paging retained entries; active bytes never move.
    while (_activeBytes + _retainedHbmBytes + bytes >
           _hbmCapacityBytes) {
        double stall = pageOneOut(nowNs, /*async=*/false);
        if (stall < 0.0)
            break;
        result.stallNs += stall;
    }
    if (_activeBytes + _retainedHbmBytes + bytes > _hbmCapacityBytes)
        return result; // pinned demand alone exceeds HBM: wait
    _activeBytes += bytes;
    result.admitted = true;
    notePeaks();
    return result;
}

void
TieredStore::release(int session, double bytes, double nowNs,
                     bool retain)
{
    _activeBytes -= bytes;
    if (!retain)
        return;
    auto it = _retained.find(session);
    if (it != _retained.end()) {
        // A stale entry for this session (earlier turn) is replaced.
        if (it->second.onHost)
            _hostBytes -= it->second.bytes;
        else
            _retainedHbmBytes -= it->second.bytes;
        it->second.bytes = bytes;
        it->second.onHost = false;
        it->second.lastUseNs = nowNs;
        it->second.hits = _reuse.count(session) ? _reuse[session] : 0;
    } else {
        Entry entry;
        entry.bytes = bytes;
        entry.lastUseNs = nowNs;
        entry.seq = _nextSeq++;
        entry.hits = _reuse.count(session) ? _reuse[session] : 0;
        _retained.emplace(session, entry);
    }
    _retainedHbmBytes += bytes;
    notePeaks();
    if (_spec.policy == OffloadPolicy::StaticWatermark) {
        // Pre-page above the watermark so later admissions rarely
        // stall; the transfers still occupy the link.
        double limit = _spec.watermarkFrac * _hbmCapacityBytes;
        while (hbmBytes() > limit && _retainedHbmBytes > 0.0) {
            if (pageOneOut(nowNs, /*async=*/true) < 0.0)
                break;
        }
    }
}

Residency
TieredStore::lookup(int session) const
{
    auto it = _retained.find(session);
    if (it == _retained.end())
        return Residency::None;
    return it->second.onHost ? Residency::Host : Residency::Hbm;
}

void
TieredStore::dropAll()
{
    _retained.clear();
    _activeBytes = 0.0;
    _retainedHbmBytes = 0.0;
    _hostBytes = 0.0;
}

void
TieredStore::notePeaks()
{
    _stats.peakHbmBytes = std::max(_stats.peakHbmBytes, hbmBytes());
    _stats.peakHostBytes = std::max(_stats.peakHostBytes, _hostBytes);
}

} // namespace skipsim::kv
