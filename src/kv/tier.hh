/**
 * @file
 * Two-tier KV-cache store: HBM plus host memory, connected by the
 * platform's CPU-GPU interconnect. The paper's distinguishing axis is
 * that interconnect — NVLink-C2C moves KV pages an order of magnitude
 * faster than PCIe — and this store is where that difference becomes
 * visible at serving scale: finished conversations retain their KV as
 * a prefix-cache entry, memory pressure pages retained entries out to
 * host memory (or drops them), and a returning session pays a
 * host-to-HBM fetch whose cost is the link's, not the GPU's.
 *
 * Tier discipline:
 *  - Active sequences are pinned in HBM; admission makes room by
 *    paging retained (inactive) entries, never active ones.
 *  - A completed sequence's KV is retained per session (one entry per
 *    session, most recent turn wins) while the policy keeps it.
 *  - A prefix hit on an HBM-resident entry is free; a hit on a
 *    host-resident entry pays a synchronous fetch over the link; an
 *    evicted entry is a miss (cold full prefill).
 *
 * Offload policies:
 *  - Never: tiering disabled — callers must not construct a store.
 *  - StaticWatermark: pages retained entries out (oldest first,
 *    asynchronously) whenever HBM occupancy crosses a watermark, so
 *    admissions rarely stall but the link carries pre-paging traffic
 *    even for sessions that never return.
 *  - LruBySession: demand paging; the least-recently-used retained
 *    session is offloaded synchronously when an admission needs room.
 *  - PrefixAware: demand paging that protects entries with proven
 *    reuse — sessions whose prefix has already been hit are paged
 *    (and evicted) last.
 *
 * Transfers serialize on a caller-owned core::FifoResource lane (one
 * per replica link), so KV traffic contends with request staging and
 * prefill/decode handoffs on the same wire. Everything is
 * deterministic: no RNG, ordered containers, victim ties broken by
 * admission sequence number.
 */

#ifndef SKIPSIM_KV_TIER_HH
#define SKIPSIM_KV_TIER_HH

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/resource.hh"
#include "hw/platform.hh"
#include "json/value.hh"

namespace skipsim::kv
{

/** Retained-entry paging policy; see file comment. */
enum class OffloadPolicy
{
    Never,           ///< tiering disabled (no store, no lane traffic)
    StaticWatermark, ///< async pre-paging above an occupancy watermark
    LruBySession,    ///< demand paging, least-recently-used victim
    PrefixAware,     ///< demand paging, zero-reuse entries evicted first
};

/** @return canonical policy name ("never", "static-watermark", ...). */
const char *offloadPolicyName(OffloadPolicy policy);

/** @throws skipsim::FatalError for unknown policy names. */
OffloadPolicy offloadPolicyByName(const std::string &name);

/** All policy names in enum order (CLI/bench enumeration). */
std::vector<std::string> offloadPolicyNames();

/** Tiering configuration for one replica's KV store. */
struct TierSpec
{
    OffloadPolicy policy = OffloadPolicy::Never;

    /** Host-memory KV pool per replica, GiB. */
    double hostCapacityGiB = 64.0;

    /** StaticWatermark: HBM occupancy fraction that triggers paging. */
    double watermarkFrac = 0.9;

    bool enabled() const { return policy != OffloadPolicy::Never; }
    double hostCapacityBytes() const
    {
        return hostCapacityGiB * 1024.0 * 1024.0 * 1024.0;
    }

    /** @throws skipsim::FatalError on out-of-range parameters. */
    void validate() const;

    /** JSON round trip ({"policy", "host-gib", "watermark"}). */
    json::Value toJson() const;
    static TierSpec fromJson(const json::Value &doc);
};

/** Where a session's retained prefix currently lives. */
enum class Residency
{
    None, ///< evicted or never retained: cold full prefill
    Hbm,  ///< resident: free prefix hit
    Host, ///< paged out: hit pays a host-to-HBM fetch
};

/** Per-store outcome counters (reported per replica). */
struct TierStats
{
    std::size_t offloads = 0;  ///< HBM -> host pages
    std::size_t fetches = 0;   ///< host -> HBM pages (prefix hits)
    std::size_t evictions = 0; ///< retained entries dropped entirely
    std::size_t hitsHbm = 0;
    std::size_t hitsHost = 0;
    std::size_t misses = 0;
    double offloadedBytes = 0.0;
    double fetchedBytes = 0.0;
    double peakHbmBytes = 0.0;  ///< active + retained-in-HBM peak
    double peakHostBytes = 0.0;
    double linkBusyNs = 0.0;  ///< lane occupancy from KV paging
    double stallNs = 0.0;     ///< synchronous transfer time charged
};

/** One replica's two-tier KV store; see file comment. */
class TieredStore
{
  public:
    /** Outcome of an admission attempt. */
    struct AdmitResult
    {
        /** False when pinned demand exceeds HBM even after paging. */
        bool admitted = false;

        /** Synchronous transfer time to charge the admitting
         *  iteration (demand paging + prefix fetch), ns. */
        double stallNs = 0.0;

        /** Residency of the session's prefix before this admission. */
        Residency prefixHit = Residency::None;
    };

    /**
     * @param spec     tiering policy and capacities (must be enabled).
     * @param platform owns the interconnect whose transferNs() prices
     *                 every page move; must outlive the store.
     * @param hbmCapacityBytes KV budget in HBM (after weights and
     *                 activations), bytes.
     * @param lane     the replica's link lane; shared with staging and
     *                 handoff traffic, must outlive the store.
     * @throws skipsim::FatalError when @p spec is disabled or the HBM
     *         budget is not positive.
     */
    TieredStore(const TierSpec &spec, const hw::Platform &platform,
                double hbmCapacityBytes, core::FifoResource &lane);

    /**
     * Reserve @p bytes of HBM for a newly admitted sequence of
     * @p session at @p nowNs, paging retained entries per policy to
     * make room. With @p fetchPrefix, the session's retained entry is
     * consumed as a prefix hit first (a host-resident entry is fetched
     * back synchronously); decode-pool entrants pass false — their
     * prefix arrived by handoff, not from this store.
     */
    AdmitResult admit(int session, double bytes, double nowNs,
                      bool fetchPrefix);

    /**
     * The sequence finished (or left the replica): free its pinned
     * bytes. With @p retain, keep the KV as @p session's retained
     * prefix entry in HBM — StaticWatermark then pages asynchronously
     * down to its watermark. Prefill-pool replicas pass false: their
     * KV was handed off, not cached.
     */
    void release(int session, double bytes, double nowNs, bool retain);

    /** Residency of @p session's retained prefix. */
    Residency lookup(int session) const;

    /** Crash: drop every reservation and retained entry (stats keep
     *  their peaks). */
    void dropAll();

    /** Pinned plus retained-in-HBM bytes. */
    double hbmBytes() const { return _activeBytes + _retainedHbmBytes; }
    double hostBytes() const { return _hostBytes; }
    const TierStats &stats() const { return _stats; }

  private:
    struct Entry
    {
        double bytes = 0.0;
        bool onHost = false;
        double lastUseNs = 0.0;
        std::uint64_t seq = 0; ///< admission order, deterministic ties
        std::size_t hits = 0;  ///< prefix reuses by this session
    };

    /** Occupy the lane for @p bytes; @return the sync stall (0 when
     *  @p async). */
    double transfer(double bytes, double nowNs, bool async);
    /** Page one victim out (or drop it); @return sync stall, < 0 when
     *  no retained HBM entry exists. */
    double pageOneOut(double nowNs, bool async);
    /** The policy's next victim among retained HBM entries. */
    std::map<int, Entry>::iterator pickVictim();
    void notePeaks();

    TierSpec _spec;
    const hw::Platform *_platform;
    double _hbmCapacityBytes;
    core::FifoResource *_lane;

    double _activeBytes = 0.0;
    double _retainedHbmBytes = 0.0;
    double _hostBytes = 0.0;
    std::uint64_t _nextSeq = 0;
    std::map<int, Entry> _retained;
    /** Prefix reuses per session — survives the consume-at-admit /
     *  reinsert-at-release cycle (PrefixAware victim ordering). */
    std::map<int, std::size_t> _reuse;
    TierStats _stats;
};

} // namespace skipsim::kv

#endif // SKIPSIM_KV_TIER_HH
