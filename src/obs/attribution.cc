#include "obs/attribution.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::obs
{

namespace
{

/** Canonical lifecycle order for report rows (unknown stages last). */
int
stageRank(const std::string &stage)
{
    static const char *order[] = {
        kStageQueue,   kStagePrefillWait, kStageKvFetch,
        kStagePrefill, kStageHandoff,     kStageDecode,
        kStageDisrupted,
    };
    for (std::size_t i = 0; i < std::size(order); ++i) {
        if (stage == order[i])
            return static_cast<int>(i);
    }
    return static_cast<int>(std::size(order));
}

/** Linear-interpolated percentile of an unsorted sample (copy). */
double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank =
        p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] + (values[hi] - values[lo]) * frac;
}

struct StageAcc
{
    std::vector<double> durations;
    double totalNs = 0.0;
};

std::vector<StageStat>
finalize(const std::map<std::string, StageAcc> &acc, double intervalSum)
{
    std::vector<StageStat> stats;
    stats.reserve(acc.size());
    for (const auto &[stage, a] : acc) {
        StageStat s;
        s.stage = stage;
        s.count = a.durations.size();
        s.totalNs = a.totalNs;
        s.meanNs = a.durations.empty()
            ? 0.0
            : a.totalNs / static_cast<double>(a.durations.size());
        s.p50Ns = percentile(a.durations, 50.0);
        s.p99Ns = percentile(a.durations, 99.0);
        s.share = intervalSum > 0.0 ? a.totalNs / intervalSum : 0.0;
        stats.push_back(std::move(s));
    }
    std::stable_sort(stats.begin(), stats.end(),
                     [](const StageStat &a, const StageStat &b) {
                         int ra = stageRank(a.stage);
                         int rb = stageRank(b.stage);
                         if (ra != rb)
                             return ra < rb;
                         return a.stage < b.stage;
                     });
    return stats;
}

SloAttribution
dominant(const std::string &klass,
         const std::map<std::string, StageAcc> &acc,
         std::size_t violations)
{
    SloAttribution row;
    row.klass = klass;
    row.violations = violations;
    double interval = 0.0;
    for (const auto &[stage, a] : acc)
        interval += a.totalNs;
    for (const auto &[stage, a] : acc) {
        if (a.totalNs > row.dominantTotalNs) {
            row.dominantStage = stage;
            row.dominantTotalNs = a.totalNs;
        }
    }
    row.dominantShare =
        interval > 0.0 ? row.dominantTotalNs / interval : 0.0;
    return row;
}

json::Value
stagesToJson(const std::vector<StageStat> &stages)
{
    json::Value::Array rows;
    for (const StageStat &s : stages) {
        json::Object row;
        row.set("stage", s.stage);
        row.set("count", static_cast<unsigned long long>(s.count));
        row.set("total_ms", s.totalNs / 1e6);
        row.set("mean_ms", s.meanNs / 1e6);
        row.set("p50_ms", s.p50Ns / 1e6);
        row.set("p99_ms", s.p99Ns / 1e6);
        row.set("share", s.share);
        rows.push_back(json::Value(std::move(row)));
    }
    return json::Value(std::move(rows));
}

} // namespace

AttributionReport
attributeSpans(const std::vector<Span> &spans, double ttftSloMs,
               double e2eSloMs)
{
    // Index the request roots, then each request's top-level stages.
    std::map<std::int64_t, const Span *> roots; // root span id -> root
    for (const Span &span : spans) {
        if (span.parent < 0)
            roots[span.id] = &span;
    }
    struct PerRequest
    {
        const Span *root = nullptr;
        std::vector<const Span *> stages;
    };
    std::map<std::int64_t, PerRequest> requests; // request index
    for (const Span &span : spans) {
        if (span.parent < 0) {
            requests[span.request].root = &span;
            continue;
        }
        auto it = roots.find(span.parent);
        if (it == roots.end())
            continue; // child annotation (route/decode_iter)
        if (it->second->request != span.request)
            fatal(strprintf("attributeSpans: span %lld claims request "
                            "%lld but parents into request %lld",
                            static_cast<long long>(span.id),
                            static_cast<long long>(span.request),
                            static_cast<long long>(
                                it->second->request)));
        requests[span.request].stages.push_back(&span);
    }

    AttributionReport report;
    report.ttftSloMs = ttftSloMs;
    report.e2eSloMs = e2eSloMs;

    std::map<std::string, StageAcc> e2e_acc;
    std::map<std::string, StageAcc> ttft_acc;
    std::map<std::string, StageAcc> ttft_violators;
    std::map<std::string, StageAcc> e2e_violators;
    std::size_t ttft_violations = 0;
    std::size_t e2e_violations = 0;
    double e2e_sum = 0.0;
    double ttft_sum = 0.0;
    double ttft_interval_sum = 0.0;
    std::size_t ttft_count = 0;
    const double ttft_slo_ns = ttftSloMs * 1e6;
    const double e2e_slo_ns = e2eSloMs * 1e6;

    for (const auto &[request, pr] : requests) {
        if (pr.root == nullptr)
            fatal(strprintf("attributeSpans: request %lld has stage "
                            "spans but no root",
                            static_cast<long long>(request)));
        ++report.requests;
        const double e2e =
            static_cast<double>(pr.root->durNs);
        e2e_sum += e2e;

        // TTFT = close of the last prefill stage relative to arrival
        // (restarts re-measure against the finally-serving replica,
        // matching the cluster simulator's own TTFT accounting).
        std::int64_t ttft_end = -1;
        for (const Span *s : pr.stages) {
            if (s->stage == kStagePrefill)
                ttft_end = std::max(ttft_end, s->beginNs + s->durNs);
        }
        const double ttft = ttft_end < 0
            ? -1.0
            : static_cast<double>(ttft_end - pr.root->beginNs);
        const bool ttft_bad = ttft >= 0.0 && ttft > ttft_slo_ns;
        const bool e2e_bad = e2e > e2e_slo_ns;
        if (ttft_bad)
            ++ttft_violations;
        if (e2e_bad)
            ++e2e_violations;
        if (ttft >= 0.0) {
            ttft_sum += ttft;
            ++ttft_count;
        }

        for (const Span *s : pr.stages) {
            const double dur = static_cast<double>(s->durNs);
            StageAcc &acc = e2e_acc[s->stage];
            acc.durations.push_back(dur);
            acc.totalNs += dur;
            if (e2e_bad)
                e2e_violators[s->stage].totalNs += dur;
            // Stages that begin before the first token contribute to
            // TTFT; the partition guarantees none straddles it.
            if (ttft_end >= 0 && s->beginNs < ttft_end) {
                StageAcc &tacc = ttft_acc[s->stage];
                tacc.durations.push_back(dur);
                tacc.totalNs += dur;
                ttft_interval_sum += dur;
                if (ttft_bad)
                    ttft_violators[s->stage].totalNs += dur;
            }
        }
    }

    report.meanE2eNs = report.requests > 0
        ? e2e_sum / static_cast<double>(report.requests)
        : 0.0;
    report.meanTtftNs = ttft_count > 0
        ? ttft_sum / static_cast<double>(ttft_count)
        : 0.0;
    report.e2eStages = finalize(e2e_acc, e2e_sum);
    report.ttftStages = finalize(ttft_acc, ttft_interval_sum);
    if (ttft_violations > 0)
        report.sloRows.push_back(
            dominant("ttft", ttft_violators, ttft_violations));
    if (e2e_violations > 0)
        report.sloRows.push_back(
            dominant("e2e", e2e_violators, e2e_violations));
    return report;
}

json::Value
AttributionReport::toJson() const
{
    json::Object doc;
    doc.set("requests", static_cast<unsigned long long>(requests));
    doc.set("ttft_slo_ms", ttftSloMs);
    doc.set("e2e_slo_ms", e2eSloMs);
    doc.set("mean_ttft_ms", meanTtftNs / 1e6);
    doc.set("mean_e2e_ms", meanE2eNs / 1e6);
    doc.set("ttft_stages", stagesToJson(ttftStages));
    doc.set("e2e_stages", stagesToJson(e2eStages));
    json::Value::Array rows;
    for (const SloAttribution &row : sloRows) {
        json::Object entry;
        entry.set("class", row.klass);
        entry.set("violations",
                  static_cast<unsigned long long>(row.violations));
        entry.set("dominant_stage", row.dominantStage);
        entry.set("dominant_total_ms", row.dominantTotalNs / 1e6);
        entry.set("dominant_share", row.dominantShare);
        rows.push_back(json::Value(std::move(entry)));
    }
    doc.set("slo_violations", json::Value(std::move(rows)));
    return json::Value(std::move(doc));
}

std::string
AttributionReport::render() const
{
    std::string out;
    out += strprintf("attribution over %zu completed requests "
                     "(mean ttft %.2f ms, mean e2e %.2f ms)\n",
                     requests, meanTtftNs / 1e6, meanE2eNs / 1e6);
    auto table = [&out](const char *title,
                        const std::vector<StageStat> &stages) {
        out += strprintf("\n%s\n", title);
        out += strprintf("  %-13s %8s %12s %10s %10s %10s %7s\n",
                         "stage", "count", "total_ms", "mean_ms",
                         "p50_ms", "p99_ms", "share");
        for (const StageStat &s : stages)
            out += strprintf(
                "  %-13s %8zu %12.2f %10.3f %10.3f %10.3f %6.1f%%\n",
                s.stage.c_str(), s.count, s.totalNs / 1e6,
                s.meanNs / 1e6, s.p50Ns / 1e6, s.p99Ns / 1e6,
                s.share * 100.0);
    };
    table("TTFT breakdown (arrival -> first token):", ttftStages);
    table("E2E breakdown (arrival -> completion):", e2eStages);
    out += strprintf("\nSLO violations (ttft > %g ms, e2e > %g ms)\n",
                     ttftSloMs, e2eSloMs);
    if (sloRows.empty()) {
        out += "  none\n";
        return out;
    }
    out += strprintf("  %-6s %10s %15s %12s %7s\n", "class",
                     "violations", "dominant_stage", "total_ms",
                     "share");
    for (const SloAttribution &row : sloRows)
        out += strprintf("  %-6s %10zu %15s %12.2f %6.1f%%\n",
                         row.klass.c_str(), row.violations,
                         row.dominantStage.c_str(),
                         row.dominantTotalNs / 1e6,
                         row.dominantShare * 100.0);
    return out;
}

} // namespace skipsim::obs
