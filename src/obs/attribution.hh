/**
 * @file
 * Latency attribution over lifecycle spans: aggregate a SpanLog's
 * sealed spans into a per-stage TTFT and end-to-end breakdown —
 * count, total, mean, p50, p99 and share of the summed end-to-end
 * time — plus an SLO-violation table naming the dominant stage for
 * each violating request class. This is the cluster-level analogue of
 * the paper's trace-based kernel attribution: instead of "how much of
 * the iteration is kernel-launch-bound", it answers "how much of this
 * fleet's TTFT is queue wait vs KV fetch vs prefill compute".
 *
 * Only top-level stage spans (parent = the request root) enter the
 * breakdown; since they exactly partition each request's [arrival,
 * completion] interval, the per-stage totals sum to the summed
 * end-to-end latency and the shares sum to 1.
 */

#ifndef SKIPSIM_OBS_ATTRIBUTION_HH
#define SKIPSIM_OBS_ATTRIBUTION_HH

#include <cstddef>
#include <string>
#include <vector>

#include "json/value.hh"
#include "obs/span.hh"

namespace skipsim::obs
{

/** One stage's aggregate across all (or all violating) requests. */
struct StageStat
{
    std::string stage;

    /** Span instances (a request can contribute several). */
    std::size_t count = 0;

    double totalNs = 0.0;
    double meanNs = 0.0;
    double p50Ns = 0.0;
    double p99Ns = 0.0;

    /** totalNs over the breakdown's summed interval time. */
    double share = 0.0;
};

/** One violating request class and its dominant stage. */
struct SloAttribution
{
    /** Violation class: "ttft" or "e2e". */
    std::string klass;

    /** Requests violating this class's SLO. */
    std::size_t violations = 0;

    /** The stage with the largest summed time across violators. */
    std::string dominantStage;
    double dominantTotalNs = 0.0;
    /** Dominant stage's share of the violators' interval time. */
    double dominantShare = 0.0;
};

/** The full attribution report; see file comment. */
struct AttributionReport
{
    /** Completed (sealed) requests attributed. */
    std::size_t requests = 0;

    /** SLO thresholds the violation table was judged against, ms. */
    double ttftSloMs = 0.0;
    double e2eSloMs = 0.0;

    double meanTtftNs = 0.0;
    double meanE2eNs = 0.0;

    /** Stage breakdown of [arrival, completion], lifecycle order. */
    std::vector<StageStat> e2eStages;

    /** Stage breakdown of [arrival, first token] only. */
    std::vector<StageStat> ttftStages;

    std::vector<SloAttribution> sloRows;

    /** Deterministic report document. */
    json::Value toJson() const;

    /** Human-readable tables (the `skipctl attribute` output). */
    std::string render() const;
};

/**
 * Aggregate @p spans (sealed SpanLog output or a parsed span file)
 * against the given SLO thresholds.
 * @throws skipsim::FatalError on structurally broken span sets
 *         (a stage span without its request root).
 */
AttributionReport attributeSpans(const std::vector<Span> &spans,
                                 double ttftSloMs, double e2eSloMs);

} // namespace skipsim::obs

#endif // SKIPSIM_OBS_ATTRIBUTION_HH
