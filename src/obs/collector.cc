#include "obs/collector.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace skipsim::obs
{

Collector::Collector(double intervalMs)
{
    if (intervalMs <= 0.0)
        fatal("obs::Collector: sampling interval must be positive");
    _intervalNs = static_cast<std::int64_t>(std::llround(intervalMs * 1e6));
    if (_intervalNs <= 0)
        fatal("obs::Collector: sampling interval rounds to zero ns");
}

void
Collector::sample(const std::string &name, const Labels &labels,
                  std::int64_t tNs, double value)
{
    const std::string key = metricKey(name, labels);
    Series &series = _series[key];
    if (series.points.empty()) {
        series.name = name;
        series.labels = labels;
    }
    series.points.push_back({tNs, value});
}

void
Collector::span(const std::string &name, int tid, std::int64_t beginNs,
                std::int64_t durNs)
{
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::Operator;
    ev.name = name;
    ev.tsBeginNs = beginNs;
    ev.durNs = durNs;
    ev.tid = tid;
    _spans.push_back(std::move(ev));
}

void
Collector::instant(const std::string &name, int tid, std::int64_t tNs)
{
    trace::InstantEvent ev;
    ev.name = name;
    ev.tsNs = tNs;
    ev.tid = tid;
    _instants.push_back(std::move(ev));
}

std::vector<const Series *>
Collector::series() const
{
    std::vector<const Series *> out;
    out.reserve(_series.size());
    for (const auto &[key, series] : _series)
        out.push_back(&series);
    return out;
}

std::size_t
Collector::sampleCount() const
{
    std::size_t n = 0;
    for (const auto &[key, series] : _series)
        n += series.points.size();
    return n;
}

json::Value
Collector::toJson() const
{
    json::Object doc;
    doc.set("interval_ms", intervalMs());
    doc.set("metrics", _metrics.toJson());

    json::Value::Array series_docs;
    for (const auto &[key, series] : _series) {
        json::Object entry;
        entry.set("name", series.name);
        json::Object labels;
        Labels sorted = series.labels;
        std::sort(sorted.begin(), sorted.end());
        for (const auto &[label, value] : sorted)
            labels.set(label, value);
        entry.set("labels", json::Value(std::move(labels)));
        json::Value::Array points;
        points.reserve(series.points.size());
        for (const SeriesPoint &point : series.points) {
            json::Value::Array pair;
            pair.push_back(json::Value(
                static_cast<long long>(point.tNs)));
            pair.push_back(json::Value(point.value));
            points.push_back(json::Value(std::move(pair)));
        }
        entry.set("points", json::Value(std::move(points)));
        series_docs.push_back(json::Value(std::move(entry)));
    }
    doc.set("series", json::Value(std::move(series_docs)));
    return json::Value(std::move(doc));
}

void
Collector::appendTo(trace::Trace &trace) const
{
    for (const trace::TraceEvent &ev : _spans)
        trace.add(ev);
    for (const auto &[key, series] : _series) {
        for (const SeriesPoint &point : series.points) {
            trace::CounterEvent counter;
            counter.name = key; // labels folded in -> one track each
            counter.tsNs = point.tNs;
            counter.value = point.value;
            trace.addCounter(std::move(counter));
        }
    }
    for (const trace::InstantEvent &ev : _instants)
        trace.addInstant(ev);
    trace.sortByTime();
}

trace::Trace
Collector::toTrace() const
{
    trace::Trace trace;
    trace.setMeta("source", "skipsim-obs");
    appendTo(trace);
    return trace;
}

} // namespace skipsim::obs
