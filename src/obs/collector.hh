/**
 * @file
 * Simulated-time probe collector. A Collector owns a metrics Registry
 * plus named time-series sampled at deterministic simulated-time
 * boundaries (multiples of the configured interval), simulated-time
 * duration spans (e.g. one per batching iteration) and instant markers
 * (e.g. fault injections). Because sampling instants are a pure
 * function of the interval — never of host scheduling — the JSON
 * export is byte-identical at any worker count, preserving the exec
 * determinism contract. toTrace() renders everything as Chrome-trace
 * events ("X" spans, "C" counters, "i" instants) so the probes open in
 * Perfetto on the same timeline as a Kineto-style op/kernel trace.
 *
 * A Collector is written by one simulation at a time (per-scenario
 * collectors for sweeps); the Registry inside stays thread-safe.
 */

#ifndef SKIPSIM_OBS_COLLECTOR_HH
#define SKIPSIM_OBS_COLLECTOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json/value.hh"
#include "obs/metrics.hh"
#include "trace/trace.hh"

namespace skipsim::obs
{

/** One (simulated time, value) sample. */
struct SeriesPoint
{
    std::int64_t tNs = 0;
    double value = 0.0;
};

/** One named, labeled time-series. */
struct Series
{
    std::string name;
    Labels labels;
    std::vector<SeriesPoint> points;
};

/**
 * Iterates deterministic sampling boundaries: multiples of the
 * interval, in order, independent of how far time jumps per step.
 */
class Ticker
{
  public:
    /** @param intervalNs sampling interval; <= 0 disables the ticker. */
    explicit Ticker(std::int64_t intervalNs)
        : _intervalNs(intervalNs), _nextNs(intervalNs)
    {}

    bool enabled() const { return _intervalNs > 0; }

    /** The next boundary advanceTo() would visit. */
    std::int64_t nextNs() const { return _nextNs; }

    /** Invoke fn(tNs) for every unvisited boundary <= @p nowNs. */
    template <typename Fn>
    void
    advanceTo(double nowNs, Fn &&fn)
    {
        if (_intervalNs <= 0)
            return;
        while (static_cast<double>(_nextNs) <= nowNs) {
            fn(_nextNs);
            _nextNs += _intervalNs;
        }
    }

  private:
    std::int64_t _intervalNs = 0;
    std::int64_t _nextNs = 0;
};

/** Probe collector; see file comment. */
class Collector
{
  public:
    /**
     * @param intervalMs sampling interval in simulated milliseconds.
     * @throws skipsim::FatalError on non-positive intervals.
     */
    explicit Collector(double intervalMs);

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    std::int64_t intervalNs() const { return _intervalNs; }
    double intervalMs() const { return _intervalNs / 1e6; }

    /** A ticker over this collector's sampling interval. */
    Ticker ticker() const { return Ticker(_intervalNs); }

    /** The registry for scalar metrics (counters/gauges/histograms). */
    Registry &metrics() { return _metrics; }
    const Registry &metrics() const { return _metrics; }

    /** Append one sample to the series (@p name, @p labels). */
    void sample(const std::string &name, const Labels &labels,
                std::int64_t tNs, double value);

    /** Record a simulated-time duration span on track @p tid. */
    void span(const std::string &name, int tid, std::int64_t beginNs,
              std::int64_t durNs);

    /** Record a simulated-time instant marker on track @p tid. */
    void instant(const std::string &name, int tid, std::int64_t tNs);

    /** All series, sorted by canonical metric key. */
    std::vector<const Series *> series() const;

    /** Total sample count across every series. */
    std::size_t sampleCount() const;

    /**
     * Deterministic export:
     * {"interval_ms": I, "metrics": {...},
     *  "series": [{"name","labels","points":[[tNs,v],...]}]}
     */
    json::Value toJson() const;

    /** Append spans, counter samples, and instants to @p trace. */
    void appendTo(trace::Trace &trace) const;

    /** Build a standalone trace of the collected probes. */
    trace::Trace toTrace() const;

  private:
    std::int64_t _intervalNs = 0;
    Registry _metrics;
    std::map<std::string, Series> _series; // key-sorted for determinism
    std::vector<trace::TraceEvent> _spans;
    std::vector<trace::InstantEvent> _instants;
};

} // namespace skipsim::obs

#endif // SKIPSIM_OBS_COLLECTOR_HH
