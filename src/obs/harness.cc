#include "obs/harness.hh"

#include <algorithm>

#include "trace/chrome.hh"

namespace skipsim::obs
{

HarnessTracer::HarnessTracer()
    : _origin(std::chrono::steady_clock::now())
{}

std::int64_t
HarnessTracer::nowNs() const
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - _origin)
        .count();
}

int
HarnessTracer::trackOfCallingThread()
{
    // Caller holds _mutex.
    auto id = std::this_thread::get_id();
    auto it = _tracks.find(id);
    if (it != _tracks.end())
        return it->second;
    int track = static_cast<int>(_tracks.size());
    _tracks.emplace(id, track);
    return track;
}

void
HarnessTracer::record(std::string name, std::int64_t beginNs,
                      std::int64_t endNs)
{
    std::lock_guard<std::mutex> lock(_mutex);
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::Operator;
    ev.name = std::move(name);
    ev.tsBeginNs = beginNs;
    ev.durNs = std::max<std::int64_t>(0, endNs - beginNs);
    ev.tid = trackOfCallingThread();
    _spans.push_back(std::move(ev));
}

void
HarnessTracer::instant(const std::string &name)
{
    std::lock_guard<std::mutex> lock(_mutex);
    trace::InstantEvent ev;
    ev.name = name;
    ev.tsNs = nowNs();
    ev.tid = trackOfCallingThread();
    _instants.push_back(std::move(ev));
}

std::size_t
HarnessTracer::spanCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _spans.size();
}

HarnessTracer::Scope::Scope(HarnessTracer &tracer, std::string name)
    : _tracer(tracer), _name(std::move(name)), _beginNs(tracer.nowNs())
{}

HarnessTracer::Scope::~Scope()
{
    _tracer.record(std::move(_name), _beginNs, _tracer.nowNs());
}

trace::Trace
HarnessTracer::build() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    trace::Trace trace;
    trace.setMeta("source", "skipsim-harness");
    for (const trace::TraceEvent &ev : _spans)
        trace.add(ev);
    for (const trace::InstantEvent &ev : _instants)
        trace.addInstant(ev);

    // Derive the inflight counter from span edges: how many grid
    // points were executing at once (the parallelism actually won).
    std::vector<std::pair<std::int64_t, int>> edges;
    edges.reserve(_spans.size() * 2);
    for (const trace::TraceEvent &ev : _spans) {
        edges.emplace_back(ev.tsBeginNs, +1);
        edges.emplace_back(ev.tsEndNs(), -1);
    }
    std::sort(edges.begin(), edges.end());
    int inflight = 0;
    for (std::size_t i = 0; i < edges.size(); ++i) {
        inflight += edges[i].second;
        // One sample per instant: fold simultaneous edges together.
        if (i + 1 < edges.size() && edges[i + 1].first == edges[i].first)
            continue;
        trace::CounterEvent counter;
        counter.name = "harness.inflight";
        counter.tsNs = edges[i].first;
        counter.value = inflight;
        trace.addCounter(std::move(counter));
    }
    trace.sortByTime();
    return trace;
}

void
HarnessTracer::write(const std::string &path) const
{
    trace::writeChromeFile(path, build());
}

} // namespace skipsim::obs
