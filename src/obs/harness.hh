/**
 * @file
 * Harness self-tracing: profile the profiler, the same trick SKIP
 * plays on PyTorch. A HarnessTracer records wall-clock spans (one per
 * grid point / scenario) onto one track per observed thread — for
 * exec::Pool runs that is one track per worker — plus instant markers,
 * and renders them as a Chrome trace. build() also derives a
 * "harness.inflight" counter (spans concurrently open) so the trace
 * carries both duration and counter events; parallel speedup and
 * stragglers are visible at a glance in Perfetto.
 *
 * Wall-clock by nature: harness traces are diagnostics, not part of
 * any deterministic report. Thread-safe.
 */

#ifndef SKIPSIM_OBS_HARNESS_HH
#define SKIPSIM_OBS_HARNESS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/trace.hh"

namespace skipsim::obs
{

/** Wall-clock span recorder; see file comment. */
class HarnessTracer
{
  public:
    /** Trace origin is the construction instant. */
    HarnessTracer();

    HarnessTracer(const HarnessTracer &) = delete;
    HarnessTracer &operator=(const HarnessTracer &) = delete;

    /**
     * RAII span: records [construction, destruction) on the calling
     * thread's track under the tracer's origin.
     */
    class Scope
    {
      public:
        Scope(HarnessTracer &tracer, std::string name);
        ~Scope();
        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        HarnessTracer &_tracer;
        std::string _name;
        std::int64_t _beginNs = 0;
    };

    /** Open a span named @p name on the calling thread's track. */
    Scope scope(std::string name) { return Scope(*this, std::move(name)); }

    /** Record an instant marker on the calling thread's track. */
    void instant(const std::string &name);

    /** Spans recorded so far. */
    std::size_t spanCount() const;

    /**
     * Render the recorded spans plus the derived harness.inflight
     * counter as a time-sorted trace.
     */
    trace::Trace build() const;

    /** writeChromeFile(build()). */
    void write(const std::string &path) const;

  private:
    friend class Scope;

    std::int64_t nowNs() const;

    /** Track id of the calling thread (assigned on first sight). */
    int trackOfCallingThread();

    void record(std::string name, std::int64_t beginNs,
                std::int64_t endNs);

    std::chrono::steady_clock::time_point _origin;
    mutable std::mutex _mutex;
    std::map<std::thread::id, int> _tracks;
    std::vector<trace::TraceEvent> _spans;
    std::vector<trace::InstantEvent> _instants;
};

} // namespace skipsim::obs

#endif // SKIPSIM_OBS_HARNESS_HH
