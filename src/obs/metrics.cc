#include "obs/metrics.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::obs
{

std::string
metricKey(const std::string &name, const Labels &labels)
{
    if (name.empty())
        fatal("obs: metric name must not be empty");
    if (labels.empty())
        return name;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string key = name + "{";
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (sorted[i].first.empty())
            fatal(strprintf("obs: metric '%s' has an empty label name",
                            name.c_str()));
        if (i > 0)
            key += ",";
        key += sorted[i].first + "=\"" + sorted[i].second + "\"";
    }
    key += "}";
    return key;
}

void
Counter::add(double delta)
{
    // CAS loop instead of fetch_add(double): portable to pre-C++20
    // atomic implementations and contention here is negligible.
    double cur = _value.load(std::memory_order_relaxed);
    while (!_value.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::vector<double> bounds)
    : _bounds(std::move(bounds))
{
    if (_bounds.empty())
        fatal("obs::Histogram: need at least one bucket bound");
    for (std::size_t i = 1; i < _bounds.size(); ++i) {
        if (_bounds[i] <= _bounds[i - 1])
            fatal("obs::Histogram: bounds must be strictly ascending");
    }
    _buckets = std::make_unique<std::atomic<std::uint64_t>[]>(
        _bounds.size() + 1);
    for (std::size_t i = 0; i <= _bounds.size(); ++i)
        _buckets[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    std::size_t bucket = std::lower_bound(_bounds.begin(), _bounds.end(),
                                          v) -
        _bounds.begin();
    _buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    _count.fetch_add(1, std::memory_order_relaxed);
    double cur = _sum.load(std::memory_order_relaxed);
    while (!_sum.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> counts(_bounds.size() + 1);
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] = _buckets[i].load(std::memory_order_relaxed);
    return counts;
}

std::vector<double>
defaultLatencyBucketsMs()
{
    return {0.1, 0.25, 0.5, 1.0,   2.5,   5.0,   10.0,   25.0,  50.0,
            100., 250., 500., 1000., 2500., 5000., 10000.};
}

Counter &
Registry::counter(const std::string &name, const Labels &labels)
{
    const std::string key = metricKey(name, labels);
    std::lock_guard<std::mutex> lock(_mutex);
    Instrument &slot = _instruments[key];
    if (!slot.counter) {
        if (slot.gauge || slot.histogram)
            fatal(strprintf("obs: '%s' is already a non-counter metric",
                            key.c_str()));
        slot.counter = std::make_unique<Counter>();
    }
    return *slot.counter;
}

Gauge &
Registry::gauge(const std::string &name, const Labels &labels)
{
    const std::string key = metricKey(name, labels);
    std::lock_guard<std::mutex> lock(_mutex);
    Instrument &slot = _instruments[key];
    if (!slot.gauge) {
        if (slot.counter || slot.histogram)
            fatal(strprintf("obs: '%s' is already a non-gauge metric",
                            key.c_str()));
        slot.gauge = std::make_unique<Gauge>();
    }
    return *slot.gauge;
}

Histogram &
Registry::histogram(const std::string &name,
                    const std::vector<double> &bounds,
                    const Labels &labels)
{
    const std::string key = metricKey(name, labels);
    std::lock_guard<std::mutex> lock(_mutex);
    Instrument &slot = _instruments[key];
    if (!slot.histogram) {
        if (slot.counter || slot.gauge)
            fatal(strprintf("obs: '%s' is already a non-histogram metric",
                            key.c_str()));
        slot.histogram = std::make_unique<Histogram>(bounds);
    } else if (slot.histogram->bounds() != bounds) {
        fatal(strprintf("obs: histogram '%s' re-registered with "
                        "different bounds",
                        key.c_str()));
    }
    return *slot.histogram;
}

std::size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _instruments.size();
}

json::Value
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    json::Object counters;
    json::Object gauges;
    json::Object histograms;
    // std::map iteration is key-sorted, so the dump is byte-stable.
    for (const auto &[key, slot] : _instruments) {
        if (slot.counter) {
            counters.set(key, slot.counter->value());
        } else if (slot.gauge) {
            gauges.set(key, slot.gauge->value());
        } else if (slot.histogram) {
            json::Object hist;
            hist.set("count", static_cast<unsigned long long>(
                                  slot.histogram->count()));
            hist.set("sum", slot.histogram->sum());
            json::Value::Array buckets;
            std::vector<std::uint64_t> counts =
                slot.histogram->bucketCounts();
            const std::vector<double> &bounds = slot.histogram->bounds();
            for (std::size_t i = 0; i < counts.size(); ++i) {
                json::Object bucket;
                if (i < bounds.size())
                    bucket.set("le", bounds[i]);
                else
                    bucket.set("le", "+inf");
                bucket.set("count",
                           static_cast<unsigned long long>(counts[i]));
                buckets.push_back(json::Value(std::move(bucket)));
            }
            hist.set("buckets", json::Value(std::move(buckets)));
            histograms.set(key, json::Value(std::move(hist)));
        }
    }
    json::Object doc;
    doc.set("counters", json::Value(std::move(counters)));
    doc.set("gauges", json::Value(std::move(gauges)));
    doc.set("histograms", json::Value(std::move(histograms)));
    return json::Value(std::move(doc));
}

} // namespace skipsim::obs
