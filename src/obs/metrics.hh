/**
 * @file
 * Thread-safe metrics registry: labeled counters, gauges, and
 * fixed-bucket histograms with deterministic JSON export. Instruments
 * are created (or found) under a registry mutex and then updated
 * lock-free through atomics, so exec::Pool workers can hammer the same
 * counter without serializing on the registry. The naming scheme is
 * Prometheus-flavoured: `subsystem.metric{label="value",...}` with
 * labels sorted, so a metric's identity — and therefore the JSON dump
 * order — is independent of which thread touched it first.
 */

#ifndef SKIPSIM_OBS_METRICS_HH
#define SKIPSIM_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "json/value.hh"

namespace skipsim::obs
{

/** Label set of one instrument; rendered sorted by label name. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/**
 * Canonical instrument key: `name` for an empty label set, otherwise
 * `name{a="1",b="x"}` with labels sorted by name.
 * @throws skipsim::FatalError on empty metric or label names.
 */
std::string metricKey(const std::string &name, const Labels &labels);

/** Monotonically increasing value (lock-free add). */
class Counter
{
  public:
    void add(double delta = 1.0);
    double value() const { return _value.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> _value{0.0};
};

/** Last-write-wins scalar (lock-free set). */
class Gauge
{
  public:
    void set(double v) { _value.store(v, std::memory_order_relaxed); }
    double value() const { return _value.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> _value{0.0};
};

/**
 * Fixed-bucket histogram: cumulative-style upper bounds plus an
 * implicit +inf overflow bucket, with lock-free observation.
 */
class Histogram
{
  public:
    /**
     * @param bounds strictly ascending bucket upper bounds.
     * @throws skipsim::FatalError when empty or not ascending.
     */
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    const std::vector<double> &bounds() const { return _bounds; }

    /** Per-bucket counts; the extra last entry is the +inf bucket. */
    std::vector<std::uint64_t> bucketCounts() const;

    std::uint64_t count() const
    {
        return _count.load(std::memory_order_relaxed);
    }

    double sum() const { return _sum.load(std::memory_order_relaxed); }

  private:
    std::vector<double> _bounds;
    std::unique_ptr<std::atomic<std::uint64_t>[]> _buckets;
    std::atomic<std::uint64_t> _count{0};
    std::atomic<double> _sum{0.0};
};

/** Default latency bucket bounds in milliseconds (0.1 .. 10000). */
std::vector<double> defaultLatencyBucketsMs();

/**
 * The instrument registry. counter()/gauge()/histogram() find or
 * create an instrument under a mutex and return a reference that stays
 * valid for the registry's lifetime; updates through the reference are
 * lock-free. toJson() dumps every instrument sorted by key, so the
 * export is byte-stable regardless of creation or update order.
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    Counter &counter(const std::string &name, const Labels &labels = {});
    Gauge &gauge(const std::string &name, const Labels &labels = {});

    /**
     * Find or create a histogram. @throws skipsim::FatalError when an
     * existing histogram under the same key has different bounds, or
     * when the key names an instrument of another type.
     */
    Histogram &histogram(const std::string &name,
                         const std::vector<double> &bounds,
                         const Labels &labels = {});

    /** Number of registered instruments. */
    std::size_t size() const;

    /**
     * Deterministic dump:
     * {"counters": {key: value, ...}, "gauges": {...},
     *  "histograms": {key: {"count","sum","buckets":[{"le","count"}]}}}
     */
    json::Value toJson() const;

  private:
    struct Instrument
    {
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    mutable std::mutex _mutex;
    std::map<std::string, Instrument> _instruments;
};

} // namespace skipsim::obs

#endif // SKIPSIM_OBS_METRICS_HH
