#include "obs/openmetrics.hh"

#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::obs
{

namespace
{

/** Map a metric/label name into the OpenMetrics charset. */
std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        const bool ok = (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
            c == '_' || c == ':';
        if (!ok)
            c = '_';
    }
    return out;
}

/** Exact, deterministic value rendering (integers stay integers). */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0.0 ? "+Inf" : "-Inf";
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15)
        return strprintf("%lld", static_cast<long long>(v));
    return strprintf("%.17g", v);
}

/** Split a canonical registry key back into name + labels. */
void
splitKey(const std::string &key, std::string &name, Labels &labels)
{
    const std::size_t brace = key.find('{');
    if (brace == std::string::npos) {
        name = key;
        return;
    }
    name = key.substr(0, brace);
    std::size_t pos = brace + 1;
    while (pos < key.size() && key[pos] != '}') {
        const std::size_t eq = key.find('=', pos);
        if (eq == std::string::npos || eq + 1 >= key.size() ||
            key[eq + 1] != '"')
            fatal(strprintf("openmetrics: malformed metric key '%s'",
                            key.c_str()));
        const std::size_t close = key.find('"', eq + 2);
        if (close == std::string::npos)
            fatal(strprintf("openmetrics: malformed metric key '%s'",
                            key.c_str()));
        labels.emplace_back(key.substr(pos, eq - pos),
                            key.substr(eq + 2, close - eq - 2));
        pos = close + 1;
        if (pos < key.size() && key[pos] == ',')
            ++pos;
    }
}

/** Render `{a="1",b="x"}` (empty string for no labels). */
std::string
renderLabels(const Labels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            out += ",";
        out += sanitize(labels[i].first) + "=\"" + labels[i].second +
            "\"";
    }
    out += "}";
    return out;
}

/** Labels plus a trailing le="..." (histogram bucket series). */
std::string
renderBucketLabels(const Labels &labels, const std::string &le)
{
    std::string out = "{";
    for (const auto &[name, value] : labels)
        out += sanitize(name) + "=\"" + value + "\",";
    out += "le=\"" + le + "\"}";
    return out;
}

/** Emit `# TYPE` once per family, in first-appearance order. */
struct TypeHeader
{
    std::string last;

    void
    emit(std::string &out, const std::string &family,
         const char *type)
    {
        if (family == last)
            return;
        out += "# TYPE " + family + " " + type + "\n";
        last = family;
    }
};

} // namespace

std::string
toOpenMetrics(const Registry &registry)
{
    // Built over the registry's canonical JSON dump so the exposition
    // inherits its key-sorted, byte-stable ordering for free.
    const json::Value doc = registry.toJson();
    const json::Object &root = doc.asObject();
    std::string out;
    TypeHeader header;

    const json::Object &counters = root.at("counters").asObject();
    for (const auto &key : counters.keys()) {
        std::string name;
        Labels labels;
        splitKey(key, name, labels);
        const std::string family = sanitize(name);
        header.emit(out, family, "counter");
        out += family + "_total" + renderLabels(labels) + " " +
            formatValue(counters.at(key).asDouble()) + "\n";
    }

    const json::Object &gauges = root.at("gauges").asObject();
    for (const auto &key : gauges.keys()) {
        std::string name;
        Labels labels;
        splitKey(key, name, labels);
        const std::string family = sanitize(name);
        header.emit(out, family, "gauge");
        out += family + renderLabels(labels) + " " +
            formatValue(gauges.at(key).asDouble()) + "\n";
    }

    const json::Object &histograms = root.at("histograms").asObject();
    for (const auto &key : histograms.keys()) {
        std::string name;
        Labels labels;
        splitKey(key, name, labels);
        const std::string family = sanitize(name);
        header.emit(out, family, "histogram");
        const json::Object &hist = histograms.at(key).asObject();
        double cumulative = 0.0;
        for (const auto &entry : hist.at("buckets").asArray()) {
            const json::Object &bucket = entry.asObject();
            const json::Value &le = bucket.at("le");
            const std::string bound = le.isString()
                ? "+Inf"
                : formatValue(le.asDouble());
            cumulative += bucket.at("count").asDouble();
            out += family + "_bucket" +
                renderBucketLabels(labels, bound) + " " +
                formatValue(cumulative) + "\n";
        }
        out += family + "_sum" + renderLabels(labels) + " " +
            formatValue(hist.at("sum").asDouble()) + "\n";
        out += family + "_count" + renderLabels(labels) + " " +
            formatValue(hist.at("count").asDouble()) + "\n";
    }

    out += "# EOF\n";
    return out;
}

std::vector<OpenMetricsSample>
parseOpenMetrics(const std::string &text)
{
    std::vector<OpenMetricsSample> samples;
    std::size_t lineno = 0;
    for (const std::string &line : split(text, '\n', false)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        OpenMetricsSample sample;
        std::size_t pos = 0;
        while (pos < line.size() && line[pos] != '{' &&
               line[pos] != ' ')
            ++pos;
        sample.name = line.substr(0, pos);
        if (sample.name.empty())
            fatal(strprintf("openmetrics: line %zu: missing metric "
                            "name",
                            lineno));
        if (pos < line.size() && line[pos] == '{') {
            ++pos;
            while (pos < line.size() && line[pos] != '}') {
                const std::size_t eq = line.find('=', pos);
                if (eq == std::string::npos ||
                    eq + 1 >= line.size() || line[eq + 1] != '"')
                    fatal(strprintf("openmetrics: line %zu: malformed "
                                    "label set",
                                    lineno));
                const std::size_t close = line.find('"', eq + 2);
                if (close == std::string::npos)
                    fatal(strprintf("openmetrics: line %zu: unclosed "
                                    "label value",
                                    lineno));
                sample.labels.emplace_back(
                    line.substr(pos, eq - pos),
                    line.substr(eq + 2, close - eq - 2));
                pos = close + 1;
                if (pos < line.size() && line[pos] == ',')
                    ++pos;
            }
            if (pos >= line.size())
                fatal(strprintf("openmetrics: line %zu: unclosed "
                                "label set",
                                lineno));
            ++pos; // '}'
        }
        if (pos >= line.size() || line[pos] != ' ')
            fatal(strprintf("openmetrics: line %zu: missing value",
                            lineno));
        const std::string value = line.substr(pos + 1);
        char *end = nullptr;
        sample.value = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
            fatal(strprintf("openmetrics: line %zu: bad value '%s'",
                            lineno, value.c_str()));
        samples.push_back(std::move(sample));
    }
    return samples;
}

} // namespace skipsim::obs
