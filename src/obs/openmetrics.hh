/**
 * @file
 * OpenMetrics/Prometheus text exposition for the metrics Registry —
 * the format every Prometheus scraper and most dashboards ingest
 * natively, offered alongside the JSON dump (`--obs-format
 * openmetrics`). Output is deterministic: families render in
 * key-sorted order (the Registry's canonical instrument order),
 * counters gain the conventional `_total` suffix, histograms render
 * cumulative `_bucket{le=...}` series plus `_sum`/`_count`, and the
 * document ends with the spec's `# EOF` terminator. Metric and label
 * names are sanitized to the OpenMetrics charset ('.'/'-' -> '_').
 *
 * parseOpenMetrics() reads the exposition back as raw samples, which
 * is what the round-trip unit test (and any scrape-side tooling)
 * checks against the registry.
 */

#ifndef SKIPSIM_OBS_OPENMETRICS_HH
#define SKIPSIM_OBS_OPENMETRICS_HH

#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace skipsim::obs
{

/** Render @p registry as OpenMetrics text; see file comment. */
std::string toOpenMetrics(const Registry &registry);

/** One exposition line: `name{labels} value`. */
struct OpenMetricsSample
{
    std::string name; ///< full series name (incl. _total/_bucket/...)
    Labels labels;
    double value = 0.0;
};

/**
 * Parse an OpenMetrics exposition back into raw samples (comment and
 * `# EOF` lines are skipped; label values must not contain escapes,
 * which toOpenMetrics() never emits).
 * @throws skipsim::FatalError on malformed lines.
 */
std::vector<OpenMetricsSample> parseOpenMetrics(const std::string &text);

} // namespace skipsim::obs

#endif // SKIPSIM_OBS_OPENMETRICS_HH
