#include "obs/span.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "json/parser.hh"
#include "json/writer.hh"

namespace skipsim::obs
{

namespace
{

std::int64_t
roundNs(double tNs)
{
    return std::llround(tNs);
}

} // namespace

SpanLog::Journal &
SpanLog::journal(std::size_t id)
{
    if (id >= _journals.size())
        _journals.resize(id + 1);
    return _journals[id];
}

void
SpanLog::openStage(Journal &j, const char *stage, std::int64_t tNs,
                   int replica, std::int64_t stallNs)
{
    j.openStage = stage;
    j.openBeginNs = tNs;
    j.openReplica = replica;
    j.stallNs = std::max<std::int64_t>(0, stallNs);
}

void
SpanLog::closeOpen(Journal &j, std::int64_t tNs)
{
    if (j.openStage.empty())
        return;
    std::int64_t begin = j.openBeginNs;
    if (j.stallNs > 0) {
        // The KV-tier transfer stalls the front of this stage. The
        // raw stall is charged to the admitting iteration *before*
        // duration scaling (clock/slowdown/jitter), so it can outlast
        // the scaled stage — clamp to the stage close to keep the
        // partition exact.
        std::int64_t kv_end = std::min(begin + j.stallNs, tNs);
        Rec kv;
        kv.parentLocal = 0;
        kv.stage = kStageKvFetch;
        kv.beginNs = begin;
        kv.durNs = kv_end - begin;
        kv.replica = j.openReplica;
        j.recs.push_back(std::move(kv));
        begin = kv_end;
        j.stallNs = 0;
    }
    Rec stage;
    stage.parentLocal = 0;
    stage.stage = j.openStage;
    stage.beginNs = begin;
    stage.durNs = tNs - begin;
    stage.replica = j.openReplica;
    int stage_idx = static_cast<int>(j.recs.size());
    j.recs.push_back(std::move(stage));
    for (Rec &kid : j.pendingKids) {
        kid.parentLocal = stage_idx;
        j.recs.push_back(std::move(kid));
    }
    j.pendingKids.clear();
    j.openStage.clear();
}

void
SpanLog::onArrival(std::size_t id, double tNs)
{
    Journal &j = journal(id);
    j = Journal{};
    j.active = true;
    j.arrivalNs = roundNs(tNs);
    j.segStartNs = j.arrivalNs;
    Rec root;
    root.parentLocal = -1;
    root.stage = kStageRequest;
    root.beginNs = j.arrivalNs;
    j.recs.push_back(std::move(root));
    j.segFirstIdx = j.recs.size();
    openStage(j, kStageQueue, j.arrivalNs, -1);
}

void
SpanLog::onRoute(std::size_t id, double tNs, int replica,
                 const std::string &reason)
{
    Journal &j = journal(id);
    if (!j.active)
        return;
    std::int64_t t = roundNs(tNs);
    j.replica = replica;
    Rec route;
    route.stage = kSpanRoute;
    route.beginNs = t;
    route.replica = replica;
    route.detail = reason;
    j.pendingKids.push_back(std::move(route));
    if (j.openStage == kStageQueue) {
        // The routing decision ends the router queue wait; the route
        // annotation stays a child of the queue stage it concluded.
        closeOpen(j, t);
        openStage(j, kStagePrefillWait, t, replica);
    }
    // Otherwise (a decode-pool re-dispatch mid-handoff) the handoff
    // stage stays open and just gains the route child.
}

void
SpanLog::onAdmit(std::size_t id, double tNs, double stallNs,
                 bool decodeEntry)
{
    Journal &j = journal(id);
    if (!j.active)
        return;
    std::int64_t t = roundNs(tNs);
    closeOpen(j, t);
    openStage(j, decodeEntry ? kStageDecode : kStagePrefill, t,
              j.replica, roundNs(stallNs));
}

void
SpanLog::onFirstToken(std::size_t id, double tNs)
{
    Journal &j = journal(id);
    if (!j.active)
        return;
    std::int64_t t = roundNs(tNs);
    closeOpen(j, t);
    openStage(j, kStageDecode, t, j.replica);
}

void
SpanLog::onHandoffStart(std::size_t id, double tNs)
{
    Journal &j = journal(id);
    if (!j.active)
        return;
    // Fired at the first-token instant on a prefill-pool replica: the
    // decode stage onFirstToken just opened has recorded nothing yet,
    // so it simply becomes the handoff stage.
    (void)tNs;
    j.openStage = kStageHandoff;
}

void
SpanLog::onDecodeIter(std::size_t id, double beginNs, double endNs,
                      int batch)
{
    Journal &j = journal(id);
    if (!j.active || j.openStage != kStageDecode)
        return;
    Rec iter;
    iter.stage = kSpanDecodeIter;
    iter.beginNs = roundNs(beginNs);
    iter.durNs = roundNs(endNs) - iter.beginNs;
    iter.replica = j.replica;
    iter.detail = strprintf("b=%d", batch);
    j.pendingKids.push_back(std::move(iter));
}

void
SpanLog::onRestart(std::size_t id, double tNs)
{
    Journal &j = journal(id);
    if (!j.active)
        return;
    std::int64_t t = roundNs(tNs);
    // The attempt's tokens (and any handed-off KV) died with the
    // replica: its stages are unrepresentative of a clean lifecycle,
    // so the whole attempt collapses into one disrupted stage and the
    // partition stays exact across the re-route.
    j.recs.resize(j.segFirstIdx);
    j.pendingKids.clear();
    j.openStage.clear();
    j.stallNs = 0;
    Rec lost;
    lost.parentLocal = 0;
    lost.stage = kStageDisrupted;
    lost.beginNs = j.segStartNs;
    lost.durNs = t - j.segStartNs;
    lost.replica = j.replica;
    j.recs.push_back(std::move(lost));
    j.segStartNs = t;
    j.segFirstIdx = j.recs.size();
    j.replica = -1;
    openStage(j, kStageQueue, t, -1);
}

void
SpanLog::onComplete(std::size_t id, double tNs)
{
    Journal &j = journal(id);
    if (!j.active)
        return;
    std::int64_t t = roundNs(tNs);
    closeOpen(j, t);
    j.recs[0].durNs = t - j.recs[0].beginNs;

    // Seal: global ids are assigned in completion-event order, which
    // the engine's (time, priority, seq) ordering makes a pure
    // function of the spec — never of host threading.
    std::int64_t base = _nextId;
    for (std::size_t i = 0; i < j.recs.size(); ++i) {
        const Rec &rec = j.recs[i];
        Span span;
        span.id = base + static_cast<std::int64_t>(i);
        span.parent = rec.parentLocal < 0
            ? -1
            : base + static_cast<std::int64_t>(rec.parentLocal);
        span.request = static_cast<std::int64_t>(id);
        span.stage = rec.stage;
        span.beginNs = rec.beginNs;
        span.durNs = rec.durNs;
        span.replica = rec.replica;
        span.detail = rec.detail;
        _sealed.push_back(std::move(span));
    }
    _nextId += static_cast<std::int64_t>(j.recs.size());
    ++_sealedRequests;
    j = Journal{}; // journal memory is done; active = false
}

void
SpanLog::setMeta(const std::string &key, const std::string &value)
{
    _meta[key] = value;
}

json::Value
SpanLog::toChromeJson() const
{
    json::Object root;
    json::Object meta;
    meta.set("kind", "spans");
    for (const auto &[key, value] : _meta)
        meta.set(key, value);
    root.set("skipsimMeta", json::Value(std::move(meta)));

    json::Value::Array events;
    events.reserve(_sealed.size() + 2 * _sealedRequests);
    for (const Span &span : _sealed) {
        const bool is_root = span.parent < 0;
        if (is_root) {
            // Async "b" flow event: one Perfetto row per request id.
            json::Object flow;
            flow.set("ph", "b");
            flow.set("cat", "request");
            flow.set("id",
                     static_cast<unsigned long long>(span.request));
            flow.set("name", "request");
            flow.set("pid", 0);
            flow.set("tid", 0);
            flow.set("ts", static_cast<double>(span.beginNs) / 1000.0);
            flow.set("ts_ns", static_cast<long long>(span.beginNs));
            events.push_back(json::Value(std::move(flow)));
        }
        json::Object obj;
        obj.set("ph", "X");
        obj.set("name", span.stage);
        // "cpu_op" keeps the export parseable by trace::readChromeFile
        // (and therefore skipctl validate), which skips unmodeled
        // categories.
        obj.set("cat", "cpu_op");
        obj.set("pid", 0);
        const int tid = span.replica < 0 ? 0 : span.replica + 1;
        obj.set("tid", tid);
        obj.set("ts", static_cast<double>(span.beginNs) / 1000.0);
        obj.set("dur", static_cast<double>(span.durNs) / 1000.0);
        json::Object args;
        args.set("ts_ns", static_cast<long long>(span.beginNs));
        args.set("dur_ns", static_cast<long long>(span.durNs));
        args.set("thread", tid);
        args.set("span_id", static_cast<long long>(span.id));
        args.set("parent", static_cast<long long>(span.parent));
        args.set("request", static_cast<long long>(span.request));
        args.set("replica", span.replica);
        if (!span.detail.empty())
            args.set("detail", span.detail);
        obj.set("args", json::Value(std::move(args)));
        events.push_back(json::Value(std::move(obj)));
        if (is_root) {
            json::Object flow;
            flow.set("ph", "e");
            flow.set("cat", "request");
            flow.set("id",
                     static_cast<unsigned long long>(span.request));
            flow.set("name", "request");
            flow.set("pid", 0);
            flow.set("tid", 0);
            const std::int64_t end = span.beginNs + span.durNs;
            flow.set("ts", static_cast<double>(end) / 1000.0);
            flow.set("ts_ns", static_cast<long long>(end));
            events.push_back(json::Value(std::move(flow)));
        }
    }
    root.set("traceEvents", json::Value(std::move(events)));
    root.set("displayTimeUnit", "ns");
    return json::Value(std::move(root));
}

std::string
SpanLog::toChromeText() const
{
    return json::write(toChromeJson());
}

void
SpanLog::writeChromeFile(const std::string &path) const
{
    json::writeFile(path, toChromeJson(), false);
}

SpanFile
spansFromChromeJson(const json::Value &doc)
{
    SpanFile out;
    if (!doc.isObject())
        fatal("span trace: top level must be an object with "
              "'traceEvents'");
    const json::Object &root = doc.asObject();
    if (root.has("skipsimMeta")) {
        const json::Object &meta = root.at("skipsimMeta").asObject();
        for (const auto &key : meta.keys())
            out.meta[key] = meta.at(key).asString();
    }
    if (!root.has("traceEvents") || !root.at("traceEvents").isArray())
        fatal("span trace: missing 'traceEvents' array");
    std::size_t index = 0;
    for (const auto &item : root.at("traceEvents").asArray()) {
        try {
            if (!item.isObject())
                fatal("event is not a JSON object");
            const json::Object &obj = item.asObject();
            if (obj.get("ph", json::Value("")).asString() != "X") {
                ++index;
                continue; // flow events and foreign records
            }
            const json::Value null_value;
            const json::Value &args_value = obj.get("args", null_value);
            if (!args_value.isObject() ||
                !args_value.asObject().has("span_id")) {
                ++index;
                continue; // an "X" event from another writer
            }
            const json::Object &args = args_value.asObject();
            Span span;
            span.id = args.at("span_id").asInt();
            span.parent = args.at("parent").asInt();
            span.request = args.at("request").asInt();
            span.stage = obj.at("name").asString();
            span.beginNs = args.at("ts_ns").asInt();
            span.durNs = args.at("dur_ns").asInt();
            span.replica =
                static_cast<int>(args.get("replica", json::Value(-1))
                                     .asInt());
            span.detail =
                args.get("detail", json::Value("")).asString();
            out.spans.push_back(std::move(span));
        } catch (const FatalError &err) {
            fatal(strprintf("span trace: event %zu: %s", index,
                            err.what()));
        }
        ++index;
    }
    return out;
}

SpanFile
readSpanFile(const std::string &path)
{
    return spansFromChromeJson(json::parseFile(path));
}

} // namespace skipsim::obs
