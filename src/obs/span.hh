/**
 * @file
 * Per-request lifecycle spans for the cluster simulator. A SpanLog
 * records, in simulated time, every stage a request passes through on
 * its way from arrival to completion — router queue wait, the routing
 * decision itself, prefill-admission wait, KV-tier fetch stalls,
 * prefill compute, the prefill->decode handoff of a disaggregated
 * fleet, per-iteration decode — as a parent/child span tree rooted at
 * one "request" span per request.
 *
 * The span model has two levels:
 *
 *  - Stage spans (parent = the request root) exactly partition the
 *    request's end-to-end interval: consecutive stages share a
 *    boundary instant, the first begins at arrival and the last ends
 *    at completion, with no overlap and no gap. A fault restart
 *    replaces the aborted attempt's stages with one "disrupted" span
 *    so the partition survives re-routing. check::checkSpans enforces
 *    this.
 *  - Child spans (parent = a stage) annotate without partitioning:
 *    a zero-duration "route" span carrying the chosen replica and the
 *    policy reason, and one "decode_iter" span per decode iteration
 *    the request participated in.
 *
 * Determinism contract: a scenario is simulated single-threaded, so
 * requests seal (complete) in event order — a pure function of the
 * spec and seed via the engine's (time, priority, seq) ordering.
 * Span ids are assigned at seal time in that order, which makes the
 * export byte-identical at any --jobs, the same contract the report
 * and obs JSON already honour. Requests that never complete within
 * the horizon are never sealed and do not appear in the export.
 *
 * The Chrome export writes stage/child spans as "X" events (category
 * "cpu_op" so trace::readChromeFile and skipctl validate parse them;
 * exact nanoseconds ride in args.ts_ns/dur_ns) on one track per
 * replica (tid = replica + 1; tid 0 is the router track), plus a
 * "b"/"e" async pair per request for the per-request flow — Perfetto
 * renders those as one row per request id; our reader skips unknown
 * phases by design.
 */

#ifndef SKIPSIM_OBS_SPAN_HH
#define SKIPSIM_OBS_SPAN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "json/value.hh"

namespace skipsim::obs
{

/** @name Stage names
 *  Top-level stages partition [arrival, completion]; route and
 *  decode_iter are child annotations.
 *  @{ */
inline constexpr const char *kStageRequest = "request";
inline constexpr const char *kStageQueue = "queue";
inline constexpr const char *kStagePrefillWait = "prefill_wait";
inline constexpr const char *kStageKvFetch = "kv_fetch";
inline constexpr const char *kStagePrefill = "prefill";
inline constexpr const char *kStageHandoff = "handoff";
inline constexpr const char *kStageDecode = "decode";
inline constexpr const char *kStageDisrupted = "disrupted";
inline constexpr const char *kSpanRoute = "route";
inline constexpr const char *kSpanDecodeIter = "decode_iter";
/** @} */

/** One sealed lifecycle span. */
struct Span
{
    /** Globally unique id, assigned in seal order (deterministic). */
    std::int64_t id = 0;

    /** Parent span id; -1 marks a request root. */
    std::int64_t parent = -1;

    /** Request index the span belongs to. */
    std::int64_t request = -1;

    /** Stage name (see the kStage* constants). */
    std::string stage;

    std::int64_t beginNs = 0;
    std::int64_t durNs = 0;

    /** Replica the span is bound to; -1 = router/cluster level. */
    int replica = -1;

    /** Free-form annotation (route reason, decode batch size). */
    std::string detail;
};

/** Per-request lifecycle span recorder; see file comment. */
class SpanLog
{
  public:
    SpanLog() = default;
    SpanLog(const SpanLog &) = delete;
    SpanLog &operator=(const SpanLog &) = delete;

    /** @name Recording hooks (called by the cluster simulator)
     *  @{ */
    /** Request @p id arrived: open the root and the queue stage. */
    void onArrival(std::size_t id, double tNs);

    /** The router picked @p replica (annotated with @p reason). */
    void onRoute(std::size_t id, double tNs, int replica,
                 const std::string &reason);

    /**
     * The replica engine admitted the request. @p stallNs is the
     * synchronous KV-tier transfer charged by the admission; it is
     * carved out of the front of the following stage as a kv_fetch
     * stage, clamped to the stage's close (the stall is charged to
     * the admitting iteration before duration scaling, so the raw
     * stall can outlast the scaled stage). @p decodeEntry marks a
     * decode-pool entry (closes handoff), a plain admission closes
     * prefill_wait.
     */
    void onAdmit(std::size_t id, double tNs, double stallNs,
                 bool decodeEntry);

    /** First token served: prefill closes, decode opens. */
    void onFirstToken(std::size_t id, double tNs);

    /**
     * A prefill-pool replica starts shipping the KV to the decode
     * pool. Fired at the first-token instant; the just-opened decode
     * stage becomes the handoff stage (which later absorbs the lane
     * transfer, decode routing and decode-pool queue wait until
     * onAdmit(decodeEntry=true)).
     */
    void onHandoffStart(std::size_t id, double tNs);

    /** The request decoded one token in iteration [begin, end). */
    void onDecodeIter(std::size_t id, double beginNs, double endNs,
                      int batch);

    /**
     * A fault restarted the request: the current attempt's stages are
     * replaced by one disrupted stage [segment start, @p tNs) and a
     * fresh queue stage opens (the cluster re-dispatches next).
     */
    void onRestart(std::size_t id, double tNs);

    /** Request finished: close decode and the root, seal the spans. */
    void onComplete(std::size_t id, double tNs);
    /** @} */

    /** Exported metadata (skipsimMeta; string values only). */
    void setMeta(const std::string &key, const std::string &value);

    /** Requests sealed so far. */
    std::size_t requestCount() const { return _sealedRequests; }

    /** All sealed spans, in seal order (roots first per request). */
    const std::vector<Span> &spans() const { return _sealed; }

    /** @name Chrome-trace export; see file comment for the format.
     *  @{ */
    json::Value toChromeJson() const;
    std::string toChromeText() const;
    void writeChromeFile(const std::string &path) const;
    /** @} */

  private:
    /** A recorded span before sealing; parent is a local index. */
    struct Rec
    {
        int parentLocal = -1;
        std::string stage;
        std::int64_t beginNs = 0;
        std::int64_t durNs = 0;
        int replica = -1;
        std::string detail;
    };

    /** One in-flight request's recording state. */
    struct Journal
    {
        bool active = false;
        std::int64_t arrivalNs = 0;

        /** Current attempt's start (arrival, or the last restart). */
        std::int64_t segStartNs = 0;
        /** First rec of the current attempt (restart truncates here). */
        std::size_t segFirstIdx = 1;

        /** Open stage; empty when none (only transiently). */
        std::string openStage;
        std::int64_t openBeginNs = 0;
        int openReplica = -1;
        /** Deferred kv_fetch carved from the open stage's front. */
        std::int64_t stallNs = 0;

        /** Replica the request is currently routed to. */
        int replica = -1;

        /** recs[0] = the root; closed stages append in time order. */
        std::vector<Rec> recs;
        /** Children of the open stage, appended when it closes. */
        std::vector<Rec> pendingKids;
    };

    Journal &journal(std::size_t id);
    /** Close the open stage at @p tNs (kv_fetch carve + kids). */
    void closeOpen(Journal &j, std::int64_t tNs);
    void openStage(Journal &j, const char *stage, std::int64_t tNs,
                   int replica, std::int64_t stallNs = 0);

    std::vector<Journal> _journals;
    std::vector<Span> _sealed;
    std::size_t _sealedRequests = 0;
    std::int64_t _nextId = 0;
    std::map<std::string, std::string> _meta;
};

/** A parsed span export: spans plus the skipsimMeta entries. */
struct SpanFile
{
    std::map<std::string, std::string> meta;
    std::vector<Span> spans;
};

/**
 * Parse a span Chrome-trace document written by SpanLog (the "X"
 * events carrying args.span_id; flow events and foreign records are
 * ignored). @throws skipsim::FatalError on malformed documents.
 */
SpanFile spansFromChromeJson(const json::Value &doc);

/** File variant of spansFromChromeJson(). */
SpanFile readSpanFile(const std::string &path);

} // namespace skipsim::obs

#endif // SKIPSIM_OBS_SPAN_HH
