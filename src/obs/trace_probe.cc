#include "obs/trace_probe.hh"

#include <algorithm>
#include <map>
#include <vector>

namespace skipsim::obs
{

namespace
{

/** Merge intervals and return the union as disjoint sorted spans. */
std::vector<std::pair<std::int64_t, std::int64_t>>
mergeIntervals(std::vector<std::pair<std::int64_t, std::int64_t>> spans)
{
    std::sort(spans.begin(), spans.end());
    std::vector<std::pair<std::int64_t, std::int64_t>> merged;
    for (const auto &span : spans) {
        if (!merged.empty() && span.first <= merged.back().second)
            merged.back().second =
                std::max(merged.back().second, span.second);
        else
            merged.push_back(span);
    }
    return merged;
}

/** Overlap of the union @p spans with the window [begin, end). */
double
coverage(const std::vector<std::pair<std::int64_t, std::int64_t>> &spans,
         std::int64_t begin, std::int64_t end)
{
    double covered = 0.0;
    for (const auto &span : spans) {
        if (span.second <= begin)
            continue;
        if (span.first >= end)
            break;
        covered += static_cast<double>(std::min(span.second, end) -
                                       std::max(span.first, begin));
    }
    return covered;
}

} // namespace

void
probeTrace(const trace::Trace &trace, Collector &collector)
{
    if (trace.empty())
        return;

    std::vector<std::pair<std::int64_t, std::int64_t>> gpu_spans;
    std::vector<std::pair<std::int64_t, std::int64_t>> cpu_spans;
    std::map<std::uint64_t, std::int64_t> launch_end; // corr -> ns
    std::size_t ops = 0;
    std::size_t kernels = 0;
    std::size_t launches = 0;

    for (const trace::TraceEvent &ev : trace.events()) {
        if (ev.onGpu()) {
            ++kernels;
            gpu_spans.emplace_back(ev.tsBeginNs, ev.tsEndNs());
        } else if (ev.kind == trace::EventKind::Runtime) {
            ++launches;
            if (ev.correlationId != 0)
                launch_end[ev.correlationId] = ev.tsEndNs();
        } else {
            ++ops;
            cpu_spans.emplace_back(ev.tsBeginNs, ev.tsEndNs());
        }
    }

    Registry &metrics = collector.metrics();
    metrics.counter("trace.ops").add(static_cast<double>(ops));
    metrics.counter("trace.kernels").add(static_cast<double>(kernels));
    metrics.counter("trace.launches").add(static_cast<double>(launches));

    // Launch-queue membership: +1 when the launch call returns, -1
    // when the correlated kernel starts executing.
    std::vector<std::pair<std::int64_t, int>> queue_deltas;
    for (const trace::TraceEvent &ev : trace.events()) {
        if (!ev.onGpu() || ev.correlationId == 0)
            continue;
        auto it = launch_end.find(ev.correlationId);
        if (it == launch_end.end())
            continue;
        queue_deltas.emplace_back(it->second, +1);
        queue_deltas.emplace_back(ev.tsBeginNs, -1);
    }
    std::sort(queue_deltas.begin(), queue_deltas.end());

    gpu_spans = mergeIntervals(std::move(gpu_spans));
    cpu_spans = mergeIntervals(std::move(cpu_spans));

    const std::int64_t end = trace.endNs();
    Ticker tick = collector.ticker();
    std::size_t delta_idx = 0;
    int queue_depth = 0;
    // Sample through the first boundary at or past the trace end so
    // the final partial window is represented too.
    const std::int64_t stop = end + collector.intervalNs() - 1;
    tick.advanceTo(static_cast<double>(stop), [&](std::int64_t t) {
        while (delta_idx < queue_deltas.size() &&
               queue_deltas[delta_idx].first <= t) {
            queue_depth += queue_deltas[delta_idx].second;
            ++delta_idx;
        }
        const std::int64_t window_begin = t - collector.intervalNs();
        const double window =
            static_cast<double>(collector.intervalNs());
        collector.sample("trace.launch_queue_depth", {}, t,
                         static_cast<double>(queue_depth));
        collector.sample("trace.gpu_busy", {}, t,
                         coverage(gpu_spans, window_begin, t) / window);
        collector.sample("trace.cpu_busy", {}, t,
                         coverage(cpu_spans, window_begin, t) / window);
    });
}

} // namespace skipsim::obs
