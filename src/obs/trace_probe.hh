/**
 * @file
 * Derive sampled counter series from a Kineto-style op/kernel trace —
 * the same quantities the paper reads off PyTorch Profiler timelines.
 * At every sampling boundary of the collector's interval:
 *
 *  - trace.launch_queue_depth: kernels whose runtime launch call has
 *    returned but whose GPU execution has not begun (the kernel launch
 *    queue behind TKLQT, Sec. III of the paper);
 *  - trace.gpu_busy: fraction of the preceding window covered by
 *    kernel/memcpy execution;
 *  - trace.cpu_busy: fraction of the preceding window covered by
 *    CPU-side operator events.
 *
 * Registry totals (trace.ops, trace.kernels, trace.launches) ride
 * along. Everything derives from trace timestamps only, so the output
 * is deterministic for a given trace and interval.
 */

#ifndef SKIPSIM_OBS_TRACE_PROBE_HH
#define SKIPSIM_OBS_TRACE_PROBE_HH

#include "obs/collector.hh"
#include "trace/trace.hh"

namespace skipsim::obs
{

/** Sample @p trace into @p collector (no-op on an empty trace). */
void probeTrace(const trace::Trace &trace, Collector &collector);

} // namespace skipsim::obs

#endif // SKIPSIM_OBS_TRACE_PROBE_HH
