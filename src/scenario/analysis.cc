#include "scenario/analysis.hh"

#include "exec/registry.hh"
#include "json/parser.hh"
#include "obs/attribution.hh"
#include "obs/span.hh"
#include "scenario/registry.hh"

namespace skipsim::scenario
{

namespace
{

/**
 * Resolve the scenario named by @p spec's options into an expanded
 * ClusterSpec, filling open parameters from the RunSpec so sweep axes
 * (models, platforms, per-point seeds) compose with a fixed scenario
 * parameter file.
 */
cluster::ClusterSpec
resolveScenario(const exec::RunSpec &spec, std::string &name)
{
    name = spec.strOpt("scenario", "steady-poisson");
    json::Object params;
    const std::string path = spec.strOpt("scenario-spec", "");
    if (!path.empty())
        params = json::parseFile(path).asObject();
    if (!params.has("model"))
        params.set("model", spec.model().name);
    if (!params.has("platform"))
        params.set("platform", spec.platform().name);
    if (!params.has("seed"))
        params.set("seed",
                   static_cast<unsigned long long>(spec.seed()));
    return buildScenario(name, params);
}

json::Value
scenarioAnalysis(const exec::RunSpec &spec)
{
    std::string name;
    cluster::ClusterSpec cspec = resolveScenario(spec, name);
    cluster::CostCache costs;
    costs.build(cspec);

    json::Object doc;
    doc.set("scenario", name);
    if (cspec.scenarioCount() == 1) {
        doc.set("result",
                cluster::simulateCluster(cspec.scenarioAt(0), costs)
                    .toJson());
    } else {
        // Rate sweeps (the raw "cluster" scenario) expand like the
        // skipctl cluster path: scenario i reseeds mixSeed(seed, i).
        json::Value::Array results;
        for (std::size_t i = 0; i < cspec.scenarioCount(); ++i)
            results.push_back(
                cluster::simulateCluster(cspec.scenarioAt(i), costs)
                    .toJson());
        doc.set("results", json::Value(std::move(results)));
    }
    return json::Value(std::move(doc));
}

json::Value
attributeAnalysis(const exec::RunSpec &spec)
{
    std::string name;
    cluster::ClusterSpec cspec = resolveScenario(spec, name);
    cluster::CostCache costs;
    costs.build(cspec);

    json::Object doc;
    doc.set("scenario", name);
    // One span log per scenario, attributed independently: each
    // scenario reseeds, so its lifecycle is its own population.
    json::Value::Array results;
    for (std::size_t i = 0; i < cspec.scenarioCount(); ++i) {
        obs::SpanLog spans;
        cluster::ClusterSpec scen = cspec.scenarioAt(i);
        cluster::simulateCluster(scen, costs, nullptr, &spans);
        results.push_back(
            obs::attributeSpans(spans.spans(), scen.ttftSloMs,
                                scen.e2eSloMs)
                .toJson());
    }
    if (results.size() == 1)
        doc.set("result", json::Value(std::move(results.front())));
    else
        doc.set("results", json::Value(std::move(results)));
    return json::Value(std::move(doc));
}

} // namespace

void
registerScenarioAnalysis()
{
    exec::registerAnalysis("scenario", scenarioAnalysis);
    exec::registerAnalysis("attribute", attributeAnalysis);
}

} // namespace skipsim::scenario
