#include "scenario/analysis.hh"

#include "exec/registry.hh"
#include "json/parser.hh"
#include "scenario/registry.hh"

namespace skipsim::scenario
{

namespace
{

json::Value
scenarioAnalysis(const exec::RunSpec &spec)
{
    const std::string name =
        spec.strOpt("scenario", "steady-poisson");
    json::Object params;
    const std::string path = spec.strOpt("scenario-spec", "");
    if (!path.empty())
        params = json::parseFile(path).asObject();
    // The RunSpec fills in whatever the spec file leaves open, so
    // sweep axes (models, platforms, per-point seeds) compose with a
    // fixed scenario parameter file.
    if (!params.has("model"))
        params.set("model", spec.model().name);
    if (!params.has("platform"))
        params.set("platform", spec.platform().name);
    if (!params.has("seed"))
        params.set("seed",
                   static_cast<unsigned long long>(spec.seed()));

    cluster::ClusterSpec cspec = buildScenario(name, params);
    cluster::CostCache costs;
    costs.build(cspec);

    json::Object doc;
    doc.set("scenario", name);
    if (cspec.scenarioCount() == 1) {
        doc.set("result",
                cluster::simulateCluster(cspec.scenarioAt(0), costs)
                    .toJson());
    } else {
        // Rate sweeps (the raw "cluster" scenario) expand like the
        // skipctl cluster path: scenario i reseeds mixSeed(seed, i).
        json::Value::Array results;
        for (std::size_t i = 0; i < cspec.scenarioCount(); ++i)
            results.push_back(
                cluster::simulateCluster(cspec.scenarioAt(i), costs)
                    .toJson());
        doc.set("results", json::Value(std::move(results)));
    }
    return json::Value(std::move(doc));
}

} // namespace

void
registerScenarioAnalysis()
{
    exec::registerAnalysis("scenario", scenarioAnalysis);
}

} // namespace skipsim::scenario
