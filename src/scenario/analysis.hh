/**
 * @file
 * The "scenario" exec analysis: builds a registered scenario's cluster
 * run from a RunSpec's string options and simulates it, so sweeps and
 * the analyze subcommand reach the scenario registry through the
 * ordinary analysis registry. Options:
 *
 *  - strOpt "scenario":      registry name (default "steady-poisson")
 *  - strOpt "scenario-spec": optional path to the JSON parameter file
 *
 * The RunSpec's model, platform and seed fill in any of those
 * parameters the spec file leaves unset, so a sweep axis over models
 * or seeds composes with a fixed scenario spec.
 *
 * The "attribute" analysis takes the same options but records
 * per-request lifecycle spans (obs::SpanLog) during the run and
 * returns the per-stage TTFT/e2e latency attribution
 * (obs::attributeSpans) instead of the raw cluster report, judged
 * against the scenario's own SLO thresholds.
 *
 * scenario depends on exec (RunSpec) and cluster, so the analyses
 * cannot be exec built-ins without inverting the layering; front
 * ends call registerScenarioAnalysis() once at startup, exactly like
 * check::registerCheckAnalysis().
 */

#ifndef SKIPSIM_SCENARIO_ANALYSIS_HH
#define SKIPSIM_SCENARIO_ANALYSIS_HH

namespace skipsim::scenario
{

/**
 * Register the "scenario" and "attribute" analyses with
 * exec::registerAnalysis. Idempotent; safe to call from multiple
 * front ends.
 */
void registerScenarioAnalysis();

} // namespace skipsim::scenario

#endif // SKIPSIM_SCENARIO_ANALYSIS_HH
