/**
 * @file
 * Built-in scenarios. Each registers a builder that turns one JSON
 * parameter object into a complete ClusterSpec; the production-shaped
 * traffic scenarios pair a serving::ArrivalProcess with deployment
 * defaults that make its signature visible (session affinity for chat
 * traffic, per-tier SLOs for multi-tenant).
 *
 * Shared parameters understood by every scenario except the raw
 * "cluster" pass-through: "model", "platform", "replicas" (count),
 * "max-active", "max-queue", "router", "horizon-sec", "prompt",
 * "gen-tokens", "sessions", "ttft-slo-ms", "e2e-slo-ms", "seed".
 * See docs/scenarios.md for the full schema of each scenario.
 */

#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "hw/catalog.hh"
#include "json/schema.hh"
#include "kv/tier.hh"
#include "scenario/registry.hh"
#include "serving/arrival.hh"
#include "workload/model_config.hh"

namespace skipsim::scenario
{

namespace
{

double
num(const json::Object &obj, const char *key, double def)
{
    return obj.has(key) ? obj.at(key).asDouble() : def;
}

int
integer(const json::Object &obj, const char *key, int def)
{
    return obj.has(key) ? static_cast<int>(obj.at(key).asInt()) : def;
}

/** The deployment shape shared by the traffic-model scenarios. */
cluster::ClusterSpec
baseSpec(const json::Object &params)
{
    json::checkSchemaVersion(params, "scenario spec");
    cluster::ClusterSpec spec;
    spec.model =
        workload::modelByName(params.has("model")
                                  ? params.at("model").asString()
                                  : "GPT2");
    cluster::ReplicaSpec replica;
    replica.platform =
        hw::platforms::byName(params.has("platform")
                                  ? params.at("platform").asString()
                                  : "GH200");
    replica.maxActive = integer(params, "max-active", 16);
    replica.maxQueue = integer(params, "max-queue", 0);
    int replicas = integer(params, "replicas", 2);
    if (replicas <= 0)
        fatal("'replicas' must be positive");
    spec.replicas.assign(static_cast<std::size_t>(replicas), replica);
    if (params.has("router"))
        spec.router = cluster::routerPolicyByName(
            params.at("router").asString());
    spec.horizonSec = num(params, "horizon-sec", 10.0);
    spec.promptLen = integer(params, "prompt", 128);
    spec.genTokens = integer(params, "gen-tokens", 16);
    spec.sessions = integer(params, "sessions", 64);
    spec.ttftSloMs = num(params, "ttft-slo-ms", 500.0);
    spec.e2eSloMs = num(params, "e2e-slo-ms", 2000.0);
    spec.seed = static_cast<std::uint64_t>(num(params, "seed", 42.0));
    return spec;
}

cluster::ClusterSpec
buildRawCluster(const json::Object &params)
{
    // The pre-registry `skipctl cluster` entry point, as a scenario:
    // the parameter document IS a ClusterSpec, so existing spec files
    // run unchanged through the same registry path as everything else.
    return cluster::ClusterSpec::fromJson(
        json::Value(json::Object(params)));
}

cluster::ClusterSpec
buildSteadyPoisson(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    spec.arrivalRatePerSec = num(params, "rate", 60.0);
    spec.traffic = std::make_shared<serving::PoissonProcess>(
        spec.arrivalRatePerSec, spec.sessions);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildMmppDiurnal(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    std::vector<serving::MmppProcess::State> states;
    if (params.has("states")) {
        for (const json::Value &entry : params.at("states").asArray()) {
            const json::Object &obj = entry.asObject();
            serving::MmppProcess::State state;
            state.ratePerSec = num(obj, "rate", 0.0);
            state.dwellSec = num(obj, "dwell-sec", 1.0);
            states.push_back(state);
        }
    } else {
        // Default diurnal cycle: a long trough, a shoulder, a short
        // peak — mean rate 60/s, same as steady-poisson's default, so
        // the two scenarios isolate the effect of burstiness.
        states.push_back({30.0, 2.0});
        states.push_back({60.0, 1.0});
        states.push_back({120.0, 1.0});
    }
    auto process = std::make_shared<serving::MmppProcess>(
        std::move(states), spec.sessions);
    spec.arrivalRatePerSec = process->meanRatePerSec();
    spec.traffic = std::move(process);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildChatSessions(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    if (!params.has("router")) {
        // Conversations should stick to the replica holding their
        // prefix cache; affinity is the point of this scenario.
        spec.router = cluster::RouterPolicy::SessionAffinity;
    }
    serving::SessionProcess::Params traffic;
    traffic.sessionRatePerSec = num(params, "session-rate", 15.0);
    traffic.meanTurns = num(params, "mean-turns", 4.0);
    traffic.thinkSec = num(params, "think-sec", 2.0);
    traffic.cachedFrac = num(params, "cached-frac", 0.75);
    traffic.sessions = spec.sessions;
    auto process = std::make_shared<serving::SessionProcess>(traffic);
    spec.arrivalRatePerSec = process->meanRatePerSec();
    spec.traffic = std::move(process);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildMultiTenant(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    std::vector<serving::TieredProcess::Tier> tiers;
    spec.tenants.clear();
    auto add_tier = [&](const std::string &name, double rate,
                        double ttft_slo_ms, double e2e_slo_ms) {
        serving::TieredProcess::Tier tier;
        tier.name = name;
        tier.ratePerSec = rate;
        tiers.push_back(std::move(tier));
        cluster::TenantSpec tenant;
        tenant.name = name;
        tenant.ttftSloMs = ttft_slo_ms;
        tenant.e2eSloMs = e2e_slo_ms;
        spec.tenants.push_back(std::move(tenant));
    };
    if (params.has("tiers")) {
        for (const json::Value &entry : params.at("tiers").asArray()) {
            const json::Object &obj = entry.asObject();
            add_tier(obj.has("name") ? obj.at("name").asString()
                                     : strprintf("tier%zu",
                                                 tiers.size()),
                     num(obj, "rate", 10.0),
                     num(obj, "ttft-slo-ms", spec.ttftSloMs),
                     num(obj, "e2e-slo-ms", spec.e2eSloMs));
        }
    } else {
        // Interactive premium, standard, and latency-tolerant batch
        // tiers: same cluster, three SLO contracts.
        add_tier("premium", 15.0, 250.0, 1000.0);
        add_tier("standard", 30.0, 500.0, 2000.0);
        add_tier("batch", 15.0, 2000.0, 8000.0);
    }
    auto process = std::make_shared<serving::TieredProcess>(
        std::move(tiers), spec.sessions);
    spec.arrivalRatePerSec = process->meanRatePerSec();
    spec.traffic = std::move(process);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildKvOffload(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    // Memory-pressure defaults: long prompts, many returning sessions,
    // a squeezed HBM budget — the regime where the offload policy and
    // the interconnect generation decide the tail.
    if (!params.has("prompt"))
        spec.promptLen = 256;
    if (!params.has("gen-tokens"))
        spec.genTokens = 32;
    if (!params.has("sessions"))
        spec.sessions = 256;
    if (!params.has("router")) {
        // Returning sessions must land on the replica retaining their
        // prefix, or the tier never sees a hit.
        spec.router = cluster::RouterPolicy::SessionAffinity;
    }
    spec.kvTier.policy = kv::offloadPolicyByName(
        params.has("policy") ? params.at("policy").asString()
                             : "lru-by-session");
    spec.kvTier.hostCapacityGiB = num(params, "host-gib", 16.0);
    spec.kvTier.watermarkFrac = num(params, "watermark", 0.9);
    double hbm_gib = num(params, "hbm-gib", 0.6);
    for (cluster::ReplicaSpec &rep : spec.replicas) {
        rep.platform.gpu.hbmCapacityGiB = hbm_gib;
        if (params.has("link-bw-gbs"))
            rep.platform.link.bwGBs =
                params.at("link-bw-gbs").asDouble();
        if (params.has("link-latency-ns"))
            rep.platform.link.latencyNs =
                params.at("link-latency-ns").asDouble();
    }
    serving::SessionProcess::Params traffic;
    traffic.sessionRatePerSec = num(params, "session-rate", 12.0);
    traffic.meanTurns = num(params, "mean-turns", 4.0);
    traffic.thinkSec = num(params, "think-sec", 1.0);
    traffic.cachedFrac = num(params, "cached-frac", 0.8);
    traffic.sessions = spec.sessions;
    auto process = std::make_shared<serving::SessionProcess>(traffic);
    spec.arrivalRatePerSec = process->meanRatePerSec();
    spec.traffic = std::move(process);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildDisagg(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    int prefill = integer(params, "prefill-replicas", 1);
    int decode = integer(params, "decode-replicas", 1);
    if (prefill < 0)
        fatal("'prefill-replicas' must be non-negative");
    if (decode <= 0)
        fatal("'decode-replicas' must be positive");
    // Pool ratio: prefill-replicas 0 collapses to co-located Mixed
    // replicas — the baseline the disaggregated split is judged
    // against (and the check-law anchor).
    cluster::ReplicaSpec pool = spec.replicas.front();
    spec.replicas.clear();
    pool.role = cluster::ReplicaRole::Prefill;
    for (int i = 0; i < prefill; ++i)
        spec.replicas.push_back(pool);
    pool.role = prefill == 0 ? cluster::ReplicaRole::Mixed
                             : cluster::ReplicaRole::Decode;
    for (int i = 0; i < decode; ++i)
        spec.replicas.push_back(pool);
    if (params.has("policy")) {
        spec.kvTier.policy = kv::offloadPolicyByName(
            params.at("policy").asString());
        spec.kvTier.hostCapacityGiB = num(params, "host-gib", 16.0);
        spec.kvTier.watermarkFrac = num(params, "watermark", 0.9);
    }
    spec.arrivalRatePerSec = num(params, "rate", 40.0);
    spec.traffic = std::make_shared<serving::PoissonProcess>(
        spec.arrivalRatePerSec, spec.sessions);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildDatacenter(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    // Fleet-scale default: 8 replicas unless the caller sizes the
    // fleet explicitly (the ext_datacenter bench passes 1024).
    if (!params.has("replicas"))
        spec.replicas.assign(8, spec.replicas.front());
    // The router-to-replica dispatch hop is explicit here — it is the
    // cross-shard latency the sharded engine turns into lookahead, so
    // this scenario exercises the windowed sync protocol for real.
    spec.dispatchUs = num(params, "dispatch-us", 5.0);
    if (params.has("staged-dispatch"))
        spec.stagedDispatch = params.at("staged-dispatch").asBool();
    spec.shards = integer(params, "shards", 1);
    // Offered load scales with the fleet so the per-replica operating
    // point stays fixed at any size.
    double per_replica = num(params, "rate-per-replica", 30.0);
    spec.arrivalRatePerSec =
        per_replica * static_cast<double>(spec.replicas.size());
    spec.traffic = std::make_shared<serving::PoissonProcess>(
        spec.arrivalRatePerSec, spec.sessions);
    spec.validate();
    return spec;
}

/** The parameters baseSpec() itself understands. */
std::vector<ScenarioParam>
baseParams()
{
    return {
        {"model", "workload model name (default GPT2)"},
        {"platform", "hw catalog platform (default GH200)"},
        {"replicas", "replica count (default 2)"},
        {"max-active", "max concurrent sequences (default 16)"},
        {"max-queue", "pending-queue bound, 0 = unbounded (default 0)"},
        {"router", "routing policy (default least-outstanding)"},
        {"horizon-sec", "simulated horizon, s (default 10)"},
        {"prompt", "prompt length, tokens (default 128)"},
        {"gen-tokens", "generated tokens per request (default 16)"},
        {"sessions", "session-id pool size (default 64)"},
        {"ttft-slo-ms", "TTFT SLO, ms (default 500)"},
        {"e2e-slo-ms", "end-to-end SLO, ms (default 2000)"},
        {"seed", "base RNG seed (default 42)"},
    };
}

/** baseParams() plus scenario-specific keys. */
std::vector<ScenarioParam>
withBase(std::vector<ScenarioParam> extra)
{
    std::vector<ScenarioParam> all = std::move(extra);
    std::vector<ScenarioParam> base = baseParams();
    all.insert(all.end(), base.begin(), base.end());
    return all;
}

} // namespace

void
registerBuiltinScenarios()
{
    registerScenario(
        {"cluster",
         "raw ClusterSpec pass-through (the spec file is the cluster "
         "document; rate sweeps supported)",
         buildRawCluster,
         {{"(root)", "the spec file IS the ClusterSpec document"}}});
    registerScenario(
        {"steady-poisson",
         "constant-rate open-loop Poisson traffic (the legacy model, "
         "as an explicit arrival process)",
         buildSteadyPoisson,
         withBase({{"rate", "mean arrival rate, req/s (default 60)"}})});
    registerScenario(
        {"mmpp-diurnal",
         "Markov-modulated Poisson traffic cycling through "
         "trough/shoulder/peak rates (diurnal, bursty load)",
         buildMmppDiurnal,
         withBase({{"states",
                    "[{rate, dwell-sec}] MMPP states (default "
                    "30/60/120 req/s diurnal cycle)"}})});
    registerScenario(
        {"chat-sessions",
         "multi-turn chat sessions with prefix-cache reuse and "
         "session-affinity routing",
         buildChatSessions,
         withBase(
             {{"session-rate", "session starts per second (default 15)"},
              {"mean-turns", "mean turns per session (default 4)"},
              {"think-sec", "mean think time between turns (default 2)"},
              {"cached-frac",
               "prefix-cache share of follow-up prompts (default "
               "0.75)"}})});
    registerScenario(
        {"multi-tenant",
         "independent per-tier Poisson streams with per-tenant SLO "
         "accounting (premium/standard/batch by default)",
         buildMultiTenant,
         withBase({{"tiers",
                    "[{name, rate, ttft-slo-ms, e2e-slo-ms}] SLO "
                    "tiers (default premium/standard/batch)"}})});
    registerScenario(
        {"kv_offload",
         "two-tier KV store under memory pressure: offload policy x "
         "interconnect generation, session traffic with prefix reuse",
         buildKvOffload,
         withBase(
             {{"policy",
               "offload policy: static-watermark, lru-by-session or "
               "prefix-aware (default lru-by-session)"},
              {"host-gib", "host KV pool per replica, GiB (default 16)"},
              {"watermark",
               "static-watermark HBM occupancy trigger (default 0.9)"},
              {"hbm-gib",
               "HBM capacity override, GiB (default 0.6, forcing "
               "pressure)"},
              {"link-bw-gbs", "interconnect bandwidth override, GB/s"},
              {"link-latency-ns", "interconnect latency override, ns"},
              {"session-rate", "session starts per second (default 12)"},
              {"mean-turns", "mean turns per session (default 4)"},
              {"think-sec", "mean think time between turns (default 1)"},
              {"cached-frac",
               "prefix-cache share of follow-up prompts (default "
               "0.8)"}})});
    registerScenario(
        {"disagg",
         "disaggregated prefill/decode pools with KV handoff over the "
         "interconnect (pool ratio as the axis)",
         buildDisagg,
         withBase(
             {{"prefill-replicas",
               "prefill-pool size; 0 collapses to co-located Mixed "
               "replicas (default 1)"},
              {"decode-replicas", "decode-pool size (default 1)"},
              {"rate", "mean arrival rate, req/s (default 40)"},
              {"policy",
               "optional KV offload policy on top of the split "
               "(default never)"},
              {"host-gib", "host KV pool per replica, GiB (default 16)"},
              {"watermark",
               "static-watermark HBM occupancy trigger (default "
               "0.9)"}})});
    registerScenario(
        {"datacenter",
         "fleet-scale serving (8 replicas by default) with an "
         "explicit router-to-replica dispatch hop, the lookahead "
         "source for the sharded engine; load scales with the fleet",
         buildDatacenter,
         withBase(
             {{"rate-per-replica",
               "mean arrival rate per replica, req/s (default 30)"},
              {"dispatch-us",
               "router-to-replica dispatch latency, us (default 5)"},
              {"staged-dispatch",
               "gate enqueue on staging the prompt over the KV lane "
               "(default false)"},
              {"shards",
               "engine shards; reports are byte-identical at any "
               "count (default 1)"}})});
}

} // namespace skipsim::scenario
