/**
 * @file
 * Built-in scenarios. Each registers a builder that turns one JSON
 * parameter object into a complete ClusterSpec; the production-shaped
 * traffic scenarios pair a serving::ArrivalProcess with deployment
 * defaults that make its signature visible (session affinity for chat
 * traffic, per-tier SLOs for multi-tenant).
 *
 * Shared parameters understood by every scenario except the raw
 * "cluster" pass-through: "model", "platform", "replicas" (count),
 * "max-active", "max-queue", "router", "horizon-sec", "prompt",
 * "gen-tokens", "sessions", "ttft-slo-ms", "e2e-slo-ms", "seed".
 * See docs/scenarios.md for the full schema of each scenario.
 */

#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/strutil.hh"
#include "hw/catalog.hh"
#include "json/schema.hh"
#include "scenario/registry.hh"
#include "serving/arrival.hh"
#include "workload/model_config.hh"

namespace skipsim::scenario
{

namespace
{

double
num(const json::Object &obj, const char *key, double def)
{
    return obj.has(key) ? obj.at(key).asDouble() : def;
}

int
integer(const json::Object &obj, const char *key, int def)
{
    return obj.has(key) ? static_cast<int>(obj.at(key).asInt()) : def;
}

/** The deployment shape shared by the traffic-model scenarios. */
cluster::ClusterSpec
baseSpec(const json::Object &params)
{
    json::checkSchemaVersion(params, "scenario spec");
    cluster::ClusterSpec spec;
    spec.model =
        workload::modelByName(params.has("model")
                                  ? params.at("model").asString()
                                  : "GPT2");
    cluster::ReplicaSpec replica;
    replica.platform =
        hw::platforms::byName(params.has("platform")
                                  ? params.at("platform").asString()
                                  : "GH200");
    replica.maxActive = integer(params, "max-active", 16);
    replica.maxQueue = integer(params, "max-queue", 0);
    int replicas = integer(params, "replicas", 2);
    if (replicas <= 0)
        fatal("'replicas' must be positive");
    spec.replicas.assign(static_cast<std::size_t>(replicas), replica);
    if (params.has("router"))
        spec.router = cluster::routerPolicyByName(
            params.at("router").asString());
    spec.horizonSec = num(params, "horizon-sec", 10.0);
    spec.promptLen = integer(params, "prompt", 128);
    spec.genTokens = integer(params, "gen-tokens", 16);
    spec.sessions = integer(params, "sessions", 64);
    spec.ttftSloMs = num(params, "ttft-slo-ms", 500.0);
    spec.e2eSloMs = num(params, "e2e-slo-ms", 2000.0);
    spec.seed = static_cast<std::uint64_t>(num(params, "seed", 42.0));
    return spec;
}

cluster::ClusterSpec
buildRawCluster(const json::Object &params)
{
    // The pre-registry `skipctl cluster` entry point, as a scenario:
    // the parameter document IS a ClusterSpec, so existing spec files
    // run unchanged through the same registry path as everything else.
    return cluster::ClusterSpec::fromJson(
        json::Value(json::Object(params)));
}

cluster::ClusterSpec
buildSteadyPoisson(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    spec.arrivalRatePerSec = num(params, "rate", 60.0);
    spec.traffic = std::make_shared<serving::PoissonProcess>(
        spec.arrivalRatePerSec, spec.sessions);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildMmppDiurnal(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    std::vector<serving::MmppProcess::State> states;
    if (params.has("states")) {
        for (const json::Value &entry : params.at("states").asArray()) {
            const json::Object &obj = entry.asObject();
            serving::MmppProcess::State state;
            state.ratePerSec = num(obj, "rate", 0.0);
            state.dwellSec = num(obj, "dwell-sec", 1.0);
            states.push_back(state);
        }
    } else {
        // Default diurnal cycle: a long trough, a shoulder, a short
        // peak — mean rate 60/s, same as steady-poisson's default, so
        // the two scenarios isolate the effect of burstiness.
        states.push_back({30.0, 2.0});
        states.push_back({60.0, 1.0});
        states.push_back({120.0, 1.0});
    }
    auto process = std::make_shared<serving::MmppProcess>(
        std::move(states), spec.sessions);
    spec.arrivalRatePerSec = process->meanRatePerSec();
    spec.traffic = std::move(process);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildChatSessions(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    if (!params.has("router")) {
        // Conversations should stick to the replica holding their
        // prefix cache; affinity is the point of this scenario.
        spec.router = cluster::RouterPolicy::SessionAffinity;
    }
    serving::SessionProcess::Params traffic;
    traffic.sessionRatePerSec = num(params, "session-rate", 15.0);
    traffic.meanTurns = num(params, "mean-turns", 4.0);
    traffic.thinkSec = num(params, "think-sec", 2.0);
    traffic.cachedFrac = num(params, "cached-frac", 0.75);
    traffic.sessions = spec.sessions;
    auto process = std::make_shared<serving::SessionProcess>(traffic);
    spec.arrivalRatePerSec = process->meanRatePerSec();
    spec.traffic = std::move(process);
    spec.validate();
    return spec;
}

cluster::ClusterSpec
buildMultiTenant(const json::Object &params)
{
    cluster::ClusterSpec spec = baseSpec(params);
    std::vector<serving::TieredProcess::Tier> tiers;
    spec.tenants.clear();
    auto add_tier = [&](const std::string &name, double rate,
                        double ttft_slo_ms, double e2e_slo_ms) {
        serving::TieredProcess::Tier tier;
        tier.name = name;
        tier.ratePerSec = rate;
        tiers.push_back(std::move(tier));
        cluster::TenantSpec tenant;
        tenant.name = name;
        tenant.ttftSloMs = ttft_slo_ms;
        tenant.e2eSloMs = e2e_slo_ms;
        spec.tenants.push_back(std::move(tenant));
    };
    if (params.has("tiers")) {
        for (const json::Value &entry : params.at("tiers").asArray()) {
            const json::Object &obj = entry.asObject();
            add_tier(obj.has("name") ? obj.at("name").asString()
                                     : strprintf("tier%zu",
                                                 tiers.size()),
                     num(obj, "rate", 10.0),
                     num(obj, "ttft-slo-ms", spec.ttftSloMs),
                     num(obj, "e2e-slo-ms", spec.e2eSloMs));
        }
    } else {
        // Interactive premium, standard, and latency-tolerant batch
        // tiers: same cluster, three SLO contracts.
        add_tier("premium", 15.0, 250.0, 1000.0);
        add_tier("standard", 30.0, 500.0, 2000.0);
        add_tier("batch", 15.0, 2000.0, 8000.0);
    }
    auto process = std::make_shared<serving::TieredProcess>(
        std::move(tiers), spec.sessions);
    spec.arrivalRatePerSec = process->meanRatePerSec();
    spec.traffic = std::move(process);
    spec.validate();
    return spec;
}

} // namespace

void
registerBuiltinScenarios()
{
    registerScenario(
        {"cluster",
         "raw ClusterSpec pass-through (the spec file is the cluster "
         "document; rate sweeps supported)",
         buildRawCluster});
    registerScenario(
        {"steady-poisson",
         "constant-rate open-loop Poisson traffic (the legacy model, "
         "as an explicit arrival process)",
         buildSteadyPoisson});
    registerScenario(
        {"mmpp-diurnal",
         "Markov-modulated Poisson traffic cycling through "
         "trough/shoulder/peak rates (diurnal, bursty load)",
         buildMmppDiurnal});
    registerScenario(
        {"chat-sessions",
         "multi-turn chat sessions with prefix-cache reuse and "
         "session-affinity routing",
         buildChatSessions});
    registerScenario(
        {"multi-tenant",
         "independent per-tier Poisson streams with per-tenant SLO "
         "accounting (premium/standard/batch by default)",
         buildMultiTenant});
}

} // namespace skipsim::scenario
