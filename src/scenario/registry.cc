#include "scenario/registry.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/strutil.hh"

namespace skipsim::scenario
{

/** Defined in builtin.cc; called once before any registry access. */
void registerBuiltinScenarios();

namespace
{

std::mutex g_mutex;
std::map<std::string, Scenario> g_scenarios;
std::once_flag g_builtinsOnce;

void
ensureBuiltins()
{
    std::call_once(g_builtinsOnce, registerBuiltinScenarios);
}

/** Classic dynamic-programming edit distance, for typo suggestions. */
std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            std::size_t up = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                               diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = up;
        }
    }
    return row[b.size()];
}

std::string
joinedNamesLocked()
{
    std::string joined;
    for (const auto &[name, scenario] : g_scenarios) {
        if (!joined.empty())
            joined += ", ";
        joined += name;
    }
    return joined;
}

} // namespace

void
registerScenario(Scenario scenario)
{
    if (scenario.name.empty())
        fatal("registerScenario: empty name");
    if (!scenario.build)
        fatal(strprintf("registerScenario: scenario '%s' has no builder",
                        scenario.name.c_str()));
    std::lock_guard<std::mutex> lock(g_mutex);
    if (g_scenarios.count(scenario.name))
        fatal(strprintf("registerScenario: scenario '%s' is already "
                        "registered",
                        scenario.name.c_str()));
    g_scenarios.emplace(scenario.name, std::move(scenario));
}

bool
hasScenario(const std::string &name)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(g_mutex);
    return g_scenarios.count(name) > 0;
}

const Scenario &
scenarioByName(const std::string &name)
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(g_mutex);
    auto it = g_scenarios.find(name);
    if (it != g_scenarios.end())
        return it->second;

    // Unknown: suggest the nearest registered name (ties break
    // lexicographically via map order) and list what exists.
    std::string nearest;
    std::size_t best = std::string::npos;
    for (const auto &[candidate, scenario] : g_scenarios) {
        std::size_t d = editDistance(name, candidate);
        if (d < best) {
            best = d;
            nearest = candidate;
        }
    }
    if (nearest.empty())
        fatal(strprintf("unknown scenario '%s' (none registered)",
                        name.c_str()));
    fatal(strprintf("unknown scenario '%s'; did you mean '%s'? "
                    "(available: %s)",
                    name.c_str(), nearest.c_str(),
                    joinedNamesLocked().c_str()));
}

cluster::ClusterSpec
buildScenario(const std::string &name, const json::Object &params)
{
    const Scenario &scenario = scenarioByName(name);
    try {
        return scenario.build(params);
    } catch (const FatalError &err) {
        fatal(strprintf("scenario '%s': %s", name.c_str(), err.what()));
    } catch (const std::exception &err) {
        fatal(strprintf("scenario '%s': %s", name.c_str(), err.what()));
    }
}

std::vector<Scenario>
scenarioList()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(g_mutex);
    std::vector<Scenario> out;
    out.reserve(g_scenarios.size());
    for (const auto &[name, scenario] : g_scenarios)
        out.push_back(scenario);
    return out;
}

std::vector<std::string>
scenarioNames()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(g_mutex);
    std::vector<std::string> out;
    out.reserve(g_scenarios.size());
    for (const auto &[name, scenario] : g_scenarios)
        out.push_back(name);
    return out;
}

json::Value
scenarioListToJson()
{
    ensureBuiltins();
    std::lock_guard<std::mutex> lock(g_mutex);
    json::Value::Array list;
    for (const auto &[name, scenario] : g_scenarios) {
        json::Object entry;
        entry.set("name", scenario.name);
        entry.set("description", scenario.description);
        json::Value::Array params;
        for (const ScenarioParam &param : scenario.params) {
            json::Object p;
            p.set("name", param.name);
            p.set("description", param.description);
            params.push_back(json::Value(std::move(p)));
        }
        entry.set("params", json::Value(std::move(params)));
        list.push_back(json::Value(std::move(entry)));
    }
    return json::Value(std::move(list));
}

} // namespace skipsim::scenario
