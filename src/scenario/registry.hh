/**
 * @file
 * Scenario registry: named, self-registering builders that construct a
 * full cluster run — workload, arrival process, platform/cluster
 * config — from one JSON parameter document. Front ends dispatch on
 * the scenario name (skipctl run --scenario NAME --spec s.json, the
 * "scenario" exec analysis, bench tables), so adding a traffic model
 * or deployment shape means registering one builder, not growing
 * another subcommand body.
 *
 * The registry is the workload-factory pattern already used for exec
 * analyses: a string-keyed map of builders behind a mutex, with
 * built-ins registered on first use. Unlike the analysis registry,
 * duplicate registration is an error (two builders silently shadowing
 * each other under one name would make --scenario runs depend on
 * registration order), and unknown names suggest the lexicographically
 * nearest registered name so a typo'd --scenario fails helpfully.
 *
 * Determinism: builders are pure spec constructors — no RNG, no host
 * state. All randomness stays in the simulation layers, keyed by the
 * spec's seed, so a (scenario, params) pair fully determines the
 * report at any --jobs count.
 */

#ifndef SKIPSIM_SCENARIO_REGISTRY_HH
#define SKIPSIM_SCENARIO_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "json/value.hh"

namespace skipsim::scenario
{

/** One accepted scenario parameter (documentation metadata). */
struct ScenarioParam
{
    /** Parameter key in the --spec JSON object. */
    std::string name;

    /** One-line meaning, including the default. */
    std::string description;
};

/** One registered scenario. */
struct Scenario
{
    /** Registry key (--scenario NAME). */
    std::string name;

    /** One-line summary shown by `skipctl scenarios`. */
    std::string description;

    /**
     * Build the run from a JSON parameter object (the --spec file's
     * root). Builders validate their parameters and the returned spec;
     * they never draw randomness.
     */
    std::function<cluster::ClusterSpec(const json::Object &params)>
        build;

    /**
     * Accepted parameters (`skipctl scenarios --json`). Documentation
     * only — builders stay the behavioral source of truth.
     */
    std::vector<ScenarioParam> params;
};

/**
 * Register @p scenario. Thread-safe.
 * @throws skipsim::FatalError for an empty name, a null builder, or a
 *         name that is already registered.
 */
void registerScenario(Scenario scenario);

/** @return true when @p name is registered (built-in or external). */
bool hasScenario(const std::string &name);

/**
 * Look up a scenario.
 * @throws skipsim::FatalError for unknown names; the message names the
 *         nearest registered scenario and lists all of them.
 */
const Scenario &scenarioByName(const std::string &name);

/**
 * Build scenario @p name's ClusterSpec from @p params.
 * @throws skipsim::FatalError for unknown names (see scenarioByName)
 *         or builder failures — a builder's error is re-raised with
 *         the scenario name prefixed so `skipctl run` failures say
 *         which scenario rejected its spec.
 */
cluster::ClusterSpec buildScenario(const std::string &name,
                                   const json::Object &params);

/** All registered scenarios, sorted by name. */
std::vector<Scenario> scenarioList();

/** All registered names, sorted. */
std::vector<std::string> scenarioNames();

/**
 * Machine-readable listing (`skipctl scenarios --json`): an array of
 * {"name", "description", "params": [{"name", "description"}]}
 * objects, sorted by scenario name.
 */
json::Value scenarioListToJson();

} // namespace skipsim::scenario

#endif // SKIPSIM_SCENARIO_REGISTRY_HH
