#include "serving/arrival.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "core/rng_stream.hh"

namespace skipsim::serving
{

namespace
{

/**
 * Exponential inter-event gap, reproducing the legacy inline arrival
 * loop bit-for-bit: uniform draw, clamp away from zero, -log scaling.
 */
double
expGapNs(Rng &rng, double meanNs)
{
    double u = rng.uniform();
    if (u <= 0.0)
        u = 1e-12;
    return -std::log(u) * meanNs;
}

/** Geometric number of extra events with mean @p mean (0 when <= 0). */
int
geometric(Rng &rng, double mean)
{
    if (mean <= 0.0)
        return 0;
    double p = 1.0 / (mean + 1.0);
    double u = rng.uniform();
    if (u <= 0.0)
        u = 1e-12;
    // Inverse-CDF geometric (number of failures before a success),
    // capped so a pathological draw cannot explode a session.
    double k = std::floor(std::log(u) / std::log(1.0 - p));
    return static_cast<int>(std::min(k, 1024.0));
}

void
requireSessions(int sessions, const char *kind)
{
    if (sessions <= 0)
        fatal(strprintf("%s arrivals: sessions must be positive", kind));
}

} // namespace

// ------------------------------------------------------------- poisson

void
PoissonProcess::validate() const
{
    if (_ratePerSec <= 0.0)
        fatal("poisson arrivals: rate must be positive");
    requireSessions(_sessions, "poisson");
}

std::vector<Arrival>
PoissonProcess::generate(double horizonNs, std::uint64_t seed) const
{
    // Stream 0 is the documented arrival stream; the draw order (gap,
    // then session) matches the pre-refactor inline loop exactly.
    Rng rng = core::RngStreams(seed).stream(0);
    double mean_gap_ns = 1e9 / _ratePerSec;
    std::vector<Arrival> out;
    double t = 0.0;
    while (true) {
        t += expGapNs(rng, mean_gap_ns);
        if (t >= horizonNs)
            break;
        Arrival a;
        a.timeNs = t;
        a.session = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(_sessions)));
        out.push_back(a);
    }
    return out;
}

json::Value
PoissonProcess::toJson() const
{
    json::Object doc;
    doc.set("type", kind());
    doc.set("rate", _ratePerSec);
    doc.set("sessions", _sessions);
    return json::Value(std::move(doc));
}

// ---------------------------------------------------------------- mmpp

void
MmppProcess::validate() const
{
    if (_states.empty())
        fatal("mmpp arrivals: need at least one state");
    bool any_rate = false;
    for (std::size_t i = 0; i < _states.size(); ++i) {
        if (_states[i].ratePerSec < 0.0)
            fatal(strprintf("mmpp arrivals: state %zu rate must be "
                            "non-negative",
                            i));
        if (_states[i].dwellSec <= 0.0)
            fatal(strprintf("mmpp arrivals: state %zu dwell must be "
                            "positive",
                            i));
        any_rate = any_rate || _states[i].ratePerSec > 0.0;
    }
    if (!any_rate)
        fatal("mmpp arrivals: at least one state needs a positive rate");
    requireSessions(_sessions, "mmpp");
}

double
MmppProcess::meanRatePerSec() const
{
    double weighted = 0.0;
    double dwell = 0.0;
    for (const State &state : _states) {
        weighted += state.ratePerSec * state.dwellSec;
        dwell += state.dwellSec;
    }
    return dwell > 0.0 ? weighted / dwell : 0.0;
}

std::vector<Arrival>
MmppProcess::generate(double horizonNs, std::uint64_t seed) const
{
    Rng rng = core::RngStreams(seed).stream(0);
    std::vector<Arrival> out;
    double t = 0.0;
    std::size_t state = 0;
    while (t < horizonNs) {
        const State &st = _states[state % _states.size()];
        double seg_end =
            std::min(t + expGapNs(rng, st.dwellSec * 1e9), horizonNs);
        if (st.ratePerSec > 0.0) {
            // Poisson within the segment; the gap that overshoots the
            // segment boundary is discarded (memorylessness makes the
            // truncation exact).
            double mean_gap_ns = 1e9 / st.ratePerSec;
            double a = t;
            while (true) {
                a += expGapNs(rng, mean_gap_ns);
                if (a >= seg_end)
                    break;
                Arrival arrival;
                arrival.timeNs = a;
                arrival.session = static_cast<int>(
                    rng.below(static_cast<std::uint64_t>(_sessions)));
                out.push_back(arrival);
            }
        }
        t = seg_end;
        ++state;
    }
    return out;
}

json::Value
MmppProcess::toJson() const
{
    json::Object doc;
    doc.set("type", kind());
    json::Value::Array states;
    for (const State &state : _states) {
        json::Object entry;
        entry.set("rate", state.ratePerSec);
        entry.set("dwell-sec", state.dwellSec);
        states.push_back(json::Value(std::move(entry)));
    }
    doc.set("states", json::Value(std::move(states)));
    doc.set("sessions", _sessions);
    return json::Value(std::move(doc));
}

// ------------------------------------------------------------ sessions

void
SessionProcess::validate() const
{
    if (_p.sessionRatePerSec <= 0.0)
        fatal("session arrivals: session-rate must be positive");
    if (_p.meanTurns < 1.0)
        fatal("session arrivals: mean-turns must be >= 1");
    if (_p.thinkSec < 0.0)
        fatal("session arrivals: think-sec must be non-negative");
    if (_p.cachedFrac < 0.0 || _p.cachedFrac > 0.95)
        fatal("session arrivals: cached-frac must be within [0, 0.95]");
    requireSessions(_p.sessions, "session");
}

std::vector<Arrival>
SessionProcess::generate(double horizonNs, std::uint64_t seed) const
{
    Rng rng = core::RngStreams(seed).stream(0);
    std::vector<Arrival> out;
    double t = 0.0;
    int session_index = 0;
    double open_gap_ns = 1e9 / _p.sessionRatePerSec;
    while (true) {
        t += expGapNs(rng, open_gap_ns);
        if (t >= horizonNs)
            break;
        int turns = 1 + geometric(rng, _p.meanTurns - 1.0);
        int sid = session_index++ % _p.sessions;
        double at = t;
        for (int k = 0; k < turns; ++k) {
            if (k > 0)
                at += expGapNs(rng, _p.thinkSec * 1e9);
            if (at >= horizonNs)
                break;
            Arrival arrival;
            arrival.timeNs = at;
            arrival.session = sid;
            arrival.cachedFrac = k == 0 ? 0.0 : _p.cachedFrac;
            out.push_back(arrival);
        }
    }
    // Turns of concurrent sessions interleave; stable sort keeps the
    // generation order as the (deterministic) tie-break.
    std::stable_sort(out.begin(), out.end(),
                     [](const Arrival &a, const Arrival &b) {
                         return a.timeNs < b.timeNs;
                     });
    return out;
}

json::Value
SessionProcess::toJson() const
{
    json::Object doc;
    doc.set("type", kind());
    doc.set("session-rate", _p.sessionRatePerSec);
    doc.set("mean-turns", _p.meanTurns);
    doc.set("think-sec", _p.thinkSec);
    doc.set("cached-frac", _p.cachedFrac);
    doc.set("sessions", _p.sessions);
    return json::Value(std::move(doc));
}

// -------------------------------------------------------------- tiered

void
TieredProcess::validate() const
{
    if (_tiers.empty())
        fatal("tiered arrivals: need at least one tier");
    for (std::size_t i = 0; i < _tiers.size(); ++i) {
        if (_tiers[i].ratePerSec <= 0.0)
            fatal(strprintf("tiered arrivals: tier %zu rate must be "
                            "positive",
                            i));
    }
    requireSessions(_sessions, "tiered");
}

double
TieredProcess::meanRatePerSec() const
{
    double total = 0.0;
    for (const Tier &tier : _tiers)
        total += tier.ratePerSec;
    return total;
}

std::vector<Arrival>
TieredProcess::generate(double horizonNs, std::uint64_t seed) const
{
    core::RngStreams streams(seed);
    std::vector<Arrival> out;
    for (std::size_t i = 0; i < _tiers.size(); ++i) {
        // A named stream per tier: tier i's timeline is independent of
        // every other tier's (and of the replica jitter streams).
        Rng rng = streams.stream(
            std::string("arrival.tenant.") + std::to_string(i));
        double mean_gap_ns = 1e9 / _tiers[i].ratePerSec;
        double t = 0.0;
        while (true) {
            t += expGapNs(rng, mean_gap_ns);
            if (t >= horizonNs)
                break;
            Arrival arrival;
            arrival.timeNs = t;
            arrival.session = static_cast<int>(
                rng.below(static_cast<std::uint64_t>(_sessions)));
            arrival.tenant = static_cast<int>(i);
            out.push_back(arrival);
        }
    }
    // Merge the per-tier timelines; ties (essentially impossible with
    // continuous times) break by tier order via the stable sort.
    std::stable_sort(out.begin(), out.end(),
                     [](const Arrival &a, const Arrival &b) {
                         return a.timeNs < b.timeNs;
                     });
    return out;
}

json::Value
TieredProcess::toJson() const
{
    json::Object doc;
    doc.set("type", kind());
    json::Value::Array tiers;
    for (const Tier &tier : _tiers) {
        json::Object entry;
        entry.set("name", tier.name);
        entry.set("rate", tier.ratePerSec);
        tiers.push_back(json::Value(std::move(entry)));
    }
    doc.set("tiers", json::Value(std::move(tiers)));
    doc.set("sessions", _sessions);
    return json::Value(std::move(doc));
}

// --------------------------------------------------------------- serde

std::unique_ptr<ArrivalProcess>
arrivalProcessFromJson(const json::Value &doc)
{
    const json::Object &obj = doc.asObject();
    if (!obj.has("type"))
        fatal("arrival process: missing 'type' (known: poisson, mmpp, "
              "sessions, tiered)");
    const std::string &type = obj.at("type").asString();
    int sessions = obj.has("sessions")
        ? static_cast<int>(obj.at("sessions").asInt())
        : 64;

    std::unique_ptr<ArrivalProcess> process;
    if (type == "poisson") {
        double rate =
            obj.has("rate") ? obj.at("rate").asDouble() : 100.0;
        process = std::make_unique<PoissonProcess>(rate, sessions);
    } else if (type == "mmpp") {
        std::vector<MmppProcess::State> states;
        if (obj.has("states")) {
            for (const json::Value &entry : obj.at("states").asArray()) {
                const json::Object &state = entry.asObject();
                MmppProcess::State s;
                if (state.has("rate"))
                    s.ratePerSec = state.at("rate").asDouble();
                if (state.has("dwell-sec"))
                    s.dwellSec = state.at("dwell-sec").asDouble();
                states.push_back(s);
            }
        }
        process =
            std::make_unique<MmppProcess>(std::move(states), sessions);
    } else if (type == "sessions") {
        SessionProcess::Params params;
        params.sessions = sessions;
        if (obj.has("session-rate"))
            params.sessionRatePerSec =
                obj.at("session-rate").asDouble();
        if (obj.has("mean-turns"))
            params.meanTurns = obj.at("mean-turns").asDouble();
        if (obj.has("think-sec"))
            params.thinkSec = obj.at("think-sec").asDouble();
        if (obj.has("cached-frac"))
            params.cachedFrac = obj.at("cached-frac").asDouble();
        process = std::make_unique<SessionProcess>(params);
    } else if (type == "tiered") {
        std::vector<TieredProcess::Tier> tiers;
        if (obj.has("tiers")) {
            for (const json::Value &entry : obj.at("tiers").asArray()) {
                const json::Object &tier = entry.asObject();
                TieredProcess::Tier t;
                if (tier.has("name"))
                    t.name = tier.at("name").asString();
                if (tier.has("rate"))
                    t.ratePerSec = tier.at("rate").asDouble();
                tiers.push_back(std::move(t));
            }
        }
        process =
            std::make_unique<TieredProcess>(std::move(tiers), sessions);
    } else {
        fatal(strprintf("arrival process: unknown type '%s' (known: "
                        "poisson, mmpp, sessions, tiered)",
                        type.c_str()));
    }
    process->validate();
    return process;
}

} // namespace skipsim::serving
