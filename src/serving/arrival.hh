/**
 * @file
 * Pluggable arrival processes: the traffic side of a serving run,
 * decoupled from the engines that consume it. The original simulators
 * hard-coded open-loop Poisson arrivals; production traffic is not
 * Poisson — diurnal load swings, bursts, multi-turn chat sessions and
 * multi-tenant tiers all shape the tail far more than the mean rate
 * does. An ArrivalProcess pre-generates the full request timeline for
 * a horizon as a pure function of one base seed, so any front end
 * (simulateCluster, scenario builders, benches) can swap traffic
 * models without touching engine code and results stay byte-identical
 * at any worker count.
 *
 * Determinism contract: generate(horizon, seed) draws only from
 * core::RngStreams(seed) — Poisson and MMPP use the documented arrival
 * stream 0 (PoissonProcess reproduces the legacy inline loop draw for
 * draw, keeping pre-existing goldens byte-identical); multi-stream
 * processes use named streams so they cannot collide with the replica
 * jitter streams (numeric ids i + 1).
 *
 * Serde: each process round-trips through a tagged JSON object
 * ({"type": "poisson" | "mmpp" | "sessions" | "tiered", ...});
 * arrivalProcessFromJson() dispatches on the tag and rejects unknown
 * types with the list of known ones.
 */

#ifndef SKIPSIM_SERVING_ARRIVAL_HH
#define SKIPSIM_SERVING_ARRIVAL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "json/value.hh"

namespace skipsim::serving
{

/** One generated request arrival. */
struct Arrival
{
    /** Arrival instant, ns from the start of the horizon. */
    double timeNs = 0.0;

    /** Session id (routing key for session-affinity policies). */
    int session = 0;

    /** Tenant/tier index (0 when the process is single-tenant). */
    int tenant = 0;

    /**
     * Fraction of the prompt already resident in a prefix cache
     * (multi-turn follow-ups); 0 means a cold prompt. Engines model
     * the hit as saved prefill compute — the KV footprint is still
     * reserved in full (conservative admission).
     */
    double cachedFrac = 0.0;
};

/** A traffic model: horizon + seed in, request timeline out. */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Serde tag ("poisson", "mmpp", "sessions", "tiered"). */
    virtual const char *kind() const = 0;

    /**
     * All arrivals in [0, horizonNs), sorted by time, drawn only from
     * RngStreams(@p seed) — a pure function of its arguments.
     */
    virtual std::vector<Arrival> generate(double horizonNs,
                                          std::uint64_t seed) const = 0;

    /** Nominal long-run mean rate, requests/s (reports, weights). */
    virtual double meanRatePerSec() const = 0;

    /** Tenant-tier cardinality (1 for single-tenant processes). */
    virtual int tenantCount() const { return 1; }

    /** @throws skipsim::FatalError on inconsistent parameters. */
    virtual void validate() const = 0;

    /** Tagged JSON document (round trips via arrivalProcessFromJson). */
    virtual json::Value toJson() const = 0;
};

/**
 * Open-loop Poisson arrivals at a constant rate — the legacy traffic
 * model. Draw-for-draw identical to the inline loop it replaced
 * (stream 0: exponential gap, then session id), so cluster goldens
 * recorded before this class existed still match byte-for-byte.
 */
class PoissonProcess final : public ArrivalProcess
{
  public:
    PoissonProcess(double ratePerSec, int sessions)
        : _ratePerSec(ratePerSec), _sessions(sessions)
    {
    }

    const char *kind() const override { return "poisson"; }
    std::vector<Arrival> generate(double horizonNs,
                                  std::uint64_t seed) const override;
    double meanRatePerSec() const override { return _ratePerSec; }
    void validate() const override;
    json::Value toJson() const override;

  private:
    double _ratePerSec = 0.0;
    int _sessions = 1;
};

/**
 * Markov-modulated Poisson process: the arrival rate follows a cyclic
 * chain of states (e.g. trough -> shoulder -> peak), dwelling in state
 * i for an exponential time with the given mean before moving on.
 * Within a state, arrivals are Poisson at the state's rate. Captures
 * diurnal swings and bursty load that a constant-rate process cannot:
 * at equal mean rate, burstier states strictly worsen tail TTFT (a
 * metamorphic law in src/check).
 */
class MmppProcess final : public ArrivalProcess
{
  public:
    struct State
    {
        /** Arrival rate while in this state, requests/s (>= 0). */
        double ratePerSec = 0.0;

        /** Mean dwell time in this state, seconds (> 0). */
        double dwellSec = 1.0;
    };

    MmppProcess(std::vector<State> states, int sessions)
        : _states(std::move(states)), _sessions(sessions)
    {
    }

    const char *kind() const override { return "mmpp"; }
    std::vector<Arrival> generate(double horizonNs,
                                  std::uint64_t seed) const override;
    double meanRatePerSec() const override;
    void validate() const override;
    json::Value toJson() const override;

    const std::vector<State> &states() const { return _states; }

  private:
    std::vector<State> _states;
    int _sessions = 1;
};

/**
 * Multi-turn chat sessions: sessions open as a Poisson process; each
 * session issues a geometric number of turns (mean meanTurns) with
 * exponential think time between consecutive turns. Every turn after
 * the first carries cachedFrac — its prompt prefix (shared
 * conversation history) is a prefix-cache hit, so the engine skips
 * that share of the prefill compute. All turns of one session share a
 * session id, so session-affinity routing keeps a conversation (and
 * its cached prefix) on one replica.
 */
class SessionProcess final : public ArrivalProcess
{
  public:
    struct Params
    {
        /** Session-open rate, sessions/s. */
        double sessionRatePerSec = 10.0;

        /** Mean turns per session (>= 1; geometric tail). */
        double meanTurns = 4.0;

        /** Mean think time between turns, seconds. */
        double thinkSec = 2.0;

        /** Prefix-cache share of follow-up prompts, [0, 0.95]. */
        double cachedFrac = 0.75;

        /** Session-id pool size (affinity routing key space). */
        int sessions = 64;
    };

    explicit SessionProcess(const Params &params) : _p(params) {}

    const char *kind() const override { return "sessions"; }
    std::vector<Arrival> generate(double horizonNs,
                                  std::uint64_t seed) const override;
    double meanRatePerSec() const override
    {
        return _p.sessionRatePerSec * _p.meanTurns;
    }
    void validate() const override;
    json::Value toJson() const override;

    const Params &params() const { return _p; }

  private:
    Params _p;
};

/**
 * Multi-tenant tiers: the superposition of one independent Poisson
 * stream per tenant, each tagged with its tenant index. Tenant i draws
 * from the named stream "arrival.tenant.<i>", so adding or removing a
 * tier never perturbs another tier's stream. Pair with
 * cluster::ClusterSpec::tenants to give each tier its own SLO.
 */
class TieredProcess final : public ArrivalProcess
{
  public:
    struct Tier
    {
        std::string name = "tenant";

        /** This tier's arrival rate, requests/s. */
        double ratePerSec = 10.0;
    };

    TieredProcess(std::vector<Tier> tiers, int sessions)
        : _tiers(std::move(tiers)), _sessions(sessions)
    {
    }

    const char *kind() const override { return "tiered"; }
    std::vector<Arrival> generate(double horizonNs,
                                  std::uint64_t seed) const override;
    double meanRatePerSec() const override;
    int tenantCount() const override
    {
        return static_cast<int>(_tiers.size());
    }
    void validate() const override;
    json::Value toJson() const override;

    const std::vector<Tier> &tiers() const { return _tiers; }

  private:
    std::vector<Tier> _tiers;
    int _sessions = 1;
};

/**
 * Build a process from its tagged JSON form.
 * @throws skipsim::FatalError for unknown/missing "type" (the message
 *         lists the known types) or invalid parameters.
 */
std::unique_ptr<ArrivalProcess>
arrivalProcessFromJson(const json::Value &doc);

} // namespace skipsim::serving

#endif // SKIPSIM_SERVING_ARRIVAL_HH
