#include "serving/continuous.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/strutil.hh"
#include "core/engine.hh"
#include "obs/collector.hh"
#include "serving/replica_engine.hh"
#include "sim/simulator.hh"
#include "stats/summary.hh"
#include "workload/builder.hh"

namespace skipsim::serving
{

namespace
{

/** One batching iteration, for post-hoc probe replay. */
struct IterRec
{
    double beginNs = 0.0;
    double endNs = 0.0;
    /** Sequences worked this iteration (decode batch + prefills). */
    int active = 0;
    /** Tokens emitted when the iteration completes. */
    int tokens = 0;
    /** Span name ("prefill b=N" / "decode b=N" / "chunk+decode b=N"). */
    std::string label;
};

/**
 * Replay recorded iterations over the collector's deterministic
 * sampling boundaries; runs after the simulation completes.
 */
void
emitContinuousObs(obs::Collector &obs,
                  const std::vector<double> &arrivals,
                  const std::vector<std::pair<double, int>> &admits,
                  const std::vector<IterRec> &iters,
                  const std::vector<std::pair<double, double>> &ttfts,
                  std::size_t completed, std::size_t tokens_total,
                  double horizon_ns)
{
    obs::Registry &metrics = obs.metrics();
    metrics.counter("continuous.requests_offered")
        .add(static_cast<double>(arrivals.size()));
    metrics.counter("continuous.requests_completed")
        .add(static_cast<double>(completed));
    metrics.counter("continuous.tokens")
        .add(static_cast<double>(tokens_total));
    metrics.counter("continuous.iterations")
        .add(static_cast<double>(iters.size()));
    obs::Histogram &ttft_hist = metrics.histogram(
        "continuous.ttft_ms", obs::defaultLatencyBucketsMs());
    for (const auto &ttft : ttfts)
        ttft_hist.observe(ttft.second / 1e6);

    for (const IterRec &iter : iters)
        obs.span(iter.label, 0, std::llround(iter.beginNs),
                 std::llround(iter.endNs - iter.beginNs));

    obs::Ticker tick = obs.ticker();
    const double window_sec =
        static_cast<double>(obs.intervalNs()) / 1e9;
    std::size_t arr_i = 0;
    std::size_t admit_i = 0;
    std::size_t iter_i = 0;  // iteration possibly covering the boundary
    std::size_t token_i = 0; // iterations whose tokens are counted
    std::size_t ttft_i = 0;
    long long admitted = 0;
    const double stop =
        horizon_ns + static_cast<double>(obs.intervalNs()) - 1.0;
    tick.advanceTo(stop, [&](std::int64_t t) {
        const double now = static_cast<double>(t);
        while (arr_i < arrivals.size() && arrivals[arr_i] <= now)
            ++arr_i;
        while (admit_i < admits.size() && admits[admit_i].first <= now) {
            admitted += admits[admit_i].second;
            ++admit_i;
        }
        while (iter_i < iters.size() && iters[iter_i].endNs <= now)
            ++iter_i;
        double active = 0.0;
        if (iter_i < iters.size() && iters[iter_i].beginNs <= now)
            active = static_cast<double>(iters[iter_i].active);

        long long window_tokens = 0;
        while (token_i < iters.size() && iters[token_i].endNs <= now) {
            window_tokens += iters[token_i].tokens;
            ++token_i;
        }
        const std::size_t ttft_begin = ttft_i;
        double window_ttft_ns = 0.0;
        while (ttft_i < ttfts.size() && ttfts[ttft_i].first <= now) {
            window_ttft_ns += ttfts[ttft_i].second;
            ++ttft_i;
        }
        const std::size_t window_ttfts = ttft_i - ttft_begin;

        obs.sample("continuous.queue_depth", {}, t,
                   static_cast<double>(arr_i) -
                       static_cast<double>(admitted));
        obs.sample("continuous.batch_active", {}, t, active);
        obs.sample("continuous.tokens_per_sec", {}, t,
                   static_cast<double>(window_tokens) / window_sec);
        obs.sample("continuous.ttft_ms", {}, t,
                   window_ttfts > 0
                       ? window_ttft_ns /
                           static_cast<double>(window_ttfts) / 1e6
                       : 0.0);
    });
}

} // namespace

IterationCostModel::IterationCostModel(const workload::ModelConfig &model,
                                       const hw::Platform &platform,
                                       int prompt_len)
    : _model(model), _platform(platform)
{
    if (prompt_len <= 0)
        fatal("IterationCostModel: prompt length must be positive");

    _grid = {1, 2, 4, 8, 16, 32, 64};
    sim::Simulator simulator(platform);
    for (int batch : _grid) {
        workload::BuildOptions opts;
        opts.batch = batch;
        opts.seqLen = prompt_len;
        _prefill.push_back(
            simulator.run(workload::buildPrefillGraph(model, opts))
                .wallNs);
        _decode.push_back(
            simulator
                .run(workload::buildDecodeStepGraph(model, opts,
                                                    prompt_len))
                .wallNs);
    }
}

double
IterationCostModel::interpolate(const std::vector<int> &grid,
                                const std::vector<double> &ys, int batch)
{
    if (batch <= 0)
        fatal("IterationCostModel: batch must be positive");
    if (batch <= grid.front())
        return ys.front();
    for (std::size_t i = 1; i < grid.size(); ++i) {
        if (batch <= grid[i]) {
            double frac = static_cast<double>(batch - grid[i - 1]) /
                static_cast<double>(grid[i] - grid[i - 1]);
            return ys[i - 1] * (1.0 - frac) + ys[i] * frac;
        }
    }
    // Extrapolate with the last segment's per-request slope.
    warnOnce("IterationCostModel.extrapolate",
             strprintf("IterationCostModel: batch %d beyond the "
                       "measured grid (max %d); extrapolating linearly",
                       batch, grid.back()));
    std::size_t n = grid.size();
    double slope = (ys[n - 1] - ys[n - 2]) /
        static_cast<double>(grid[n - 1] - grid[n - 2]);
    return ys[n - 1] +
        slope * static_cast<double>(batch - grid[n - 1]);
}

double
IterationCostModel::prefillNs(int batch) const
{
    return interpolate(_grid, _prefill, batch);
}

double
IterationCostModel::decodeNs(int batch) const
{
    return interpolate(_grid, _decode, batch);
}

double
IterationCostModel::chunkNs(int chunk_tokens) const
{
    if (chunk_tokens <= 0)
        fatal("IterationCostModel::chunkNs: chunk must be positive");
    auto it = _chunkCache.find(chunk_tokens);
    if (it != _chunkCache.end())
        return it->second;
    workload::BuildOptions opts;
    opts.batch = 1;
    opts.seqLen = chunk_tokens;
    sim::Simulator simulator(_platform);
    double ns =
        simulator.run(workload::buildPrefillGraph(_model, opts)).wallNs;
    _chunkCache.emplace(chunk_tokens, ns);
    return ns;
}

ContinuousResult
simulateContinuous(const IterationCostModel &cost,
                   const ContinuousConfig &config, obs::Collector *obs)
{
    if (config.arrivalRatePerSec <= 0.0)
        fatal("simulateContinuous: arrival rate must be positive");
    if (config.horizonSec <= 0.0)
        fatal("simulateContinuous: horizon must be positive");
    if (config.maxActive <= 0)
        fatal("simulateContinuous: maxActive must be positive");
    if (config.genTokens <= 0)
        fatal("simulateContinuous: genTokens must be positive");

    // Poisson arrivals over the horizon.
    Rng rng(config.seed);
    double horizon_ns = config.horizonSec * 1e9;
    double mean_gap_ns = 1e9 / config.arrivalRatePerSec;
    std::vector<double> arrivals;
    double t_arr = 0.0;
    while (true) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        t_arr += -std::log(u) * mean_gap_ns;
        if (t_arr >= horizon_ns)
            break;
        arrivals.push_back(t_arr);
    }

    ContinuousResult result;
    std::vector<std::pair<double, int>> obs_admits;
    std::vector<IterRec> obs_iters;
    std::vector<std::pair<double, double>> obs_ttfts;
    std::vector<double> ttfts;

    core::Engine engine;
    ReplicaEngine::Config rc;
    rc.cost = &cost;
    rc.maxActive = config.maxActive;
    rc.promptLen = config.promptLen;
    rc.genTokens = config.genTokens;
    rc.chunkTokens = config.chunkTokens;
    rc.horizonNs = horizon_ns;
    rc.iterPriority = 1; // arrivals (0) admit at an equal-time boundary

    ReplicaEngine::Callbacks cb;
    if (obs != nullptr)
        cb.onAdmit = [&](std::size_t count, double now) {
            obs_admits.emplace_back(now, static_cast<int>(count));
        };
    cb.onFirstToken = [&](std::size_t, double ttft, double now) {
        ttfts.push_back(ttft);
        if (obs != nullptr)
            obs_ttfts.emplace_back(now, ttft);
    };
    cb.onComplete = [&](std::size_t, double) { ++result.completed; };
    if (obs != nullptr)
        cb.onIteration = [&](const IterationInfo &info) {
            std::string label;
            int active = 0;
            if (info.prefill) {
                label = "prefill b=" + std::to_string(info.prefillBatch);
                active = info.prefillBatch;
            } else if (info.chunk && info.decodeBatch > 0) {
                label = "chunk+decode b=" +
                    std::to_string(info.decodeBatch + 1);
                active = info.decodeBatch + 1;
            } else if (info.chunk) {
                label = "chunk b=1";
                active = 1;
            } else {
                label = "decode b=" + std::to_string(info.decodeBatch);
                active = info.decodeBatch;
            }
            obs_iters.push_back({info.beginNs, info.endNs, active,
                                 info.tokens, std::move(label)});
        };

    ReplicaEngine replica(engine, rc, std::move(cb));
    for (std::size_t id = 0; id < arrivals.size(); ++id)
        engine.at(arrivals[id], 0, [&, id](double now) {
            replica.enqueue(id, now);
            replica.maybeStart(now);
        });
    engine.run();

    if (obs != nullptr)
        emitContinuousObs(*obs, arrivals, obs_admits, obs_iters,
                          obs_ttfts, result.completed,
                          replica.tokensEmitted(), horizon_ns);

    result.unfinished = replica.pendingCount() + replica.activeCount() +
        (replica.chunkHeadInFlight() ? 1 : 0);
    if (!ttfts.empty()) {
        std::vector<double> ps = stats::percentiles(ttfts, {50.0, 99.0});
        result.p50TtftNs = ps[0];
        result.p99TtftNs = ps[1];
    }
    if (replica.iterLatency().count() > 0) {
        result.meanTpotNs = replica.iterLatency().mean();
        result.meanActive = replica.activeSizes().mean();
    }
    double elapsed_s = std::min(engine.nowNs(), horizon_ns) / 1e9;
    if (elapsed_s > 0.0)
        result.tokensPerSec =
            static_cast<double>(replica.tokensEmitted()) / elapsed_s;
    return result;
}

} // namespace skipsim::serving
