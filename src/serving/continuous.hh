/**
 * @file
 * Continuous (iteration-level) batching simulation, the serving
 * discipline of Orca/vLLM that the paper cites (Sec. IV-B: "serving
 * frameworks like vLLM aim to maximize throughput while approaching
 * the low latency characteristic of BS=1 execution"). Requests join
 * the running batch between decode iterations instead of waiting for
 * a whole static batch to drain, trading a little per-iteration cost
 * for much lower queueing delay.
 */

#ifndef SKIPSIM_SERVING_CONTINUOUS_HH
#define SKIPSIM_SERVING_CONTINUOUS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "hw/platform.hh"
#include "workload/model_config.hh"

namespace skipsim::obs
{
class Collector;
}

namespace skipsim::serving
{

/**
 * Iteration cost model: prefill and single-decode-step latencies as a
 * function of batch size, obtained by simulating the workload once per
 * grid point and interpolating in between.
 */
class IterationCostModel
{
  public:
    /**
     * Build by simulating prefill and decode-step graphs on the
     * platform across a batch grid.
     * @throws skipsim::FatalError on non-positive prompt length.
     */
    IterationCostModel(const workload::ModelConfig &model,
                       const hw::Platform &platform, int prompt_len);

    /** Prefill iteration latency for @p batch new sequences, ns. */
    double prefillNs(int batch) const;

    /** One decode iteration latency for @p batch active sequences, ns. */
    double decodeNs(int batch) const;

    /**
     * Latency of prefilling one chunk of @p chunk_tokens prompt tokens
     * (Sarathi-style chunked prefill), ns. Simulated lazily and cached
     * per distinct chunk size.
     * @throws skipsim::FatalError on non-positive chunk size.
     */
    double chunkNs(int chunk_tokens) const;

  private:
    workload::ModelConfig _model;
    hw::Platform _platform;
    std::vector<int> _grid;
    std::vector<double> _prefill;
    std::vector<double> _decode;
    mutable std::map<int, double> _chunkCache;

    static double interpolate(const std::vector<int> &grid,
                              const std::vector<double> &ys, int batch);
};

/** Continuous-batching server configuration. */
struct ContinuousConfig
{
    double arrivalRatePerSec = 50.0;
    double horizonSec = 20.0;

    /** Maximum concurrently decoding sequences. */
    int maxActive = 32;

    /** Prompt length of every request (tokens). */
    int promptLen = 512;

    /** Tokens generated per request. */
    int genTokens = 32;

    /**
     * Chunked-prefill size in tokens (Sarathi-Serve style): prompts
     * are split into ceil(promptLen / chunkTokens) chunk iterations,
     * each co-scheduled with the running decode batch so decoding
     * never stalls behind a full prefill. 0 disables chunking (whole
     * prompts prefill in dedicated iterations).
     */
    int chunkTokens = 0;

    std::uint64_t seed = 42;
};

/** Outcome of a continuous-batching simulation. */
struct ContinuousResult
{
    /** Requests that finished generating within the horizon. */
    std::size_t completed = 0;

    /** Time-to-first-token percentiles (arrival -> prefill done), ns. */
    double p50TtftNs = 0.0;
    double p99TtftNs = 0.0;

    /** Mean decode-iteration latency experienced per token, ns. */
    double meanTpotNs = 0.0;

    /** Generated-token throughput over the horizon, tokens/s. */
    double tokensPerSec = 0.0;

    /** Mean number of active sequences per decode iteration. */
    double meanActive = 0.0;

    /** Requests left unfinished at the horizon. */
    std::size_t unfinished = 0;
};

/**
 * Simulate a continuous-batching server: pending prefills are admitted
 * (batched together) whenever capacity allows, and all active
 * sequences advance one token per decode iteration.
 *
 * When @p obs is non-null the simulation additionally records probes:
 * one duration span per iteration ("prefill b=N" / "decode b=N" /
 * "chunk+decode b=N"), boundary samples of continuous.queue_depth /
 * continuous.batch_active and windowed continuous.tokens_per_sec /
 * continuous.ttft_ms, plus registry totals and a continuous.ttft_ms
 * histogram. Probes never perturb the result.
 *
 * @throws skipsim::FatalError on non-positive rate/horizon/capacity.
 */
ContinuousResult simulateContinuous(const IterationCostModel &cost,
                                    const ContinuousConfig &config,
                                    obs::Collector *obs = nullptr);

} // namespace skipsim::serving

#endif // SKIPSIM_SERVING_CONTINUOUS_HH
