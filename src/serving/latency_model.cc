#include "serving/latency_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace skipsim::serving
{

LatencyModel::LatencyModel(const analysis::SweepResult &sweep)
    : _series(sweep.latencySeries()),
      _modelName(sweep.modelName),
      _platformName(sweep.platformName)
{
    if (_series.size() < 2)
        fatal("LatencyModel: sweep needs at least 2 batch points");

    const auto &points = _series.points();
    _maxBatch = static_cast<int>(std::llround(points.back().x));

    const auto &last = points[points.size() - 1];
    const auto &prev = points[points.size() - 2];
    double span = last.x - prev.x;
    _tailSlope = span > 0.0 ? (last.y - prev.y) / span : 0.0;
    if (_tailSlope < 0.0)
        _tailSlope = 0.0;
}

double
LatencyModel::latencyNs(int batch) const
{
    if (batch <= 0)
        fatal("LatencyModel::latencyNs: batch must be positive");
    double b = static_cast<double>(batch);
    if (b <= _series.points().back().x)
        return _series.interpolate(b);
    return _series.points().back().y +
        (b - _series.points().back().x) * _tailSlope;
}

} // namespace skipsim::serving
