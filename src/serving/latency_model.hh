/**
 * @file
 * Batch-latency model for serving simulation: wraps a batch sweep's
 * measured prefill latencies into an interpolated latency(batch)
 * function, so request-level simulations can evaluate batching
 * policies without re-simulating every forward pass.
 */

#ifndef SKIPSIM_SERVING_LATENCY_MODEL_HH
#define SKIPSIM_SERVING_LATENCY_MODEL_HH

#include "analysis/sweep.hh"
#include "stats/series.hh"

namespace skipsim::serving
{

/**
 * latency(batch) derived from a SweepResult. Latency between measured
 * batch sizes is piecewise-linear; beyond the largest measured batch
 * it extrapolates linearly using the last segment's per-request slope
 * (the GPU-bound region scales near-linearly in batch).
 */
class LatencyModel
{
  public:
    /**
     * Build from a sweep.
     * @throws skipsim::FatalError when the sweep has fewer than 2
     *         points.
     */
    explicit LatencyModel(const analysis::SweepResult &sweep);

    /** Prefill latency of a batch of @p batch requests, ns. */
    double latencyNs(int batch) const;

    /** Largest measured batch size. */
    int maxMeasuredBatch() const { return _maxBatch; }

    /** Workload/platform identity carried from the sweep. */
    const std::string &modelName() const { return _modelName; }
    const std::string &platformName() const { return _platformName; }

  private:
    stats::Series _series;
    int _maxBatch = 1;
    double _tailSlope = 0.0; ///< ns per extra request past the grid
    std::string _modelName;
    std::string _platformName;
};

} // namespace skipsim::serving

#endif // SKIPSIM_SERVING_LATENCY_MODEL_HH
