#include "serving/replica_engine.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace skipsim::serving
{

ReplicaEngine::ReplicaEngine(core::Scheduler &scheduler,
                             const Config &config, Callbacks callbacks)
    : core::Process(scheduler), _cfg(config), _cb(std::move(callbacks))
{
    if (_cfg.cost == nullptr)
        fatal("ReplicaEngine: cost model is required");
    if (_cfg.maxActive <= 0)
        fatal("ReplicaEngine: maxActive must be positive");
    if (_cfg.genTokens <= 0)
        fatal("ReplicaEngine: genTokens must be positive");
    if (_cfg.chunkTokens > 0 && _cfg.promptLen <= 0)
        fatal("ReplicaEngine: chunked prefill needs a prompt length");
    if (static_cast<bool>(_cfg.kvAdmit) !=
        static_cast<bool>(_cfg.kvRelease))
        fatal("ReplicaEngine: kvAdmit and kvRelease must be set "
              "together");
    if (_cfg.chunkTokens > 0 && (_cfg.kvAdmit || _cfg.prefillOnly))
        fatal("ReplicaEngine: chunked prefill does not compose with an "
              "external KV store or prefill-only mode");
}

void
ReplicaEngine::enqueue(std::size_t id, double arrivalNs)
{
    _pending.emplace_back(id, arrivalNs);
}

void
ReplicaEngine::enqueueDecode(std::size_t id, double arrivalNs)
{
    _pendingDecode.emplace_back(id, arrivalNs);
}

void
ReplicaEngine::maybeStart(double nowNs)
{
    if (_halted || _busy || nowNs >= _cfg.horizonNs)
        return;

    if (_cfg.chunkTokens > 0) {
        // Sarathi-style: co-schedule one prompt chunk of the
        // head-of-line request with the running decode batch.
        if (_headChunksLeft == 0 && !_pending.empty() &&
            _active.size() <
                static_cast<std::size_t>(_cfg.maxActive) &&
            _kvBytes + _cfg.kvPerSeqBytes <= _cfg.kvCapacityBytes) {
            _headId = _pending.front().first;
            _headArrivalNs = _pending.front().second;
            _pending.pop_front();
            int prompt_tokens = _cfg.promptLen;
            if (_cfg.prefillFrac)
                prompt_tokens = std::max(
                    1, static_cast<int>(std::lround(
                           _cfg.promptLen *
                           std::clamp(_cfg.prefillFrac(_headId), 0.05,
                                      1.0))));
            _headChunksLeft =
                (prompt_tokens + _cfg.chunkTokens - 1) /
                _cfg.chunkTokens;
            _kvBytes += _cfg.kvPerSeqBytes;
            _peakKvBytes = std::max(_peakKvBytes, _kvBytes);
            if (_cb.onAdmit)
                _cb.onAdmit(1, nowNs);
            if (_cb.onAdmitRequest)
                _cb.onAdmitRequest(_headId, nowNs, 0.0, false);
        }
        if (_headChunksLeft == 0 && _active.empty())
            return;

        double base = 0.0;
        if (!_active.empty()) {
            base += _cfg.cost->decodeNs(
                static_cast<int>(_active.size()));
            _activeSizes.add(static_cast<double>(_active.size()));
        }
        _iterChunkSched = _headChunksLeft > 0;
        if (_headChunksLeft > 0) {
            base += _cfg.cost->chunkNs(_cfg.chunkTokens);
            --_headChunksLeft;
        }
        // Chunked mode: every iteration latency counts towards TPOT
        // (a co-scheduled chunk delays every decoding sequence).
        _iterLatency.add(startIteration(nowNs, base));
        return;
    }

    // Decode-pool entrants (disaggregated serving) join the decode
    // batch directly: their prefill happened in another pool.
    while (!_pendingDecode.empty() &&
           _active.size() + _prefilling.size() <
               static_cast<std::size_t>(_cfg.maxActive)) {
        std::size_t id = _pendingDecode.front().first;
        double stall_ns = 0.0;
        if (_cfg.kvAdmit) {
            Config::KvAdmission kv = _cfg.kvAdmit(id, nowNs, true);
            if (!kv.admitted)
                break;
            _pendingStallNs += kv.stallNs;
            stall_ns = kv.stallNs;
        } else if (_kvBytes + _cfg.kvPerSeqBytes <=
                   _cfg.kvCapacityBytes) {
            _kvBytes += _cfg.kvPerSeqBytes;
        } else {
            break;
        }
        _pendingDecode.pop_front();
        _active.emplace_back(id, _cfg.genTokens - 1);
        if (_cb.onAdmitRequest)
            _cb.onAdmitRequest(id, nowNs, stall_ns, true);
    }

    // Admit pending prefills while batch slots and KV budget allow;
    // what does not fit stays queued until completions release KV.
    while (!_pending.empty() &&
           _active.size() + _prefilling.size() <
               static_cast<std::size_t>(_cfg.maxActive)) {
        double stall_ns = 0.0;
        if (_cfg.kvAdmit) {
            Config::KvAdmission kv =
                _cfg.kvAdmit(_pending.front().first, nowNs, false);
            if (!kv.admitted)
                break;
            _pendingStallNs += kv.stallNs;
            stall_ns = kv.stallNs;
            _prefillShares.push_back(kv.prefillShare);
        } else if (_kvBytes + _cfg.kvPerSeqBytes <=
                   _cfg.kvCapacityBytes) {
            _kvBytes += _cfg.kvPerSeqBytes;
        } else {
            break;
        }
        if (_cb.onAdmitRequest)
            _cb.onAdmitRequest(_pending.front().first, nowNs, stall_ns,
                               false);
        _prefilling.push_back(_pending.front());
        _pending.pop_front();
    }
    _peakKvBytes = std::max(_peakKvBytes, _kvBytes);

    if (!_prefilling.empty()) {
        if (_cb.onAdmit)
            _cb.onAdmit(_prefilling.size(), nowNs);
        double base =
            _cfg.cost->prefillNs(static_cast<int>(_prefilling.size()));
        if (_cfg.kvAdmit) {
            // Residency-gated prefix hits: the admission hook already
            // decided each request's uncached share.
            double share = 0.0;
            for (double s : _prefillShares)
                share += std::clamp(s, 0.05, 1.0);
            base *= share / static_cast<double>(_prefilling.size());
        } else if (_cfg.prefillFrac) {
            // Prefix-cache hits skip the cached share of the prompt;
            // prefill time is near-linear in tokens, so the batch cost
            // scales by the mean uncached share.
            double share = 0.0;
            for (const auto &[id, arrival] : _prefilling)
                share += std::clamp(_cfg.prefillFrac(id), 0.05, 1.0);
            base *= share / static_cast<double>(_prefilling.size());
        }
        startIteration(nowNs, base);
    } else if (!_active.empty()) {
        _activeSizes.add(static_cast<double>(_active.size()));
        _iterLatency.add(startIteration(
            nowNs,
            _cfg.cost->decodeNs(static_cast<int>(_active.size()))));
    }
}

double
ReplicaEngine::startIteration(double nowNs, double baseNs)
{
    // Synchronous KV paging (external store) stalls the iteration it
    // admitted into: the GPU waits on the interconnect.
    baseNs += _pendingStallNs;
    _pendingStallNs = 0.0;
    double dur = _cb.scaleDuration ? _cb.scaleDuration(baseNs) : baseNs;
    _busy = true;
    ++_serial;
    _iterBeginNs = nowNs;
    _busyNs += dur;
    at(nowNs + dur, _cfg.iterPriority,
       [this, serial = _serial](double tNs) { onIterEnd(tNs, serial); });
    return dur;
}

void
ReplicaEngine::completeSeq(std::size_t id, double nowNs)
{
    if (_cfg.kvRelease)
        _cfg.kvRelease(id, nowNs);
    else
        _kvBytes -= _cfg.kvPerSeqBytes;
    if (_cb.onComplete)
        _cb.onComplete(id, nowNs);
}

void
ReplicaEngine::onIterEnd(double tNs, std::uint64_t serial)
{
    if (_halted || !_busy || serial != _serial)
        return; // cancelled by a crash
    _busy = false;

    IterationInfo info;
    info.beginNs = _iterBeginNs;
    info.endNs = tNs;
    if (_cfg.chunkTokens > 0) {
        info.decodeBatch = static_cast<int>(_active.size());
        info.chunk = _iterChunkSched;
        info.chunkFinished = _iterChunkSched && _headChunksLeft == 0 &&
            _headArrivalNs >= 0.0;
        info.tokens =
            info.decodeBatch + (info.chunkFinished ? 1 : 0);
    } else if (!_prefilling.empty()) {
        info.prefill = true;
        info.prefillBatch = static_cast<int>(_prefilling.size());
        info.tokens = info.prefillBatch;
    } else {
        info.decodeBatch = static_cast<int>(_active.size());
        info.tokens = info.decodeBatch;
    }
    _tokensEmitted += static_cast<std::size_t>(info.tokens);
    info.activeIds = &_active; // unmutated until after the callback
    if (_cb.onIteration)
        _cb.onIteration(info);

    if (info.prefill) {
        for (const auto &[id, arrival] : _prefilling) {
            if (_cb.onFirstToken)
                _cb.onFirstToken(id, tNs - arrival, tNs);
            if (_cfg.genTokens == 1 || _cfg.prefillOnly)
                completeSeq(id, tNs);
            else
                _active.emplace_back(id, _cfg.genTokens - 1);
        }
        _prefilling.clear();
        _prefillShares.clear();
    } else {
        // Decode first: a head finishing its last chunk this
        // iteration joins the batch afterwards, so it does not decode
        // in the very iteration that prefilled it.
        if (info.decodeBatch > 0) {
            std::vector<std::pair<std::size_t, int>> still;
            still.reserve(_active.size());
            for (auto &[id, left] : _active) {
                if (--left <= 0)
                    completeSeq(id, tNs);
                else
                    still.emplace_back(id, left);
            }
            _active.swap(still);
        }
        if (info.chunkFinished) {
            if (_cb.onFirstToken)
                _cb.onFirstToken(_headId, tNs - _headArrivalNs, tNs);
            if (_cfg.genTokens == 1)
                completeSeq(_headId, tNs);
            else
                _active.emplace_back(_headId, _cfg.genTokens - 1);
            _headArrivalNs = -1.0;
        }
    }

    maybeStart(tNs);
}

void
ReplicaEngine::halt()
{
    _halted = true;
    _busy = false;
    ++_serial; // invalidates the in-flight iteration-end event
}

std::vector<std::size_t>
ReplicaEngine::evictAll()
{
    std::vector<std::size_t> ids;
    ids.reserve(_pending.size() + _pendingDecode.size() +
                _prefilling.size() + _active.size() +
                (_headChunksLeft > 0 ? 1 : 0));
    for (const auto &[id, arrival] : _pending)
        ids.push_back(id);
    _pending.clear();
    for (const auto &[id, arrival] : _pendingDecode)
        ids.push_back(id);
    _pendingDecode.clear();
    for (const auto &[id, arrival] : _prefilling)
        ids.push_back(id);
    _prefilling.clear();
    _prefillShares.clear();
    _pendingStallNs = 0.0;
    if (_headChunksLeft > 0 || _headArrivalNs >= 0.0) {
        ids.push_back(_headId);
        _headChunksLeft = 0;
        _headArrivalNs = -1.0;
    }
    for (const auto &[id, left] : _active)
        ids.push_back(id);
    _active.clear();
    _kvBytes = 0.0;
    return ids;
}

} // namespace skipsim::serving
