/**
 * @file
 * The continuous-batching replica engine shared by the single-replica
 * server (simulateContinuous) and the cluster simulator
 * (simulateCluster), which instantiates one per replica. Before this
 * existed, both carried their own copy of the same discipline —
 * prefill admission under a KV budget, whole-batch decode iterations,
 * TTFT/TPOT bookkeeping — and the copies had already drifted (the
 * cluster had KV admission control, the single-replica path did not;
 * only the single-replica path had chunked prefill).
 *
 * A ReplicaEngine is a core::Process: it owns the replica's queues and
 * KV accounting, schedules its own iteration-end events on the shared
 * core::Engine, and reports request milestones through callbacks so
 * the host keeps its own notion of a request (the cluster reroutes
 * ids across replicas; the single-replica server just counts).
 *
 * Iteration-end events carry a serial number; halt() (crash
 * modelling) bumps the serial so in-flight completions become no-ops,
 * exactly the cancelled-iteration rule the cluster simulator used.
 */

#ifndef SKIPSIM_SERVING_REPLICA_ENGINE_HH
#define SKIPSIM_SERVING_REPLICA_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "core/engine.hh"
#include "serving/continuous.hh"
#include "stats/summary.hh"

namespace skipsim::serving
{

/** One finished batching iteration, reported via Callbacks. */
struct IterationInfo
{
    double beginNs = 0.0;
    double endNs = 0.0;

    /** Dedicated prefill iteration (non-chunked admission). */
    bool prefill = false;
    /** Sequences prefilled by a dedicated prefill iteration. */
    int prefillBatch = 0;

    /** Active sequences that decoded one token this iteration. */
    int decodeBatch = 0;

    /** A prompt chunk was co-scheduled (chunked-prefill mode). */
    bool chunk = false;
    /** The co-scheduled chunk was the head request's last. */
    bool chunkFinished = false;

    /** Tokens emitted by this iteration (first tokens included). */
    int tokens = 0;

    /**
     * The decoding batch as (id, tokens left) pairs — the engine's
     * live active list, valid only for the duration of the
     * onIteration callback (the decode bookkeeping that follows
     * mutates it). Lets hosts attribute the iteration to individual
     * requests (lifecycle spans) without copying per iteration.
     */
    const std::vector<std::pair<std::size_t, int>> *activeIds = nullptr;
};

/** Continuous-batching engine for one replica; see file comment. */
class ReplicaEngine : private core::Process
{
  public:
    struct Config
    {
        /** Iteration latency model (required). */
        const IterationCostModel *cost = nullptr;

        /** Maximum concurrently decoding sequences. */
        int maxActive = 0;

        /** Prompt length of every request (tokens). */
        int promptLen = 0;

        /** Tokens generated per request (>= 1; prefill emits one). */
        int genTokens = 0;

        /** Chunked-prefill size in tokens; 0 disables chunking. */
        int chunkTokens = 0;

        /**
         * KV-cache footprint reserved per admitted sequence and the
         * replica's KV budget. The defaults (0 bytes against an
         * unbounded capacity) disable KV admission control.
         */
        double kvPerSeqBytes = 0.0;
        double kvCapacityBytes = std::numeric_limits<double>::infinity();

        /** No iteration starts at or past this instant. */
        double horizonNs = 0.0;

        /** Queue priority of this replica's iteration-end events. */
        int iterPriority = 1;

        /**
         * Share of request @p id's prompt that must actually be
         * prefilled, (0, 1] — below 1 when a prefix-cache hit covers
         * the rest (multi-turn sessions). Prefill iteration cost
         * scales by the admitted batch's mean share; KV stays
         * reserved in full (conservative admission). Unset means
         * every prompt is cold. Ignored when kvAdmit is set (the
         * admission hook returns the residency-gated share).
         */
        std::function<double(std::size_t id)> prefillFrac;

        /** Outcome of an external KV admission (see kvAdmit). */
        struct KvAdmission
        {
            bool admitted = false;

            /** Synchronous transfer time (KV paging/prefix fetch)
             *  added to the admitting iteration's duration, ns. */
            double stallNs = 0.0;

            /** Residency-gated prefill share for this request,
             *  (0, 1]; decode entrants ignore it. */
            double prefillShare = 1.0;
        };

        /**
         * External KV admission (a two-tier store): when set, it
         * replaces the internal kvPerSeqBytes/kvCapacityBytes budget
         * check — the hook reserves the sequence's KV, pages other
         * entries out to make room, and reports the stall to charge.
         * kvRelease must be set with it; chunked prefill is not
         * supported with an external store.
         */
        std::function<KvAdmission(std::size_t id, double nowNs,
                                  bool decodeEntry)>
            kvAdmit;

        /** Release request @p id's KV reservation (completion). */
        std::function<void(std::size_t id, double nowNs)> kvRelease;

        /**
         * Prefill-pool mode (disaggregated serving): sequences
         * complete right after their first token — the host ships the
         * KV to a decode pool — instead of joining the decode batch.
         */
        bool prefillOnly = false;
    };

    /**
     * Host hooks, all optional. Milestone callbacks fire inside
     * iteration-end processing, in admission order per iteration;
     * onIteration fires first (before any milestone), matching the
     * span-then-bookkeeping order of the pre-refactor cluster.
     */
    struct Callbacks
    {
        /** @p count sequences were admitted at @p nowNs. */
        std::function<void(std::size_t count, double nowNs)> onAdmit;

        /**
         * Request @p id was admitted (fired per request, right after
         * the admission decision). @p stallNs is the synchronous
         * KV-tier transfer the admission charged (0 without an
         * external store); @p decodeEntry marks a decode-pool entry
         * joining the batch directly. Used for lifecycle spans.
         */
        std::function<void(std::size_t id, double nowNs,
                           double stallNs, bool decodeEntry)>
            onAdmitRequest;

        /** Request @p id got its first token (TTFT measured). */
        std::function<void(std::size_t id, double ttftNs, double nowNs)>
            onFirstToken;

        /** Request @p id finished generating (KV already released). */
        std::function<void(std::size_t id, double nowNs)> onComplete;

        /** One iteration finished (reported before milestones). */
        std::function<void(const IterationInfo &)> onIteration;

        /**
         * Map a base iteration latency to simulated time — clock
         * scaling, fault slowdown, timing jitter. Identity when unset.
         * Called once per started iteration, so a host drawing jitter
         * here keeps its RNG stream position a pure function of the
         * iteration sequence.
         */
        std::function<double(double baseNs)> scaleDuration;
    };

    /** @p scheduler is the engine (or shard) this replica's
     *  iteration-end events run on. */
    ReplicaEngine(core::Scheduler &scheduler, const Config &config,
                  Callbacks callbacks);

    /**
     * Queue request @p id (arrived at @p arrivalNs) for admission.
     * Does not start an iteration: call maybeStart() afterwards. A
     * halted replica still queues — those requests sink, exactly like
     * dispatches to a crashed-but-undetected replica.
     */
    void enqueue(std::size_t id, double arrivalNs);

    /**
     * Queue request @p id for decode-pool entry (disaggregated
     * serving): its prefill (and first token) happened elsewhere, so
     * on admission it joins the decode batch directly with
     * genTokens - 1 tokens left and never reports a first token here.
     */
    void enqueueDecode(std::size_t id, double arrivalNs);

    /**
     * Start the next iteration if the replica is idle, not halted,
     * before the horizon, and has admissible or active work.
     */
    void maybeStart(double nowNs);

    /**
     * Crash the replica: cancel the in-flight iteration (its end
     * event becomes a no-op) and refuse further starts.
     */
    void halt();

    /**
     * Evict every queued and in-progress request — pending first,
     * then prefilling, then active (the stranding order faults rely
     * on) — releasing all KV. @return the evicted ids.
     */
    std::vector<std::size_t> evictAll();

    std::size_t pendingCount() const
    {
        return _pending.size() + _pendingDecode.size();
    }
    std::size_t activeCount() const { return _active.size(); }
    std::size_t prefillingCount() const { return _prefilling.size(); }
    bool chunkHeadInFlight() const { return _headChunksLeft > 0; }
    bool busy() const { return _busy; }
    bool halted() const { return _halted; }

    double kvBytes() const { return _kvBytes; }
    double peakKvBytes() const { return _peakKvBytes; }

    /** Busy time, after scaleDuration. */
    double busyNs() const { return _busyNs; }
    std::size_t tokensEmitted() const { return _tokensEmitted; }

    /** Decode batch sizes, one sample per decoding iteration. */
    const stats::Summary &activeSizes() const { return _activeSizes; }

    /**
     * Iteration latencies: every iteration in chunked mode (a chunk
     * delays every co-scheduled decode), decode iterations otherwise.
     */
    const stats::Summary &iterLatency() const { return _iterLatency; }

  private:
    void onIterEnd(double tNs, std::uint64_t serial);
    /** @return the scaled iteration duration. */
    double startIteration(double nowNs, double baseNs);
    void completeSeq(std::size_t id, double nowNs);

    Config _cfg;
    Callbacks _cb;

    std::deque<std::pair<std::size_t, double>> _pending;
    std::deque<std::pair<std::size_t, double>> _pendingDecode;
    std::vector<std::pair<std::size_t, double>> _prefilling;
    /** Residency-gated prefill shares, parallel to _prefilling
     *  (kvAdmit mode only). */
    std::vector<double> _prefillShares;
    std::vector<std::pair<std::size_t, int>> _active;

    /** Synchronous KV transfer time accrued by admissions since the
     *  last iteration start; added to the next iteration's base. */
    double _pendingStallNs = 0.0;

    /** Chunked-prefill head-of-line request; arrival < 0 when none. */
    std::size_t _headId = 0;
    double _headArrivalNs = -1.0;
    int _headChunksLeft = 0;
    bool _iterChunkSched = false;

    bool _busy = false;
    bool _halted = false;
    std::uint64_t _serial = 0;
    double _iterBeginNs = 0.0;

    double _kvBytes = 0.0;
    double _peakKvBytes = 0.0;
    double _busyNs = 0.0;
    std::size_t _tokensEmitted = 0;
    stats::Summary _activeSizes;
    stats::Summary _iterLatency;
};

} // namespace skipsim::serving

#endif // SKIPSIM_SERVING_REPLICA_ENGINE_HH
